/**
 * @file
 * The engine's format-agnostic matrix types.
 *
 * MatrixRef is a non-owning (format tag, pointer) view that every
 * concrete matrix class converts to implicitly — the currency of
 * the dispatch layer, so existing call sites pass their CsrMatrix
 * or SmashMatrix with zero copies.
 *
 * SparseMatrixAny owns one matrix in any of the engine's formats
 * (a std::variant) and is what conversion and auto-selection
 * produce; it converts to MatrixRef like the concrete types.
 *
 * SparseMatrixAny also owns a PlanCache (engine/plan.hh): the
 * partition plans the parallel dispatch drivers compute for it are
 * memoized per instance and invalidated by structural mutations,
 * so steady-state re-dispatch over a long-lived matrix skips the
 * per-call partitioning setup. MatrixRef carries a pointer to that
 * cache when built from a SparseMatrixAny (or explicitly attached
 * via withPlans()); refs built from bare concrete matrices carry
 * none and the drivers fall back to per-call partitioning.
 *
 * Ownership/threading contract: SparseMatrixAny owns its storage
 * outright; MatrixRef borrows and must not outlive the matrix it
 * views. Neither is internally synchronized — concurrent reads are
 * fine (the embedded PlanCache synchronizes itself), but the
 * mutation members (applyUpdates/replaceRows/scaleValues, CSR
 * holders only) require external serialization against readers,
 * which the serving registry provides via its epoch/shared_ptr
 * swap discipline.
 */

#ifndef SMASH_ENGINE_MATRIX_ANY_HH
#define SMASH_ENGINE_MATRIX_ANY_HH

#include <variant>
#include <vector>

#include "common/logging.hh"
#include "core/smash_matrix.hh"
#include "engine/format.hh"
#include "engine/mutate.hh"
#include "engine/plan.hh"
#include "formats/bcsr_matrix.hh"
#include "formats/coo_matrix.hh"
#include "formats/csc_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"
#include "formats/dia_matrix.hh"
#include "formats/ell_matrix.hh"

namespace smash::eng
{

/** Compile-time Format tag of each concrete matrix class. */
template <typename T> struct FormatOf;
template <> struct FormatOf<fmt::CooMatrix>
{ static constexpr Format value = Format::kCoo; };
template <> struct FormatOf<fmt::CsrMatrix>
{ static constexpr Format value = Format::kCsr; };
template <> struct FormatOf<fmt::CscMatrix>
{ static constexpr Format value = Format::kCsc; };
template <> struct FormatOf<fmt::BcsrMatrix>
{ static constexpr Format value = Format::kBcsr; };
template <> struct FormatOf<fmt::EllMatrix>
{ static constexpr Format value = Format::kEll; };
template <> struct FormatOf<fmt::DiaMatrix>
{ static constexpr Format value = Format::kDia; };
template <> struct FormatOf<fmt::DenseMatrix>
{ static constexpr Format value = Format::kDense; };
template <> struct FormatOf<core::SmashMatrix>
{ static constexpr Format value = Format::kSmash; };

class SparseMatrixAny;

/** Constrains MatrixRef construction to the known matrix classes. */
template <typename T>
concept EngineMatrix = requires { FormatOf<T>::value; };

/** Non-owning view of a matrix in any engine format. */
class MatrixRef
{
  public:
    template <EngineMatrix T>
    MatrixRef(const T& m) // NOLINT: implicit by design
        : format_(FormatOf<T>::value), ptr_(&m)
    {}

    MatrixRef(const SparseMatrixAny& m); // NOLINT: implicit by design

    Format format() const { return format_; }

    /** The owning matrix's plan cache, or null for refs over bare
     *  concrete matrices (drivers then partition per call). */
    const PlanCache* plans() const { return plans_; }

    /** This ref with @p plans attached — lets callers holding a
     *  concrete matrix opt into plan caching with an external
     *  cache whose lifetime they manage. */
    MatrixRef
    withPlans(const PlanCache& plans) const
    {
        MatrixRef r = *this;
        r.plans_ = &plans;
        return r;
    }

    Index rows() const;
    Index cols() const;
    Index nnz() const;

    /**
     * Length the x operand of y := A x must have: cols(), rounded
     * up to the format's block/padding granularity (BCSR block
     * columns, SMASH padded columns).
     */
    Index xLength() const;

    /** Typed access; fatal if the tag does not match. */
    template <typename T>
    const T&
    as() const
    {
        SMASH_CHECK(format_ == FormatOf<T>::value,
                    "matrix is ", toString(format_), ", requested ",
                    toString(FormatOf<T>::value));
        return *static_cast<const T*>(ptr_);
    }

  private:
    friend class SparseMatrixAny;

    Format format_;
    const void* ptr_;
    const PlanCache* plans_ = nullptr;
};

/** Owning holder of a matrix in any engine format. */
class SparseMatrixAny
{
  public:
    /** Per-format parameters of fromCoo() conversions. */
    struct BuildOptions
    {
        Index bcsrBlockRows = 4;
        Index bcsrBlockCols = 4;
        /** SMASH hierarchy in the paper's top-down notation. */
        std::vector<Index> smashHierarchy = {16, 4, 2};
    };

    template <typename T>
    explicit SparseMatrixAny(T m)
        : holder_(std::move(m)), plans_(std::make_shared<PlanCache>())
    {}

    // Copies get a fresh, empty plan cache: sharing one would let a
    // later structural mutation of either copy poison the other's
    // key space (same (kind, chunks) key, different structure).
    SparseMatrixAny(const SparseMatrixAny& o)
        : holder_(o.holder_), plans_(std::make_shared<PlanCache>())
    {}
    SparseMatrixAny&
    operator=(const SparseMatrixAny& o)
    {
        if (this != &o) {
            holder_ = o.holder_;
            plans_ = std::make_shared<PlanCache>();
        }
        return *this;
    }
    SparseMatrixAny(SparseMatrixAny&&) = default;
    SparseMatrixAny& operator=(SparseMatrixAny&&) = default;

    /** Encode a canonical COO matrix as @p target. */
    static SparseMatrixAny fromCoo(const fmt::CooMatrix& coo,
                                   Format target,
                                   const BuildOptions& opts);
    static SparseMatrixAny fromCoo(const fmt::CooMatrix& coo,
                                   Format target);

    /**
     * Encode a CSR master copy as @p target (the registry's
     * re-encode path). Everything but a CSR target round-trips
     * through canonical COO — exactly the conversion cost the
     * fig20 study prices.
     */
    static SparseMatrixAny fromCsr(const fmt::CsrMatrix& csr,
                                   Format target,
                                   const BuildOptions& opts);

    Format format() const;
    MatrixRef ref() const;

    Index rows() const { return ref().rows(); }
    Index cols() const { return ref().cols(); }
    Index nnz() const { return ref().nnz(); }
    Index xLength() const { return ref().xLength(); }

    template <typename T>
    const T&
    as() const
    {
        return ref().as<T>();
    }

    /**
     * Mutation API — valid only while holding a CSR matrix (the
     * canonical master-copy format of served matrices; fatal for
     * any other holder). Semantics are those of engine/mutate.hh;
     * callers must serialize against concurrent readers.
     */
    MutationStats applyUpdates(const fmt::CooMatrix& deltas,
                               const StructureListener& listener = {});
    MutationStats replaceRows(const std::vector<Index>& rows,
                              const fmt::CooMatrix& replacement,
                              const StructureListener& listener = {});
    MutationStats scaleValues(Value factor);

    /** The memoized partition plans of this matrix (stats/tests;
     *  the dispatch layer reaches it through ref().plans()). */
    PlanCache& planCache() const { return *plans_; }

  private:
    /** The held CSR master, checked (mutation API plumbing). */
    fmt::CsrMatrix& mutableCsr();

    std::variant<fmt::CooMatrix, fmt::CsrMatrix, fmt::CscMatrix,
                 fmt::BcsrMatrix, fmt::EllMatrix, fmt::DiaMatrix,
                 fmt::DenseMatrix, core::SmashMatrix>
        holder_;
    /** shared_ptr so the holder stays movable (PlanCache owns a
     *  mutex); never null for a live object. */
    std::shared_ptr<PlanCache> plans_;
};

inline MatrixRef::MatrixRef(const SparseMatrixAny& m)
    : MatrixRef(m.ref())
{}

} // namespace smash::eng

#endif // SMASH_ENGINE_MATRIX_ANY_HH
