#include "engine/matrix_any.hh"

#include "common/bitops.hh"
#include "core/hierarchy_config.hh"

namespace smash::eng
{

namespace
{

template <typename Fn>
auto
visitRef(const MatrixRef& m, Fn&& fn)
{
    switch (m.format()) {
      case Format::kCoo:
        return fn(m.as<fmt::CooMatrix>());
      case Format::kCsr:
        return fn(m.as<fmt::CsrMatrix>());
      case Format::kCsc:
        return fn(m.as<fmt::CscMatrix>());
      case Format::kBcsr:
        return fn(m.as<fmt::BcsrMatrix>());
      case Format::kEll:
        return fn(m.as<fmt::EllMatrix>());
      case Format::kDia:
        return fn(m.as<fmt::DiaMatrix>());
      case Format::kDense:
        return fn(m.as<fmt::DenseMatrix>());
      case Format::kSmash:
        return fn(m.as<core::SmashMatrix>());
    }
    SMASH_PANIC("unknown format tag");
}

} // namespace

Index
MatrixRef::rows() const
{
    return visitRef(*this, [](const auto& m) { return m.rows(); });
}

Index
MatrixRef::cols() const
{
    return visitRef(*this, [](const auto& m) { return m.cols(); });
}

Index
MatrixRef::nnz() const
{
    switch (format_) {
      case Format::kDense:
        return as<fmt::DenseMatrix>().countNonZeros();
      case Format::kCoo:
        return as<fmt::CooMatrix>().nnz();
      case Format::kCsr:
        return as<fmt::CsrMatrix>().nnz();
      case Format::kCsc:
        return as<fmt::CscMatrix>().nnz();
      case Format::kBcsr:
        return as<fmt::BcsrMatrix>().nnz();
      case Format::kEll:
        return as<fmt::EllMatrix>().nnz();
      case Format::kDia:
        return as<fmt::DiaMatrix>().nnz();
      case Format::kSmash:
        return as<core::SmashMatrix>().nnz();
    }
    SMASH_PANIC("unknown format tag");
}

Index
MatrixRef::xLength() const
{
    switch (format_) {
      case Format::kBcsr: {
        const auto& m = as<fmt::BcsrMatrix>();
        return static_cast<Index>(
            roundUp(static_cast<std::uint64_t>(m.cols()),
                    static_cast<std::uint64_t>(m.blockCols())));
      }
      case Format::kSmash:
        return as<core::SmashMatrix>().paddedCols();
      default:
        return cols();
    }
}

SparseMatrixAny
SparseMatrixAny::fromCoo(const fmt::CooMatrix& coo, Format target,
                         const BuildOptions& opts)
{
    switch (target) {
      case Format::kCoo:
        return SparseMatrixAny(coo);
      case Format::kCsr:
        return SparseMatrixAny(fmt::CsrMatrix::fromCoo(coo));
      case Format::kCsc:
        return SparseMatrixAny(fmt::CscMatrix::fromCoo(coo));
      case Format::kBcsr:
        return SparseMatrixAny(fmt::BcsrMatrix::fromCoo(
            coo, opts.bcsrBlockRows, opts.bcsrBlockCols));
      case Format::kEll:
        return SparseMatrixAny(fmt::EllMatrix::fromCoo(coo));
      case Format::kDia:
        return SparseMatrixAny(fmt::DiaMatrix::fromCoo(coo));
      case Format::kDense:
        return SparseMatrixAny(coo.toDense());
      case Format::kSmash:
        return SparseMatrixAny(core::SmashMatrix::fromCoo(
            coo, core::HierarchyConfig::fromPaperNotation(
                     opts.smashHierarchy)));
    }
    SMASH_PANIC("unknown format tag");
}

SparseMatrixAny
SparseMatrixAny::fromCoo(const fmt::CooMatrix& coo, Format target)
{
    return fromCoo(coo, target, BuildOptions());
}

SparseMatrixAny
SparseMatrixAny::fromCsr(const fmt::CsrMatrix& csr, Format target,
                         const BuildOptions& opts)
{
    if (target == Format::kCsr)
        return SparseMatrixAny(csr);
    return fromCoo(csr.toCoo(), target, opts);
}

fmt::CsrMatrix&
SparseMatrixAny::mutableCsr()
{
    auto* csr = std::get_if<fmt::CsrMatrix>(&holder_);
    SMASH_CHECK(csr != nullptr,
                "the mutation API applies to CSR master copies; "
                "this matrix holds ",
                toString(format()));
    return *csr;
}

MutationStats
SparseMatrixAny::applyUpdates(const fmt::CooMatrix& deltas,
                              const StructureListener& listener)
{
    const MutationStats stats =
        eng::applyUpdates(mutableCsr(), deltas, listener);
    // Partition plans balance on the structure only: a value-only
    // update leaves them valid, a structural change retires them.
    if (stats.structural() > 0)
        plans_->invalidate();
    return stats;
}

MutationStats
SparseMatrixAny::replaceRows(const std::vector<Index>& rows,
                             const fmt::CooMatrix& replacement,
                             const StructureListener& listener)
{
    const MutationStats stats =
        eng::replaceRows(mutableCsr(), rows, replacement, listener);
    if (stats.structural() > 0)
        plans_->invalidate();
    return stats;
}

MutationStats
SparseMatrixAny::scaleValues(Value factor)
{
    // Structure (and therefore every cached plan) is preserved.
    return eng::scaleValues(mutableCsr(), factor);
}

Format
SparseMatrixAny::format() const
{
    return ref().format();
}

MatrixRef
SparseMatrixAny::ref() const
{
    MatrixRef r = std::visit(
        [](const auto& m) { return MatrixRef(m); }, holder_);
    r.plans_ = plans_.get();
    return r;
}

} // namespace smash::eng
