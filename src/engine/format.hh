/**
 * @file
 * Format identity and capability registry of the execution engine.
 *
 * Every storage scheme the library implements gets one Format tag
 * and one FormatCaps row describing what the dispatch layer may
 * route to it: which operations have native kernels, whether a
 * multi-threaded driver exists, and how the x operand must be
 * padded. Dispatch consults the registry instead of hard-coding
 * per-format knowledge, so adding a format is one enum value, one
 * table row, and the kernels themselves.
 *
 * Ownership/threading contract: the capability table is immutable
 * static storage; every function here is a read and safe from any
 * thread.
 */

#ifndef SMASH_ENGINE_FORMAT_HH
#define SMASH_ENGINE_FORMAT_HH

#include <string>

#include "common/types.hh"

namespace smash::eng
{

/** Storage schemes the engine can hold and dispatch over. */
enum class Format
{
    kCoo,   //!< coordinate triples
    kCsr,   //!< compressed sparse row
    kCsc,   //!< compressed sparse column
    kBcsr,  //!< register-blocked CSR tiles
    kEll,   //!< fixed-width row slabs
    kDia,   //!< stored diagonals
    kDense, //!< uncompressed row-major
    kSmash, //!< hierarchical bitmap + NZA (the paper's encoding)
};

/** Number of Format enumerators (for tables and iteration). */
inline constexpr int kNumFormats = 8;

/** Short lower-case name ("csr", "smash", ...). */
const char* toString(Format f);

/** What the dispatch layer may route to one format. */
struct FormatCaps
{
    const char* name;        //!< same string as toString()
    bool spmv = false;       //!< native SpMV kernel
    bool spmm = false;       //!< native SpMM kernel (as operand A)
    bool spadd = false;      //!< native SpAdd kernel
    bool spgemm = false;     //!< native SpGEMM kernel (as operand A)
    bool parallelSpmv = false; //!< multi-threaded SpMV driver
    bool scatterY = false;   //!< SpMV scatters into y (needs
                             //!< per-thread accumulators in parallel)
    bool batchSpmv = false;  //!< single-traversal multi-RHS kernel
                             //!< (others fall back to one
                             //!< traversal per RHS)
};

/** Capability row for @p f (static storage, never fails). */
const FormatCaps& capabilities(Format f);

} // namespace smash::eng

#endif // SMASH_ENGINE_FORMAT_HH
