/**
 * @file
 * Structure analysis and format auto-selection.
 *
 * analyzeStructure() computes the quantities the paper's format
 * discussion turns on — non-zeros per row (mean and skew),
 * diagonal coverage, density, and the locality of sparsity of
 * §7.2.3 (average fill of the touched fixed-size blocks) — and
 * chooseFormat() maps them to the format whose cost model they
 * favour. encodeAuto() is the one-call path from a canonical COO
 * matrix to an engine matrix in the chosen format.
 *
 * Ownership/threading contract: free functions over borrowed
 * inputs, no shared state — safe to call concurrently. For mutable
 * served matrices, engine/profile.hh maintains the same stats
 * incrementally and chooseFormatSticky() adds the hysteresis the
 * drift detector needs.
 */

#ifndef SMASH_ENGINE_AUTOSELECT_HH
#define SMASH_ENGINE_AUTOSELECT_HH

#include "engine/matrix_any.hh"
#include "formats/coo_matrix.hh"

namespace smash::eng
{

/** Structural profile of a sparse matrix (see analyzeStructure). */
struct StructureStats
{
    Index rows = 0;
    Index cols = 0;
    Index nnz = 0;
    double density = 0;       //!< nnz / (rows * cols)
    double avgNnzPerRow = 0;  //!< nnz / rows
    double rowCv = 0;         //!< row-population coefficient of variation
    Index maxNnzPerRow = 0;
    Index numDiagonals = 0;   //!< distinct occupied diagonals
    double diagonalFill = 0;  //!< nnz / occupied diagonal capacity
    double blockLocality = 0; //!< §7.2.3: avg fill of touched blocks
    Index localityBlock = 0;  //!< block size blockLocality refers to
};

/**
 * One pass over the COO entries. @p block is the aligned row-segment
 * size used for the locality-of-sparsity measure (the paper sweeps
 * NZA block sizes; 8 matches the default SMASH hierarchy).
 */
StructureStats analyzeStructure(const fmt::CooMatrix& coo,
                                Index block = 8);

/**
 * The §7.2.3-style decision boundaries of chooseFormat(). The
 * defaults reproduce the original fixed rules; the drift detector
 * biases copies of them to build a hysteresis band (see
 * chooseFormatSticky()).
 */
struct FormatBoundaries
{
    double denseDensity = 0.4;  //!< density at/above: dense
    double diaFill = 0.5;       //!< diagonal fill at/above: DIA
    Index diaMaxDiagonals = 16; //!< max(this, rows/32) diagonals cap
    /** Scale on the whole diagonal cap (including its rows/32
     *  half) — the hysteresis lever for large matrices, where the
     *  dynamic half dominates the constant floor. */
    double diaCapScale = 1.0;
    double smashLocality = 0.5; //!< block locality at/above: SMASH
    double ellRowCv = 0.25;     //!< row CV at/below: ELL eligible
    double ellMaxOverAvg = 2.0; //!< max/avg row population cap (ELL)
};

/**
 * Pick the format the profile favours. Rules, in order:
 *   1. density >= 0.4                      -> dense (indexing is waste)
 *   2. few diagonals, well filled          -> DIA (banded systems)
 *   3. blockLocality >= 0.5                -> SMASH (paper §7.2.3:
 *      clustered non-zeros amortize each fetched block)
 *   4. uniform row populations             -> ELL (no row_ptr walk,
 *      bounded padding)
 *   5. otherwise                           -> CSR (the general default)
 */
Format chooseFormat(const StructureStats& stats);

/** chooseFormat() against explicit boundaries. */
Format chooseFormat(const StructureStats& stats,
                    const FormatBoundaries& bounds);

/**
 * Drift-aware re-selection with hysteresis: returns the format the
 * profile favours, but biases every boundary by @p margin in favour
 * of @p current — leaving the current format requires beating the
 * §7.2.3 thresholds decisively, not grazing them. A profile sitting
 * inside the hysteresis band keeps @p current, which is what stops
 * an oscillating workload from re-encoding on every update burst.
 */
Format chooseFormatSticky(const StructureStats& stats, Format current,
                          double margin);

/** analyzeStructure + chooseFormat. */
Format chooseFormat(const fmt::CooMatrix& coo);

/** Encode @p coo in the auto-selected format. */
SparseMatrixAny encodeAuto(const fmt::CooMatrix& coo,
                           const SparseMatrixAny::BuildOptions& opts);
SparseMatrixAny encodeAuto(const fmt::CooMatrix& coo);

} // namespace smash::eng

#endif // SMASH_ENGINE_AUTOSELECT_HH
