#include "engine/mutate.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace smash::eng
{

namespace
{

/** Notify @p listener of one structural change, if present. */
void
notify(const StructureListener& listener, Index row, Index col,
       bool inserted)
{
    if (listener)
        listener(row, col, inserted);
}

/** Rebuild @p m from freshly merged triples (validates invariants). */
void
adopt(fmt::CsrMatrix& m, std::vector<fmt::CsrIndex> row_ptr,
      std::vector<fmt::CsrIndex> col_ind, std::vector<Value> values)
{
    m = fmt::CsrMatrix::fromRaw(m.rows(), m.cols(), std::move(row_ptr),
                                std::move(col_ind), std::move(values));
}

} // namespace

MutationStats
applyUpdates(fmt::CsrMatrix& m, const fmt::CooMatrix& deltas,
             const StructureListener& listener)
{
    SMASH_CHECK(deltas.isCanonical(),
                "applyUpdates requires canonical COO deltas");
    SMASH_CHECK(deltas.rows() == m.rows() && deltas.cols() == m.cols(),
                "delta shape ", deltas.rows(), "x", deltas.cols(),
                " does not match matrix ", m.rows(), "x", m.cols());
    MutationStats stats;
    if (deltas.nnz() == 0)
        return stats;

    const std::vector<fmt::CsrIndex>& row_ptr = m.rowPtr();
    const std::vector<fmt::CsrIndex>& col_ind = m.colInd();
    const std::vector<Value>& values = m.values();
    const std::vector<fmt::CooEntry>& ds = deltas.entries();

    std::vector<fmt::CsrIndex> new_ptr(
        static_cast<std::size_t>(m.rows()) + 1, 0);
    std::vector<fmt::CsrIndex> new_col;
    std::vector<Value> new_val;
    new_col.reserve(col_ind.size() + ds.size());
    new_val.reserve(values.size() + ds.size());

    std::size_t d = 0; // cursor into the sorted delta entries
    for (Index r = 0; r < m.rows(); ++r) {
        auto k = static_cast<std::size_t>(
            row_ptr[static_cast<std::size_t>(r)]);
        const auto k_end = static_cast<std::size_t>(
            row_ptr[static_cast<std::size_t>(r) + 1]);
        // Two-pointer merge of the stored row and this row's deltas.
        while (k < k_end || (d < ds.size() && ds[d].row == r)) {
            const bool have_delta = d < ds.size() && ds[d].row == r;
            const Index sc = k < k_end ? Index(col_ind[k])
                                       : Index(-1);
            // Past the first branch have_delta always holds: the
            // loop guard admits !have_delta only with k < k_end,
            // which the first branch then consumes.
            if (k < k_end &&
                (!have_delta || sc < ds[d].col)) {
                new_col.push_back(col_ind[k]);
                new_val.push_back(values[k]);
                ++k;
            } else if (k < k_end && sc == ds[d].col) {
                // Coordinate stored and updated: sum, drop on exact
                // cancellation.
                const Value sum = values[k] + ds[d].value;
                if (sum == Value(0)) {
                    notify(listener, r, Index(col_ind[k]), false);
                    ++stats.removed;
                } else {
                    new_col.push_back(col_ind[k]);
                    new_val.push_back(sum);
                    ++stats.updated;
                }
                ++k;
                ++d;
            } else {
                // Delta names an unstored coordinate: insert (COO
                // canonicalization already dropped zero values).
                new_col.push_back(static_cast<fmt::CsrIndex>(ds[d].col));
                new_val.push_back(ds[d].value);
                notify(listener, r, ds[d].col, true);
                ++stats.inserted;
                ++d;
            }
        }
        new_ptr[static_cast<std::size_t>(r) + 1] =
            static_cast<fmt::CsrIndex>(new_col.size());
    }
    adopt(m, std::move(new_ptr), std::move(new_col), std::move(new_val));
    return stats;
}

MutationStats
replaceRows(fmt::CsrMatrix& m, const std::vector<Index>& rows,
            const fmt::CooMatrix& replacement,
            const StructureListener& listener)
{
    SMASH_CHECK(replacement.isCanonical(),
                "replaceRows requires canonical COO replacement rows");
    SMASH_CHECK(replacement.rows() == m.rows() &&
                    replacement.cols() == m.cols(),
                "replacement shape ", replacement.rows(), "x",
                replacement.cols(), " does not match matrix ",
                m.rows(), "x", m.cols());
    MutationStats stats;
    if (rows.empty()) {
        SMASH_CHECK(replacement.nnz() == 0,
                    "replacement entries but no rows listed");
        return stats;
    }

    std::vector<bool> replaced(static_cast<std::size_t>(m.rows()),
                               false);
    for (Index r : rows) {
        SMASH_CHECK(r >= 0 && r < m.rows(), "replaceRows: row ", r,
                    " out of range for ", m.rows(), " rows");
        replaced[static_cast<std::size_t>(r)] = true;
    }
    for (const fmt::CooEntry& e : replacement.entries())
        SMASH_CHECK(replaced[static_cast<std::size_t>(e.row)],
                    "replacement entry at row ", e.row,
                    " which is not listed for replacement");

    const std::vector<fmt::CsrIndex>& row_ptr = m.rowPtr();
    const std::vector<fmt::CsrIndex>& col_ind = m.colInd();
    const std::vector<Value>& values = m.values();
    const std::vector<fmt::CooEntry>& rs = replacement.entries();

    std::vector<fmt::CsrIndex> new_ptr(
        static_cast<std::size_t>(m.rows()) + 1, 0);
    std::vector<fmt::CsrIndex> new_col;
    std::vector<Value> new_val;
    new_col.reserve(col_ind.size() + rs.size());
    new_val.reserve(values.size() + rs.size());

    std::size_t d = 0; // cursor into the sorted replacement entries
    for (Index r = 0; r < m.rows(); ++r) {
        const auto k0 = static_cast<std::size_t>(
            row_ptr[static_cast<std::size_t>(r)]);
        const auto k1 = static_cast<std::size_t>(
            row_ptr[static_cast<std::size_t>(r) + 1]);
        if (!replaced[static_cast<std::size_t>(r)]) {
            for (std::size_t k = k0; k < k1; ++k) {
                new_col.push_back(col_ind[k]);
                new_val.push_back(values[k]);
            }
        } else {
            // Old content leaves the structure; the replacement row
            // (possibly empty) enters it. Coordinates present on
            // both sides are value updates, not structural churn.
            std::size_t k = k0;
            std::size_t d0 = d;
            while (d < rs.size() && rs[d].row == r)
                ++d;
            std::size_t dn = d0;
            while (k < k1 || dn < d) {
                const Index sc = k < k1 ? Index(col_ind[k]) : Index(-1);
                if (k < k1 && (dn >= d || sc < rs[dn].col)) {
                    notify(listener, r, sc, false);
                    ++stats.removed;
                    ++k;
                } else if (k < k1 && sc == rs[dn].col) {
                    new_col.push_back(col_ind[k]);
                    new_val.push_back(rs[dn].value);
                    ++stats.updated;
                    ++k;
                    ++dn;
                } else {
                    new_col.push_back(
                        static_cast<fmt::CsrIndex>(rs[dn].col));
                    new_val.push_back(rs[dn].value);
                    notify(listener, r, rs[dn].col, true);
                    ++stats.inserted;
                    ++dn;
                }
            }
        }
        new_ptr[static_cast<std::size_t>(r) + 1] =
            static_cast<fmt::CsrIndex>(new_col.size());
    }
    adopt(m, std::move(new_ptr), std::move(new_col), std::move(new_val));
    return stats;
}

MutationStats
scaleValues(fmt::CsrMatrix& m, Value factor)
{
    MutationStats stats;
    if (m.nnz() == 0 || factor == Value(1))
        return stats;
    // Values-only: scale in place — no index copies, no structural
    // re-validation, and minimal time under the caller's slot lock.
    m.scaleValues(factor);
    stats.updated = m.nnz();
    return stats;
}

} // namespace smash::eng
