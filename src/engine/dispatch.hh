/**
 * @file
 * The engine's single entry point for sparse operations:
 *
 *   eng::spmv(A, x, y, exec [, options])   y := y + A x
 *   eng::spmm(A, B, C, exec [, options])   C := C + A B
 *   eng::spadd(A, B, exec [, algo])        returns A + B
 *
 * A is a MatrixRef — any concrete format converts implicitly — and
 * exec is any execution model: NativeExec (serial, full speed),
 * SimExec (serial, cost-accurate; dispatch forwards to exactly the
 * kernel the hand-wired call sites used, so billing is unchanged),
 * or ParallelExec (the multi-threaded drivers below: row-range
 * partitioning for gather formats, per-thread y accumulators merged
 * at the barrier for scatter formats and the SMASH word walk).
 *
 * The capability registry (engine/format.hh) gates every route, so
 * unsupported (format, op) pairs fail with a clear error instead of
 * a template blizzard.
 */

#ifndef SMASH_ENGINE_DISPATCH_HH
#define SMASH_ENGINE_DISPATCH_HH

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/bitops.hh"
#include "common/parallel_exec.hh"
#include "engine/matrix_any.hh"
#include "isa/bmu.hh"
#include "kernels/spadd.hh"
#include "kernels/spgemm.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "kernels/spmv_structured.hh"
#include "kernels/util.hh"
#include "sim/exec_model.hh"

namespace smash::eng
{

/** Kernel variant to run for one format (paper's scheme axis). */
enum class SpmvAlgo
{
    kAuto,     //!< plain kernel; BMU path when a Bmu is supplied
    kPlain,    //!< the format's baseline kernel
    kUnrolled, //!< CSR only: MKL-like unrolled loop (§7.1)
    kIdeal,    //!< CSR only: free-indexing idealism (Fig. 3)
    kHw,       //!< SMASH only: BMU-accelerated scan (§5.1)
};

/** Options of one spmv()/spmm() dispatch. */
struct SpmvOptions
{
    SpmvAlgo algo = SpmvAlgo::kAuto;
    isa::Bmu* bmu = nullptr; //!< required by (and implies) kHw
};

namespace detail
{

/** Resolve kAuto and validate the (format, algo) pair. */
inline SpmvAlgo
resolveAlgo(Format f, const SpmvOptions& opts)
{
    SpmvAlgo algo = opts.algo;
    if (algo == SpmvAlgo::kAuto) {
        algo = (f == Format::kSmash && opts.bmu != nullptr)
            ? SpmvAlgo::kHw
            : SpmvAlgo::kPlain;
    }
    if (algo == SpmvAlgo::kUnrolled || algo == SpmvAlgo::kIdeal) {
        SMASH_CHECK(f == Format::kCsr, "algo ",
                    algo == SpmvAlgo::kUnrolled ? "unrolled" : "ideal",
                    " applies to CSR only, matrix is ", toString(f));
    }
    if (algo == SpmvAlgo::kHw) {
        SMASH_CHECK(f == Format::kSmash,
                    "the BMU path applies to SMASH only, matrix is ",
                    toString(f));
        SMASH_CHECK(opts.bmu != nullptr,
                    "the BMU path needs SpmvOptions::bmu");
    }
    return algo;
}

/**
 * x, zero-extended into @p scratch when shorter than the format's
 * required operand length. Callers that pre-pad (the benches, so
 * simulation bills no copy) pass through untouched.
 */
inline const std::vector<Value>&
paddedX(const MatrixRef& a, const std::vector<Value>& x,
        std::vector<Value>& scratch)
{
    const Index need = a.xLength();
    if (static_cast<Index>(x.size()) >= need)
        return x;
    scratch = kern::padVector(x, need);
    return scratch;
}

/**
 * Boundaries splitting [0, n) into @p chunks ranges balanced by the
 * monotone prefix array @p ptr (row_ptr/colPtr): each range holds
 * roughly the same number of non-zeros, so threads get even work
 * even on power-law matrices.
 */
template <typename PtrVec>
std::vector<Index>
balancedCuts(const PtrVec& ptr, Index n, Index chunks)
{
    using Elem = typename PtrVec::value_type;
    chunks = std::max<Index>(1, std::min(chunks, n));
    std::vector<Index> cuts(static_cast<std::size_t>(chunks) + 1, 0);
    const auto total = static_cast<std::uint64_t>(
        ptr[static_cast<std::size_t>(n)]);
    for (Index c = 1; c < chunks; ++c) {
        const Elem target = static_cast<Elem>(
            total * static_cast<std::uint64_t>(c) /
            static_cast<std::uint64_t>(chunks));
        const auto it = std::upper_bound(
            ptr.begin(), ptr.begin() + static_cast<std::ptrdiff_t>(n),
            target);
        cuts[static_cast<std::size_t>(c)] = std::clamp<Index>(
            static_cast<Index>(it - ptr.begin()) - 1,
            cuts[static_cast<std::size_t>(c) - 1], n);
    }
    cuts[static_cast<std::size_t>(chunks)] = n;
    return cuts;
}

/**
 * Scatter-format helper: partition the item space [0, n) into
 * disjoint ranges and run fn(range_begin, range_end, y_local) for
 * each, accumulating into private y copies merged at the barrier
 * (the merge itself is row-parallel). Contract: every item index in
 * [0, n) reaches fn exactly once; callers may key per-item state
 * (e.g. the SMASH driver's per-range NZA base ranks) off the item
 * index regardless of how ranges are grouped into tasks.
 */
template <typename RangeFn>
void
scatterParallel(exec::ParallelExec& e, Index n, std::vector<Value>& y,
                const RangeFn& fn)
{
    const Index chunks =
        std::max<Index>(1, std::min<Index>(n, e.threads()));
    if (chunks == 1) {
        // One worker: accumulate straight into y (the += kernels
        // preserve its contents), skipping the merge entirely.
        e.parallelFor(0, 1, 1,
                      [&](Index, Index) { fn(0, n, y); });
        return;
    }
    std::vector<std::vector<Value>> locals(
        static_cast<std::size_t>(chunks),
        std::vector<Value>(y.size(), Value(0)));
    const Index grain = (n + chunks - 1) / chunks;
    e.parallelFor(0, chunks, 1, [&](Index cb, Index ce) {
        for (Index c = cb; c < ce; ++c) {
            const Index b = c * grain;
            const Index end = std::min(n, b + grain);
            if (b < end)
                fn(b, end, locals[static_cast<std::size_t>(c)]);
        }
    });
    e.parallelFor(0, static_cast<Index>(y.size()), 1024,
                  [&](Index rb, Index re) {
        for (const std::vector<Value>& local : locals)
            for (Index r = rb; r < re; ++r)
                y[static_cast<std::size_t>(r)] +=
                    local[static_cast<std::size_t>(r)];
    });
}

/** Multi-threaded SpMV drivers, one per format family. */
inline void
parallelSpmv(const MatrixRef& a, const std::vector<Value>& x,
             std::vector<Value>& y, exec::ParallelExec& e)
{
    const Index chunk_goal = static_cast<Index>(e.threads()) * 4;
    switch (a.format()) {
      case Format::kCsr: {
        // nnz-balanced row cuts; disjoint rows write y directly.
        const auto& m = a.as<fmt::CsrMatrix>();
        const std::vector<Index> cuts =
            balancedCuts(m.rowPtr(), m.rows(), chunk_goal);
        e.parallelFor(0, static_cast<Index>(cuts.size()) - 1, 1,
                      [&](Index cb, Index ce) {
            sim::NativeExec ne;
            for (Index c = cb; c < ce; ++c)
                kern::spmvCsrRange(m, x, y,
                                   cuts[static_cast<std::size_t>(c)],
                                   cuts[static_cast<std::size_t>(c) + 1],
                                   ne);
        });
        return;
      }
      case Format::kBcsr: {
        const auto& m = a.as<fmt::BcsrMatrix>();
        const std::vector<Index> cuts =
            balancedCuts(m.blockRowPtr(), m.numBlockRows(), chunk_goal);
        e.parallelFor(0, static_cast<Index>(cuts.size()) - 1, 1,
                      [&](Index cb, Index ce) {
            sim::NativeExec ne;
            for (Index c = cb; c < ce; ++c)
                kern::spmvBcsrRange(
                    m, x, y, cuts[static_cast<std::size_t>(c)],
                    cuts[static_cast<std::size_t>(c) + 1], ne);
        });
        return;
      }
      case Format::kEll: {
        const auto& m = a.as<fmt::EllMatrix>();
        e.parallelFor(0, m.rows(), 64, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvEllRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kDia: {
        const auto& m = a.as<fmt::DiaMatrix>();
        e.parallelFor(0, m.rows(), 64, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvDiaRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kDense: {
        const auto& m = a.as<fmt::DenseMatrix>();
        e.parallelFor(0, m.rows(), 16, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvDenseRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kSmash: {
        // §4.4 word walk over Bitmap-0, word-partitioned. Words can
        // straddle rows, so each worker accumulates into a private y
        // merged at the barrier. The per-range NZA base is the
        // Bitmap-0 rank at the range start; the rank pre-scan runs
        // over the same chunks in parallel. It counts with the
        // bit-clearing loop, not std::popcount: without -mpopcnt
        // the latter is a libcall (~3 ns/word measured), while
        // clearing costs one test per empty word plus one iteration
        // per set bit — cheaper on sparse bitmaps.
        const auto& m = a.as<core::SmashMatrix>();
        const core::Bitmap& level0 = m.hierarchy().level(0);
        const BitWord* wp = level0.words().data();
        const Index words = level0.numWords();
        const Index chunks =
            std::max<Index>(1, std::min<Index>(words, e.threads()));
        const Index grain = (words + chunks - 1) / chunks;
        std::vector<Index> base(static_cast<std::size_t>(chunks) + 1, 0);
        if (chunks > 1)
            e.parallelFor(0, chunks, 1, [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c) {
                const Index wb = c * grain;
                const Index we = std::min(words, wb + grain);
                Index pop = 0;
                for (Index w = wb; w < we; ++w) {
                    BitWord word = wp[w];
                    while (word != 0) {
                        word = clearLowestSet(word);
                        ++pop;
                    }
                }
                base[static_cast<std::size_t>(c) + 1] = pop;
            }
        });
        for (Index c = 0; c < chunks; ++c)
            base[static_cast<std::size_t>(c) + 1] +=
                base[static_cast<std::size_t>(c)];
        scatterParallel(
            e, chunks, y,
            [&](Index cb, Index ce, std::vector<Value>& local) {
                for (Index c = cb; c < ce; ++c) {
                    const Index wb = c * grain;
                    const Index we = std::min(words, wb + grain);
                    kern::spmvSmashSwWords(
                        m, x, local, wb, we,
                        base[static_cast<std::size_t>(c)]);
                }
            });
        return;
      }
      case Format::kCoo: {
        const auto& m = a.as<fmt::CooMatrix>();
        scatterParallel(
            e, m.nnz(), y,
            [&](Index b, Index end, std::vector<Value>& local) {
                sim::NativeExec ne;
                kern::spmvCooRange(m, x, local, b, end, ne);
            });
        return;
      }
      case Format::kCsc: {
        const auto& m = a.as<fmt::CscMatrix>();
        scatterParallel(
            e, m.cols(), y,
            [&](Index b, Index end, std::vector<Value>& local) {
                sim::NativeExec ne;
                kern::spmvCscRange(m, x, local, b, end, ne);
            });
        return;
      }
    }
    SMASH_PANIC("unknown format tag");
}

} // namespace detail

/**
 * y := y + A x through the format-agnostic dispatch layer.
 *
 * x may be given at logical length (cols); the engine pads it to
 * the format's operand length when needed. Under ParallelExec the
 * multi-threaded drivers run; any other execution model reaches
 * exactly the serial kernel the format/algo pair names.
 */
template <typename E>
void
spmv(const MatrixRef& a, const std::vector<Value>& x,
     std::vector<Value>& y, E& e, const SpmvOptions& opts = {})
{
    SMASH_CHECK(capabilities(a.format()).spmv, toString(a.format()),
                " has no SpMV kernel");
    const SpmvAlgo algo = detail::resolveAlgo(a.format(), opts);
    std::vector<Value> scratch;
    const std::vector<Value>& xp = detail::paddedX(a, x, scratch);

    if constexpr (std::is_same_v<std::decay_t<E>, exec::ParallelExec>) {
        // The parallel drivers run the formats' plain native
        // kernels. Explicitly requested serial-only variants are
        // rejected rather than silently downgraded; kAuto resolves
        // to the plain path even when a Bmu is supplied (the BMU is
        // a single serial scan unit).
        SMASH_CHECK(opts.algo == SpmvAlgo::kAuto ||
                        opts.algo == SpmvAlgo::kPlain,
                    "algo variants (unrolled/ideal/hw) are serial-only;"
                    " ParallelExec runs the plain native drivers");
        detail::parallelSpmv(a, xp, y, e);
        return;
    } else {
        switch (a.format()) {
          case Format::kCoo:
            kern::spmvCoo(a.as<fmt::CooMatrix>(), xp, y, e);
            return;
          case Format::kCsr: {
            const auto& m = a.as<fmt::CsrMatrix>();
            if (algo == SpmvAlgo::kUnrolled)
                kern::spmvCsrUnrolled(m, xp, y, e);
            else if (algo == SpmvAlgo::kIdeal)
                kern::spmvCsrIdeal(m, xp, y, e);
            else
                kern::spmvCsr(m, xp, y, e);
            return;
          }
          case Format::kCsc:
            kern::spmvCsc(a.as<fmt::CscMatrix>(), xp, y, e);
            return;
          case Format::kBcsr:
            kern::spmvBcsr(a.as<fmt::BcsrMatrix>(), xp, y, e);
            return;
          case Format::kEll:
            kern::spmvEll(a.as<fmt::EllMatrix>(), xp, y, e);
            return;
          case Format::kDia:
            kern::spmvDia(a.as<fmt::DiaMatrix>(), xp, y, e);
            return;
          case Format::kDense:
            kern::spmvDense(a.as<fmt::DenseMatrix>(), xp, y, e);
            return;
          case Format::kSmash: {
            const auto& m = a.as<core::SmashMatrix>();
            if (algo == SpmvAlgo::kHw)
                kern::spmvSmashHw(m, *opts.bmu, xp, y, e);
            else
                kern::spmvSmashSw(m, xp, y, e);
            return;
          }
        }
        SMASH_PANIC("unknown format tag");
    }
}

/**
 * C := C + A B through the dispatch layer. The B operand's
 * expected encoding follows A's format (the kernels' operand
 * pairing): CSR takes B as CSC; BCSR and SMASH take B-transposed in
 * their own format; dense takes dense.
 */
template <typename E>
void
spmm(const MatrixRef& a, const MatrixRef& b, fmt::DenseMatrix& c, E& e,
     const SpmvOptions& opts = {})
{
    SMASH_CHECK(capabilities(a.format()).spmm, toString(a.format()),
                " has no SpMM kernel");
    const SpmvAlgo algo = detail::resolveAlgo(a.format(), opts);
    switch (a.format()) {
      case Format::kCsr: {
        const auto& bm = b.as<fmt::CscMatrix>();
        if (algo == SpmvAlgo::kIdeal)
            kern::spmmCsrIdeal(a.as<fmt::CsrMatrix>(), bm, c, e);
        else
            kern::spmmCsr(a.as<fmt::CsrMatrix>(), bm, c, e);
        return;
      }
      case Format::kBcsr:
        kern::spmmBcsr(a.as<fmt::BcsrMatrix>(), b.as<fmt::BcsrMatrix>(),
                       c, e);
        return;
      case Format::kDense:
        kern::spmmDense(a.as<fmt::DenseMatrix>(),
                        b.as<fmt::DenseMatrix>(), c, e);
        return;
      case Format::kSmash: {
        const auto& am = a.as<core::SmashMatrix>();
        const auto& bm = b.as<core::SmashMatrix>();
        if (algo == SpmvAlgo::kHw)
            kern::spmmSmashHw(am, bm, *opts.bmu, c, e);
        else
            kern::spmmSmashSw(am, bm, c, e);
        return;
      }
      default:
        SMASH_PANIC("capability table out of sync with spmm dispatch");
    }
}

/**
 * C := A B as sparse output (CSR) through the dispatch layer — the
 * SpGEMM family, where A's format picks the traversal (Gustavson
 * row-merge for CSR, outer-product for CSC, bitmap scan for SMASH)
 * and B is always row-major CSR.
 */
template <typename E>
fmt::CsrMatrix
spgemm(const MatrixRef& a, const fmt::CsrMatrix& b, E& e,
       const SpmvOptions& opts = {})
{
    SMASH_CHECK(capabilities(a.format()).spgemm, toString(a.format()),
                " has no SpGEMM kernel");
    const SpmvAlgo algo = detail::resolveAlgo(a.format(), opts);
    switch (a.format()) {
      case Format::kCsr:
        return kern::spgemmGustavson(a.as<fmt::CsrMatrix>(), b, e);
      case Format::kCsc:
        return kern::spgemmOuter(a.as<fmt::CscMatrix>(), b, e);
      case Format::kSmash: {
        const auto& am = a.as<core::SmashMatrix>();
        if (algo == SpmvAlgo::kHw)
            return kern::spgemmSmashHw(am, *opts.bmu, b, e);
        return kern::spgemmSmashSw(am, b, e);
      }
      default:
        SMASH_PANIC("capability table out of sync with spgemm dispatch");
    }
}

/** Variant selector of spadd(). */
enum class SpaddAlgo
{
    kPlain, //!< the format's baseline kernel
    kIdeal, //!< CSR only: free-indexing idealism (Fig. 3)
};

/**
 * A + B through the dispatch layer. Operands must share a format
 * with SpAdd capability (CSR, SMASH, dense); the result is returned
 * in that format family (CSR addition yields canonical COO, the
 * kernels' native output).
 */
template <typename E>
SparseMatrixAny
spadd(const MatrixRef& a, const MatrixRef& b, E& e,
      SpaddAlgo algo = SpaddAlgo::kPlain)
{
    SMASH_CHECK(a.format() == b.format(),
                "spadd operands must share a format, got ",
                toString(a.format()), " + ", toString(b.format()));
    SMASH_CHECK(capabilities(a.format()).spadd, toString(a.format()),
                " has no SpAdd kernel");
    SMASH_CHECK(algo == SpaddAlgo::kPlain || a.format() == Format::kCsr,
                "the ideal SpAdd variant applies to CSR only");
    switch (a.format()) {
      case Format::kCsr: {
        const auto& am = a.as<fmt::CsrMatrix>();
        const auto& bm = b.as<fmt::CsrMatrix>();
        return SparseMatrixAny(algo == SpaddAlgo::kIdeal
                                   ? kern::spaddCsrIdeal(am, bm, e)
                                   : kern::spaddCsr(am, bm, e));
      }
      case Format::kSmash:
        return SparseMatrixAny(kern::spaddSmash(
            a.as<core::SmashMatrix>(), b.as<core::SmashMatrix>(), e));
      case Format::kDense: {
        fmt::DenseMatrix c(a.rows(), a.cols());
        kern::spaddDense(a.as<fmt::DenseMatrix>(),
                         b.as<fmt::DenseMatrix>(), c, e);
        return SparseMatrixAny(std::move(c));
      }
      default:
        SMASH_PANIC("capability table out of sync with spadd dispatch");
    }
}

} // namespace smash::eng

#endif // SMASH_ENGINE_DISPATCH_HH
