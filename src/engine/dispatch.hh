/**
 * @file
 * The engine's single entry point for sparse operations:
 *
 *   eng::spmv(A, x, y, exec [, options])   y := y + A x
 *   eng::spmm(A, B, C, exec [, options])   C := C + A B
 *   eng::spadd(A, B, exec [, algo])        returns A + B
 *
 * A is a MatrixRef — any concrete format converts implicitly — and
 * exec is any execution model: NativeExec (serial, full speed),
 * SimExec (serial, cost-accurate; dispatch forwards to exactly the
 * kernel the hand-wired call sites used, so billing is unchanged),
 * or ParallelExec (the multi-threaded drivers below: row-range
 * partitioning for gather formats, per-thread y accumulators merged
 * at the barrier for scatter formats and the SMASH word walk).
 *
 * The capability registry (engine/format.hh) gates every route, so
 * unsupported (format, op) pairs fail with a clear error instead of
 * a template blizzard.
 *
 * Steady-state fast path: when the MatrixRef carries a PlanCache
 * (refs from SparseMatrixAny / the serving registry's encodings do;
 * see engine/plan.hh), the parallel drivers fetch their partition —
 * nnz-balanced cuts, the SMASH word walk's base ranks — from the
 * cache instead of recomputing it per call, and all per-call
 * scratch (the padded x operand, scatter accumulators) comes from
 * the calling thread's ScratchArena. A warmed dispatch therefore
 * performs no heap allocation.
 *
 * Ownership/threading contract: dispatch borrows the matrix and
 * operand storage for the duration of one call and keeps no
 * per-call state between calls (the plan cache is the matrix's,
 * the scratch the thread's). Concurrent dispatches over the same
 * (immutable) matrix are safe, including from pipeline worker
 * tasks; the y/C output must be private to each call.
 */

#ifndef SMASH_ENGINE_DISPATCH_HH
#define SMASH_ENGINE_DISPATCH_HH

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <type_traits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/bitops.hh"
#include "common/cpu_features.hh"
#include "common/parallel_exec.hh"
#include "common/scratch_arena.hh"
#include "engine/matrix_any.hh"
#include "engine/plan.hh"
#include "isa/bmu.hh"
#include "kernels/simd/simd_kernels.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "kernels/spadd.hh"
#include "kernels/spgemm.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "kernels/spmv_batch.hh"
#include "kernels/spmv_structured.hh"
#include "kernels/util.hh"
#include "sim/exec_model.hh"

namespace smash::eng
{

/** Kernel variant to run for one format (paper's scheme axis). */
enum class SpmvAlgo
{
    kAuto,     //!< plain kernel; BMU path when a Bmu is supplied
    kPlain,    //!< the format's baseline kernel
    kUnrolled, //!< CSR only: MKL-like unrolled loop (§7.1)
    kIdeal,    //!< CSR only: free-indexing idealism (Fig. 3)
    kHw,       //!< SMASH only: BMU-accelerated scan (§5.1)
};

/** Options of one spmv()/spmm() dispatch. */
struct SpmvOptions
{
    SpmvAlgo algo = SpmvAlgo::kAuto;
    isa::Bmu* bmu = nullptr; //!< required by (and implies) kHw
};

/** Cache-blocked CSR column tiling policy (see parallelSpmv). */
enum class TileMode : int
{
    kAuto = 0,  //!< tile when the x operand overflows L2
    kOff = 1,   //!< never tile
    kForce = 2, //!< tile whenever the matrix is wider than one tile
};

template <typename E>
void spmv(const MatrixRef& a, const std::vector<Value>& x,
          std::vector<Value>& y, E& e, const SpmvOptions& opts = {});

namespace detail
{

/** Data-cache bytes a worker can keep hot — the L2 size when the
 *  host reports one, else a conservative 1 MiB. */
inline std::size_t
l2CacheBytes()
{
    static const std::size_t bytes = [] {
#if defined(_SC_LEVEL2_CACHE_SIZE)
        const long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
        if (v > 0)
            return static_cast<std::size_t>(v);
#endif
        return std::size_t{1} << 20;
    }();
    return bytes;
}

/** SMASH_TILE env → initial TileMode (auto when unset/unparsable). */
inline int
initialTileMode()
{
    const char* s = std::getenv("SMASH_TILE");
    if (s == nullptr)
        return static_cast<int>(TileMode::kAuto);
    if (std::strcmp(s, "off") == 0 || std::strcmp(s, "0") == 0)
        return static_cast<int>(TileMode::kOff);
    if (std::strcmp(s, "force") == 0)
        return static_cast<int>(TileMode::kForce);
    return static_cast<int>(TileMode::kAuto);
}

/** SMASH_TILE_COLS env → tile-width override (0 = derive from L2). */
inline Index
initialTileCols()
{
    const char* s = std::getenv("SMASH_TILE_COLS");
    if (s == nullptr)
        return 0;
    const long v = std::strtol(s, nullptr, 10);
    return v > 0 ? static_cast<Index>(v) : Index(0);
}

inline std::atomic<int>&
tileModeSlot()
{
    static std::atomic<int> slot{initialTileMode()};
    return slot;
}

inline std::atomic<Index>&
tileColsSlot()
{
    static std::atomic<Index> slot{initialTileCols()};
    return slot;
}

} // namespace detail

/** Active column-tiling mode of the parallel CSR SpMV driver. */
inline TileMode
tileMode()
{
    return static_cast<TileMode>(
        detail::tileModeSlot().load(std::memory_order_relaxed));
}

inline void
setTileMode(TileMode mode)
{
    detail::tileModeSlot().store(static_cast<int>(mode),
                                 std::memory_order_relaxed);
}

/** Columns per tile: the SMASH_TILE_COLS / setTileCols override, or
 *  a width whose x slice fills about half the L2. */
inline Index
tileCols()
{
    const Index v =
        detail::tileColsSlot().load(std::memory_order_relaxed);
    if (v > 0)
        return v;
    return std::max<Index>(
        4096, static_cast<Index>(detail::l2CacheBytes() / 2 /
                                 sizeof(Value)));
}

/** Override the tile width (0 restores the L2-derived default). */
inline void
setTileCols(Index cols)
{
    detail::tileColsSlot().store(cols, std::memory_order_relaxed);
}

namespace detail
{

/**
 * One dispatch selection: bump the per-ISA kernel-invocation
 * counter and the per-path counter, and (when tracing) record a
 * kDispatch event carrying (format, active ISA level, path shape).
 * Called once per engine-level dispatch, not per chunk — the cost
 * is three relaxed atomic adds on the hot path.
 */
inline void
noteDispatch(Format f, obs::DispatchPath path)
{
    static obs::Counter* by_isa[3] = {
        &obs::MetricsRegistry::global().counter(
            "smash_kernel_invocations_total{isa=\"scalar\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_kernel_invocations_total{isa=\"avx2\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_kernel_invocations_total{isa=\"avx512\"}"),
    };
    static obs::Counter* by_path[7] = {
        &obs::MetricsRegistry::global().counter(
            "smash_dispatch_total{path=\"serial\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_dispatch_total{path=\"rows\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_dispatch_total{path=\"tiled\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_dispatch_total{path=\"word_walk\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_dispatch_total{path=\"scatter\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_dispatch_total{path=\"batch_rows\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_dispatch_total{path=\"row_col_tiles\"}"),
    };
    const auto isa =
        static_cast<std::size_t>(simd::activeIsaLevel());
    by_isa[isa % 3]->inc();
    by_path[static_cast<std::size_t>(path) % 7]->inc();
    SMASH_TRACE_EVENT(obs::EventKind::kDispatch,
                      static_cast<std::uint32_t>(f),
                      static_cast<std::uint32_t>(isa),
                      static_cast<std::uint32_t>(path));
}

/** Resolve kAuto and validate the (format, algo) pair. */
inline SpmvAlgo
resolveAlgo(Format f, const SpmvOptions& opts)
{
    SpmvAlgo algo = opts.algo;
    if (algo == SpmvAlgo::kAuto) {
        algo = (f == Format::kSmash && opts.bmu != nullptr)
            ? SpmvAlgo::kHw
            : SpmvAlgo::kPlain;
    }
    if (algo == SpmvAlgo::kUnrolled || algo == SpmvAlgo::kIdeal) {
        SMASH_CHECK(f == Format::kCsr, "algo ",
                    algo == SpmvAlgo::kUnrolled ? "unrolled" : "ideal",
                    " applies to CSR only, matrix is ", toString(f));
    }
    if (algo == SpmvAlgo::kHw) {
        SMASH_CHECK(f == Format::kSmash,
                    "the BMU path applies to SMASH only, matrix is ",
                    toString(f));
        SMASH_CHECK(opts.bmu != nullptr,
                    "the BMU path needs SpmvOptions::bmu");
    }
    return algo;
}

/**
 * x, zero-extended into @p scratch when shorter than the format's
 * required operand length. Callers that pre-pad (the benches, so
 * simulation bills no copy) pass through untouched. @p scratch is
 * grown but never shrunk (it is an arena buffer — kernels only
 * read the operand-length prefix).
 */
inline const std::vector<Value>&
paddedX(const MatrixRef& a, const std::vector<Value>& x,
        std::vector<Value>& scratch)
{
    const Index need = a.xLength();
    if (static_cast<Index>(x.size()) >= need)
        return x;
    if (static_cast<Index>(scratch.size()) < need)
        scratch.resize(static_cast<std::size_t>(need));
    std::copy(x.begin(), x.end(), scratch.begin());
    std::fill(scratch.begin() + static_cast<std::ptrdiff_t>(x.size()),
              scratch.begin() + static_cast<std::ptrdiff_t>(need),
              Value(0));
    return scratch;
}

/**
 * Boundaries splitting [0, n) into @p chunks ranges balanced by the
 * monotone prefix array @p ptr (row_ptr/colPtr): each range holds
 * roughly the same number of non-zeros, so threads get even work
 * even on power-law matrices.
 */
template <typename PtrVec>
std::vector<Index>
balancedCuts(const PtrVec& ptr, Index n, Index chunks)
{
    using Elem = typename PtrVec::value_type;
    chunks = std::max<Index>(1, std::min(chunks, n));
    std::vector<Index> cuts(static_cast<std::size_t>(chunks) + 1, 0);
    const auto total = static_cast<std::uint64_t>(
        ptr[static_cast<std::size_t>(n)]);
    for (Index c = 1; c < chunks; ++c) {
        const Elem target = static_cast<Elem>(
            total * static_cast<std::uint64_t>(c) /
            static_cast<std::uint64_t>(chunks));
        const auto it = std::upper_bound(
            ptr.begin(), ptr.begin() + static_cast<std::ptrdiff_t>(n),
            target);
        cuts[static_cast<std::size_t>(c)] = std::clamp<Index>(
            static_cast<Index>(it - ptr.begin()) - 1,
            cuts[static_cast<std::size_t>(c) - 1], n);
    }
    cuts[static_cast<std::size_t>(chunks)] = n;
    return cuts;
}

/**
 * Chunk count the row-partitioned parallel drivers aim for. Four
 * chunks per worker gives the sticky claiming slack to absorb skew
 * while the pool fits the machine; an oversubscribed pool (more
 * workers than hardware threads) gets two per worker — its workers
 * already time-slice shared cores, so extra chunks only multiply
 * claim traffic and cache hand-offs (the cause of the BENCH_5
 * 8-thread CSR regression on small hosts; see docs/performance.md).
 */
inline Index
chunkGoal(exec::ParallelExec& e)
{
    const Index threads = static_cast<Index>(e.threads());
    static const Index hw = static_cast<Index>(
        std::max(1u, std::thread::hardware_concurrency()));
    return threads <= hw ? threads * 4 : threads * 2;
}

/**
 * Fetch-or-build the nnz-balanced cuts of (kind, chunks) through
 * the matrix's plan cache when one is attached (steady-state: no
 * recomputation, no allocation), else build a fresh plan.
 */
template <typename PtrVec>
PlanCache::PlanPtr
cutsPlan(const MatrixRef& a, PlanKind kind, const PtrVec& ptr, Index n,
         Index chunks)
{
    const auto build = [&] {
        PartitionPlan plan;
        plan.cuts = balancedCuts(ptr, n, chunks);
        return plan;
    };
    if (const PlanCache* cache = a.plans())
        return cache->get(kind, chunks, build);
    return std::make_shared<const PartitionPlan>(build());
}

/**
 * Scatter-format helper: partition the item space [0, n) into
 * disjoint ranges and run fn(range_begin, range_end, y_local) for
 * each, accumulating into private y copies merged at the barrier
 * (the merge itself is row-parallel). The private copies live in
 * the calling thread's ScratchArena — workers write them, the
 * parallelFor barrier publishes the writes back to this thread.
 * Contract: every item index in [0, n) reaches fn exactly once;
 * callers may key per-item state (e.g. the SMASH driver's
 * per-range NZA base ranks) off the item index regardless of how
 * ranges are grouped into tasks. fn must not recurse into another
 * scatterParallel on the calling thread (arena slots are keyed by
 * chunk, not by nesting depth).
 */
template <typename RangeFn>
void
scatterParallel(exec::ParallelExec& e, Index n, std::vector<Value>& y,
                const RangeFn& fn)
{
    const Index chunks =
        std::max<Index>(1, std::min<Index>(n, e.threads()));
    if (chunks == 1) {
        // One worker: accumulate straight into y (the += kernels
        // preserve its contents), skipping the merge entirely.
        e.parallelFor(0, 1, 1,
                      [&](Index, Index) { fn(0, n, y); });
        return;
    }
    const std::size_t ysize = y.size();
    exec::ScratchArena& arena = exec::ScratchArena::local();
    std::vector<std::vector<Value>*>& locals =
        arena.pointers(static_cast<std::size_t>(chunks));
    for (Index c = 0; c < chunks; ++c)
        locals[static_cast<std::size_t>(c)] = &arena.values(
            exec::ScratchArena::kScatterBase +
                static_cast<std::size_t>(c),
            ysize);
    const Index grain = (n + chunks - 1) / chunks;
    e.parallelFor(0, chunks, 1, [&](Index cb, Index ce) {
        for (Index c = cb; c < ce; ++c) {
            const Index b = c * grain;
            const Index end = std::min(n, b + grain);
            if (b < end) {
                std::vector<Value>& local =
                    *locals[static_cast<std::size_t>(c)];
                std::fill(
                    local.begin(),
                    local.begin() + static_cast<std::ptrdiff_t>(ysize),
                    Value(0));
                fn(b, end, local);
            }
        }
    });
    e.parallelFor(0, static_cast<Index>(ysize), 1024,
                  [&](Index rb, Index re) {
        for (Index c = 0; c < chunks; ++c) {
            const Index b = c * grain;
            if (b >= n)
                break; // empty tail chunk: never zeroed or written
            const std::vector<Value>& local =
                *locals[static_cast<std::size_t>(c)];
            for (Index r = rb; r < re; ++r)
                y[static_cast<std::size_t>(r)] +=
                    local[static_cast<std::size_t>(r)];
        }
    });
}

/**
 * Word partition of a SMASH Bitmap-0 for the parallel drivers:
 * [0, words) split into per-thread chunks, with the NZA base rank
 * (number of set bits before the chunk) of each. The rank pre-scan
 * runs over the same chunks in parallel. Counting goes through the
 * ISA dispatch table's popcountWords entry: the scalar variant
 * keeps the bit-clearing loop (without -mpopcnt std::popcount is a
 * libcall, ~3 ns/word measured, while clearing costs one test per
 * empty word plus one iteration per set bit — cheaper on sparse
 * bitmaps), and the AVX2+ variant runs hardware popcnt. The result
 * is memoized through the matrix's plan cache when one is attached
 * — the O(words) pre-scan is the dominant per-call setup of the
 * SMASH drivers.
 */
inline PlanCache::PlanPtr
wordWalkPlan(const MatrixRef& a, const core::SmashMatrix& m,
             exec::ParallelExec& e)
{
    const Index threads = static_cast<Index>(e.threads());
    const auto build = [&] {
        PartitionPlan part;
        const core::Bitmap& level0 = m.hierarchy().level(0);
        const BitWord* wp = level0.words().data();
        part.words = level0.numWords();
        const Index chunks =
            std::max<Index>(1, std::min<Index>(part.words, threads));
        part.grain = (part.words + chunks - 1) / chunks;
        part.base.assign(static_cast<std::size_t>(chunks) + 1, 0);
        if (chunks > 1) {
            const simd::KernelTable& kt = simd::kernels();
            e.parallelFor(0, chunks, 1, [&](Index cb, Index ce) {
                for (Index c = cb; c < ce; ++c) {
                    const Index wb = c * part.grain;
                    const Index we =
                        std::min(part.words, wb + part.grain);
                    part.base[static_cast<std::size_t>(c) + 1] =
                        kt.popcountWords(wp + wb, we - wb);
                }
            });
        }
        for (Index c = 0; c < chunks; ++c)
            part.base[static_cast<std::size_t>(c) + 1] +=
                part.base[static_cast<std::size_t>(c)];
        return part;
    };
    if (const PlanCache* cache = a.plans())
        return cache->get(PlanKind::kWordWalk, threads, build);
    return std::make_shared<const PartitionPlan>(build());
}

/** Column-tile count to run a CSR SpMV with (0 or 1 = untiled). */
struct TileChoice
{
    Index tiles = 0;
    Index tile_cols = 0;
};

/**
 * Tiling decision of the parallel CSR driver. Auto mode tiles only
 * when the gathered x operand overflows the L2 (the CSR scaling
 * wall: every worker streams the whole x through its private cache)
 * and the matrix is dense enough that each row crosses a tile
 * boundary with work on both sides — too few non-zeros per (row,
 * tile) segment and the per-tile y reload costs more than the x
 * locality buys. Force mode tiles whenever more than one tile
 * exists (tests and A/B benches).
 */
inline TileChoice
wantTiledCsr(const fmt::CsrMatrix& m)
{
    const TileMode mode = tileMode();
    if (mode == TileMode::kOff)
        return {};
    const Index tc = tileCols();
    if (tc <= 0 || m.cols() <= tc || m.rows() == 0)
        return {};
    Index tiles = static_cast<Index>(ceilDiv(m.cols(), tc));
    if (mode == TileMode::kAuto) {
        if (static_cast<std::size_t>(m.cols()) * sizeof(Value) <=
            l2CacheBytes())
            return {};
        // Keep >= 4 nnz per (row, tile) segment on average.
        const Index max_by_density =
            m.nnz() / std::max<Index>(1, 4 * m.rows());
        tiles = std::min(tiles, std::max<Index>(1, max_by_density));
    }
    if (tiles < 2)
        return {};
    return {tiles, static_cast<Index>(ceilDiv(m.cols(), tiles))};
}

/**
 * The column-tile segment table of (m, tiles): one pass over
 * colInd records where each row crosses each tile boundary (rows
 * are column-sorted), so the tiled driver re-walks nothing and
 * duplicates no data. O(nnz + rows * tiles).
 */
inline PartitionPlan
buildTilePlan(const fmt::CsrMatrix& m, Index tiles, Index tile_cols)
{
    PartitionPlan plan;
    plan.tiles = tiles;
    plan.tile_cols = tile_cols;
    const Index rows = m.rows();
    const auto srows = static_cast<std::size_t>(rows);
    plan.seg.resize((static_cast<std::size_t>(tiles) + 1) * srows);
    const fmt::CsrIndex* row_ptr = m.rowPtr().data();
    const fmt::CsrIndex* cols = m.colInd().data();
    for (Index i = 0; i < rows; ++i) {
        auto si = static_cast<std::size_t>(i);
        fmt::CsrIndex j = row_ptr[si];
        const fmt::CsrIndex end = row_ptr[si + 1];
        plan.seg[si] = j;
        for (Index t = 1; t < tiles; ++t) {
            const auto bound =
                static_cast<fmt::CsrIndex>(t * tile_cols);
            while (j < end && cols[static_cast<std::size_t>(j)] < bound)
                ++j;
            plan.seg[static_cast<std::size_t>(t) * srows + si] = j;
        }
        plan.seg[static_cast<std::size_t>(tiles) * srows + si] = end;
    }
    return plan;
}

/**
 * Cache-blocked parallel CSR SpMV: row chunks in parallel, and
 * within each chunk the column tiles in ascending order, so every
 * tile's x slice stays L2-resident while its rows gather from it.
 * Each row's partial sums accumulate into y in fixed ascending tile
 * order regardless of the thread count or chunk assignment, so the
 * tiled result is bit-identical across pool sizes (though not to
 * the untiled walk, which sums each row in one pass — the tiling
 * decision, not the schedule, picks the summation shape).
 */
inline void
parallelSpmvCsrTiled(const MatrixRef& a, const fmt::CsrMatrix& m,
                     const std::vector<Value>& x, std::vector<Value>& y,
                     exec::ParallelExec& e, const TileChoice& tc)
{
    const auto build = [&] {
        return buildTilePlan(m, tc.tiles, tc.tile_cols);
    };
    const PlanCache::PlanPtr tile_plan =
        a.plans() != nullptr
            ? a.plans()->get(PlanKind::kColTiles, tc.tiles, build)
            : std::make_shared<const PartitionPlan>(build());
    const PlanCache::PlanPtr row_plan = cutsPlan(
        a, PlanKind::kRowCuts, m.rowPtr(), m.rows(), chunkGoal(e));
    const PartitionPlan& tp = *tile_plan;
    const std::vector<Index>& cuts = row_plan->cuts;
    const auto srows = static_cast<std::size_t>(m.rows());
    const simd::KernelTable& kt = simd::kernels();
    e.parallelFor(0, static_cast<Index>(cuts.size()) - 1, 1,
                  [&](Index cb, Index ce) {
        for (Index c = cb; c < ce; ++c) {
            for (Index t = 0; t < tp.tiles; ++t) {
                const std::int32_t* sb =
                    tp.seg.data() + static_cast<std::size_t>(t) * srows;
                kt.csrSpmvTileRange(
                    m, sb, sb + srows, x, y,
                    cuts[static_cast<std::size_t>(c)],
                    cuts[static_cast<std::size_t>(c) + 1]);
            }
        }
    });
}

/** Multi-threaded SpMV drivers, one per format family. */
inline void
parallelSpmv(const MatrixRef& a, const std::vector<Value>& x,
             std::vector<Value>& y, exec::ParallelExec& e)
{
    const Index chunk_goal = chunkGoal(e);
    switch (a.format()) {
      case Format::kCsr: {
        // nnz-balanced row cuts; disjoint rows write y directly.
        const auto& m = a.as<fmt::CsrMatrix>();
        const TileChoice tc = wantTiledCsr(m);
        if (tc.tiles > 1) {
            noteDispatch(Format::kCsr, obs::DispatchPath::kTiled);
            parallelSpmvCsrTiled(a, m, x, y, e, tc);
            return;
        }
        noteDispatch(Format::kCsr, obs::DispatchPath::kRows);
        const PlanCache::PlanPtr plan = cutsPlan(
            a, PlanKind::kRowCuts, m.rowPtr(), m.rows(), chunk_goal);
        const std::vector<Index>& cuts = plan->cuts;
        const simd::KernelTable& kt = simd::kernels();
        e.parallelFor(0, static_cast<Index>(cuts.size()) - 1, 1,
                      [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c)
                kt.csrSpmvRange(m, x, y,
                                cuts[static_cast<std::size_t>(c)],
                                cuts[static_cast<std::size_t>(c) + 1]);
        });
        return;
      }
      case Format::kBcsr: {
        const auto& m = a.as<fmt::BcsrMatrix>();
        noteDispatch(Format::kBcsr, obs::DispatchPath::kRows);
        const PlanCache::PlanPtr plan =
            cutsPlan(a, PlanKind::kRowCuts, m.blockRowPtr(),
                     m.numBlockRows(), chunk_goal);
        const std::vector<Index>& cuts = plan->cuts;
        e.parallelFor(0, static_cast<Index>(cuts.size()) - 1, 1,
                      [&](Index cb, Index ce) {
            sim::NativeExec ne;
            for (Index c = cb; c < ce; ++c)
                kern::spmvBcsrRange(
                    m, x, y, cuts[static_cast<std::size_t>(c)],
                    cuts[static_cast<std::size_t>(c) + 1], ne);
        });
        return;
      }
      case Format::kEll: {
        const auto& m = a.as<fmt::EllMatrix>();
        noteDispatch(Format::kEll, obs::DispatchPath::kRows);
        e.parallelFor(0, m.rows(), 64, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvEllRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kDia: {
        const auto& m = a.as<fmt::DiaMatrix>();
        noteDispatch(Format::kDia, obs::DispatchPath::kRows);
        e.parallelFor(0, m.rows(), 64, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvDiaRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kDense: {
        const auto& m = a.as<fmt::DenseMatrix>();
        noteDispatch(Format::kDense, obs::DispatchPath::kRows);
        e.parallelFor(0, m.rows(), 16, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvDenseRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kSmash: {
        // §4.4 word walk over Bitmap-0, word-partitioned. Words can
        // straddle rows, so each worker accumulates into a private y
        // merged at the barrier; the per-range NZA base comes from
        // the (cached) parallel rank pre-scan.
        const auto& m = a.as<core::SmashMatrix>();
        noteDispatch(Format::kSmash, obs::DispatchPath::kWordWalk);
        const PlanCache::PlanPtr plan = wordWalkPlan(a, m, e);
        const PartitionPlan& part = *plan;
        const simd::KernelTable& kt = simd::kernels();
        scatterParallel(
            e, part.chunks(), y,
            [&](Index cb, Index ce, std::vector<Value>& local) {
                for (Index c = cb; c < ce; ++c) {
                    const Index wb = c * part.grain;
                    const Index we =
                        std::min(part.words, wb + part.grain);
                    kt.smashSpmvWords(
                        m, x, local, wb, we,
                        part.base[static_cast<std::size_t>(c)]);
                }
            });
        return;
      }
      case Format::kCoo: {
        const auto& m = a.as<fmt::CooMatrix>();
        noteDispatch(Format::kCoo, obs::DispatchPath::kScatter);
        scatterParallel(
            e, m.nnz(), y,
            [&](Index b, Index end, std::vector<Value>& local) {
                sim::NativeExec ne;
                kern::spmvCooRange(m, x, local, b, end, ne);
            });
        return;
      }
      case Format::kCsc: {
        const auto& m = a.as<fmt::CscMatrix>();
        noteDispatch(Format::kCsc, obs::DispatchPath::kScatter);
        scatterParallel(
            e, m.cols(), y,
            [&](Index b, Index end, std::vector<Value>& local) {
                sim::NativeExec ne;
                kern::spmvCscRange(m, x, local, b, end, ne);
            });
        return;
      }
    }
    SMASH_PANIC("unknown format tag");
}

/**
 * Per-RHS fallback of the batched SpMV for formats without a
 * single-traversal batch kernel: each column of X/Y round-trips
 * through the single-RHS dispatch (one matrix traversal per RHS —
 * correct, just not amortized).
 */
template <typename E>
void
spmvBatchPerRhs(const MatrixRef& a, const fmt::DenseMatrix& x,
                fmt::DenseMatrix& y, E& e)
{
    const Index nrhs = x.cols();
    exec::ScratchArena& arena = exec::ScratchArena::local();
    std::vector<Value>& xr = arena.values(
        exec::ScratchArena::kBatchXr,
        static_cast<std::size_t>(x.rows()));
    std::vector<Value>& yr = arena.values(
        exec::ScratchArena::kBatchYr,
        static_cast<std::size_t>(y.rows()));
    for (Index r = 0; r < nrhs; ++r) {
        for (Index j = 0; j < x.rows(); ++j)
            xr[static_cast<std::size_t>(j)] = x.at(j, r);
        for (Index i = 0; i < y.rows(); ++i)
            yr[static_cast<std::size_t>(i)] = y.at(i, r);
        spmv(a, xr, yr, e, SpmvOptions{});
        for (Index i = 0; i < y.rows(); ++i)
            y.at(i, r) = yr[static_cast<std::size_t>(i)];
    }
}

/** Multi-threaded batched-SpMV drivers (row ranges over the batch
 *  kernels; SMASH word ranges with per-thread Y accumulators). */
inline void
parallelSpmvBatch(const MatrixRef& a, const fmt::DenseMatrix& x,
                  fmt::DenseMatrix& y, exec::ParallelExec& e)
{
    const Index chunk_goal = chunkGoal(e);
    switch (a.format()) {
      case Format::kCsr: {
        const auto& m = a.as<fmt::CsrMatrix>();
        noteDispatch(Format::kCsr, obs::DispatchPath::kBatchRows);
        const PlanCache::PlanPtr plan = cutsPlan(
            a, PlanKind::kRowCuts, m.rowPtr(), m.rows(), chunk_goal);
        const std::vector<Index>& cuts = plan->cuts;
        const simd::KernelTable& kt = simd::kernels();
        e.parallelFor(0, static_cast<Index>(cuts.size()) - 1, 1,
                      [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c)
                kt.csrSpmvBatchRange(
                    m, x, y, cuts[static_cast<std::size_t>(c)],
                    cuts[static_cast<std::size_t>(c) + 1]);
        });
        return;
      }
      case Format::kEll: {
        const auto& m = a.as<fmt::EllMatrix>();
        noteDispatch(Format::kEll, obs::DispatchPath::kBatchRows);
        e.parallelFor(0, m.rows(), 64, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvBatchEllRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kDia: {
        const auto& m = a.as<fmt::DiaMatrix>();
        noteDispatch(Format::kDia, obs::DispatchPath::kBatchRows);
        e.parallelFor(0, m.rows(), 64, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvBatchDiaRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kDense: {
        const auto& m = a.as<fmt::DenseMatrix>();
        noteDispatch(Format::kDense, obs::DispatchPath::kBatchRows);
        e.parallelFor(0, m.rows(), 16, [&](Index rb, Index re) {
            sim::NativeExec ne;
            kern::spmvBatchDenseRange(m, x, y, rb, re, ne);
        });
        return;
      }
      case Format::kSmash: {
        // Same word partition as the single-RHS driver; the private
        // accumulators are the flat rows x nrhs blocks.
        const auto& m = a.as<core::SmashMatrix>();
        noteDispatch(Format::kSmash, obs::DispatchPath::kWordWalk);
        const PlanCache::PlanPtr plan = wordWalkPlan(a, m, e);
        const PartitionPlan& part = *plan;
        const Index nrhs = y.cols();
        const simd::KernelTable& kt = simd::kernels();
        scatterParallel(
            e, part.chunks(), y.data(),
            [&](Index cb, Index ce, std::vector<Value>& local) {
                for (Index c = cb; c < ce; ++c) {
                    const Index wb = c * part.grain;
                    const Index we =
                        std::min(part.words, wb + part.grain);
                    kt.smashSpmvBatchWords(
                        m, x, local.data(), nrhs, wb, we,
                        part.base[static_cast<std::size_t>(c)]);
                }
            });
        return;
      }
      case Format::kCoo:
      case Format::kCsc:
      case Format::kBcsr:
        spmvBatchPerRhs(a, x, y, e);
        return;
    }
    SMASH_PANIC("unknown format tag");
}

/**
 * Multi-threaded CSR x CSC SpMM: the output is partitioned into
 * nnz-balanced row-range x column-band tiles (rows balanced by A's
 * row populations, bands by B's column populations) and each tile
 * runs the serial merge kernel — tiles write disjoint C regions, so
 * no synchronization is needed and work stealing absorbs skew.
 */
inline void
parallelSpmmCsr(const MatrixRef& aref, const MatrixRef& bref,
                fmt::DenseMatrix& c, exec::ParallelExec& e)
{
    const auto& a = aref.as<fmt::CsrMatrix>();
    const auto& b = bref.as<fmt::CscMatrix>();
    noteDispatch(Format::kCsr, obs::DispatchPath::kRowColTiles);
    // Row cuts from A's cache, column-band cuts from B's: both
    // operands may be long-lived registry encodings.
    const PlanCache::PlanPtr row_plan =
        cutsPlan(aref, PlanKind::kRowCuts, a.rowPtr(), a.rows(),
                 static_cast<Index>(e.threads()) * 2);
    const PlanCache::PlanPtr col_plan =
        cutsPlan(bref, PlanKind::kColCuts, b.colPtr(), b.cols(),
                 std::min<Index>(b.cols(), 2));
    const std::vector<Index>& row_cuts = row_plan->cuts;
    const std::vector<Index>& col_cuts = col_plan->cuts;
    const Index n_rows = static_cast<Index>(row_cuts.size()) - 1;
    const Index n_cols = static_cast<Index>(col_cuts.size()) - 1;
    e.parallelFor(0, n_rows * n_cols, 1, [&](Index tb, Index te) {
        sim::NativeExec ne;
        for (Index t = tb; t < te; ++t) {
            const auto ri = static_cast<std::size_t>(t / n_cols);
            const auto ci = static_cast<std::size_t>(t % n_cols);
            kern::spmmCsrRange(a, b, c, row_cuts[ri], row_cuts[ri + 1],
                               col_cuts[ci], col_cuts[ci + 1], ne);
        }
    });
}

/**
 * Multi-threaded CSR SpAdd: nnz-balanced row ranges merge into
 * per-thread scatter accumulators (private COO matrices), which
 * concatenate in range order — rows are disjoint and ascending, so
 * the result is canonical without a sort.
 */
inline fmt::CooMatrix
parallelSpaddCsr(const MatrixRef& aref, const fmt::CsrMatrix& b,
                 exec::ParallelExec& e)
{
    const auto& a = aref.as<fmt::CsrMatrix>();
    const PlanCache::PlanPtr plan = cutsPlan(
        aref, PlanKind::kSpaddCuts, a.rowPtr(), a.rows(),
        std::max<Index>(1, static_cast<Index>(e.threads())));
    const std::vector<Index>& cuts = plan->cuts;
    const auto n_ranges = static_cast<Index>(cuts.size()) - 1;
    std::vector<fmt::CooMatrix> locals(
        static_cast<std::size_t>(n_ranges));
    e.parallelFor(0, n_ranges, 1, [&](Index cb, Index ce) {
        sim::NativeExec ne;
        for (Index c = cb; c < ce; ++c)
            locals[static_cast<std::size_t>(c)] = kern::spaddCsrRange(
                a, b, cuts[static_cast<std::size_t>(c)],
                cuts[static_cast<std::size_t>(c) + 1], ne);
    });
    fmt::CooMatrix out(a.rows(), a.cols());
    for (const fmt::CooMatrix& local : locals)
        for (const fmt::CooEntry& entry : local.entries())
            out.add(entry.row, entry.col, entry.value);
    return out;
}

} // namespace detail

/**
 * y := y + A x through the format-agnostic dispatch layer.
 *
 * x may be given at logical length (cols); the engine pads it to
 * the format's operand length when needed. Under ParallelExec the
 * multi-threaded drivers run; any other execution model reaches
 * exactly the serial kernel the format/algo pair names.
 */
template <typename E>
void
spmv(const MatrixRef& a, const std::vector<Value>& x,
     std::vector<Value>& y, E& e, const SpmvOptions& opts)
{
    SMASH_CHECK(capabilities(a.format()).spmv, toString(a.format()),
                " has no SpMV kernel");
    const SpmvAlgo algo = detail::resolveAlgo(a.format(), opts);
    // Pad through the calling thread's arena: the buffer persists
    // across calls, so a warmed steady-state pad allocates nothing.
    std::vector<Value>& scratch = exec::ScratchArena::local().values(
        exec::ScratchArena::kPaddedX, 0);
    const std::vector<Value>& xp = detail::paddedX(a, x, scratch);

    if constexpr (std::is_same_v<std::decay_t<E>, exec::ParallelExec>) {
        // The parallel drivers run the formats' plain native
        // kernels. Explicitly requested serial-only variants are
        // rejected rather than silently downgraded; kAuto resolves
        // to the plain path even when a Bmu is supplied (the BMU is
        // a single serial scan unit).
        SMASH_CHECK(opts.algo == SpmvAlgo::kAuto ||
                        opts.algo == SpmvAlgo::kPlain,
                    "algo variants (unrolled/ideal/hw) are serial-only;"
                    " ParallelExec runs the plain native drivers");
        detail::parallelSpmv(a, xp, y, e);
        return;
    } else {
        if constexpr (!E::kSimulated)
            detail::noteDispatch(a.format(), obs::DispatchPath::kSerial);
        switch (a.format()) {
          case Format::kCoo:
            kern::spmvCoo(a.as<fmt::CooMatrix>(), xp, y, e);
            return;
          case Format::kCsr: {
            const auto& m = a.as<fmt::CsrMatrix>();
            if (algo == SpmvAlgo::kUnrolled) {
                kern::spmvCsrUnrolled(m, xp, y, e);
            } else if (algo == SpmvAlgo::kIdeal) {
                kern::spmvCsrIdeal(m, xp, y, e);
            } else if constexpr (!E::kSimulated) {
                // Native plain path: the ISA dispatch table (same
                // kernel the parallel driver runs per chunk, so
                // serial and parallel CSR results stay
                // bit-identical).
                simd::kernels().csrSpmvRange(m, xp, y, 0, m.rows());
            } else {
                kern::spmvCsr(m, xp, y, e);
            }
            return;
          }
          case Format::kCsc:
            kern::spmvCsc(a.as<fmt::CscMatrix>(), xp, y, e);
            return;
          case Format::kBcsr:
            kern::spmvBcsr(a.as<fmt::BcsrMatrix>(), xp, y, e);
            return;
          case Format::kEll:
            kern::spmvEll(a.as<fmt::EllMatrix>(), xp, y, e);
            return;
          case Format::kDia:
            kern::spmvDia(a.as<fmt::DiaMatrix>(), xp, y, e);
            return;
          case Format::kDense:
            kern::spmvDense(a.as<fmt::DenseMatrix>(), xp, y, e);
            return;
          case Format::kSmash: {
            const auto& m = a.as<core::SmashMatrix>();
            if (algo == SpmvAlgo::kHw) {
                kern::spmvSmashHw(m, *opts.bmu, xp, y, e);
            } else if constexpr (!E::kSimulated) {
                // Native software walk: the ISA dispatch table's
                // BMI2/popcnt word walk over the whole Bitmap-0.
                simd::kernels().smashSpmvWords(
                    m, xp, y, 0, m.hierarchy().level(0).numWords(),
                    0);
            } else {
                kern::spmvSmashSw(m, xp, y, e);
            }
            return;
          }
        }
        SMASH_PANIC("unknown format tag");
    }
}

/**
 * Batched SpMV through the dispatch layer: Y := Y + A X for a block
 * of right-hand sides, one per column of X (xLength rows — callers
 * pad, see MatrixRef::xLength()) and Y (A.rows() rows). Formats
 * with batchSpmv capability traverse the matrix once for the whole
 * block (the serving-throughput path); the rest fall back to one
 * single-RHS dispatch per column. Under ParallelExec the row-range
 * (or SMASH word-range) batch drivers run.
 */
template <typename E>
void
spmvBatch(const MatrixRef& a, const fmt::DenseMatrix& x,
          fmt::DenseMatrix& y, E& e)
{
    SMASH_CHECK(capabilities(a.format()).spmv, toString(a.format()),
                " has no SpMV kernel");
    SMASH_CHECK(x.rows() >= a.xLength(), "X block has ", x.rows(),
                " rows, the ", toString(a.format()),
                " operand needs ", a.xLength());
    SMASH_CHECK(y.rows() >= a.rows(), "Y block too short");
    SMASH_CHECK(x.cols() == y.cols(), "X carries ", x.cols(),
                " right-hand sides, Y carries ", y.cols());
    if (x.cols() == 0)
        return;

    if constexpr (std::is_same_v<std::decay_t<E>, exec::ParallelExec>) {
        detail::parallelSpmvBatch(a, x, y, e);
        return;
    } else {
        if constexpr (!E::kSimulated)
            detail::noteDispatch(a.format(), obs::DispatchPath::kSerial);
        switch (a.format()) {
          case Format::kCsr:
            if constexpr (!E::kSimulated)
                simd::kernels().csrSpmvBatchRange(
                    a.as<fmt::CsrMatrix>(), x, y, 0, a.rows());
            else
                kern::spmvBatchCsrRange(a.as<fmt::CsrMatrix>(), x, y,
                                        0, a.rows(), e);
            return;
          case Format::kEll:
            kern::spmvBatchEllRange(a.as<fmt::EllMatrix>(), x, y, 0,
                                    a.rows(), e);
            return;
          case Format::kDia:
            kern::spmvBatchDiaRange(a.as<fmt::DiaMatrix>(), x, y, 0,
                                    a.rows(), e);
            return;
          case Format::kDense:
            kern::spmvBatchDenseRange(a.as<fmt::DenseMatrix>(), x, y, 0,
                                      a.rows(), e);
            return;
          case Format::kSmash:
            if constexpr (!E::kSimulated) {
                const auto& m = a.as<core::SmashMatrix>();
                simd::kernels().smashSpmvBatchWords(
                    m, x, y.data().data(), y.cols(), 0,
                    m.hierarchy().level(0).numWords(), 0);
            } else {
                kern::spmvBatchSmash(a.as<core::SmashMatrix>(), x, y,
                                     e);
            }
            return;
          case Format::kCoo:
          case Format::kCsc:
          case Format::kBcsr:
            // No single-traversal batch kernel (capability table
            // batchSpmv = false): per-RHS fallback.
            detail::spmvBatchPerRhs(a, x, y, e);
            return;
        }
        SMASH_PANIC("unknown format tag");
    }
}

/**
 * Batched SpMM entry: C := C + A B for a *dense* multi-RHS operand
 * B (one logical SpMV per column — the serving layer's SpMM
 * request). Lowered onto the single-traversal batch kernels (and,
 * under ParallelExec, the row-range/word-range batch drivers);
 * because the per-column arithmetic is independent and ordered, the
 * result of each column is bit-identical whether B is computed
 * alone or concatenated into a wider block. B at logical height
 * (A.cols()) is padded to the format's operand length here.
 */
template <typename E>
void
spmmBatch(const MatrixRef& a, const fmt::DenseMatrix& b,
          fmt::DenseMatrix& c, E& e)
{
    if (b.rows() >= a.xLength()) {
        spmvBatch(a, b, c, e);
        return;
    }
    fmt::DenseMatrix padded(a.xLength(), b.cols());
    for (Index j = 0; j < b.rows(); ++j)
        for (Index r = 0; r < b.cols(); ++r)
            padded.at(j, r) = b.at(j, r);
    spmvBatch(a, padded, c, e);
}

/**
 * C := C + A B through the dispatch layer. The B operand's
 * expected encoding follows A's format (the kernels' operand
 * pairing): CSR takes B as CSC; BCSR and SMASH take B-transposed in
 * their own format; dense takes dense.
 */
template <typename E>
void
spmm(const MatrixRef& a, const MatrixRef& b, fmt::DenseMatrix& c, E& e,
     const SpmvOptions& opts = {})
{
    SMASH_CHECK(capabilities(a.format()).spmm, toString(a.format()),
                " has no SpMM kernel");
    const SpmvAlgo algo = detail::resolveAlgo(a.format(), opts);
    if constexpr (std::is_same_v<std::decay_t<E>, exec::ParallelExec>) {
        // The ROADMAP's parallel SpMM driver: row-range x
        // column-band output tiles for the CSR merge kernel. Other
        // formats (and the serial-only algo variants) run their
        // serial kernels on the calling thread — ParallelExec's
        // hooks are no-ops, so results are identical.
        if (a.format() == Format::kCsr && algo == SpmvAlgo::kPlain) {
            detail::parallelSpmmCsr(a, b, c, e);
            return;
        }
    }
    switch (a.format()) {
      case Format::kCsr: {
        const auto& bm = b.as<fmt::CscMatrix>();
        if (algo == SpmvAlgo::kIdeal)
            kern::spmmCsrIdeal(a.as<fmt::CsrMatrix>(), bm, c, e);
        else
            kern::spmmCsr(a.as<fmt::CsrMatrix>(), bm, c, e);
        return;
      }
      case Format::kBcsr:
        kern::spmmBcsr(a.as<fmt::BcsrMatrix>(), b.as<fmt::BcsrMatrix>(),
                       c, e);
        return;
      case Format::kDense:
        kern::spmmDense(a.as<fmt::DenseMatrix>(),
                        b.as<fmt::DenseMatrix>(), c, e);
        return;
      case Format::kSmash: {
        const auto& am = a.as<core::SmashMatrix>();
        const auto& bm = b.as<core::SmashMatrix>();
        if (algo == SpmvAlgo::kHw)
            kern::spmmSmashHw(am, bm, *opts.bmu, c, e);
        else
            kern::spmmSmashSw(am, bm, c, e);
        return;
      }
      default:
        SMASH_PANIC("capability table out of sync with spmm dispatch");
    }
}

/**
 * C := A B as sparse output (CSR) through the dispatch layer — the
 * SpGEMM family, where A's format picks the traversal (Gustavson
 * row-merge for CSR, outer-product for CSC, bitmap scan for SMASH)
 * and B is always row-major CSR.
 */
template <typename E>
fmt::CsrMatrix
spgemm(const MatrixRef& a, const fmt::CsrMatrix& b, E& e,
       const SpmvOptions& opts = {})
{
    SMASH_CHECK(capabilities(a.format()).spgemm, toString(a.format()),
                " has no SpGEMM kernel");
    const SpmvAlgo algo = detail::resolveAlgo(a.format(), opts);
    switch (a.format()) {
      case Format::kCsr:
        return kern::spgemmGustavson(a.as<fmt::CsrMatrix>(), b, e);
      case Format::kCsc:
        return kern::spgemmOuter(a.as<fmt::CscMatrix>(), b, e);
      case Format::kSmash: {
        const auto& am = a.as<core::SmashMatrix>();
        if (algo == SpmvAlgo::kHw)
            return kern::spgemmSmashHw(am, *opts.bmu, b, e);
        return kern::spgemmSmashSw(am, b, e);
      }
      default:
        SMASH_PANIC("capability table out of sync with spgemm dispatch");
    }
}

/** Variant selector of spadd(). */
enum class SpaddAlgo
{
    kPlain, //!< the format's baseline kernel
    kIdeal, //!< CSR only: free-indexing idealism (Fig. 3)
};

/**
 * A + B through the dispatch layer. Operands must share a format
 * with SpAdd capability (CSR, SMASH, dense); the result is returned
 * in that format family (CSR addition yields canonical COO, the
 * kernels' native output).
 */
template <typename E>
SparseMatrixAny
spadd(const MatrixRef& a, const MatrixRef& b, E& e,
      SpaddAlgo algo = SpaddAlgo::kPlain)
{
    SMASH_CHECK(a.format() == b.format(),
                "spadd operands must share a format, got ",
                toString(a.format()), " + ", toString(b.format()));
    SMASH_CHECK(capabilities(a.format()).spadd, toString(a.format()),
                " has no SpAdd kernel");
    SMASH_CHECK(algo == SpaddAlgo::kPlain || a.format() == Format::kCsr,
                "the ideal SpAdd variant applies to CSR only");
    if constexpr (std::is_same_v<std::decay_t<E>, exec::ParallelExec>) {
        // Parallel SpAdd drivers: CSR merges nnz-balanced row
        // ranges into per-thread accumulators; dense adds
        // element-parallel. SMASH (a serial bitmap-union walk) and
        // the ideal variant fall through to the serial kernels.
        if (a.format() == Format::kCsr && algo == SpaddAlgo::kPlain) {
            return SparseMatrixAny(detail::parallelSpaddCsr(
                a, b.as<fmt::CsrMatrix>(), e));
        }
        if (a.format() == Format::kDense) {
            const auto& am = a.as<fmt::DenseMatrix>();
            const auto& bm = b.as<fmt::DenseMatrix>();
            SMASH_CHECK(am.rows() == bm.rows() && am.cols() == bm.cols(),
                        "operand shapes differ");
            fmt::DenseMatrix c(am.rows(), am.cols());
            const auto n = static_cast<Index>(c.data().size());
            e.parallelFor(0, n, 4096, [&](Index eb, Index ee) {
                for (Index i = eb; i < ee; ++i) {
                    auto si = static_cast<std::size_t>(i);
                    c.data()[si] = am.data()[si] + bm.data()[si];
                }
            });
            return SparseMatrixAny(std::move(c));
        }
    }
    switch (a.format()) {
      case Format::kCsr: {
        const auto& am = a.as<fmt::CsrMatrix>();
        const auto& bm = b.as<fmt::CsrMatrix>();
        return SparseMatrixAny(algo == SpaddAlgo::kIdeal
                                   ? kern::spaddCsrIdeal(am, bm, e)
                                   : kern::spaddCsr(am, bm, e));
      }
      case Format::kSmash:
        return SparseMatrixAny(kern::spaddSmash(
            a.as<core::SmashMatrix>(), b.as<core::SmashMatrix>(), e));
      case Format::kDense: {
        fmt::DenseMatrix c(a.rows(), a.cols());
        kern::spaddDense(a.as<fmt::DenseMatrix>(),
                         b.as<fmt::DenseMatrix>(), c, e);
        return SparseMatrixAny(std::move(c));
      }
      default:
        SMASH_PANIC("capability table out of sync with spadd dispatch");
    }
}

/**
 * Batched SpAdd entry: A + B_i for each operand in @p bs (the
 * serving layer's flushed SpAdd queue). Every merge runs through
 * spadd() — one traversal of A per operand; results come back in
 * operand order.
 */
template <typename E>
std::vector<SparseMatrixAny>
spaddBatch(const MatrixRef& a, const std::vector<MatrixRef>& bs, E& e,
           SpaddAlgo algo = SpaddAlgo::kPlain)
{
    std::vector<SparseMatrixAny> out;
    out.reserve(bs.size());
    for (const MatrixRef& b : bs)
        out.push_back(spadd(a, b, e, algo));
    return out;
}

} // namespace smash::eng

#endif // SMASH_ENGINE_DISPATCH_HH
