#include "engine/profile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace smash::eng
{

StructureTracker::StructureTracker(const fmt::CsrMatrix& m, Index block)
    : rows_(m.rows()), cols_(m.cols()), block_(block)
{
    SMASH_CHECK(block_ >= 1, "block must be positive");
    blocks_per_row_ = std::max<Index>(1, (cols_ + block_ - 1) / block_);
    row_pop_.assign(static_cast<std::size_t>(rows_), 0);
    for (Index r = 0; r < rows_; ++r) {
        const auto k0 = static_cast<std::size_t>(
            m.rowPtr()[static_cast<std::size_t>(r)]);
        const auto k1 = static_cast<std::size_t>(
            m.rowPtr()[static_cast<std::size_t>(r) + 1]);
        for (std::size_t k = k0; k < k1; ++k)
            onStructureChange(r, Index(m.colInd()[k]), true);
    }
    changed_ = 0; // the initial scan is the baseline, not drift
}

void
StructureTracker::onStructureChange(Index row, Index col, bool inserted)
{
    const Index diag = col - row;
    const auto blk = static_cast<std::uint64_t>(
        row * blocks_per_row_ + col / block_);
    if (inserted) {
        ++nnz_;
        ++row_pop_[static_cast<std::size_t>(row)];
        ++diag_pop_[diag];
        ++block_pop_[blk];
    } else {
        --nnz_;
        --row_pop_[static_cast<std::size_t>(row)];
        auto d = diag_pop_.find(diag);
        SMASH_CHECK(d != diag_pop_.end(),
                    "tracker removal of an unknown diagonal");
        if (--d->second == 0)
            diag_pop_.erase(d);
        auto b = block_pop_.find(blk);
        SMASH_CHECK(b != block_pop_.end(),
                    "tracker removal of an unknown block");
        if (--b->second == 0)
            block_pop_.erase(b);
    }
    ++changed_;
}

StructureStats
StructureTracker::stats() const
{
    // Mirrors analyzeStructure() definition-for-definition; the two
    // must agree so the drift detector re-decides on the same
    // boundaries the registration decision used.
    StructureStats s;
    s.rows = rows_;
    s.cols = cols_;
    s.nnz = nnz_;
    s.localityBlock = block_;
    if (rows_ == 0 || cols_ == 0 || nnz_ == 0)
        return s;

    s.density = static_cast<double>(nnz_) /
        (static_cast<double>(rows_) * static_cast<double>(cols_));
    s.avgNnzPerRow = static_cast<double>(nnz_) /
        static_cast<double>(rows_);

    double var = 0;
    for (Index pop : row_pop_) {
        const double d = static_cast<double>(pop) - s.avgNnzPerRow;
        var += d * d;
        s.maxNnzPerRow = std::max(s.maxNnzPerRow, pop);
    }
    var /= static_cast<double>(rows_);
    s.rowCv = s.avgNnzPerRow > 0
        ? std::sqrt(var) / s.avgNnzPerRow
        : 0.0;

    s.numDiagonals = static_cast<Index>(diag_pop_.size());
    Index diag_capacity = 0;
    for (const auto& [off, pop] : diag_pop_) {
        (void)pop;
        const Index len = off >= 0 ? std::min(rows_, cols_ - off)
                                   : std::min(cols_, rows_ + off);
        diag_capacity += std::max<Index>(len, 0);
    }
    s.diagonalFill = diag_capacity > 0
        ? static_cast<double>(nnz_) / static_cast<double>(diag_capacity)
        : 0.0;

    s.blockLocality = static_cast<double>(nnz_) /
        (static_cast<double>(block_pop_.size()) *
         static_cast<double>(block_));
    return s;
}

} // namespace smash::eng
