/**
 * @file
 * Cached execution plans for the parallel dispatch drivers.
 *
 * Every parallel SpMV/SpMM/SpAdd dispatch needs a partition of the
 * matrix: nnz-balanced row (or block-row / column) cuts for the
 * gather formats, and the Bitmap-0 word partition with its NZA base
 * ranks for the SMASH word walk. Computing these is O(log nnz) per
 * cut at best and O(words) for the SMASH rank pre-scan — setup cost
 * paid on *every* call, exactly the overhead the paper's fig20
 * analysis warns dominates short-running kernels. A PartitionPlan
 * captures one such partition; a PlanCache memoizes them per
 * (kind, chunk count) so the steady-state request path reuses the
 * plan computed on the first call.
 *
 * Plans depend only on the matrix *structure* (the prefix arrays /
 * bitmap population), never on values, so they survive value-only
 * mutations. SparseMatrixAny owns one cache per instance and
 * invalidates it on structural mutation; the serving registry's
 * epoch swaps produce fresh SparseMatrixAny objects (and therefore
 * fresh, empty caches), so a re-encoded matrix can never serve a
 * stale plan.
 *
 * Ownership/threading contract: PlanCache is internally
 * synchronized — concurrent get() calls are safe and a cache hit
 * performs no heap allocation. get() returns shared_ptr snapshots:
 * a reader holds whatever plan it fetched for the duration of its
 * dispatch even if invalidate() drops the cache entry concurrently.
 * Racing cold get()s may build the same plan twice; the first
 * insert wins and the duplicate is discarded (plans for one key are
 * deterministic, so either copy is correct).
 */

#ifndef SMASH_ENGINE_PLAN_HH
#define SMASH_ENGINE_PLAN_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace smash::eng
{

/** One reusable partition of a matrix for a parallel driver. */
struct PartitionPlan
{
    /** Range cuts, size chunks + 1 (rows, block rows, or columns
     *  depending on the PlanKind). Empty for word-walk plans. */
    std::vector<Index> cuts;

    // --- SMASH word-walk fields (PlanKind::kWordWalk only). ---
    Index words = 0; //!< Bitmap-0 word count
    Index grain = 0; //!< words per chunk
    /** Bitmap-0 rank (NZA base) before each chunk, size chunks+1. */
    std::vector<Index> base;

    // --- Column-tile fields (PlanKind::kColTiles only). ---
    Index tiles = 0;     //!< column tiles (T)
    Index tile_cols = 0; //!< columns per tile
    /**
     * Per-(tile, row) segment starts into the CSR arrays, laid out
     * tile-major: seg[t * rows + i] is the offset of row i's first
     * entry with column >= t * tile_cols, and seg[tiles * rows + i]
     * is row_ptr[i + 1]. Row i's tile-t segment is therefore
     * [seg[t * rows + i], seg[(t + 1) * rows + i]) over the
     * *original* colInd/values arrays — no data is duplicated, the
     * plan just remembers where each row crosses each tile boundary.
     * Same element type as fmt::CsrIndex.
     */
    std::vector<std::int32_t> seg;

    /** Number of chunks this plan partitions into. */
    Index
    chunks() const
    {
        if (tiles > 0)
            return tiles;
        const std::vector<Index>& v = cuts.empty() ? base : cuts;
        return static_cast<Index>(v.size()) - 1;
    }
};

/** Partition families one cache distinguishes (together with the
 *  chunk count, the lookup key). */
enum class PlanKind : int
{
    kRowCuts,  //!< nnz-balanced row / block-row cuts (SpMV, SpMM A)
    kColCuts,  //!< nnz-balanced column cuts (SpMM B bands)
    kSpaddCuts, //!< row cuts of the parallel SpAdd merge
    kWordWalk, //!< SMASH Bitmap-0 word partition + base ranks
    kColTiles, //!< cache-blocked CSR column-tile segment table
};

/** Memoized PartitionPlans, keyed by (kind, chunk count). */
class PlanCache
{
  public:
    using PlanPtr = std::shared_ptr<const PartitionPlan>;

    PlanCache() = default;
    PlanCache(const PlanCache&) = delete;
    PlanCache& operator=(const PlanCache&) = delete;

    /**
     * The plan for (kind, chunks), building it with @p build on the
     * first request. @p build runs with no cache lock held (it may
     * itself fan out over a thread pool); a racing duplicate build
     * is discarded in favour of the first insert.
     */
    template <typename Build>
    PlanPtr
    get(PlanKind kind, Index chunks, const Build& build) const
    {
        const std::pair<int, Index> key(static_cast<int>(kind),
                                        chunks);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = plans_.find(key);
            if (it != plans_.end()) {
                ++hits_;
                noteLookup(kind, /*hit=*/true);
                return it->second;
            }
        }
        noteLookup(kind, /*hit=*/false);
        auto built = std::make_shared<const PartitionPlan>(build());
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = plans_.emplace(key, std::move(built));
        if (inserted)
            ++builds_;
        else
            ++hits_;
        return it->second;
    }

    /** Drop every cached plan (structural mutation). In-flight
     *  readers keep the shared_ptr they already fetched. */
    void
    invalidate()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        plans_.clear();
    }

    /** Plans built so far (cold calls; includes discarded racing
     *  duplicates' winners only). */
    std::uint64_t
    builds() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return builds_;
    }

    /** Lookups served from the cache so far. */
    std::uint64_t
    hits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hits_;
    }

    /** Plans currently cached. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return plans_.size();
    }

  private:
    /** Process-global hit/miss accounting + trace (the per-cache
     *  hits()/builds() counters stay per-instance). */
    static void
    noteLookup(PlanKind kind, bool hit)
    {
        static obs::Counter& hit_total =
            obs::MetricsRegistry::global().counter(
                "smash_plan_cache_lookups_total{result=\"hit\"}");
        static obs::Counter& miss_total =
            obs::MetricsRegistry::global().counter(
                "smash_plan_cache_lookups_total{result=\"miss\"}");
        (hit ? hit_total : miss_total).inc();
        if (hit)
            SMASH_TRACE_EVENT(obs::EventKind::kPlanCacheHit,
                              static_cast<std::uint32_t>(kind));
        else
            SMASH_TRACE_EVENT(obs::EventKind::kPlanCacheMiss,
                              static_cast<std::uint32_t>(kind));
    }

    mutable std::mutex mutex_;
    mutable std::map<std::pair<int, Index>, PlanPtr> plans_;
    mutable std::uint64_t builds_ = 0;
    mutable std::uint64_t hits_ = 0;
};

} // namespace smash::eng

#endif // SMASH_ENGINE_PLAN_HH
