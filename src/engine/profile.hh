/**
 * @file
 * Incremental structure profiling for mutable (served) matrices.
 *
 * analyzeStructure() (engine/autoselect.hh) prices a full O(nnz)
 * scan — fine at registration, wasteful after every small update.
 * StructureTracker keeps the aggregates that scan produces — the
 * nnz-per-row distribution, occupied-diagonal populations, and the
 * §7.2.3 NZA-block occupancy — and maintains them in O(1) per
 * structural change, so the drift detector can re-evaluate the
 * format decision in O(rows + diagonals + blocks) without touching
 * the matrix itself. stats() returns exactly the StructureStats an
 * analyzeStructure() call on the current content would (same
 * definitions, same block size).
 *
 * Ownership/threading contract: plain value type, no internal
 * locking — the owner (serve::MatrixRegistry's per-matrix slot)
 * guards it with the slot mutex. onStructureChange() matches the
 * eng::StructureListener signature so mutation calls can feed it
 * directly.
 */

#ifndef SMASH_ENGINE_PROFILE_HH
#define SMASH_ENGINE_PROFILE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/autoselect.hh"
#include "formats/csr_matrix.hh"

namespace smash::eng
{

/** Incrementally maintained structural profile of one matrix. */
class StructureTracker
{
  public:
    StructureTracker() = default;

    /** Profile @p m in one pass. @p block is the NZA block size of
     *  the locality measure (8 matches analyzeStructure's default). */
    explicit StructureTracker(const fmt::CsrMatrix& m, Index block = 8);

    /** Apply one structural change (StructureListener signature). */
    void onStructureChange(Index row, Index col, bool inserted);

    /** Aggregate snapshot; O(rows + diagonals + blocks). */
    StructureStats stats() const;

    Index nnz() const { return nnz_; }
    Index block() const { return block_; }

    /** Structural changes accumulated since the last rebase(). */
    Index changedSinceRebase() const { return changed_; }

    /** Mark the current structure as the new drift baseline. */
    void rebase() { changed_ = 0; }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    Index nnz_ = 0;
    Index block_ = 8;
    Index blocks_per_row_ = 1;
    Index changed_ = 0;
    std::vector<Index> row_pop_;
    std::unordered_map<Index, Index> diag_pop_;
    std::unordered_map<std::uint64_t, Index> block_pop_;
};

} // namespace smash::eng

#endif // SMASH_ENGINE_PROFILE_HH
