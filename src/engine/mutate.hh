/**
 * @file
 * In-place mutation of a canonical CSR master copy — the engine's
 * update path for long-lived (served) matrices.
 *
 * Served matrices drift: embeddings get refreshed, graph edges
 * appear and disappear, rows are republished wholesale. These
 * functions apply such updates to the CSR "master" representation
 * that owns the matrix content, reporting every structural change
 * (a coordinate gaining or losing a stored entry) to an optional
 * listener so an incremental StructureTracker can follow the drift
 * without rescanning the matrix (see engine/profile.hh).
 *
 * Ownership/threading contract: the functions mutate @p m on the
 * calling thread and are not internally synchronized — callers
 * (serve::MatrixRegistry) serialize mutations per matrix. Each call
 * costs one O(nnz + deltas) merge pass; the result is again a valid
 * canonical CSR matrix (sorted columns, no duplicates, no stored
 * exact zeros except via scaleValues(0)).
 */

#ifndef SMASH_ENGINE_MUTATE_HH
#define SMASH_ENGINE_MUTATE_HH

#include <functional>
#include <vector>

#include "formats/coo_matrix.hh"
#include "formats/csr_matrix.hh"

namespace smash::eng
{

/** What one mutation did to the stored structure and values. */
struct MutationStats
{
    Index inserted = 0; //!< coordinates that gained a stored entry
    Index removed = 0;  //!< entries that cancelled or were dropped
    Index updated = 0;  //!< existing entries whose value changed

    /** Changes that alter the sparsity structure (not just values). */
    Index
    structural() const
    {
        return inserted + removed;
    }
};

/**
 * Observer of structural changes: called as (row, col, inserted)
 * for every coordinate that gains (inserted = true) or loses
 * (inserted = false) a stored entry. Value-only updates are not
 * reported — they cannot move a format boundary.
 */
using StructureListener = std::function<void(Index, Index, bool)>;

/**
 * A(r, c) += v for every delta entry (the COO-delta update of the
 * serving layer). New coordinates are inserted; entries whose sum
 * cancels to exactly zero are removed from the structure. @p deltas
 * must be canonical and share the matrix shape.
 */
MutationStats applyUpdates(fmt::CsrMatrix& m,
                           const fmt::CooMatrix& deltas,
                           const StructureListener& listener = nullptr);

/**
 * Replace the full content of every row in @p rows with the entries
 * @p replacement carries for it (a row listed with no replacement
 * entries becomes empty). Every @p replacement entry must name a
 * listed row; @p replacement must be canonical and share the shape.
 */
MutationStats replaceRows(fmt::CsrMatrix& m,
                          const std::vector<Index>& rows,
                          const fmt::CooMatrix& replacement,
                          const StructureListener& listener = nullptr);

/**
 * Multiply every stored value by @p factor. The structure is
 * preserved — scaling by zero leaves explicit zeros rather than
 * ejecting entries (fromRaw() semantics), so no structural changes
 * are ever reported.
 */
MutationStats scaleValues(fmt::CsrMatrix& m, Value factor);

} // namespace smash::eng

#endif // SMASH_ENGINE_MUTATE_HH
