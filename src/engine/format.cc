#include "engine/format.hh"

#include <array>

#include "common/logging.hh"

namespace smash::eng
{

namespace
{

constexpr std::array<FormatCaps, kNumFormats> kCapsTable = {{
    // name     spmv   spmm   spadd  spgemm parallel scatterY
    {"coo",     true,  false, false, false, true,    true},
    {"csr",     true,  true,  true,  true,  true,    false},
    {"csc",     true,  false, false, true,  true,    true},
    {"bcsr",    true,  true,  false, false, true,    false},
    {"ell",     true,  false, false, false, true,    false},
    {"dia",     true,  false, false, false, true,    false},
    {"dense",   true,  true,  true,  false, true,    false},
    {"smash",   true,  true,  true,  true,  true,    true},
}};

} // namespace

const char*
toString(Format f)
{
    return capabilities(f).name;
}

const FormatCaps&
capabilities(Format f)
{
    const auto i = static_cast<std::size_t>(f);
    SMASH_CHECK(i < kCapsTable.size(), "unknown format tag ", i);
    return kCapsTable[i];
}

} // namespace smash::eng
