#include "engine/format.hh"

#include <array>

#include "common/logging.hh"

namespace smash::eng
{

namespace
{

constexpr std::array<FormatCaps, kNumFormats> kCapsTable = {{
    // name     spmv   spmm   spadd  spgemm parallel scatterY batch
    {"coo",     true,  false, false, false, true,    true,    false},
    {"csr",     true,  true,  true,  true,  true,    false,   true},
    {"csc",     true,  false, false, true,  true,    true,    false},
    {"bcsr",    true,  true,  false, false, true,    false,   false},
    {"ell",     true,  false, false, false, true,    false,   true},
    {"dia",     true,  false, false, false, true,    false,   true},
    {"dense",   true,  true,  true,  false, true,    false,   true},
    {"smash",   true,  true,  true,  true,  true,    true,    true},
}};

} // namespace

const char*
toString(Format f)
{
    return capabilities(f).name;
}

const FormatCaps&
capabilities(Format f)
{
    const auto i = static_cast<std::size_t>(f);
    SMASH_CHECK(i < kCapsTable.size(), "unknown format tag ", i);
    return kCapsTable[i];
}

} // namespace smash::eng
