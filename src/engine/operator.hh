/**
 * @file
 * Adapter from the dispatch layer to the solvers' operator functor
 * protocol: the iterative and Krylov solvers are templated on an
 * apply(x, y) computing y := A x (y pre-zeroed), and makeOperator()
 * produces exactly that from any engine matrix. Padding of x to the
 * format's operand length happens inside the dispatch, so solver
 * code stays format-blind.
 *
 * Ownership/threading contract: the functor borrows both the
 * matrix view and the execution model — they must outlive it (a
 * solver run). Concurrent applications are safe when the
 * underlying execution model's dispatch is.
 */

#ifndef SMASH_ENGINE_OPERATOR_HH
#define SMASH_ENGINE_OPERATOR_HH

#include <vector>

#include "engine/dispatch.hh"

namespace smash::eng
{

/** SpMV operator functor over one engine matrix. */
template <typename E>
class SpmvOperator
{
  public:
    SpmvOperator(MatrixRef a, E& e, SpmvOptions opts = {})
        : a_(a), e_(&e), opts_(opts)
    {}

    /** y := y + A x (solvers pre-zero y, giving y := A x). */
    void
    operator()(const std::vector<Value>& x, std::vector<Value>& y) const
    {
        spmv(a_, x, y, *e_, opts_);
    }

  private:
    MatrixRef a_;
    E* e_;
    SpmvOptions opts_;
};

/** Deduce the execution model; usage:
 *  auto op = eng::makeOperator(matrix, exec); solve::cg(op, ...) */
template <typename E>
SpmvOperator<E>
makeOperator(MatrixRef a, E& e, SpmvOptions opts = {})
{
    return SpmvOperator<E>(a, e, opts);
}

} // namespace smash::eng

#endif // SMASH_ENGINE_OPERATOR_HH
