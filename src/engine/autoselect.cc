#include "engine/autoselect.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"

namespace smash::eng
{

StructureStats
analyzeStructure(const fmt::CooMatrix& coo, Index block)
{
    SMASH_CHECK(block >= 1, "block must be positive");
    StructureStats s;
    s.rows = coo.rows();
    s.cols = coo.cols();
    s.nnz = coo.nnz();
    s.localityBlock = block;
    if (s.rows == 0 || s.cols == 0 || s.nnz == 0)
        return s;

    std::vector<Index> row_pop(static_cast<std::size_t>(s.rows), 0);
    // Diagonal id -> population; block id -> touched (row-aligned
    // column segments of `block` elements, the NZA grid).
    std::unordered_map<Index, Index> diag_pop;
    std::unordered_set<std::uint64_t> blocks;
    const Index blocks_per_row =
        (s.cols + block - 1) / block;
    for (const fmt::CooEntry& entry : coo.entries()) {
        ++row_pop[static_cast<std::size_t>(entry.row)];
        ++diag_pop[entry.col - entry.row];
        blocks.insert(
            static_cast<std::uint64_t>(entry.row * blocks_per_row +
                                       entry.col / block));
    }

    s.density = static_cast<double>(s.nnz) /
        (static_cast<double>(s.rows) * static_cast<double>(s.cols));
    s.avgNnzPerRow = static_cast<double>(s.nnz) /
        static_cast<double>(s.rows);

    double var = 0;
    for (Index pop : row_pop) {
        const double d = static_cast<double>(pop) - s.avgNnzPerRow;
        var += d * d;
        s.maxNnzPerRow = std::max(s.maxNnzPerRow, pop);
    }
    var /= static_cast<double>(s.rows);
    s.rowCv = s.avgNnzPerRow > 0
        ? std::sqrt(var) / s.avgNnzPerRow
        : 0.0;

    s.numDiagonals = static_cast<Index>(diag_pop.size());
    Index diag_capacity = 0;
    for (const auto& [off, pop] : diag_pop) {
        (void)pop;
        const Index len = off >= 0 ? std::min(s.rows, s.cols - off)
                                   : std::min(s.cols, s.rows + off);
        diag_capacity += std::max<Index>(len, 0);
    }
    s.diagonalFill = diag_capacity > 0
        ? static_cast<double>(s.nnz) / static_cast<double>(diag_capacity)
        : 0.0;

    s.blockLocality = static_cast<double>(s.nnz) /
        (static_cast<double>(blocks.size()) * static_cast<double>(block));
    return s;
}

Format
chooseFormat(const StructureStats& s, const FormatBoundaries& b)
{
    if (s.nnz == 0)
        return Format::kCsr;
    if (s.density >= b.denseDensity)
        return Format::kDense;
    // Banded: the stored-diagonal capacity is close to the nnz and
    // there are few enough diagonals that DIA's padding stays small.
    const auto dia_cap = static_cast<Index>(
        static_cast<double>(std::max(b.diaMaxDiagonals, s.rows / 32)) *
        b.diaCapScale);
    if (s.numDiagonals > 0 && s.numDiagonals <= dia_cap &&
        s.diagonalFill >= b.diaFill) {
        return Format::kDia;
    }
    // Clustered: each fetched NZA block is at least half useful —
    // the regime where the paper's hierarchy wins (§7.2.3).
    if (s.blockLocality >= b.smashLocality)
        return Format::kSmash;
    // Uniform rows: fixed-width slabs waste little padding.
    if (s.rowCv <= b.ellRowCv &&
        s.maxNnzPerRow <=
            static_cast<Index>(b.ellMaxOverAvg * s.avgNnzPerRow + 1)) {
        return Format::kEll;
    }
    return Format::kCsr;
}

Format
chooseFormat(const StructureStats& s)
{
    return chooseFormat(s, FormatBoundaries());
}

Format
chooseFormatSticky(const StructureStats& s, Format current,
                   double margin)
{
    SMASH_CHECK(margin >= 0, "hysteresis margin must be non-negative");
    // Bias every boundary against movement: the current format's
    // thresholds loosen by the margin (easy to stay), every other
    // format's tighten (hard to enter). CSR, the fallback, has no
    // boundary of its own — tightening the others is what keeps a
    // CSR matrix CSR inside the band.
    FormatBoundaries b;
    const double toward = -margin; // loosen: keep the current format
    const double away = margin;    // tighten: block marginal entry
    b.denseDensity += current == Format::kDense ? toward : away;
    b.diaFill += current == Format::kDia ? toward : away;
    b.smashLocality += current == Format::kSmash ? toward : away;
    // ELL's boundaries are upper bounds (row CV, max/avg cap) and
    // DIA's diagonal count is a cap too, so their bias is
    // multiplicative and the signs flip: staying raises the cap,
    // entering from elsewhere lowers it.
    const double keep = 1.0 + margin;
    const double block = 1.0 - margin;
    b.ellRowCv *= current == Format::kEll ? keep : block;
    b.ellMaxOverAvg *= current == Format::kEll ? keep : block;
    // Scale the whole diagonal cap, not just the constant floor:
    // on large matrices the rows/32 half dominates, and an
    // unscaled cap would leave that boundary hysteresis-free.
    b.diaCapScale = current == Format::kDia ? keep : block;
    return chooseFormat(s, b);
}

Format
chooseFormat(const fmt::CooMatrix& coo)
{
    return chooseFormat(analyzeStructure(coo));
}

SparseMatrixAny
encodeAuto(const fmt::CooMatrix& coo,
           const SparseMatrixAny::BuildOptions& opts)
{
    return SparseMatrixAny::fromCoo(coo, chooseFormat(coo), opts);
}

SparseMatrixAny
encodeAuto(const fmt::CooMatrix& coo)
{
    return encodeAuto(coo, SparseMatrixAny::BuildOptions());
}

} // namespace smash::eng
