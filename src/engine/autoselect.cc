#include "engine/autoselect.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"

namespace smash::eng
{

StructureStats
analyzeStructure(const fmt::CooMatrix& coo, Index block)
{
    SMASH_CHECK(block >= 1, "block must be positive");
    StructureStats s;
    s.rows = coo.rows();
    s.cols = coo.cols();
    s.nnz = coo.nnz();
    s.localityBlock = block;
    if (s.rows == 0 || s.cols == 0 || s.nnz == 0)
        return s;

    std::vector<Index> row_pop(static_cast<std::size_t>(s.rows), 0);
    // Diagonal id -> population; block id -> touched (row-aligned
    // column segments of `block` elements, the NZA grid).
    std::unordered_map<Index, Index> diag_pop;
    std::unordered_set<std::uint64_t> blocks;
    const Index blocks_per_row =
        (s.cols + block - 1) / block;
    for (const fmt::CooEntry& entry : coo.entries()) {
        ++row_pop[static_cast<std::size_t>(entry.row)];
        ++diag_pop[entry.col - entry.row];
        blocks.insert(
            static_cast<std::uint64_t>(entry.row * blocks_per_row +
                                       entry.col / block));
    }

    s.density = static_cast<double>(s.nnz) /
        (static_cast<double>(s.rows) * static_cast<double>(s.cols));
    s.avgNnzPerRow = static_cast<double>(s.nnz) /
        static_cast<double>(s.rows);

    double var = 0;
    for (Index pop : row_pop) {
        const double d = static_cast<double>(pop) - s.avgNnzPerRow;
        var += d * d;
        s.maxNnzPerRow = std::max(s.maxNnzPerRow, pop);
    }
    var /= static_cast<double>(s.rows);
    s.rowCv = s.avgNnzPerRow > 0
        ? std::sqrt(var) / s.avgNnzPerRow
        : 0.0;

    s.numDiagonals = static_cast<Index>(diag_pop.size());
    Index diag_capacity = 0;
    for (const auto& [off, pop] : diag_pop) {
        (void)pop;
        const Index len = off >= 0 ? std::min(s.rows, s.cols - off)
                                   : std::min(s.cols, s.rows + off);
        diag_capacity += std::max<Index>(len, 0);
    }
    s.diagonalFill = diag_capacity > 0
        ? static_cast<double>(s.nnz) / static_cast<double>(diag_capacity)
        : 0.0;

    s.blockLocality = static_cast<double>(s.nnz) /
        (static_cast<double>(blocks.size()) * static_cast<double>(block));
    return s;
}

Format
chooseFormat(const StructureStats& s)
{
    if (s.nnz == 0)
        return Format::kCsr;
    if (s.density >= 0.4)
        return Format::kDense;
    // Banded: the stored-diagonal capacity is close to the nnz and
    // there are few enough diagonals that DIA's padding stays small.
    if (s.numDiagonals > 0 &&
        s.numDiagonals <= std::max<Index>(16, s.rows / 32) &&
        s.diagonalFill >= 0.5) {
        return Format::kDia;
    }
    // Clustered: each fetched NZA block is at least half useful —
    // the regime where the paper's hierarchy wins (§7.2.3).
    if (s.blockLocality >= 0.5)
        return Format::kSmash;
    // Uniform rows: fixed-width slabs waste little padding.
    if (s.rowCv <= 0.25 &&
        s.maxNnzPerRow <= static_cast<Index>(2.0 * s.avgNnzPerRow + 1)) {
        return Format::kEll;
    }
    return Format::kCsr;
}

Format
chooseFormat(const fmt::CooMatrix& coo)
{
    return chooseFormat(analyzeStructure(coo));
}

SparseMatrixAny
encodeAuto(const fmt::CooMatrix& coo,
           const SparseMatrixAny::BuildOptions& opts)
{
    return SparseMatrixAny::fromCoo(coo, chooseFormat(coo), opts);
}

SparseMatrixAny
encodeAuto(const fmt::CooMatrix& coo)
{
    return encodeAuto(coo, SparseMatrixAny::BuildOptions());
}

} // namespace smash::eng
