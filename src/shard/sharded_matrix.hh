/**
 * @file sharded_matrix.hh
 * ShardedMatrix: one logical matrix row-partitioned into K
 * independent sub-matrices.
 *
 * Each shard owns a full per-matrix stack of its own — a CSR master
 * slice (rows re-indexed to the shard, columns global), an
 * incremental StructureTracker, a §7.2.3 format decision with
 * chooseFormatSticky hysteresis, an encoded SparseMatrixAny (whose
 * embedded PlanCache is therefore per-shard), an epoch counter, and
 * a CPU subset derived from the NUMA topology probe
 * (common/numa_topology.hh). A drifting matrix whose bands diverge
 * structurally — dense diagonals in one row band, scattered bits in
 * another — re-selects and re-encodes *per band* instead of
 * whole-matrix.
 *
 * Partitioning is nnz-balanced: cut points are chosen on the CSR
 * row-pointer prefix sums so every shard carries ~nnz/K entries
 * (each shard still gets at least one row). Because every row lands
 * in exactly one shard and every format computes a row's dot
 * product in ascending column order, scatter–gather SpMV over the
 * shards is bit-identical to the unsharded execution — regardless
 * of K, of the per-shard format choices, or of the thread count.
 *
 * NUMA placement: shard k maps to node (k mod nodes) and its CPU
 * subset; the shard's arrays are built (first-touched) on a thread
 * pinned to that subset. On a 1-node host the subsets degrade to a
 * round-robin split of the flat CPU list and placement is a no-op
 * by construction. Compute-time locality is approximate: the
 * scatter runs one pool chunk per shard, and the pool's sticky
 * chunk claiming + node-major worker pinning keep shard k on the
 * same worker (hence node) across requests.
 *
 * Threading: all entry points are thread-safe. Each shard has its
 * own mutex guarding its master/tracker/encoding; compute paths
 * grab the encoding shared_ptr and run unlocked (readers finish on
 * the epoch they hold while a re-encode swaps underneath, exactly
 * like serve::MatrixRegistry). Mutations lock only the shards their
 * deltas touch. Whole-matrix consistency (a mutation racing a
 * concat snapshot) is the caller's affair — serve::MatrixRegistry
 * serializes those on its slot lock.
 */

#ifndef SMASH_SHARD_SHARDED_MATRIX_HH
#define SMASH_SHARD_SHARDED_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/matrix_any.hh"
#include "engine/mutate.hh"
#include "engine/profile.hh"
#include "formats/coo_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::exec
{
class ThreadPool;
}

namespace smash::shard
{

/** Per-shard drift re-selection gate (mirrors serve::ReselectPolicy;
 *  duplicated here so shard/ does not depend on serve/). */
struct DriftPolicy
{
    bool enabled = true;
    double minChangedFraction = 0.05;
    Index minChanged = 16;
    double margin = 0.1;
};

/** Snapshot of one shard (stats, tests, tooling). */
struct ShardInfo
{
    Index rowBegin = 0;   //!< global first row (inclusive)
    Index rowEnd = 0;     //!< global last row (exclusive)
    Index nnz = 0;
    eng::Format chosen = eng::Format::kCsr;
    int node = 0;              //!< NUMA node the shard maps to
    std::vector<int> cpus;     //!< CPU subset used for first-touch
    std::uint64_t epoch = 0;   //!< bumped by every mutation landing here
    std::size_t conversions = 0;
    std::size_t reselects = 0;
    bool reencodePending = false;
};

/** Aggregated result of a mutation routed across shards. */
struct ShardMutationOutcome
{
    eng::MutationStats stats;       //!< summed over touched shards
    bool reencodeScheduled = false; //!< >= 1 shard crossed a boundary
    /** First newly-scheduled shard's target (kCsr when none). */
    eng::Format target = eng::Format::kCsr;
};

class ShardedMatrix
{
  public:
    using BuildOptions = eng::SparseMatrixAny::BuildOptions;
    using EncodingPtr = std::shared_ptr<const eng::SparseMatrixAny>;

    /**
     * Partition @p master into @p shards nnz-balanced row bands
     * (clamped to [1, rows]) and build each band's master slice,
     * profile, format choice, and initial encoding on a thread
     * pinned to the band's NUMA CPU subset (first-touch). @p name
     * labels the per-shard metrics.
     */
    ShardedMatrix(std::string name, const fmt::CsrMatrix& master,
                  Index shards, const BuildOptions& build = {});

    ShardedMatrix(const ShardedMatrix&) = delete;
    ShardedMatrix& operator=(const ShardedMatrix&) = delete;

    const std::string& name() const { return name_; }
    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const;
    Index shardCount() const
    {
        return static_cast<Index>(shards_.size());
    }

    /** Which shard owns global row @p row. */
    Index shardOfRow(Index row) const;

    ShardInfo shardInfo(Index shard) const;
    /** Every shard's current format, in shard order. */
    std::vector<eng::Format> shardFormats() const;
    /** Shard 0's format (the registry's "primary" for info()). */
    eng::Format primaryFormat() const;
    /** Shard @p shard's incremental §7.2.3 profile. */
    eng::StructureStats profile(Index shard) const;

    std::uint64_t epoch() const;      //!< summed shard epochs
    std::size_t conversions() const;  //!< summed over shards
    std::size_t reselects() const;    //!< summed over shards
    bool reencodePending() const;     //!< any shard pending

    /** Build any missing shard encoding (first touch converts). */
    void ensureEncoded();
    /** True when every shard's encoding is built. */
    bool allEncoded() const;

    /**
     * y += A x, scatter–gather over the shards: each shard computes
     * its row band into a local slice (first-touched by the worker
     * that computes it) which is then copied into the caller's y.
     * With a pool the shards fan out as one chunk each; without one
     * they run serially. Bit-identical to the unsharded engine call
     * for any K and thread count. @p y must hold rows() zeros (the
     * engine convention: callers own the accumulator).
     */
    void spmv(const std::vector<Value>& x, std::vector<Value>& y,
              exec::ThreadPool* pool) const;

    /**
     * Y += A X for a block of right-hand sides (one per column).
     * @p x needs only the logical height cols(); each shard pads to
     * its own format granularity internally. Serves both the
     * batched-SpMV and the dense-operand SpMM request paths.
     */
    void spmvBatch(const fmt::DenseMatrix& x, fmt::DenseMatrix& y,
                   exec::ThreadPool* pool) const;

    /**
     * this + @p other as canonical COO, computed per shard (each
     * shard merges its row band against the matching band of
     * @p other) and concatenated in row order — bit-identical to
     * the unsharded kern::spaddCsr merge. Shapes must match.
     */
    fmt::CooMatrix spadd(const fmt::CsrMatrix& other,
                         exec::ThreadPool* pool) const;

    /**
     * The whole-matrix CSR master, concatenated from the shard
     * slices. Row partitioning preserves entry order, so this is
     * bit-identical to the CSR the matrix was constructed from (as
     * mutated since). Used when a sharded matrix is the secondary
     * operand of an op that needs a monolithic view.
     */
    fmt::CsrMatrix toCsr() const;

    /**
     * Mutation API: deltas are routed to the shard that owns each
     * row; only touched shards lock, bump their epoch, drop their
     * encoding, and run the per-shard drift detector against
     * @p policy. The caller schedules runPendingReencodes() when
     * the outcome says a re-encode was crossed (the registry fires
     * its async hook).
     */
    ShardMutationOutcome applyUpdates(const fmt::CooMatrix& deltas,
                                      const DriftPolicy& policy);
    ShardMutationOutcome replaceRows(const std::vector<Index>& rows,
                                     const fmt::CooMatrix& replacement,
                                     const DriftPolicy& policy);
    ShardMutationOutcome scaleValues(Value factor);

    /**
     * Execute every pending per-shard re-encode: snapshot the shard
     * master, build the target encoding outside the lock, swap it
     * in if no mutation intervened (epoch check + retries, like the
     * registry's whole-matrix path). Returns the number of shards
     * swapped.
     */
    int runPendingReencodes();

  private:
    struct Shard
    {
        Index rowBegin = 0;
        Index rowEnd = 0;
        int node = 0;
        std::vector<int> cpus;
        fmt::CsrMatrix master; //!< local rows [0, rowEnd-rowBegin)
        eng::StructureTracker profile;
        eng::Format chosen = eng::Format::kCsr;
        eng::Format pendingTarget = eng::Format::kCsr;
        EncodingPtr encoding; //!< null after a mutation invalidates
        std::uint64_t epoch = 0;
        std::size_t conversions = 0;
        std::size_t reselects = 0;
        bool reencodePending = false;
        mutable std::mutex mutex;
    };

    /** Find-or-build the shard's encoding; its mutex must be held. */
    EncodingPtr encodedLocked(Shard& sh) const;
    /** Grab (building if needed) the shard's current encoding. */
    EncodingPtr grabEncoding(Index shard) const;
    /** Shared mutation tail for one shard (mutex held): epoch bump,
     *  encoding drop, drift detection. */
    void finishShardMutation(Index shard, Shard& sh,
                             const eng::MutationStats& stats,
                             const DriftPolicy& policy,
                             ShardMutationOutcome& out);
    /** Run @p body for each shard index: one pool chunk per shard
     *  when @p pool is non-null, serially otherwise. */
    template <typename F>
    void forEachShard(exec::ThreadPool* pool, const F& body) const;
    void setFormatGauge(Index shard, eng::Format format) const;

    std::string name_;
    Index rows_ = 0;
    Index cols_ = 0;
    BuildOptions build_;
    std::vector<Index> cuts_; //!< K+1 row boundaries, cuts_[0] = 0
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace smash::shard

#endif // SMASH_SHARD_SHARDED_MATRIX_HH
