#include "shard/sharded_matrix.hh"

#include <algorithm>
#include <functional>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/numa_topology.hh"
#include "common/thread_pool.hh"
#include "engine/autoselect.hh"
#include "engine/dispatch.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace smash::shard
{

namespace
{

/**
 * Run @p fn on a fresh thread whose affinity is set (best-effort)
 * to @p cpus first, so every page @p fn faults in is first-touched
 * on those CPUs' node. A restricted cpuset may reject the mask; the
 * build then runs wherever the scheduler puts it — placement is an
 * optimization, never a correctness requirement.
 */
void
runFirstTouch(const std::vector<int>& cpus,
              const std::function<void()>& fn)
{
    std::thread th([&] {
#if defined(__linux__)
        cpu_set_t set;
        CPU_ZERO(&set);
        bool any = false;
        for (int c : cpus) {
            if (c >= 0 && c < CPU_SETSIZE) {
                CPU_SET(c, &set);
                any = true;
            }
        }
        if (any)
            pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#endif
        fn();
    });
    th.join();
}

/** The CSR slice for global rows [rb, re): rows re-indexed from 0,
 *  columns kept global (the shard computes against the full x). */
fmt::CsrMatrix
sliceCsr(const fmt::CsrMatrix& m, Index rb, Index re)
{
    const auto& rp = m.rowPtr();
    const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(rb)]);
    const auto hi = static_cast<std::size_t>(rp[static_cast<std::size_t>(re)]);
    std::vector<fmt::CsrIndex> rowPtr(static_cast<std::size_t>(re - rb) + 1);
    for (Index r = 0; r <= re - rb; ++r)
        rowPtr[static_cast<std::size_t>(r)] =
            rp[static_cast<std::size_t>(rb + r)] -
            rp[static_cast<std::size_t>(rb)];
    std::vector<fmt::CsrIndex> colInd(m.colInd().begin() + lo,
                                      m.colInd().begin() + hi);
    std::vector<Value> values(m.values().begin() + lo,
                              m.values().begin() + hi);
    return fmt::CsrMatrix::fromRaw(re - rb, m.cols(), std::move(rowPtr),
                                   std::move(colInd),
                                   std::move(values));
}

void
accumulate(eng::MutationStats& into, const eng::MutationStats& st)
{
    into.inserted += st.inserted;
    into.removed += st.removed;
    into.updated += st.updated;
}

obs::Counter&
shardReencodeCounter(Index shard)
{
    return obs::MetricsRegistry::global().counter(
        "smash_shard_reencodes_total{shard=\"" +
        std::to_string(shard) + "\"}");
}

} // namespace

ShardedMatrix::ShardedMatrix(std::string name,
                             const fmt::CsrMatrix& master,
                             Index shards, const BuildOptions& build)
    : name_(std::move(name)),
      rows_(master.rows()),
      cols_(master.cols()),
      build_(build)
{
    SMASH_CHECK(rows_ > 0 && cols_ > 0,
                "cannot shard an empty matrix");
    const Index k =
        std::max<Index>(1, std::min<Index>(shards, rows_));

    // nnz-balanced cuts on the row-pointer prefix sums: cut i lands
    // where the running nnz crosses i/K of the total, nudged so
    // every shard keeps at least one row.
    const auto& rp = master.rowPtr();
    const auto total = static_cast<std::int64_t>(master.nnz());
    cuts_.assign(static_cast<std::size_t>(k) + 1, 0);
    cuts_[static_cast<std::size_t>(k)] = rows_;
    for (Index i = 1; i < k; ++i) {
        const auto target = static_cast<fmt::CsrIndex>(
            total * i / k);
        auto it = std::lower_bound(rp.begin(), rp.end(), target);
        Index cut = static_cast<Index>(it - rp.begin());
        cut = std::max(cut, cuts_[static_cast<std::size_t>(i) - 1] + 1);
        cut = std::min(cut, rows_ - (k - i));
        cuts_[static_cast<std::size_t>(i)] = cut;
    }

    const sys::NumaTopology& topo = sys::NumaTopology::probe();
    shards_.reserve(static_cast<std::size_t>(k));
    for (Index i = 0; i < k; ++i) {
        auto sh = std::make_unique<Shard>();
        sh->rowBegin = cuts_[static_cast<std::size_t>(i)];
        sh->rowEnd = cuts_[static_cast<std::size_t>(i) + 1];
        sh->node = topo.shardNode(static_cast<int>(i));
        sh->cpus = topo.shardCpus(static_cast<int>(i),
                                  static_cast<int>(k));
        shards_.push_back(std::move(sh));
    }

    // Build every shard's arrays on a thread pinned to its CPU
    // subset so the slice, the profile, and the initial encoding
    // are first-touched on the shard's node.
    std::vector<std::thread> builders;
    builders.reserve(shards_.size());
    for (Index i = 0; i < k; ++i) {
        builders.emplace_back([this, i, &master] {
            Shard& sh = *shards_[static_cast<std::size_t>(i)];
            runFirstTouch(sh.cpus, [this, &sh, &master] {
                sh.master = sliceCsr(master, sh.rowBegin,
                                     sh.rowEnd);
                sh.profile = eng::StructureTracker(sh.master);
                sh.chosen = eng::chooseFormat(sh.profile.stats());
                sh.pendingTarget = sh.chosen;
                sh.encoding =
                    std::make_shared<const eng::SparseMatrixAny>(
                        eng::SparseMatrixAny::fromCsr(
                            sh.master, sh.chosen, build_));
                ++sh.conversions;
            });
            setFormatGauge(i,
                           shards_[static_cast<std::size_t>(i)]->chosen);
        });
    }
    for (std::thread& t : builders)
        t.join();
}

Index
ShardedMatrix::nnz() const
{
    Index n = 0;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mutex);
        n += sh->master.nnz();
    }
    return n;
}

Index
ShardedMatrix::shardOfRow(Index row) const
{
    SMASH_CHECK(row >= 0 && row < rows_, "row ", row,
                " outside [0, ", rows_, ")");
    const auto it =
        std::upper_bound(cuts_.begin(), cuts_.end(), row);
    return static_cast<Index>(it - cuts_.begin()) - 1;
}

ShardInfo
ShardedMatrix::shardInfo(Index shard) const
{
    const Shard& sh = *shards_[static_cast<std::size_t>(shard)];
    std::lock_guard<std::mutex> lock(sh.mutex);
    ShardInfo out;
    out.rowBegin = sh.rowBegin;
    out.rowEnd = sh.rowEnd;
    out.nnz = sh.master.nnz();
    out.chosen = sh.chosen;
    out.node = sh.node;
    out.cpus = sh.cpus;
    out.epoch = sh.epoch;
    out.conversions = sh.conversions;
    out.reselects = sh.reselects;
    out.reencodePending = sh.reencodePending;
    return out;
}

std::vector<eng::Format>
ShardedMatrix::shardFormats() const
{
    std::vector<eng::Format> out;
    out.reserve(shards_.size());
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mutex);
        out.push_back(sh->chosen);
    }
    return out;
}

eng::Format
ShardedMatrix::primaryFormat() const
{
    const Shard& sh = *shards_.front();
    std::lock_guard<std::mutex> lock(sh.mutex);
    return sh.chosen;
}

eng::StructureStats
ShardedMatrix::profile(Index shard) const
{
    const Shard& sh = *shards_[static_cast<std::size_t>(shard)];
    std::lock_guard<std::mutex> lock(sh.mutex);
    return sh.profile.stats();
}

std::uint64_t
ShardedMatrix::epoch() const
{
    std::uint64_t e = 0;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mutex);
        e += sh->epoch;
    }
    return e;
}

std::size_t
ShardedMatrix::conversions() const
{
    std::size_t n = 0;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mutex);
        n += sh->conversions;
    }
    return n;
}

std::size_t
ShardedMatrix::reselects() const
{
    std::size_t n = 0;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mutex);
        n += sh->reselects;
    }
    return n;
}

bool
ShardedMatrix::reencodePending() const
{
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mutex);
        if (sh->reencodePending)
            return true;
    }
    return false;
}

ShardedMatrix::EncodingPtr
ShardedMatrix::encodedLocked(Shard& sh) const
{
    if (!sh.encoding) {
        sh.encoding = std::make_shared<const eng::SparseMatrixAny>(
            eng::SparseMatrixAny::fromCsr(sh.master, sh.chosen,
                                          build_));
        ++sh.conversions;
    }
    return sh.encoding;
}

ShardedMatrix::EncodingPtr
ShardedMatrix::grabEncoding(Index shard) const
{
    Shard& sh = *shards_[static_cast<std::size_t>(shard)];
    std::lock_guard<std::mutex> lock(sh.mutex);
    return encodedLocked(sh);
}

void
ShardedMatrix::ensureEncoded()
{
    for (Index i = 0; i < shardCount(); ++i)
        grabEncoding(i);
}

bool
ShardedMatrix::allEncoded() const
{
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mutex);
        if (!sh->encoding)
            return false;
    }
    return true;
}

template <typename F>
void
ShardedMatrix::forEachShard(exec::ThreadPool* pool,
                            const F& body) const
{
    const Index k = shardCount();
    if (pool != nullptr && k > 1) {
        // One chunk per shard: sticky chunk claiming hands shard i
        // to the same worker across calls, which with node-major
        // pinning keeps a shard's traffic on its node.
        pool->parallelFor(0, k, 1, [&](Index cb, Index ce) {
            for (Index i = cb; i < ce; ++i)
                body(i);
        });
    } else {
        for (Index i = 0; i < k; ++i)
            body(i);
    }
}

void
ShardedMatrix::spmv(const std::vector<Value>& x,
                    std::vector<Value>& y,
                    exec::ThreadPool* pool) const
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= cols_,
                "x operand too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= rows_,
                "y operand too short");
    const std::uint64_t t0 =
        obs::traceEnabled() ? obs::traceNowNs() : 0;
    forEachShard(pool, [&](Index i) {
        const Shard& sh = *shards_[static_cast<std::size_t>(i)];
        const EncodingPtr enc = grabEncoding(i);
        const Index n = sh.rowEnd - sh.rowBegin;
        // The shard's slice of y, computed locally so the engine's
        // y-accumulate convention stays intact, then gathered into
        // the caller's vector. The local buffer is first-touched by
        // the worker that computes the shard.
        std::vector<Value> local(static_cast<std::size_t>(n),
                                 Value(0));
        sim::NativeExec ne;
        eng::spmv(enc->ref(), x, local, ne);
        for (Index r = 0; r < n; ++r)
            y[static_cast<std::size_t>(sh.rowBegin + r)] +=
                local[static_cast<std::size_t>(r)];
        SMASH_TRACE_EVENT(obs::EventKind::kShardGather,
                          static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(n));
    });
    SMASH_TRACE_SPAN(obs::EventKind::kShardScatter, t0,
                     static_cast<std::uint32_t>(shardCount()), 1);
}

void
ShardedMatrix::spmvBatch(const fmt::DenseMatrix& x,
                         fmt::DenseMatrix& y,
                         exec::ThreadPool* pool) const
{
    SMASH_CHECK(x.rows() >= cols_, "X block too short");
    SMASH_CHECK(y.rows() >= rows_, "Y block too short");
    SMASH_CHECK(x.cols() == y.cols(), "X/Y width mismatch");
    if (x.cols() == 0)
        return;
    const std::uint64_t t0 =
        obs::traceEnabled() ? obs::traceNowNs() : 0;
    const Index nrhs = x.cols();
    forEachShard(pool, [&](Index i) {
        const Shard& sh = *shards_[static_cast<std::size_t>(i)];
        const EncodingPtr enc = grabEncoding(i);
        const Index n = sh.rowEnd - sh.rowBegin;
        fmt::DenseMatrix local(n, nrhs);
        sim::NativeExec ne;
        // Each shard pads X to its own format granularity
        // (per-shard formats diverge, so the needed operand length
        // differs per shard); spmmBatch copies only when the
        // logical height falls short.
        eng::spmmBatch(enc->ref(), x, local, ne);
        for (Index r = 0; r < n; ++r)
            for (Index c = 0; c < nrhs; ++c)
                y.at(sh.rowBegin + r, c) += local.at(r, c);
        SMASH_TRACE_EVENT(obs::EventKind::kShardGather,
                          static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(n));
    });
    SMASH_TRACE_SPAN(obs::EventKind::kShardScatter, t0,
                     static_cast<std::uint32_t>(shardCount()),
                     static_cast<std::uint32_t>(nrhs));
}

fmt::CooMatrix
ShardedMatrix::spadd(const fmt::CsrMatrix& other,
                     exec::ThreadPool* pool) const
{
    SMASH_CHECK(other.rows() == rows_ && other.cols() == cols_,
                "operand shapes differ");
    const std::uint64_t t0 =
        obs::traceEnabled() ? obs::traceNowNs() : 0;
    std::vector<fmt::CooMatrix> parts(
        static_cast<std::size_t>(shardCount()));
    forEachShard(pool, [&](Index i) {
        const Shard& sh = *shards_[static_cast<std::size_t>(i)];
        fmt::CooMatrix part(rows_, cols_);
        std::lock_guard<std::mutex> lock(sh.mutex);
        // Two-pointer merge of the shard's local rows against the
        // matching global rows of `other` — the same merge (same
        // order, same sums, same zero-cancellation rule) as
        // kern::spaddCsrRange, emitting global row indices.
        const auto& arp = sh.master.rowPtr();
        const auto& aci = sh.master.colInd();
        const auto& av = sh.master.values();
        const auto& brp = other.rowPtr();
        const auto& bci = other.colInd();
        const auto& bv = other.values();
        const fmt::CsrIndex sentinel =
            static_cast<fmt::CsrIndex>(cols_);
        for (Index lr = 0; lr < sh.rowEnd - sh.rowBegin; ++lr) {
            const Index gr = sh.rowBegin + lr;
            fmt::CsrIndex ka = arp[static_cast<std::size_t>(lr)];
            fmt::CsrIndex kb = brp[static_cast<std::size_t>(gr)];
            const fmt::CsrIndex aEnd =
                arp[static_cast<std::size_t>(lr) + 1];
            const fmt::CsrIndex bEnd =
                brp[static_cast<std::size_t>(gr) + 1];
            while (ka < aEnd || kb < bEnd) {
                const fmt::CsrIndex ca =
                    ka < aEnd ? aci[static_cast<std::size_t>(ka)]
                              : sentinel;
                const fmt::CsrIndex cb =
                    kb < bEnd ? bci[static_cast<std::size_t>(kb)]
                              : sentinel;
                Value v;
                Index col;
                if (ca == cb) {
                    v = av[static_cast<std::size_t>(ka)] +
                        bv[static_cast<std::size_t>(kb)];
                    col = ca;
                    ++ka;
                    ++kb;
                } else if (ca < cb) {
                    v = av[static_cast<std::size_t>(ka)];
                    col = ca;
                    ++ka;
                } else {
                    v = bv[static_cast<std::size_t>(kb)];
                    col = cb;
                    ++kb;
                }
                if (v != Value(0))
                    part.add(gr, col, v);
            }
        }
        parts[static_cast<std::size_t>(i)] = std::move(part);
    });
    // Shards hold disjoint ascending row bands, so concatenating in
    // shard order reproduces the unsharded merge's entry order.
    fmt::CooMatrix out(rows_, cols_);
    for (const fmt::CooMatrix& part : parts)
        for (const fmt::CooEntry& e : part.entries())
            out.add(e.row, e.col, e.value);
    SMASH_TRACE_SPAN(obs::EventKind::kShardScatter, t0,
                     static_cast<std::uint32_t>(shardCount()), 1);
    return out;
}

fmt::CsrMatrix
ShardedMatrix::toCsr() const
{
    std::vector<fmt::CsrIndex> rowPtr;
    std::vector<fmt::CsrIndex> colInd;
    std::vector<Value> values;
    rowPtr.reserve(static_cast<std::size_t>(rows_) + 1);
    rowPtr.push_back(0);
    for (const auto& shp : shards_) {
        const Shard& sh = *shp;
        std::lock_guard<std::mutex> lock(sh.mutex);
        const auto& rp = sh.master.rowPtr();
        const fmt::CsrIndex base = rowPtr.back();
        for (std::size_t r = 1; r < rp.size(); ++r)
            rowPtr.push_back(base + rp[r]);
        colInd.insert(colInd.end(), sh.master.colInd().begin(),
                      sh.master.colInd().end());
        values.insert(values.end(), sh.master.values().begin(),
                      sh.master.values().end());
    }
    return fmt::CsrMatrix::fromRaw(rows_, cols_, std::move(rowPtr),
                                   std::move(colInd),
                                   std::move(values));
}

void
ShardedMatrix::finishShardMutation(Index shard, Shard& sh,
                                   const eng::MutationStats& stats,
                                   const DriftPolicy& policy,
                                   ShardMutationOutcome& out)
{
    if (stats.inserted + stats.removed + stats.updated == 0)
        return;
    ++sh.epoch;
    sh.encoding.reset();
    if (stats.structural() == 0 || !policy.enabled ||
        sh.reencodePending)
        return;
    // Same gate as the registry's whole-matrix drift detector, but
    // against the shard's own churn and nnz — a band can cross a
    // boundary long before the whole matrix would.
    const Index changed = sh.profile.changedSinceRebase();
    const Index need = std::max(
        policy.minChanged,
        static_cast<Index>(policy.minChangedFraction *
                           static_cast<double>(std::max<Index>(
                               1, sh.profile.nnz()))));
    if (changed < need)
        return;
    const eng::Format target = eng::chooseFormatSticky(
        sh.profile.stats(), sh.chosen, policy.margin);
    if (target == sh.chosen) {
        sh.profile.rebase();
        return;
    }
    sh.reencodePending = true;
    sh.pendingTarget = target;
    if (!out.reencodeScheduled) {
        out.reencodeScheduled = true;
        out.target = target;
    }
    (void)shard;
}

ShardMutationOutcome
ShardedMatrix::applyUpdates(const fmt::CooMatrix& deltas,
                            const DriftPolicy& policy)
{
    SMASH_CHECK(deltas.isCanonical(),
                "deltas must be canonical");
    SMASH_CHECK(deltas.rows() == rows_ && deltas.cols() == cols_,
                "delta shape differs");
    ShardMutationOutcome out;
    const auto& es = deltas.entries();
    std::size_t i = 0;
    while (i < es.size()) {
        const Index k = shardOfRow(es[i].row);
        Shard& sh = *shards_[static_cast<std::size_t>(k)];
        const Index bandEnd = cuts_[static_cast<std::size_t>(k) + 1];
        // Canonical deltas are row-sorted, so each shard's share is
        // one contiguous run; rebase its rows to shard-local.
        fmt::CooMatrix local(sh.rowEnd - sh.rowBegin, cols_);
        std::size_t j = i;
        while (j < es.size() && es[j].row < bandEnd) {
            local.add(es[j].row - sh.rowBegin, es[j].col,
                      es[j].value);
            ++j;
        }
        local.canonicalize();
        {
            std::lock_guard<std::mutex> lock(sh.mutex);
            eng::StructureTracker& tracker = sh.profile;
            const eng::MutationStats st = eng::applyUpdates(
                sh.master, local,
                [&tracker](Index r, Index c, bool inserted) {
                    tracker.onStructureChange(r, c, inserted);
                });
            accumulate(out.stats, st);
            finishShardMutation(k, sh, st, policy, out);
        }
        i = j;
    }
    return out;
}

ShardMutationOutcome
ShardedMatrix::replaceRows(const std::vector<Index>& rows,
                           const fmt::CooMatrix& replacement,
                           const DriftPolicy& policy)
{
    SMASH_CHECK(replacement.isCanonical(),
                "replacement must be canonical");
    ShardMutationOutcome out;
    const Index k = shardCount();
    std::vector<std::vector<Index>> rowsByShard(
        static_cast<std::size_t>(k));
    for (Index r : rows)
        rowsByShard[static_cast<std::size_t>(shardOfRow(r))]
            .push_back(r);
    const auto& es = replacement.entries();
    std::size_t next = 0;
    for (Index i = 0; i < k; ++i) {
        auto& local_rows = rowsByShard[static_cast<std::size_t>(i)];
        Shard& sh = *shards_[static_cast<std::size_t>(i)];
        // Replacement entries are row-sorted; consume this band's
        // contiguous run (every entry names a listed row, so a band
        // with entries always has listed rows too).
        fmt::CooMatrix local(sh.rowEnd - sh.rowBegin, cols_);
        while (next < es.size() &&
               es[next].row < cuts_[static_cast<std::size_t>(i) + 1]) {
            local.add(es[next].row - sh.rowBegin, es[next].col,
                      es[next].value);
            ++next;
        }
        if (local_rows.empty()) {
            SMASH_CHECK(local.nnz() == 0,
                        "replacement entry names an unlisted row");
            continue;
        }
        for (Index& r : local_rows)
            r -= sh.rowBegin;
        local.canonicalize();
        {
            std::lock_guard<std::mutex> lock(sh.mutex);
            eng::StructureTracker& tracker = sh.profile;
            const eng::MutationStats st = eng::replaceRows(
                sh.master, local_rows, local,
                [&tracker](Index r, Index c, bool inserted) {
                    tracker.onStructureChange(r, c, inserted);
                });
            accumulate(out.stats, st);
            finishShardMutation(i, sh, st, policy, out);
        }
    }
    return out;
}

ShardMutationOutcome
ShardedMatrix::scaleValues(Value factor)
{
    ShardMutationOutcome out;
    const DriftPolicy off{false, 0, 0, 0};
    for (Index i = 0; i < shardCount(); ++i) {
        Shard& sh = *shards_[static_cast<std::size_t>(i)];
        std::lock_guard<std::mutex> lock(sh.mutex);
        const eng::MutationStats st =
            eng::scaleValues(sh.master, factor);
        accumulate(out.stats, st);
        finishShardMutation(i, sh, st, off, out);
    }
    return out;
}

void
ShardedMatrix::setFormatGauge(Index shard, eng::Format format) const
{
    obs::MetricsRegistry::global()
        .gauge("smash_shard_format{matrix=\"" + name_ +
               "\",shard=\"" + std::to_string(shard) + "\"}")
        .set(static_cast<std::int64_t>(format));
}

int
ShardedMatrix::runPendingReencodes()
{
    int swapped = 0;
    for (Index i = 0; i < shardCount(); ++i) {
        Shard& sh = *shards_[static_cast<std::size_t>(i)];
        bool done = false;
        // Same snapshot / build-unlocked / epoch-checked-swap loop
        // as the registry's whole-matrix runReencode(), per shard.
        for (int attempt = 0; attempt < 4 && !done; ++attempt) {
            fmt::CsrMatrix snapshot;
            eng::Format target;
            std::uint64_t epoch;
            {
                std::lock_guard<std::mutex> lock(sh.mutex);
                if (!sh.reencodePending) {
                    done = true;
                    break;
                }
                snapshot = sh.master;
                target = sh.pendingTarget;
                epoch = sh.epoch;
            }
            auto built =
                std::make_shared<const eng::SparseMatrixAny>(
                    eng::SparseMatrixAny::fromCsr(snapshot, target,
                                                  build_));
            {
                std::lock_guard<std::mutex> lock(sh.mutex);
                if (sh.epoch != epoch)
                    continue; // a mutation landed: rebuild
                sh.chosen = target;
                sh.encoding = std::move(built);
                ++sh.conversions;
                ++sh.reselects;
                sh.reencodePending = false;
                sh.profile.rebase();
                done = true;
                ++swapped;
            }
            shardReencodeCounter(i).inc();
            setFormatGauge(i, target);
            SMASH_TRACE_EVENT(obs::EventKind::kShardReencode,
                              static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(target));
        }
        if (!done) {
            std::lock_guard<std::mutex> lock(sh.mutex);
            sh.reencodePending = false;
        }
    }
    return swapped;
}

} // namespace smash::shard
