#include "formats/csc_matrix.hh"

#include <cassert>
#include <limits>

#include "common/logging.hh"
#include "formats/coo_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::fmt
{

CscMatrix
CscMatrix::fromCoo(const CooMatrix& coo)
{
    SMASH_CHECK(coo.isCanonical(),
                "CSC conversion requires a canonical COO matrix");
    SMASH_CHECK(coo.nnz() <= std::numeric_limits<CsrIndex>::max(),
                "nnz ", coo.nnz(), " overflows 32-bit CSC indices");

    CscMatrix csc;
    csc.rows_ = coo.rows();
    csc.cols_ = coo.cols();
    csc.colPtr_.assign(static_cast<std::size_t>(coo.cols()) + 1, 0);
    csc.rowInd_.resize(coo.entries().size());
    csc.values_.resize(coo.entries().size());

    for (const CooEntry& e : coo.entries())
        ++csc.colPtr_[static_cast<std::size_t>(e.col) + 1];
    for (std::size_t c = 1; c < csc.colPtr_.size(); ++c)
        csc.colPtr_[c] += csc.colPtr_[c - 1];

    // COO is row-major sorted; scattering by column preserves row
    // order within each column, so row indices stay sorted.
    std::vector<CsrIndex> cursor(csc.colPtr_.begin(), csc.colPtr_.end() - 1);
    for (const CooEntry& e : coo.entries()) {
        std::size_t slot =
            static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.col)]++);
        csc.rowInd_[slot] = static_cast<CsrIndex>(e.row);
        csc.values_[slot] = e.value;
    }
    return csc;
}

Index
CscMatrix::colNnz(Index c) const
{
    assert(c >= 0 && c < cols_);
    return colPtr_[static_cast<std::size_t>(c) + 1] -
        colPtr_[static_cast<std::size_t>(c)];
}

DenseMatrix
CscMatrix::toDense() const
{
    DenseMatrix dense(rows_, cols_);
    for (Index c = 0; c < cols_; ++c) {
        for (CsrIndex j = colPtr_[static_cast<std::size_t>(c)];
             j < colPtr_[static_cast<std::size_t>(c) + 1]; ++j) {
            dense.at(rowInd_[static_cast<std::size_t>(j)], c) =
                values_[static_cast<std::size_t>(j)];
        }
    }
    return dense;
}

std::size_t
CscMatrix::storageBytes() const
{
    return colPtr_.size() * sizeof(CsrIndex) +
        rowInd_.size() * sizeof(CsrIndex) +
        values_.size() * sizeof(Value);
}

bool
CscMatrix::checkInvariants() const
{
    if (colPtr_.size() != static_cast<std::size_t>(cols_) + 1)
        return false;
    if (colPtr_.front() != 0)
        return false;
    if (colPtr_.back() != static_cast<CsrIndex>(values_.size()))
        return false;
    if (rowInd_.size() != values_.size())
        return false;
    for (std::size_t c = 0; c + 1 < colPtr_.size(); ++c) {
        if (colPtr_[c] > colPtr_[c + 1])
            return false;
        for (CsrIndex j = colPtr_[c] + 1; j < colPtr_[c + 1]; ++j) {
            std::size_t sj = static_cast<std::size_t>(j);
            if (rowInd_[sj - 1] >= rowInd_[sj])
                return false;
        }
    }
    for (CsrIndex r : rowInd_) {
        if (r < 0 || r >= static_cast<CsrIndex>(rows_))
            return false;
    }
    return true;
}

} // namespace smash::fmt
