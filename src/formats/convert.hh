/**
 * @file
 * Cross-format conversion helpers. Each sparse format knows how to
 * build itself from canonical COO; this header adds the remaining
 * convenience paths (dense <-> COO, CSR <-> CSC, ...) so tests and
 * benches can round-trip any pair of formats.
 */

#ifndef SMASH_FORMATS_CONVERT_HH
#define SMASH_FORMATS_CONVERT_HH

#include "formats/bcsr_matrix.hh"
#include "formats/coo_matrix.hh"
#include "formats/csc_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::fmt
{

/** Extract the non-zeros of @p dense into a canonical COO matrix. */
CooMatrix denseToCoo(const DenseMatrix& dense);

/** Dense -> CSR via COO. */
CsrMatrix denseToCsr(const DenseMatrix& dense);

/** CSR -> CSC (same matrix, column-major storage). */
CscMatrix csrToCsc(const CsrMatrix& csr);

/** CSC -> CSR. */
CsrMatrix cscToCsr(const CscMatrix& csc);

/** Transpose a CSR matrix (returns CSR of the transpose). */
CsrMatrix transpose(const CsrMatrix& csr);

} // namespace smash::fmt

#endif // SMASH_FORMATS_CONVERT_HH
