/**
 * @file
 * Coordinate-list (COO) sparse matrix. The interchange format: every
 * generator produces COO, and every other format (CSR/CSC/BCSR/SMASH)
 * is built from a sorted, deduplicated COO.
 */

#ifndef SMASH_FORMATS_COO_MATRIX_HH
#define SMASH_FORMATS_COO_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace smash::fmt
{

class DenseMatrix;

/** One non-zero entry of a COO matrix. */
struct CooEntry
{
    Index row;
    Index col;
    Value value;
};

/**
 * Coordinate-list sparse matrix. Entries may be appended in any
 * order; canonicalize() sorts them row-major and merges duplicates
 * (summing values), which the conversion routines require.
 */
class CooMatrix
{
  public:
    CooMatrix() = default;

    /** Create an empty rows x cols matrix. */
    CooMatrix(Index rows, Index cols);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** Number of stored entries (after canonicalize: the nnz). */
    Index nnz() const { return static_cast<Index>(entries_.size()); }

    /**
     * Append one entry. Zero-valued entries are dropped so that nnz
     * always counts true non-zeros.
     * @return true when the entry was stored.
     */
    bool add(Index row, Index col, Value value);

    /** Sort row-major and merge duplicate coordinates by addition. */
    void canonicalize();

    /** True once entries are sorted row-major with no duplicates. */
    bool isCanonical() const;

    const std::vector<CooEntry>& entries() const { return entries_; }

    /** Expand into a dense matrix (test oracle). */
    DenseMatrix toDense() const;

    /** Bytes consumed by the COO representation. */
    std::size_t storageBytes() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<CooEntry> entries_;
};

} // namespace smash::fmt

#endif // SMASH_FORMATS_COO_MATRIX_HH
