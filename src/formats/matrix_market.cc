#include "formats/matrix_market.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace smash::fmt
{

namespace
{

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

CooMatrix
readMatrixMarket(std::istream& in)
{
    std::string line;
    SMASH_CHECK(static_cast<bool>(std::getline(in, line)),
                "empty Matrix Market stream");

    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    SMASH_CHECK(tag == "%%MatrixMarket", "missing MatrixMarket banner");
    object = toLower(object);
    format = toLower(format);
    field = toLower(field);
    symmetry = toLower(symmetry);
    SMASH_CHECK(object == "matrix", "unsupported object '", object, "'");
    SMASH_CHECK(format == "coordinate",
                "only coordinate format is supported, got '", format, "'");
    SMASH_CHECK(field == "real" || field == "integer" || field == "pattern",
                "unsupported field '", field, "'");
    SMASH_CHECK(symmetry == "general" || symmetry == "symmetric",
                "unsupported symmetry '", symmetry, "'");

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream header(line);
    Index rows = 0, cols = 0, entries = 0;
    header >> rows >> cols >> entries;
    SMASH_CHECK(rows > 0 && cols > 0 && entries >= 0,
                "bad size line '", line, "'");

    CooMatrix coo(rows, cols);
    for (Index i = 0; i < entries; ++i) {
        SMASH_CHECK(static_cast<bool>(std::getline(in, line)),
                    "truncated stream: expected ", entries,
                    " entries, got ", i);
        std::istringstream entry(line);
        Index r = 0, c = 0;
        Value v = Value(1);
        entry >> r >> c;
        if (field != "pattern")
            entry >> v;
        SMASH_CHECK(!entry.fail(), "bad entry line '", line, "'");
        coo.add(r - 1, c - 1, v); // Matrix Market is 1-based.
        if (symmetry == "symmetric" && r != c)
            coo.add(c - 1, r - 1, v);
    }
    coo.canonicalize();
    return coo;
}

CooMatrix
readMatrixMarketFile(const std::string& path)
{
    std::ifstream in(path);
    SMASH_CHECK(in.good(), "cannot open '", path, "'");
    return readMatrixMarket(in);
}

void
writeMatrixMarket(const CooMatrix& coo, std::ostream& out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by smash\n";
    out << coo.rows() << " " << coo.cols() << " " << coo.nnz() << "\n";
    for (const CooEntry& e : coo.entries())
        out << (e.row + 1) << " " << (e.col + 1) << " " << e.value << "\n";
}

void
writeMatrixMarketFile(const CooMatrix& coo, const std::string& path)
{
    std::ofstream out(path);
    SMASH_CHECK(out.good(), "cannot open '", path, "' for writing");
    writeMatrixMarket(coo, out);
    SMASH_CHECK(out.good(), "write to '", path, "' failed");
}

} // namespace smash::fmt
