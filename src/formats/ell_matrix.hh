/**
 * @file
 * ELLPACK (ELL) sparse format: every row is padded to the width of
 * the longest row, giving a rectangular rows x width slab of column
 * indices and values with no per-row pointers. Regular layout, but
 * one pathological row inflates the whole matrix — another point on
 * the structure-specialization spectrum the paper contrasts SMASH
 * against (§2.3).
 */

#ifndef SMASH_FORMATS_ELL_MATRIX_HH
#define SMASH_FORMATS_ELL_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "formats/csr_matrix.hh"

namespace smash::fmt
{

class CooMatrix;
class DenseMatrix;

/** Sentinel column index marking a padding slot. */
inline constexpr CsrIndex kEllPad = -1;

/** ELLPACK sparse matrix (row-major slab). */
class EllMatrix
{
  public:
    EllMatrix() = default;

    /** Build from a canonical COO matrix. */
    static EllMatrix fromCoo(const CooMatrix& coo);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** True non-zero count of the encoded matrix. */
    Index nnz() const { return nnz_; }

    /** Entries stored per row (the maximum row degree). */
    Index width() const { return width_; }

    /**
     * Column indices, rows x width row-major; kEllPad marks padding.
     * Real entries of a row precede its padding slots.
     */
    const std::vector<CsrIndex>& colInd() const { return colInd_; }

    /** Values, rows x width row-major; padding slots hold zero. */
    const std::vector<Value>& values() const { return values_; }

    /** Expand into a dense matrix (test oracle). */
    DenseMatrix toDense() const;

    /** Bytes of the index slab + value slab. */
    std::size_t storageBytes() const;

    /** Fraction of slab slots holding true non-zeros. */
    double fillEfficiency() const;

    /** Structural invariants (padding placement, slab sizing). */
    bool checkInvariants() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    Index nnz_ = 0;
    Index width_ = 0;
    std::vector<CsrIndex> colInd_;
    std::vector<Value> values_;
};

} // namespace smash::fmt

#endif // SMASH_FORMATS_ELL_MATRIX_HH
