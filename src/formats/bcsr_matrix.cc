#include "formats/bcsr_matrix.hh"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "formats/coo_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::fmt
{

BcsrMatrix
BcsrMatrix::fromCoo(const CooMatrix& coo, Index blockRows, Index blockCols)
{
    SMASH_CHECK(coo.isCanonical(),
                "BCSR conversion requires a canonical COO matrix");
    SMASH_CHECK(blockRows > 0 && blockCols > 0,
                "invalid block shape ", blockRows, "x", blockCols);

    BcsrMatrix bcsr;
    bcsr.rows_ = coo.rows();
    bcsr.cols_ = coo.cols();
    bcsr.blockRows_ = blockRows;
    bcsr.blockCols_ = blockCols;
    bcsr.nnz_ = coo.nnz();

    const Index n_block_rows =
        static_cast<Index>(ceilDiv(static_cast<std::uint64_t>(coo.rows()),
                                   static_cast<std::uint64_t>(blockRows)));

    // Group entries by (blockRow, blockCol). The map keeps tiles in
    // row-major tile order, which is what BCSR stores.
    std::map<std::pair<Index, Index>, std::vector<CooEntry>> tiles;
    for (const CooEntry& e : coo.entries())
        tiles[{e.row / blockRows, e.col / blockCols}].push_back(e);

    bcsr.blockRowPtr_.assign(static_cast<std::size_t>(n_block_rows) + 1, 0);
    bcsr.blockCol_.reserve(tiles.size());
    bcsr.blockValues_.reserve(tiles.size() *
                              static_cast<std::size_t>(blockRows * blockCols));

    for (const auto& [key, entries] : tiles) {
        const auto [brow, bcol] = key;
        ++bcsr.blockRowPtr_[static_cast<std::size_t>(brow) + 1];
        bcsr.blockCol_.push_back(static_cast<CsrIndex>(bcol));
        std::size_t base = bcsr.blockValues_.size();
        bcsr.blockValues_.resize(
            base + static_cast<std::size_t>(blockRows * blockCols), Value(0));
        for (const CooEntry& e : entries) {
            Index lr = e.row - brow * blockRows;
            Index lc = e.col - bcol * blockCols;
            bcsr.blockValues_[base + static_cast<std::size_t>(
                lr * blockCols + lc)] = e.value;
        }
    }
    for (std::size_t r = 1; r < bcsr.blockRowPtr_.size(); ++r)
        bcsr.blockRowPtr_[r] += bcsr.blockRowPtr_[r - 1];
    return bcsr;
}

DenseMatrix
BcsrMatrix::toDense() const
{
    DenseMatrix dense(rows_, cols_);
    for (Index brow = 0; brow < numBlockRows(); ++brow) {
        for (CsrIndex b = blockRowPtr_[static_cast<std::size_t>(brow)];
             b < blockRowPtr_[static_cast<std::size_t>(brow) + 1]; ++b) {
            Index bcol = blockCol_[static_cast<std::size_t>(b)];
            std::size_t base =
                static_cast<std::size_t>(b) *
                static_cast<std::size_t>(blockArea());
            for (Index lr = 0; lr < blockRows_; ++lr) {
                for (Index lc = 0; lc < blockCols_; ++lc) {
                    Index r = brow * blockRows_ + lr;
                    Index c = bcol * blockCols_ + lc;
                    if (r < rows_ && c < cols_) {
                        dense.at(r, c) = blockValues_[
                            base + static_cast<std::size_t>(
                                lr * blockCols_ + lc)];
                    }
                }
            }
        }
    }
    return dense;
}

std::size_t
BcsrMatrix::storageBytes() const
{
    return blockRowPtr_.size() * sizeof(CsrIndex) +
        blockCol_.size() * sizeof(CsrIndex) +
        blockValues_.size() * sizeof(Value);
}

double
BcsrMatrix::fillEfficiency() const
{
    if (blockValues_.empty())
        return 1.0;
    return static_cast<double>(nnz_) /
        static_cast<double>(blockValues_.size());
}

bool
BcsrMatrix::checkInvariants() const
{
    if (blockRowPtr_.empty() || blockRowPtr_.front() != 0)
        return false;
    if (blockRowPtr_.back() != static_cast<CsrIndex>(blockCol_.size()))
        return false;
    if (blockValues_.size() !=
        blockCol_.size() * static_cast<std::size_t>(blockArea())) {
        return false;
    }
    for (std::size_t r = 0; r + 1 < blockRowPtr_.size(); ++r) {
        if (blockRowPtr_[r] > blockRowPtr_[r + 1])
            return false;
        for (CsrIndex b = blockRowPtr_[r] + 1; b < blockRowPtr_[r + 1]; ++b) {
            std::size_t sb = static_cast<std::size_t>(b);
            if (blockCol_[sb - 1] >= blockCol_[sb])
                return false;
        }
    }
    return true;
}

} // namespace smash::fmt
