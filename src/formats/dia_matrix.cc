#include "formats/dia_matrix.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "formats/coo_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::fmt
{

DiaMatrix
DiaMatrix::fromCoo(const CooMatrix& coo)
{
    SMASH_CHECK(coo.isCanonical(),
                "DIA conversion requires a canonical COO matrix");

    DiaMatrix dia;
    dia.rows_ = coo.rows();
    dia.cols_ = coo.cols();
    dia.nnz_ = coo.nnz();

    // Collect the populated offsets in ascending order, then assign
    // each a lane index.
    std::map<Index, Index> lane_of_offset;
    for (const CooEntry& e : coo.entries())
        lane_of_offset.emplace(e.col - e.row, 0);
    dia.offsets_.reserve(lane_of_offset.size());
    for (auto& [off, lane] : lane_of_offset) {
        lane = static_cast<Index>(dia.offsets_.size());
        dia.offsets_.push_back(off);
    }

    dia.values_.assign(lane_of_offset.size() *
                       static_cast<std::size_t>(dia.rows_), Value(0));
    for (const CooEntry& e : coo.entries()) {
        Index lane = lane_of_offset[e.col - e.row];
        dia.values_[static_cast<std::size_t>(lane * dia.rows_ + e.row)] =
            e.value;
    }
    return dia;
}

const Value*
DiaMatrix::laneData(Index d) const
{
    SMASH_CHECK(d >= 0 && d < numDiagonals(), "lane ", d, " out of range");
    return &values_[static_cast<std::size_t>(d * rows_)];
}

DenseMatrix
DiaMatrix::toDense() const
{
    DenseMatrix dense(rows_, cols_);
    for (Index d = 0; d < numDiagonals(); ++d) {
        const Index off = offsets_[static_cast<std::size_t>(d)];
        const Value* lane = laneData(d);
        for (Index r = 0; r < rows_; ++r) {
            Index c = r + off;
            if (c >= 0 && c < cols_ && lane[r] != Value(0))
                dense.at(r, c) = lane[r];
        }
    }
    return dense;
}

std::size_t
DiaMatrix::storageBytes() const
{
    return offsets_.size() * sizeof(Index) + values_.size() * sizeof(Value);
}

double
DiaMatrix::fillEfficiency() const
{
    if (values_.empty())
        return 1.0;
    return static_cast<double>(nnz_) / static_cast<double>(values_.size());
}

bool
DiaMatrix::checkInvariants() const
{
    if (!std::is_sorted(offsets_.begin(), offsets_.end()))
        return false;
    if (std::adjacent_find(offsets_.begin(), offsets_.end()) !=
        offsets_.end()) {
        return false;
    }
    if (values_.size() != offsets_.size() * static_cast<std::size_t>(rows_))
        return false;
    for (Index off : offsets_) {
        if (off <= -rows_ || off >= cols_)
            return false;
    }
    // Slots outside the matrix must stay zero, and the stored
    // non-zero count must match nnz.
    Index count = 0;
    for (Index d = 0; d < numDiagonals(); ++d) {
        const Index off = offsets_[static_cast<std::size_t>(d)];
        const Value* lane = laneData(d);
        for (Index r = 0; r < rows_; ++r) {
            Index c = r + off;
            bool inside = c >= 0 && c < cols_;
            if (!inside && lane[r] != Value(0))
                return false;
            if (lane[r] != Value(0))
                ++count;
        }
    }
    return count == nnz_;
}

} // namespace smash::fmt
