/**
 * @file
 * Compressed Sparse Column (CSC), the column-major dual of CSR
 * (paper §2.1). Inner-product SpMM stores its B operand in CSC so
 * that each column's row indices can be streamed during index
 * matching (paper Fig. 2).
 */

#ifndef SMASH_FORMATS_CSC_MATRIX_HH
#define SMASH_FORMATS_CSC_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "formats/csr_matrix.hh"

namespace smash::fmt
{

class CooMatrix;
class DenseMatrix;

/** Compressed Sparse Column matrix. */
class CscMatrix
{
  public:
    CscMatrix() = default;

    /** Build from a canonical COO matrix. */
    static CscMatrix fromCoo(const CooMatrix& coo);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(values_.size()); }

    const std::vector<CsrIndex>& colPtr() const { return colPtr_; }
    const std::vector<CsrIndex>& rowInd() const { return rowInd_; }
    const std::vector<Value>& values() const { return values_; }

    /** Number of non-zeros in column @p c. */
    Index colNnz(Index c) const;

    /** Expand into a dense matrix (test oracle). */
    DenseMatrix toDense() const;

    /** Total bytes of col_ptr + row_ind + values. */
    std::size_t storageBytes() const;

    /** Structural invariants (monotone col_ptr, sorted rows...). */
    bool checkInvariants() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<CsrIndex> colPtr_;
    std::vector<CsrIndex> rowInd_;
    std::vector<Value> values_;
};

} // namespace smash::fmt

#endif // SMASH_FORMATS_CSC_MATRIX_HH
