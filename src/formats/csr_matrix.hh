/**
 * @file
 * Compressed Sparse Row (CSR), the paper's baseline format (§2.1).
 *
 * Three arrays: row_ptr (rows+1 entries), col_ind (one column index
 * per non-zero), values. Row i's non-zeros live in the half-open
 * range [row_ptr[i], row_ptr[i+1]).
 */

#ifndef SMASH_FORMATS_CSR_MATRIX_HH
#define SMASH_FORMATS_CSR_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace smash::fmt
{

class CooMatrix;
class DenseMatrix;

/** Column-index storage type; 32 bits as in mainstream libraries. */
using CsrIndex = std::int32_t;

/** Compressed Sparse Row matrix. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Build from a canonical COO matrix. */
    static CsrMatrix fromCoo(const CooMatrix& coo);

    /**
     * Adopt pre-built CSR triples (e.g. from an SpGEMM kernel).
     * Validates the structural invariants; explicit zero values are
     * allowed (numerical cancellation results).
     */
    static CsrMatrix fromRaw(Index rows, Index cols,
                             std::vector<CsrIndex> rowPtr,
                             std::vector<CsrIndex> colInd,
                             std::vector<Value> values);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(values_.size()); }

    const std::vector<CsrIndex>& rowPtr() const { return rowPtr_; }
    const std::vector<CsrIndex>& colInd() const { return colInd_; }
    const std::vector<Value>& values() const { return values_; }

    /**
     * Multiply every stored value by @p factor in place. Structure
     * (row_ptr/col_ind) is untouched by construction, so no
     * re-validation is needed; scaling by zero leaves explicit
     * zeros (fromRaw() semantics).
     */
    void scaleValues(Value factor);

    /** Number of non-zeros in row @p r. */
    Index rowNnz(Index r) const;

    /** Value at (r, c); zero when the coordinate is not stored. */
    Value at(Index r, Index c) const;

    /** Expand into a dense matrix (test oracle). */
    DenseMatrix toDense() const;

    /** Convert back to a canonical COO matrix. */
    CooMatrix toCoo() const;

    /**
     * Total bytes of row_ptr + col_ind + values — the numerator used
     * by the Fig. 19 storage comparison.
     */
    std::size_t storageBytes() const;

    /** Structural invariants (monotone row_ptr, sorted columns...). */
    bool checkInvariants() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<CsrIndex> rowPtr_;
    std::vector<CsrIndex> colInd_;
    std::vector<Value> values_;
};

} // namespace smash::fmt

#endif // SMASH_FORMATS_CSR_MATRIX_HH
