#include "formats/coo_matrix.hh"

#include <algorithm>

#include "common/logging.hh"
#include "formats/dense_matrix.hh"

namespace smash::fmt
{

CooMatrix::CooMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols)
{
    SMASH_CHECK(rows >= 0 && cols >= 0,
                "negative dimensions ", rows, "x", cols);
}

bool
CooMatrix::add(Index row, Index col, Value value)
{
    SMASH_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "entry (", row, ",", col, ") outside ", rows_, "x", cols_);
    if (value == Value(0))
        return false;
    entries_.push_back({row, col, value});
    return true;
}

void
CooMatrix::canonicalize()
{
    auto less = [](const CooEntry& a, const CooEntry& b) {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    };
    std::sort(entries_.begin(), entries_.end(), less);

    std::vector<CooEntry> merged;
    merged.reserve(entries_.size());
    for (const CooEntry& e : entries_) {
        if (!merged.empty() && merged.back().row == e.row &&
            merged.back().col == e.col) {
            merged.back().value += e.value;
        } else {
            merged.push_back(e);
        }
    }
    // Merging may have produced exact zeros; drop them to keep the
    // "entries == non-zeros" invariant.
    std::erase_if(merged, [](const CooEntry& e) {
        return e.value == Value(0);
    });
    entries_ = std::move(merged);
}

bool
CooMatrix::isCanonical() const
{
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        const CooEntry& prev = entries_[i - 1];
        const CooEntry& cur = entries_[i];
        bool ordered = prev.row < cur.row ||
            (prev.row == cur.row && prev.col < cur.col);
        if (!ordered)
            return false;
    }
    return true;
}

DenseMatrix
CooMatrix::toDense() const
{
    DenseMatrix dense(rows_, cols_);
    for (const CooEntry& e : entries_)
        dense.at(e.row, e.col) += e.value;
    return dense;
}

std::size_t
CooMatrix::storageBytes() const
{
    return entries_.size() * sizeof(CooEntry);
}

} // namespace smash::fmt
