/**
 * @file
 * Block Compressed Sparse Row (BCSR), the paper's TACO-BCSR baseline
 * (Im & Yelick). The matrix is tiled into fixed br x bc blocks; any
 * tile containing at least one non-zero is stored densely (including
 * its zeros), with CSR-style block-row pointers and block-column
 * indices. Fewer index entries than CSR, at the cost of computing on
 * the zeros inside stored tiles — exactly the tradeoff the paper
 * exercises on very sparse matrices (§7.2.1).
 */

#ifndef SMASH_FORMATS_BCSR_MATRIX_HH
#define SMASH_FORMATS_BCSR_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "formats/csr_matrix.hh"

namespace smash::fmt
{

class CooMatrix;
class DenseMatrix;

/** Block Compressed Sparse Row matrix with run-time block shape. */
class BcsrMatrix
{
  public:
    BcsrMatrix() = default;

    /**
     * Build from a canonical COO matrix.
     * @param blockRows tile height (default 4, the common choice)
     * @param blockCols tile width
     */
    static BcsrMatrix fromCoo(const CooMatrix& coo, Index blockRows = 4,
                              Index blockCols = 4);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** Number of actual non-zeros (excluding in-tile padding). */
    Index nnz() const { return nnz_; }

    Index blockRows() const { return blockRows_; }
    Index blockCols() const { return blockCols_; }

    /** Number of stored (non-empty) tiles. */
    Index numBlocks() const { return static_cast<Index>(blockCol_.size()); }

    /** Number of block rows = ceil(rows / blockRows). */
    Index numBlockRows() const
    {
        return static_cast<Index>(blockRowPtr_.size()) - 1;
    }

    const std::vector<CsrIndex>& blockRowPtr() const { return blockRowPtr_; }
    const std::vector<CsrIndex>& blockCol() const { return blockCol_; }

    /** Tile payloads, numBlocks x (blockRows*blockCols), row-major. */
    const std::vector<Value>& blockValues() const { return blockValues_; }

    /** Values stored per tile (blockRows * blockCols). */
    Index blockArea() const { return blockRows_ * blockCols_; }

    /** Expand into a dense matrix (test oracle). */
    DenseMatrix toDense() const;

    /** Total bytes of pointers + block columns + tile payloads. */
    std::size_t storageBytes() const;

    /** Fraction of stored values that are actual non-zeros. */
    double fillEfficiency() const;

    /** Structural invariants. */
    bool checkInvariants() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    Index blockRows_ = 0;
    Index blockCols_ = 0;
    Index nnz_ = 0;
    std::vector<CsrIndex> blockRowPtr_;
    std::vector<CsrIndex> blockCol_;
    std::vector<Value> blockValues_;
};

} // namespace smash::fmt

#endif // SMASH_FORMATS_BCSR_MATRIX_HH
