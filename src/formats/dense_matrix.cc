#include "formats/dense_matrix.hh"

#include <cassert>
#include <cmath>

#include "common/logging.hh"

namespace smash::fmt
{

DenseMatrix::DenseMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            Value(0))
{
    SMASH_CHECK(rows >= 0 && cols >= 0,
                "negative dimensions ", rows, "x", cols);
}

Value&
DenseMatrix::at(Index r, Index c)
{
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
}

Value
DenseMatrix::at(Index r, Index c) const
{
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
}

const Value*
DenseMatrix::rowData(Index r) const
{
    assert(r >= 0 && r < rows_);
    return data_.data() + static_cast<std::size_t>(r) * cols_;
}

Value*
DenseMatrix::rowData(Index r)
{
    assert(r >= 0 && r < rows_);
    return data_.data() + static_cast<std::size_t>(r) * cols_;
}

Index
DenseMatrix::countNonZeros() const
{
    Index count = 0;
    for (Value v : data_) {
        if (v != Value(0))
            ++count;
    }
    return count;
}

std::size_t
DenseMatrix::storageBytes() const
{
    return data_.size() * sizeof(Value);
}

bool
DenseMatrix::approxEquals(const DenseMatrix& other, Value eps) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - other.data_[i]) > eps)
            return false;
    }
    return true;
}

} // namespace smash::fmt
