#include "formats/csr_matrix.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.hh"
#include "formats/coo_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::fmt
{

CsrMatrix
CsrMatrix::fromCoo(const CooMatrix& coo)
{
    SMASH_CHECK(coo.isCanonical(),
                "CSR conversion requires a canonical COO matrix");
    SMASH_CHECK(coo.nnz() <= std::numeric_limits<CsrIndex>::max(),
                "nnz ", coo.nnz(), " overflows 32-bit CSR indices");

    CsrMatrix csr;
    csr.rows_ = coo.rows();
    csr.cols_ = coo.cols();
    csr.rowPtr_.assign(static_cast<std::size_t>(coo.rows()) + 1, 0);
    csr.colInd_.reserve(coo.entries().size());
    csr.values_.reserve(coo.entries().size());

    for (const CooEntry& e : coo.entries())
        ++csr.rowPtr_[static_cast<std::size_t>(e.row) + 1];
    for (std::size_t r = 1; r < csr.rowPtr_.size(); ++r)
        csr.rowPtr_[r] += csr.rowPtr_[r - 1];
    for (const CooEntry& e : coo.entries()) {
        csr.colInd_.push_back(static_cast<CsrIndex>(e.col));
        csr.values_.push_back(e.value);
    }
    return csr;
}

CsrMatrix
CsrMatrix::fromRaw(Index rows, Index cols, std::vector<CsrIndex> rowPtr,
                   std::vector<CsrIndex> colInd, std::vector<Value> values)
{
    CsrMatrix csr;
    csr.rows_ = rows;
    csr.cols_ = cols;
    csr.rowPtr_ = std::move(rowPtr);
    csr.colInd_ = std::move(colInd);
    csr.values_ = std::move(values);
    SMASH_CHECK(csr.checkInvariants(),
                "fromRaw: malformed CSR triples for ", rows, "x", cols,
                " matrix with ", csr.values_.size(), " values");
    return csr;
}

void
CsrMatrix::scaleValues(Value factor)
{
    for (Value& v : values_)
        v *= factor;
}

Index
CsrMatrix::rowNnz(Index r) const
{
    assert(r >= 0 && r < rows_);
    return rowPtr_[static_cast<std::size_t>(r) + 1] -
        rowPtr_[static_cast<std::size_t>(r)];
}

Value
CsrMatrix::at(Index r, Index c) const
{
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    auto begin = colInd_.begin() + rowPtr_[static_cast<std::size_t>(r)];
    auto end = colInd_.begin() + rowPtr_[static_cast<std::size_t>(r) + 1];
    auto it = std::lower_bound(begin, end, static_cast<CsrIndex>(c));
    if (it == end || *it != static_cast<CsrIndex>(c))
        return Value(0);
    return values_[static_cast<std::size_t>(it - colInd_.begin())];
}

DenseMatrix
CsrMatrix::toDense() const
{
    DenseMatrix dense(rows_, cols_);
    for (Index r = 0; r < rows_; ++r) {
        for (CsrIndex j = rowPtr_[static_cast<std::size_t>(r)];
             j < rowPtr_[static_cast<std::size_t>(r) + 1]; ++j) {
            dense.at(r, colInd_[static_cast<std::size_t>(j)]) =
                values_[static_cast<std::size_t>(j)];
        }
    }
    return dense;
}

CooMatrix
CsrMatrix::toCoo() const
{
    CooMatrix coo(rows_, cols_);
    for (Index r = 0; r < rows_; ++r) {
        for (CsrIndex j = rowPtr_[static_cast<std::size_t>(r)];
             j < rowPtr_[static_cast<std::size_t>(r) + 1]; ++j) {
            coo.add(r, colInd_[static_cast<std::size_t>(j)],
                    values_[static_cast<std::size_t>(j)]);
        }
    }
    // Rows are visited in order and columns are sorted within a row,
    // so the result is already canonical.
    assert(coo.isCanonical());
    return coo;
}

std::size_t
CsrMatrix::storageBytes() const
{
    return rowPtr_.size() * sizeof(CsrIndex) +
        colInd_.size() * sizeof(CsrIndex) +
        values_.size() * sizeof(Value);
}

bool
CsrMatrix::checkInvariants() const
{
    if (rowPtr_.size() != static_cast<std::size_t>(rows_) + 1)
        return false;
    if (rowPtr_.front() != 0)
        return false;
    if (rowPtr_.back() != static_cast<CsrIndex>(values_.size()))
        return false;
    if (colInd_.size() != values_.size())
        return false;
    for (std::size_t r = 0; r + 1 < rowPtr_.size(); ++r) {
        if (rowPtr_[r] > rowPtr_[r + 1])
            return false;
        for (CsrIndex j = rowPtr_[r] + 1; j < rowPtr_[r + 1]; ++j) {
            std::size_t sj = static_cast<std::size_t>(j);
            if (colInd_[sj - 1] >= colInd_[sj])
                return false;
        }
    }
    for (CsrIndex c : colInd_) {
        if (c < 0 || c >= static_cast<CsrIndex>(cols_))
            return false;
    }
    return true;
}

} // namespace smash::fmt
