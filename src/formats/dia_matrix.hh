/**
 * @file
 * Diagonal (DIA) sparse format, the structure-specialized scheme the
 * paper cites as its example of trading generality for efficiency
 * (§2.3, Saad / Belgin et al.). Every populated diagonal is stored
 * as a dense lane of length rows; a parallel array keeps the
 * diagonal offsets (col - row). DIA is extremely effective for
 * banded matrices and catastrophically wasteful for unstructured
 * ones — exactly the contrast SMASH's generality argument draws.
 */

#ifndef SMASH_FORMATS_DIA_MATRIX_HH
#define SMASH_FORMATS_DIA_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace smash::fmt
{

class CooMatrix;
class DenseMatrix;

/** Diagonal-storage sparse matrix. */
class DiaMatrix
{
  public:
    DiaMatrix() = default;

    /**
     * Build from a canonical COO matrix. Every diagonal holding at
     * least one non-zero becomes a stored lane.
     */
    static DiaMatrix fromCoo(const CooMatrix& coo);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** True non-zero count of the encoded matrix. */
    Index nnz() const { return nnz_; }

    /** Number of stored diagonals. */
    Index numDiagonals() const { return static_cast<Index>(offsets_.size()); }

    /** Diagonal offsets (col - row), ascending. */
    const std::vector<Index>& offsets() const { return offsets_; }

    /**
     * Lane payloads: numDiagonals x rows, lane-major. Lane d element
     * r holds A(r, r + offsets[d]) or 0 when that column is outside
     * the matrix or the element is zero.
     */
    const std::vector<Value>& values() const { return values_; }

    /** Pointer to the first element of lane @p d. */
    const Value* laneData(Index d) const;

    /** Expand into a dense matrix (test oracle). */
    DenseMatrix toDense() const;

    /** Bytes of offsets + lane payloads. */
    std::size_t storageBytes() const;

    /** Fraction of stored lane slots holding true non-zeros. */
    double fillEfficiency() const;

    /** Structural invariants (offset ordering, lane sizing). */
    bool checkInvariants() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    Index nnz_ = 0;
    std::vector<Index> offsets_;
    std::vector<Value> values_;
};

} // namespace smash::fmt

#endif // SMASH_FORMATS_DIA_MATRIX_HH
