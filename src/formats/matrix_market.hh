/**
 * @file
 * Matrix Market (.mtx) reader/writer for the "coordinate" format —
 * the interchange format of the SuiteSparse collection the paper
 * draws its inputs from. Supports real/integer/pattern fields and
 * general/symmetric symmetry, which covers the matrices in Table 3.
 */

#ifndef SMASH_FORMATS_MATRIX_MARKET_HH
#define SMASH_FORMATS_MATRIX_MARKET_HH

#include <iosfwd>
#include <string>

#include "formats/coo_matrix.hh"

namespace smash::fmt
{

/** Parse a Matrix Market coordinate stream into canonical COO. */
CooMatrix readMatrixMarket(std::istream& in);

/** Load a .mtx file. Throws FatalError on I/O or parse errors. */
CooMatrix readMatrixMarketFile(const std::string& path);

/** Write @p coo as a general real coordinate Matrix Market stream. */
void writeMatrixMarket(const CooMatrix& coo, std::ostream& out);

/** Save to a .mtx file. Throws FatalError on I/O errors. */
void writeMatrixMarketFile(const CooMatrix& coo, const std::string& path);

} // namespace smash::fmt

#endif // SMASH_FORMATS_MATRIX_MARKET_HH
