#include "formats/ell_matrix.hh"

#include <algorithm>

#include "common/logging.hh"
#include "formats/coo_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::fmt
{

EllMatrix
EllMatrix::fromCoo(const CooMatrix& coo)
{
    SMASH_CHECK(coo.isCanonical(),
                "ELL conversion requires a canonical COO matrix");

    EllMatrix ell;
    ell.rows_ = coo.rows();
    ell.cols_ = coo.cols();
    ell.nnz_ = coo.nnz();

    std::vector<Index> degree(static_cast<std::size_t>(coo.rows()), 0);
    for (const CooEntry& e : coo.entries())
        ++degree[static_cast<std::size_t>(e.row)];
    ell.width_ = degree.empty()
        ? 0 : *std::max_element(degree.begin(), degree.end());

    const std::size_t slab =
        static_cast<std::size_t>(ell.rows_) *
        static_cast<std::size_t>(ell.width_);
    ell.colInd_.assign(slab, kEllPad);
    ell.values_.assign(slab, Value(0));

    std::vector<Index> fill(static_cast<std::size_t>(coo.rows()), 0);
    for (const CooEntry& e : coo.entries()) {
        auto r = static_cast<std::size_t>(e.row);
        std::size_t slot = r * static_cast<std::size_t>(ell.width_) +
            static_cast<std::size_t>(fill[r]++);
        ell.colInd_[slot] = static_cast<CsrIndex>(e.col);
        ell.values_[slot] = e.value;
    }
    return ell;
}

DenseMatrix
EllMatrix::toDense() const
{
    DenseMatrix dense(rows_, cols_);
    for (Index r = 0; r < rows_; ++r) {
        for (Index k = 0; k < width_; ++k) {
            std::size_t slot = static_cast<std::size_t>(r * width_ + k);
            if (colInd_[slot] == kEllPad)
                break;
            dense.at(r, static_cast<Index>(colInd_[slot])) = values_[slot];
        }
    }
    return dense;
}

std::size_t
EllMatrix::storageBytes() const
{
    return colInd_.size() * sizeof(CsrIndex) +
        values_.size() * sizeof(Value);
}

double
EllMatrix::fillEfficiency() const
{
    if (values_.empty())
        return 1.0;
    return static_cast<double>(nnz_) / static_cast<double>(values_.size());
}

bool
EllMatrix::checkInvariants() const
{
    const std::size_t slab =
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_);
    if (colInd_.size() != slab || values_.size() != slab)
        return false;
    Index count = 0;
    for (Index r = 0; r < rows_; ++r) {
        bool in_padding = false;
        for (Index k = 0; k < width_; ++k) {
            std::size_t slot = static_cast<std::size_t>(r * width_ + k);
            if (colInd_[slot] == kEllPad) {
                in_padding = true;
                if (values_[slot] != Value(0))
                    return false;
            } else {
                // Real entries must precede padding and be in range.
                if (in_padding)
                    return false;
                if (colInd_[slot] < 0 ||
                    static_cast<Index>(colInd_[slot]) >= cols_) {
                    return false;
                }
                ++count;
            }
        }
    }
    // Padding slots count zero values; every stored real entry is a
    // true non-zero because COO drops zeros.
    return count == nnz_;
}

} // namespace smash::fmt
