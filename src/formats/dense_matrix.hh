/**
 * @file
 * Row-major dense matrix. The uncompressed reference representation
 * against which every sparse format and kernel is validated, and the
 * denominator of the paper's "total compression ratio" metric
 * (Fig. 19).
 */

#ifndef SMASH_FORMATS_DENSE_MATRIX_HH
#define SMASH_FORMATS_DENSE_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace smash::fmt
{

/** Row-major dense matrix of Value elements. */
class DenseMatrix
{
  public:
    /** Create an empty 0x0 matrix. */
    DenseMatrix() = default;

    /** Create a rows x cols matrix filled with zeros. */
    DenseMatrix(Index rows, Index cols);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** Element accessors (no bounds checking in release builds). */
    Value& at(Index r, Index c);
    Value at(Index r, Index c) const;

    /** Pointer to the first element of row @p r. */
    const Value* rowData(Index r) const;
    Value* rowData(Index r);

    /** Number of elements with a non-zero value. */
    Index countNonZeros() const;

    /** Size of the uncompressed representation in bytes. */
    std::size_t storageBytes() const;

    /** Elementwise comparison with absolute tolerance @p eps. */
    bool approxEquals(const DenseMatrix& other, Value eps) const;

    /** Raw storage (row-major), e.g. for kernels and tests. */
    const std::vector<Value>& data() const { return data_; }
    std::vector<Value>& data() { return data_; }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Value> data_;
};

} // namespace smash::fmt

#endif // SMASH_FORMATS_DENSE_MATRIX_HH
