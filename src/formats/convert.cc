#include "formats/convert.hh"

namespace smash::fmt
{

CooMatrix
denseToCoo(const DenseMatrix& dense)
{
    CooMatrix coo(dense.rows(), dense.cols());
    for (Index r = 0; r < dense.rows(); ++r) {
        for (Index c = 0; c < dense.cols(); ++c) {
            Value v = dense.at(r, c);
            if (v != Value(0))
                coo.add(r, c, v);
        }
    }
    // Emitted in row-major scan order: already canonical.
    return coo;
}

CsrMatrix
denseToCsr(const DenseMatrix& dense)
{
    return CsrMatrix::fromCoo(denseToCoo(dense));
}

CscMatrix
csrToCsc(const CsrMatrix& csr)
{
    return CscMatrix::fromCoo(csr.toCoo());
}

CsrMatrix
cscToCsr(const CscMatrix& csc)
{
    // A CSC of M has the same arrays as a CSR of M^T; reuse the COO
    // path for clarity (conversion speed is not on any hot path).
    CooMatrix coo(csc.rows(), csc.cols());
    for (Index c = 0; c < csc.cols(); ++c) {
        for (CsrIndex j = csc.colPtr()[static_cast<std::size_t>(c)];
             j < csc.colPtr()[static_cast<std::size_t>(c) + 1]; ++j) {
            coo.add(csc.rowInd()[static_cast<std::size_t>(j)], c,
                    csc.values()[static_cast<std::size_t>(j)]);
        }
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
transpose(const CsrMatrix& csr)
{
    CooMatrix coo(csr.cols(), csr.rows());
    for (Index r = 0; r < csr.rows(); ++r) {
        for (CsrIndex j = csr.rowPtr()[static_cast<std::size_t>(r)];
             j < csr.rowPtr()[static_cast<std::size_t>(r) + 1]; ++j) {
            coo.add(csr.colInd()[static_cast<std::size_t>(j)], r,
                    csr.values()[static_cast<std::size_t>(j)]);
        }
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

} // namespace smash::fmt
