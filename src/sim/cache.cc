#include "sim/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace smash::sim
{

Cache::Cache(const CacheConfig& config)
    : config_(config)
{
    SMASH_CHECK(config.ways > 0, "cache needs at least one way");
    SMASH_CHECK(config.sizeBytes %
                (static_cast<std::size_t>(config.ways) * kCacheLineBytes)
                == 0,
                config.name, ": size must be a multiple of ways*lineSize");
    numSets_ = static_cast<int>(
        config.sizeBytes /
        (static_cast<std::size_t>(config.ways) * kCacheLineBytes));
    SMASH_CHECK(numSets_ > 0, config.name, ": zero sets");
    lines_.resize(static_cast<std::size_t>(numSets_) *
                  static_cast<std::size_t>(config.ways));
}

Cache::Line*
Cache::findLine(Addr tag, std::size_t set)
{
    Line* base = lines_.data() + set * static_cast<std::size_t>(config_.ways);
    for (int w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line*
Cache::findLine(Addr tag, std::size_t set) const
{
    return const_cast<Cache*>(this)->findLine(tag, set);
}

bool
Cache::access(Addr addr)
{
    ++stats_.accesses;
    Addr line = lineOf(addr);
    Line* hit = findLine(line, setOf(line));
    if (hit) {
        hit->lastUse = ++useClock_;
        if (hit->prefetched) {
            ++stats_.prefetchHits;
            hit->prefetched = false; // count first demand use only
        }
        return true;
    }
    ++stats_.misses;
    return false;
}

void
Cache::insert(Addr addr, bool prefetched)
{
    Addr line = lineOf(addr);
    std::size_t set = setOf(line);
    Line* base = lines_.data() + set * static_cast<std::size_t>(config_.ways);
    Line* victim = base;
    for (int w = 0; w < config_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->tag = line;
    victim->valid = true;
    victim->prefetched = prefetched;
    victim->lastUse = ++useClock_;
}

void
Cache::prefetchInsert(Addr addr)
{
    Addr line = lineOf(addr);
    if (findLine(line, setOf(line)))
        return; // already resident
    insert(addr, true);
    ++stats_.prefetchInserts;
}

bool
Cache::contains(Addr addr) const
{
    Addr line = lineOf(addr);
    return findLine(line, setOf(line)) != nullptr;
}

void
Cache::flush(bool reset_stats)
{
    for (Line& line : lines_)
        line = Line{};
    useClock_ = 0;
    if (reset_stats)
        stats_ = CacheStats{};
}

} // namespace smash::sim
