#include "sim/machine.hh"

namespace smash::sim
{

Machine::Machine(const CoreConfig& core, const MemoryConfig& mem)
    : core_(core), memory_(mem)
{
}

void
Machine::load(Addr addr, std::size_t bytes, Dep dep)
{
    if (bytes == 0)
        bytes = 1;
    Addr first_line = addr / kCacheLineBytes;
    Addr last_line = (addr + bytes - 1) / kCacheLineBytes;
    Cycles worst = 0;
    for (Addr line = first_line; line <= last_line; ++line) {
        Cycles lat = memory_.access(line * kCacheLineBytes);
        worst = lat > worst ? lat : worst;
    }
    core_.finishLoad(worst, memory_.l1Latency(), dep);
}

void
Machine::store(Addr addr, std::size_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    Addr first_line = addr / kCacheLineBytes;
    Addr last_line = (addr + bytes - 1) / kCacheLineBytes;
    for (Addr line = first_line; line <= last_line; ++line)
        memory_.access(line * kCacheLineBytes);
    core_.finishStore();
}

void
Machine::deviceFetch(Addr addr, std::size_t bytes)
{
    if (bytes == 0)
        return;
    Addr first_line = addr / kCacheLineBytes;
    Addr last_line = (addr + bytes - 1) / kCacheLineBytes;
    for (Addr line = first_line; line <= last_line; ++line) {
        Cycles lat = memory_.access(line * kCacheLineBytes);
        // The fill overlaps with the core like an independent miss
        // stream, but retires no instruction.
        core_.deviceStall(lat, memory_.l1Latency());
    }
}

MachineSnapshot
Machine::snapshot() const
{
    MachineSnapshot s;
    s.instructions = core_.instructions();
    s.cycles = core_.cycles();
    s.loads = core_.loads();
    s.dramReads = memory_.dram().stats().reads;
    return s;
}

MachineDelta
Machine::delta(const MachineSnapshot& before, const MachineSnapshot& after)
{
    MachineDelta d;
    d.instructions = after.instructions - before.instructions;
    d.cycles = after.cycles - before.cycles;
    d.loads = after.loads - before.loads;
    d.dramReads = after.dramReads - before.dramReads;
    return d;
}

void
Machine::reset()
{
    core_.reset();
    memory_.reset(true);
}

} // namespace smash::sim
