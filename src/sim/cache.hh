/**
 * @file
 * A set-associative cache level with LRU replacement, modelled after
 * the zsim configuration in the paper's Table 2 (64 B lines, LRU,
 * per-level stride prefetcher). Only hit/miss state is tracked —
 * data values live in host memory; the model decides latency.
 */

#ifndef SMASH_SIM_CACHE_HH
#define SMASH_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace smash::sim
{

/** Static geometry/latency of one cache level. */
struct CacheConfig
{
    const char* name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    int ways = 8;
    Cycles latency = 2;       //!< access latency of this level
    bool prefetcher = true;   //!< attach a stride prefetcher
};

/** Hit/miss counters of one cache level. */
struct CacheStats
{
    Counter accesses = 0;
    Counter misses = 0;
    Counter prefetchInserts = 0;
    Counter prefetchHits = 0; //!< demand hits on prefetched lines
};

/** Set-associative LRU cache (tag store only). */
class Cache
{
  public:
    explicit Cache(const CacheConfig& config);

    /**
     * Look up the line containing @p addr, updating recency.
     * @retval true hit
     */
    bool access(Addr addr);

    /** Insert the line containing @p addr (LRU victim evicted). */
    void insert(Addr addr, bool prefetched = false);

    /** Insert without an access having occurred (prefetch fill). */
    void prefetchInsert(Addr addr);

    /** True when the line is resident (no recency update). */
    bool contains(Addr addr) const;

    /** Forget all lines and (optionally) zero the statistics. */
    void flush(bool reset_stats = false);

    const CacheConfig& config() const { return config_; }
    const CacheStats& stats() const { return stats_; }

    int numSets() const { return numSets_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool prefetched = false;
        std::uint64_t lastUse = 0;
    };

    Line* findLine(Addr tag, std::size_t set);
    const Line* findLine(Addr tag, std::size_t set) const;

    Addr lineOf(Addr addr) const { return addr / kCacheLineBytes; }
    std::size_t setOf(Addr line) const
    {
        return static_cast<std::size_t>(line) % numSets_;
    }

    CacheConfig config_;
    int numSets_;
    std::vector<Line> lines_; // numSets * ways, set-major
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace smash::sim

#endif // SMASH_SIM_CACHE_HH
