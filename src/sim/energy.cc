#include "sim/energy.hh"

#include <sstream>

namespace smash::sim
{

EnergyBreakdown
energyOf(const Machine& machine, const EnergyConfig& config,
         const BmuActivity* bmu)
{
    EnergyBreakdown out;
    out.corePj = config.instructionPj *
        static_cast<double>(machine.core().instructions());
    const MemoryHierarchy& mem = machine.memory();
    out.l1Pj = config.l1AccessPj *
        static_cast<double>(mem.l1().stats().accesses);
    out.l2Pj = config.l2AccessPj *
        static_cast<double>(mem.l2().stats().accesses);
    out.l3Pj = config.l3AccessPj *
        static_cast<double>(mem.l3().stats().accesses);
    out.dramPj = config.dramAccessPj *
        static_cast<double>(mem.dram().stats().reads);
    if (bmu) {
        out.bmuPj = config.bmuWordScanPj *
            static_cast<double>(bmu->wordsScanned) +
            config.bmuRefillPj * static_cast<double>(bmu->bufferRefills);
    }
    return out;
}

std::string
toString(const EnergyBreakdown& b)
{
    std::ostringstream os;
    os.precision(3);
    os << "core " << b.corePj / 1e3 << " nJ, L1 " << b.l1Pj / 1e3
       << " nJ, L2 " << b.l2Pj / 1e3 << " nJ, L3 " << b.l3Pj / 1e3
       << " nJ, DRAM " << b.dramPj / 1e3 << " nJ, BMU " << b.bmuPj / 1e3
       << " nJ; total " << b.totalNj() << " nJ";
    return os.str();
}

} // namespace smash::sim
