/**
 * @file
 * DRAM timing model: one channel, 16 banks, open-row policy
 * (Table 2). A row-buffer hit costs column access only; a conflict
 * adds precharge + activate. Addresses interleave across banks at
 * row granularity so streaming accesses hit open rows.
 */

#ifndef SMASH_SIM_DRAM_HH
#define SMASH_SIM_DRAM_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace smash::sim
{

/** DRAM timing/geometry parameters (CPU-cycle units). */
struct DramConfig
{
    int banks = 16;
    std::size_t rowBytes = 8 * 1024; //!< row-buffer size per bank
    Cycles rowHitLatency = 110;      //!< CAS only
    Cycles rowMissLatency = 170;     //!< precharge + activate + CAS
};

/** DRAM access counters. */
struct DramStats
{
    Counter reads = 0;
    Counter rowHits = 0;
    Counter rowMisses = 0;
};

/** Open-row DRAM bank model. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig& config = DramConfig{});

    /** Latency of fetching the line containing @p addr. */
    Cycles access(Addr addr);

    const DramConfig& config() const { return config_; }
    const DramStats& stats() const { return stats_; }

    /** Close all row buffers and optionally zero statistics. */
    void reset(bool reset_stats = false);

  private:
    static constexpr std::int64_t kNoRow = -1;

    DramConfig config_;
    std::array<std::int64_t, 64> openRow_{}; //!< per-bank open row id
    DramStats stats_;
};

} // namespace smash::sim

#endif // SMASH_SIM_DRAM_HH
