#include "sim/core_model.hh"

#include "common/logging.hh"

namespace smash::sim
{

CoreModel::CoreModel(const CoreConfig& config)
    : config_(config)
{
    SMASH_CHECK(config.issueWidth > 0, "issue width must be positive");
    SMASH_CHECK(config.mlp >= 1.0, "MLP factor must be >= 1");
}

void
CoreModel::finishLoad(Cycles latency, Cycles l1_latency, Dep dep)
{
    ++instructions_;
    ++loads_;
    if (dep == Dep::kDependent)
        ++dependentLoads_;
    if (latency <= l1_latency)
        return; // hit latency is covered by the pipeline
    double exposed = static_cast<double>(latency - l1_latency);
    if (dep == Dep::kDependent) {
        stallCycles_ += exposed;
    } else {
        stallCycles_ += exposed / config_.mlp;
    }
}

void
CoreModel::deviceStall(Cycles latency, Cycles l1_latency)
{
    if (latency <= l1_latency)
        return;
    stallCycles_ += static_cast<double>(latency - l1_latency) / config_.mlp;
}

double
CoreModel::cycles() const
{
    return static_cast<double>(instructions_) /
        static_cast<double>(config_.issueWidth) + stallCycles_;
}

void
CoreModel::reset()
{
    instructions_ = 0;
    loads_ = 0;
    stores_ = 0;
    dependentLoads_ = 0;
    stallCycles_ = 0.0;
}

} // namespace smash::sim
