/**
 * @file
 * Execution-model policies. Every kernel in src/kernels is a
 * template over one of these: the same source runs natively (empty
 * hooks, full compiler optimization — used for wall-clock benches
 * and correctness tests) or under simulation (each hook charges the
 * cost model).
 *
 * Hook vocabulary:
 *   op(n)                — n register/ALU/branch instructions
 *   load(ptr, bytes, d)  — one load; d marks pointer-chasing loads
 *   store(ptr, bytes)    — one store
 *   deviceFetch(p, b)    — BMU-generated traffic (no instruction)
 */

#ifndef SMASH_SIM_EXEC_MODEL_HH
#define SMASH_SIM_EXEC_MODEL_HH

#include <cstddef>

#include "sim/machine.hh"

namespace smash::sim
{

/** Zero-cost hooks: the kernel runs at native speed. */
class NativeExec
{
  public:
    static constexpr bool kSimulated = false;

    void op(int /*n*/ = 1) {}
    void load(const void* /*p*/, std::size_t /*bytes*/,
              Dep /*dep*/ = Dep::kIndependent) {}
    void store(const void* /*p*/, std::size_t /*bytes*/) {}
    void deviceFetch(const void* /*p*/, std::size_t /*bytes*/) {}
    /** Synthetic-address variants: model accesses to storage that
     *  has no host backing (the compacted bitmap streams). */
    void loadAddr(Addr /*a*/, std::size_t /*bytes*/,
                  Dep /*dep*/ = Dep::kIndependent) {}
    void deviceFetchAddr(Addr /*a*/, std::size_t /*bytes*/) {}
};

/** Hooks that drive a Machine's cost model. */
class SimExec
{
  public:
    static constexpr bool kSimulated = true;

    explicit SimExec(Machine& machine)
        : machine_(machine)
    {}

    void
    op(int n = 1)
    {
        machine_.op(n);
    }

    void
    load(const void* p, std::size_t bytes, Dep dep = Dep::kIndependent)
    {
        machine_.load(reinterpret_cast<Addr>(p), bytes, dep);
    }

    void
    store(const void* p, std::size_t bytes)
    {
        machine_.store(reinterpret_cast<Addr>(p), bytes);
    }

    void
    deviceFetch(const void* p, std::size_t bytes)
    {
        machine_.deviceFetch(reinterpret_cast<Addr>(p), bytes);
    }

    void
    loadAddr(Addr a, std::size_t bytes, Dep dep = Dep::kIndependent)
    {
        machine_.load(a, bytes, dep);
    }

    void
    deviceFetchAddr(Addr a, std::size_t bytes)
    {
        machine_.deviceFetch(a, bytes);
    }

    Machine& machine() { return machine_; }

  private:
    Machine& machine_;
};

} // namespace smash::sim

#endif // SMASH_SIM_EXEC_MODEL_HH
