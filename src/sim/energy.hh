/**
 * @file
 * First-order energy model over the simulated machine's activity
 * counters. The paper evaluates performance and area but argues
 * efficiency throughout ("performance and energy efficiency", §8);
 * this model quantifies that claim: instruction energy scales with
 * retired instructions, memory energy with per-level access counts,
 * and the BMU contributes its SRAM scan energy.
 *
 * Per-event energies are CACTI-class estimates for a ~22 nm node
 * (same technology class the paper's CACTI 6.5 area numbers use);
 * absolute joules are not the point — relative totals across
 * schemes on identical work are.
 */

#ifndef SMASH_SIM_ENERGY_HH
#define SMASH_SIM_ENERGY_HH

#include <string>

#include "sim/machine.hh"

namespace smash::sim
{

/**
 * BMU activity counters relevant to energy (mirrors the fields of
 * isa::BmuStats without creating a sim -> isa dependency; callers
 * copy the two counters over).
 */
struct BmuActivity
{
    Counter wordsScanned = 0;
    Counter bufferRefills = 0;
};

/** Per-event energy costs in picojoules. */
struct EnergyConfig
{
    double instructionPj = 6.0;  //!< average per retired instruction
                                 //!< (OOO pipeline overhead included)
    double l1AccessPj = 1.5;     //!< 32 KB 8-way read
    double l2AccessPj = 8.0;     //!< 256 KB 8-way read
    double l3AccessPj = 22.0;    //!< 1 MB 16-way slice read
    double dramAccessPj = 640.0; //!< 64-byte DDR4 line transfer
    double bmuWordScanPj = 0.4;  //!< 64-bit SRAM word scan + CLZ
    double bmuRefillPj = 4.0;    //!< one SRAM buffer-window refill
};

/** Energy totals broken down by component (picojoules). */
struct EnergyBreakdown
{
    double corePj = 0.0;
    double l1Pj = 0.0;
    double l2Pj = 0.0;
    double l3Pj = 0.0;
    double dramPj = 0.0;
    double bmuPj = 0.0;

    double
    totalPj() const
    {
        return corePj + l1Pj + l2Pj + l3Pj + dramPj + bmuPj;
    }

    /** Total in nanojoules (readability in reports). */
    double totalNj() const { return totalPj() / 1e3; }
};

/**
 * Compute the energy breakdown of everything @p machine has
 * executed since its last reset. Cache energy is charged per
 * *access at that level* (L2 is touched only on L1 misses, etc.),
 * which the hierarchy's hit counters encode directly.
 *
 * @param bmu optional: adds BMU scan/refill energy (SMASH-HW runs)
 */
EnergyBreakdown energyOf(const Machine& machine,
                         const EnergyConfig& config = EnergyConfig{},
                         const BmuActivity* bmu = nullptr);

/** One-line textual rendering (component -> nJ) for benches. */
std::string toString(const EnergyBreakdown& breakdown);

} // namespace smash::sim

#endif // SMASH_SIM_ENERGY_HH
