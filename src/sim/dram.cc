#include "sim/dram.hh"

#include "common/logging.hh"

namespace smash::sim
{

DramModel::DramModel(const DramConfig& config)
    : config_(config)
{
    SMASH_CHECK(config.banks > 0 &&
                config.banks <= static_cast<int>(openRow_.size()),
                "bank count ", config.banks, " out of range");
    SMASH_CHECK(config.rowBytes >= kCacheLineBytes,
                "row must hold at least one line");
    reset();
}

Cycles
DramModel::access(Addr addr)
{
    ++stats_.reads;
    // Row-granularity bank interleaving: consecutive rows map to
    // consecutive banks, lines within a row stay in one bank.
    Addr row_global = addr / config_.rowBytes;
    std::size_t bank =
        static_cast<std::size_t>(row_global %
                                 static_cast<Addr>(config_.banks));
    std::int64_t row = static_cast<std::int64_t>(
        row_global / static_cast<Addr>(config_.banks));
    if (openRow_[bank] == row) {
        ++stats_.rowHits;
        return config_.rowHitLatency;
    }
    ++stats_.rowMisses;
    openRow_[bank] = row;
    return config_.rowMissLatency;
}

void
DramModel::reset(bool reset_stats)
{
    openRow_.fill(kNoRow);
    if (reset_stats)
        stats_ = DramStats{};
}

} // namespace smash::sim
