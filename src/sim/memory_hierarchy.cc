#include "sim/memory_hierarchy.hh"

namespace smash::sim
{

MemoryHierarchy::MemoryHierarchy(const MemoryConfig& config)
    : l1_(config.l1), l2_(config.l2), l3_(config.l3), dram_(config.dram)
{
}

Cycles
MemoryHierarchy::access(Addr addr, HitLevel* level_out)
{
    ++stats_.accesses;

    HitLevel level;
    Cycles latency;
    if (l1_.access(addr)) {
        level = HitLevel::kL1;
        latency = l1_.config().latency;
    } else if (l2_.access(addr)) {
        level = HitLevel::kL2;
        latency = l1_.config().latency + l2_.config().latency;
        l1_.insert(addr);
    } else if (l3_.access(addr)) {
        level = HitLevel::kL3;
        latency = l1_.config().latency + l2_.config().latency +
            l3_.config().latency;
        l2_.insert(addr);
        l1_.insert(addr);
    } else {
        level = HitLevel::kDram;
        latency = l1_.config().latency + l2_.config().latency +
            l3_.config().latency + dram_.access(addr);
        l3_.insert(addr);
        l2_.insert(addr);
        l1_.insert(addr);
    }
    ++stats_.hitsAt[static_cast<std::size_t>(level)];
    if (level_out)
        *level_out = level;

    // The innermost enabled prefetcher observes the demand stream;
    // its fills propagate outward, which subsumes what the outer
    // levels' stride prefetchers would learn from the same stream
    // (Table 2 attaches one per level; modelling the innermost one
    // keeps the behaviour while saving two table walks per access).
    if (l1_.config().prefetcher) {
        runPrefetcher(l1_, pfL1_, addr);
    } else if (l2_.config().prefetcher) {
        runPrefetcher(l2_, pfL2_, addr);
    } else if (l3_.config().prefetcher) {
        runPrefetcher(l3_, pfL3_, addr);
    }

    return latency;
}

void
MemoryHierarchy::runPrefetcher(Cache& cache, StridePrefetcher& pf, Addr addr)
{
    std::array<Addr, StridePrefetcher::kMaxIssue> targets;
    int n = pf.observe(addr, targets);
    for (int i = 0; i < n; ++i) {
        cache.prefetchInsert(targets[static_cast<std::size_t>(i)]);
        // A prefetch into an inner level also warms the outer ones,
        // as the fill travels through them.
        if (&cache == &l1_) {
            l2_.prefetchInsert(targets[static_cast<std::size_t>(i)]);
            l3_.prefetchInsert(targets[static_cast<std::size_t>(i)]);
        } else if (&cache == &l2_) {
            l3_.prefetchInsert(targets[static_cast<std::size_t>(i)]);
        }
    }
}

void
MemoryHierarchy::prefetchFill(int level, Addr addr)
{
    if (level <= 0)
        l1_.prefetchInsert(addr);
    if (level <= 1)
        l2_.prefetchInsert(addr);
    if (level <= 2)
        l3_.prefetchInsert(addr);
}

void
MemoryHierarchy::reset(bool reset_stats)
{
    l1_.flush(reset_stats);
    l2_.flush(reset_stats);
    l3_.flush(reset_stats);
    dram_.reset(reset_stats);
    pfL1_.reset();
    pfL2_.reset();
    pfL3_.reset();
    if (reset_stats)
        stats_ = MemoryStats{};
}

} // namespace smash::sim
