#include "sim/prefetcher.hh"

#include <cstdlib>

namespace smash::sim
{

int
StridePrefetcher::observe(Addr addr, std::array<Addr, kMaxIssue>& out)
{
    const Addr line = addr / kCacheLineBytes;
    ++useClock_;

    // Find the stream this access extends: the one whose last line
    // is within kMaxStride of it.
    Stream* match = nullptr;
    for (Stream& s : streams_) {
        if (!s.valid)
            continue;
        std::int64_t delta = static_cast<std::int64_t>(line) -
            static_cast<std::int64_t>(s.lastLine);
        if (delta != 0 && std::llabs(delta) <= kMaxStride) {
            match = &s;
            break;
        }
        if (delta == 0) {
            s.lastUse = useClock_;
            return 0; // same line again: nothing to learn
        }
    }

    if (!match) {
        // Allocate (LRU) a fresh stream with unknown stride.
        Stream* victim = &streams_[0];
        for (Stream& s : streams_) {
            if (!s.valid) {
                victim = &s;
                break;
            }
            if (s.lastUse < victim->lastUse)
                victim = &s;
        }
        *victim = Stream{line, 0, 0, true, useClock_};
        return 0;
    }

    std::int64_t delta = static_cast<std::int64_t>(line) -
        static_cast<std::int64_t>(match->lastLine);
    if (match->stride == delta) {
        if (++match->confidence == 2)
            ++stats_.trained;
    } else {
        match->stride = delta;
        match->confidence = 0;
    }
    match->lastLine = line;
    match->lastUse = useClock_;

    if (match->confidence < 2)
        return 0;

    // Trained: run kDistance lines ahead, issuing up to kMaxIssue.
    int issued = 0;
    for (int i = 1; i <= kMaxIssue; ++i) {
        std::int64_t target = static_cast<std::int64_t>(line) +
            match->stride * (kDistance + i - 1);
        if (target < 0)
            break;
        out[static_cast<std::size_t>(issued++)] =
            static_cast<Addr>(target) * kCacheLineBytes;
        ++stats_.issued;
    }
    return issued;
}

void
StridePrefetcher::reset()
{
    streams_ = {};
    useClock_ = 0;
}

} // namespace smash::sim
