/**
 * @file
 * Stream/stride prefetcher (Table 2 attaches one to every cache
 * level). Tracks a small table of access streams; once a stream
 * shows a stable line stride it issues prefetches ahead of the
 * demand stream. Sequential CSR/NZA/bitmap traffic trains it within
 * a couple of lines; irregular x-vector gathers never do — which is
 * precisely the asymmetry the paper's indexing argument relies on.
 */

#ifndef SMASH_SIM_PREFETCHER_HH
#define SMASH_SIM_PREFETCHER_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace smash::sim
{

/** Prefetcher activity counters. */
struct PrefetcherStats
{
    Counter trained = 0;  //!< streams that reached a stable stride
    Counter issued = 0;   //!< prefetch requests emitted
};

/**
 * Table-based stride prefetcher operating on cache-line numbers.
 * On each demand access the owner calls observe(); any returned
 * lines should be inserted into the owning cache.
 */
class StridePrefetcher
{
  public:
    StridePrefetcher() = default;

    /** Maximum prefetches returned by a single observe() call. */
    static constexpr int kMaxIssue = 2;

    /**
     * Record a demand access to @p addr.
     * @param out filled with up to kMaxIssue prefetch addresses
     * @return number of prefetch addresses written to @p out
     */
    int observe(Addr addr, std::array<Addr, kMaxIssue>& out);

    const PrefetcherStats& stats() const { return stats_; }

    /** Drop all training state. */
    void reset();

  private:
    static constexpr int kStreams = 16;
    /** Strides larger than this never train (not a stream). */
    static constexpr std::int64_t kMaxStride = 8;
    /** Lines to run ahead of a trained stream. */
    static constexpr std::int64_t kDistance = 4;

    struct Stream
    {
        Addr lastLine = 0;
        std::int64_t stride = 0;
        int confidence = 0; //!< consecutive stride confirmations
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::array<Stream, kStreams> streams_{};
    std::uint64_t useClock_ = 0;
    PrefetcherStats stats_;
};

} // namespace smash::sim

#endif // SMASH_SIM_PREFETCHER_HH
