/**
 * @file
 * Three-level cache hierarchy + DRAM, configured per the paper's
 * Table 2 (32 KB L1 / 256 KB L2 / 1 MB L3, 64 B lines, LRU, stride
 * prefetchers, DDR4 open-row). access() walks the levels, fills on
 * the way back, runs each level's prefetcher, and returns the load-
 * to-use latency the core model turns into stall cycles.
 */

#ifndef SMASH_SIM_MEMORY_HIERARCHY_HH
#define SMASH_SIM_MEMORY_HIERARCHY_HH

#include <array>
#include <memory>
#include <vector>

#include "sim/cache.hh"
#include "sim/dram.hh"
#include "sim/prefetcher.hh"

namespace smash::sim
{

/** Whole-hierarchy configuration (defaults = paper Table 2). */
struct MemoryConfig
{
    CacheConfig l1{"L1", 32 * 1024, 8, 2, true};
    CacheConfig l2{"L2", 256 * 1024, 8, 8, true};
    CacheConfig l3{"L3", 1024 * 1024, 16, 20, true};
    DramConfig dram{};
};

/** Where a demand access was satisfied. */
enum class HitLevel { kL1, kL2, kL3, kDram };

/** Aggregate demand-access counters. */
struct MemoryStats
{
    Counter accesses = 0;
    std::array<Counter, 4> hitsAt{}; //!< indexed by HitLevel
};

/** The cache/DRAM stack behind the simulated core. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig& config = MemoryConfig{});

    /**
     * Perform one demand access (line granularity).
     * @param addr byte address
     * @param level_out optional: where the access hit
     * @return load-to-use latency in cycles
     */
    Cycles access(Addr addr, HitLevel* level_out = nullptr);

    /** Latency of an L1 hit (pipeline-covered baseline). */
    Cycles l1Latency() const { return l1_.config().latency; }

    const Cache& l1() const { return l1_; }
    const Cache& l2() const { return l2_; }
    const Cache& l3() const { return l3_; }
    const DramModel& dram() const { return dram_; }
    const MemoryStats& stats() const { return stats_; }

    /** Invalidate everything (fresh run) and optionally zero stats. */
    void reset(bool reset_stats = true);

  private:
    /** Run @p cache's prefetcher for a demand access to @p addr. */
    void runPrefetcher(Cache& cache, StridePrefetcher& pf, Addr addr);

    /** Fill @p addr into a level as a prefetch, modelling the fetch
     *  from the levels below (no latency charged to the core). */
    void prefetchFill(int level, Addr addr);

    Cache l1_;
    Cache l2_;
    Cache l3_;
    DramModel dram_;
    StridePrefetcher pfL1_;
    StridePrefetcher pfL2_;
    StridePrefetcher pfL3_;
    MemoryStats stats_;
};

} // namespace smash::sim

#endif // SMASH_SIM_MEMORY_HIERARCHY_HH
