/**
 * @file
 * Binary encoding and textual assembly for the five SMASH ISA
 * instructions (paper §4.3, Table 1). The paper specifies operand
 * *meanings* but not an encoding; this module pins down a concrete
 * RISC-style 32-bit format so the ISA can be stored, disassembled
 * and executed as data:
 *
 *   [31:26] opcode   (MATINFO..RDIND)
 *   [25:24] grp      (BMU group, 0..3)
 *   [23:19] rs1      (source register)
 *   [18:14] rs2      (source register)
 *   [13:9]  rd1      (destination register)
 *   [8:4]   rd2      (destination register)
 *   [3:0]   imm4     (bitmap level / buffer selector)
 *
 * Large operands (matrix dimensions, compression ratios, bitmap
 * addresses) live in general-purpose registers, exactly as the
 * Table 1 mnemonics suggest (e.g. `matinfo row,col,grp` reads the
 * row and column counts from two registers).
 */

#ifndef SMASH_ISA_ENCODING_HH
#define SMASH_ISA_ENCODING_HH

#include <cstdint>
#include <string>

namespace smash::isa
{

/** Raw 32-bit instruction word. */
using InstWord = std::uint32_t;

/** The five SMASH opcodes. */
enum class Opcode : std::uint8_t
{
    kMatinfo = 1,  //!< matinfo rs1(rows), rs2(cols), grp
    kBmapinfo = 2, //!< bmapinfo rs1(comp), imm4(lvl), grp
    kRdbmap = 3,   //!< rdbmap [rs1](mem), imm4(buf), grp
    kPbmap = 4,    //!< pbmap grp
    kRdind = 5,    //!< rdind rd1(row), rd2(col), grp
};

/** Number of general-purpose registers addressable by the ISA. */
inline constexpr int kNumRegisters = 32;

/** Decoded instruction. Unused fields are zero. */
struct Instruction
{
    Opcode op = Opcode::kPbmap;
    int grp = 0;  //!< BMU group, 0..3
    int rs1 = 0;  //!< source register index
    int rs2 = 0;  //!< source register index
    int rd1 = 0;  //!< destination register index
    int rd2 = 0;  //!< destination register index
    int imm4 = 0; //!< small immediate (level / buffer selector)

    bool operator==(const Instruction& other) const = default;

    // Convenience factories (validated).
    static Instruction matinfo(int rows_reg, int cols_reg, int grp);
    static Instruction bmapinfo(int comp_reg, int lvl, int grp);
    static Instruction rdbmap(int mem_reg, int buf, int grp);
    static Instruction pbmap(int grp);
    static Instruction rdind(int row_reg, int col_reg, int grp);
};

/** Pack @p inst into its 32-bit word. @throws FatalError on
 *  out-of-range fields. */
InstWord encode(const Instruction& inst);

/** Unpack a 32-bit word. @throws FatalError on an unknown opcode or
 *  malformed fields. */
Instruction decode(InstWord word);

/** Render one instruction in assembly syntax, e.g.
 *  "matinfo r1, r2, g0" or "rdbmap [r4], 2, g1". */
std::string toAssembly(const Instruction& inst);

/**
 * Parse one line of assembly (the inverse of toAssembly). Accepts
 * flexible whitespace; comments start with '#'.
 * @throws FatalError on syntax errors
 */
Instruction parseAssembly(const std::string& line);

} // namespace smash::isa

#endif // SMASH_ISA_ENCODING_HH
