/**
 * @file
 * Analytic area model for the BMU (paper §7.6). The paper sizes the
 * BMU at 4 groups x 3 x 256 B SRAM buffers (3 KiB) plus 140 B of
 * registers and reports, via CACTI 6.5, an overhead of at most
 * 0.076% of a modern Xeon core. We reproduce the arithmetic with a
 * CACTI-class density model: high-density 6T SRAM bit cells with a
 * periphery multiplier, and flop-based registers.
 */

#ifndef SMASH_ISA_AREA_MODEL_HH
#define SMASH_ISA_AREA_MODEL_HH

#include <cstddef>

namespace smash::isa
{

/** Technology/area assumptions (defaults: 14 nm-class values). */
struct AreaParams
{
    /** High-density 6T SRAM bit cell area, um^2 (14 nm ~= 0.08). */
    double sramBitCellUm2 = 0.080;
    /** Multiplier for decoders/sense amps around small arrays. */
    double sramPeripheryFactor = 2.0;
    /** Scan/output flop area per bit, um^2. */
    double registerBitUm2 = 0.8;
    /** Area of the scan/index compute logic, um^2 (shift/priority
     *  encoders + two dividers' worth of logic per group). */
    double logicUm2PerGroup = 250.0;
    /**
     * Reference core area, mm^2: one Xeon-class core with private
     * L1/L2 (Intel Xeon E5-2698-class core, 14 nm).
     */
    double coreAreaMm2 = 8.25;
};

/** BMU sizing knobs (defaults = the paper's configuration). */
struct BmuSizing
{
    int groups = 4;
    int buffersPerGroup = 3;
    std::size_t bufferBytes = 256;
    std::size_t registerBytes = 140;
};

/** Computed area figures. */
struct AreaReport
{
    double sramBytes = 0;      //!< total SRAM capacity
    double sramAreaMm2 = 0;
    double registerAreaMm2 = 0;
    double logicAreaMm2 = 0;
    double totalAreaMm2 = 0;
    double coreOverheadPct = 0; //!< total / core area * 100
};

/** Evaluate the area model. */
AreaReport computeBmuArea(const BmuSizing& sizing = BmuSizing{},
                          const AreaParams& params = AreaParams{});

} // namespace smash::isa

#endif // SMASH_ISA_AREA_MODEL_HH
