#include "isa/encoding.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/bmu.hh"

namespace smash::isa
{

namespace
{

void
checkReg(int r, const char* what)
{
    SMASH_CHECK(r >= 0 && r < kNumRegisters,
                what, " register r", r, " out of range [0, ",
                kNumRegisters, ")");
}

void
checkGrp(int grp)
{
    SMASH_CHECK(grp >= 0 && grp < Bmu::kGroups,
                "group g", grp, " out of range [0, ", Bmu::kGroups, ")");
}

void
checkImm(int imm)
{
    SMASH_CHECK(imm >= 0 && imm < 16, "immediate ", imm,
                " out of 4-bit range");
}

void
validate(const Instruction& inst)
{
    checkGrp(inst.grp);
    checkReg(inst.rs1, "rs1");
    checkReg(inst.rs2, "rs2");
    checkReg(inst.rd1, "rd1");
    checkReg(inst.rd2, "rd2");
    checkImm(inst.imm4);
    switch (inst.op) {
      case Opcode::kMatinfo:
      case Opcode::kBmapinfo:
      case Opcode::kRdbmap:
      case Opcode::kPbmap:
      case Opcode::kRdind:
        break;
      default:
        SMASH_FATAL("unknown opcode ",
                    static_cast<int>(inst.op));
    }
}

} // namespace

Instruction
Instruction::matinfo(int rows_reg, int cols_reg, int grp)
{
    Instruction inst;
    inst.op = Opcode::kMatinfo;
    inst.rs1 = rows_reg;
    inst.rs2 = cols_reg;
    inst.grp = grp;
    validate(inst);
    return inst;
}

Instruction
Instruction::bmapinfo(int comp_reg, int lvl, int grp)
{
    Instruction inst;
    inst.op = Opcode::kBmapinfo;
    inst.rs1 = comp_reg;
    inst.imm4 = lvl;
    inst.grp = grp;
    validate(inst);
    return inst;
}

Instruction
Instruction::rdbmap(int mem_reg, int buf, int grp)
{
    Instruction inst;
    inst.op = Opcode::kRdbmap;
    inst.rs1 = mem_reg;
    inst.imm4 = buf;
    inst.grp = grp;
    validate(inst);
    return inst;
}

Instruction
Instruction::pbmap(int grp)
{
    Instruction inst;
    inst.op = Opcode::kPbmap;
    inst.grp = grp;
    validate(inst);
    return inst;
}

Instruction
Instruction::rdind(int row_reg, int col_reg, int grp)
{
    Instruction inst;
    inst.op = Opcode::kRdind;
    inst.rd1 = row_reg;
    inst.rd2 = col_reg;
    inst.grp = grp;
    validate(inst);
    return inst;
}

InstWord
encode(const Instruction& inst)
{
    validate(inst);
    return (static_cast<InstWord>(inst.op) << 26) |
        (static_cast<InstWord>(inst.grp) << 24) |
        (static_cast<InstWord>(inst.rs1) << 19) |
        (static_cast<InstWord>(inst.rs2) << 14) |
        (static_cast<InstWord>(inst.rd1) << 9) |
        (static_cast<InstWord>(inst.rd2) << 4) |
        static_cast<InstWord>(inst.imm4);
}

Instruction
decode(InstWord word)
{
    Instruction inst;
    inst.op = static_cast<Opcode>((word >> 26) & 0x3f);
    inst.grp = static_cast<int>((word >> 24) & 0x3);
    inst.rs1 = static_cast<int>((word >> 19) & 0x1f);
    inst.rs2 = static_cast<int>((word >> 14) & 0x1f);
    inst.rd1 = static_cast<int>((word >> 9) & 0x1f);
    inst.rd2 = static_cast<int>((word >> 4) & 0x1f);
    inst.imm4 = static_cast<int>(word & 0xf);
    validate(inst);
    return inst;
}

std::string
toAssembly(const Instruction& inst)
{
    std::ostringstream os;
    switch (inst.op) {
      case Opcode::kMatinfo:
        os << "matinfo r" << inst.rs1 << ", r" << inst.rs2 << ", g"
           << inst.grp;
        break;
      case Opcode::kBmapinfo:
        os << "bmapinfo r" << inst.rs1 << ", " << inst.imm4 << ", g"
           << inst.grp;
        break;
      case Opcode::kRdbmap:
        os << "rdbmap [r" << inst.rs1 << "], " << inst.imm4 << ", g"
           << inst.grp;
        break;
      case Opcode::kPbmap:
        os << "pbmap g" << inst.grp;
        break;
      case Opcode::kRdind:
        os << "rdind r" << inst.rd1 << ", r" << inst.rd2 << ", g"
           << inst.grp;
        break;
    }
    return os.str();
}

namespace
{

/** Split an operand list on commas, trimming whitespace. */
std::vector<std::string>
splitOperands(const std::string& s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    for (std::string& tok : out) {
        auto b = tok.find_first_not_of(" \t");
        auto e = tok.find_last_not_of(" \t");
        tok = b == std::string::npos
            ? std::string{} : tok.substr(b, e - b + 1);
    }
    std::erase_if(out, [](const std::string& t) { return t.empty(); });
    return out;
}

int
parsePrefixed(const std::string& tok, char prefix, const char* what)
{
    SMASH_CHECK(tok.size() >= 2 && tok[0] == prefix,
                "expected ", what, " operand like '", prefix,
                "N', got '", tok, "'");
    for (std::size_t i = 1; i < tok.size(); ++i)
        SMASH_CHECK(std::isdigit(static_cast<unsigned char>(tok[i])),
                    "malformed ", what, " operand '", tok, "'");
    return std::stoi(tok.substr(1));
}

int
parsePlainInt(const std::string& tok, const char* what)
{
    SMASH_CHECK(!tok.empty(), "missing ", what, " operand");
    for (char c : tok)
        SMASH_CHECK(std::isdigit(static_cast<unsigned char>(c)),
                    "malformed ", what, " operand '", tok, "'");
    return std::stoi(tok);
}

int
parseMemReg(const std::string& tok)
{
    SMASH_CHECK(tok.size() >= 4 && tok.front() == '[' && tok.back() == ']',
                "expected memory operand like '[rN]', got '", tok, "'");
    return parsePrefixed(tok.substr(1, tok.size() - 2), 'r', "memory");
}

} // namespace

Instruction
parseAssembly(const std::string& line)
{
    // Strip comments and surrounding whitespace.
    std::string s = line.substr(0, line.find('#'));
    auto b = s.find_first_not_of(" \t");
    SMASH_CHECK(b != std::string::npos, "empty assembly line");
    auto sp = s.find_first_of(" \t", b);
    std::string mnemonic = s.substr(b, sp - b);
    std::vector<std::string> ops =
        sp == std::string::npos
        ? std::vector<std::string>{} : splitOperands(s.substr(sp));

    auto want = [&](std::size_t n) {
        SMASH_CHECK(ops.size() == n, mnemonic, " expects ", n,
                    " operands, got ", ops.size());
    };

    if (mnemonic == "matinfo") {
        want(3);
        return Instruction::matinfo(parsePrefixed(ops[0], 'r', "register"),
                                    parsePrefixed(ops[1], 'r', "register"),
                                    parsePrefixed(ops[2], 'g', "group"));
    }
    if (mnemonic == "bmapinfo") {
        want(3);
        return Instruction::bmapinfo(parsePrefixed(ops[0], 'r', "register"),
                                     parsePlainInt(ops[1], "level"),
                                     parsePrefixed(ops[2], 'g', "group"));
    }
    if (mnemonic == "rdbmap") {
        want(3);
        return Instruction::rdbmap(parseMemReg(ops[0]),
                                   parsePlainInt(ops[1], "buffer"),
                                   parsePrefixed(ops[2], 'g', "group"));
    }
    if (mnemonic == "pbmap") {
        want(1);
        return Instruction::pbmap(parsePrefixed(ops[0], 'g', "group"));
    }
    if (mnemonic == "rdind") {
        want(3);
        return Instruction::rdind(parsePrefixed(ops[0], 'r', "register"),
                                  parsePrefixed(ops[1], 'r', "register"),
                                  parsePrefixed(ops[2], 'g', "group"));
    }
    SMASH_FATAL("unknown mnemonic '", mnemonic, "'");
}

} // namespace smash::isa
