/**
 * @file
 * Programmatic execution of SMASH instruction streams: a register
 * file, a bitmap address table (standing in for virtual memory) and
 * an executor that drives a Bmu from encoded instructions. This
 * closes the loop on the paper's §4.3 claim that the ISA is
 * "sufficiently rich to express a wide variety of operations": an
 * indexing routine is literally a program over the five opcodes,
 * runnable and traceable.
 */

#ifndef SMASH_ISA_PROGRAM_HH
#define SMASH_ISA_PROGRAM_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "core/bitmap.hh"
#include "isa/bmu.hh"
#include "isa/encoding.hh"

namespace smash::isa
{

/** An ordered list of encoded SMASH instructions. */
class BmuProgram
{
  public:
    BmuProgram() = default;

    /** Append an instruction. @return *this for chaining. */
    BmuProgram& push(const Instruction& inst);

    /** Assemble a multi-line listing ('#' comments, blank lines ok). */
    static BmuProgram assemble(const std::string& listing);

    std::size_t size() const { return words_.size(); }
    const std::vector<InstWord>& words() const { return words_; }

    /** Disassemble into one mnemonic per line. */
    std::string disassemble() const;

  private:
    std::vector<InstWord> words_;
};

/** One executed instruction in an execution trace. */
struct TraceEntry
{
    std::size_t pc = 0;       //!< index into the program
    Instruction inst;         //!< decoded instruction
    bool pbmapValid = false;  //!< PBMAP only: block found?
    Index rowOut = -1;        //!< RDIND only: row register value
    Index colOut = -1;        //!< RDIND only: column register value
};

/**
 * Executes BmuPrograms against a Bmu. Registers are 64-bit; the
 * RDBMAP memory operand is resolved through a bitmap table that
 * maps an address (register value) to bitmap storage, standing in
 * for the process address space.
 */
template <typename E>
class BmuExecutor
{
  public:
    BmuExecutor(Bmu& bmu, E& exec)
        : bmu_(bmu), exec_(exec)
    {}

    /** Write general-purpose register @p r. */
    void
    setRegister(int r, std::uint64_t value)
    {
        SMASH_CHECK(r >= 0 && r < kNumRegisters, "register out of range");
        regs_[static_cast<std::size_t>(r)] = value;
    }

    std::uint64_t
    getRegister(int r) const
    {
        SMASH_CHECK(r >= 0 && r < kNumRegisters, "register out of range");
        return regs_[static_cast<std::size_t>(r)];
    }

    /** Bind address @p addr to @p bitmap for RDBMAP resolution. */
    void
    mapBitmap(std::uint64_t addr, const core::Bitmap* bitmap)
    {
        bitmaps_[addr] = bitmap;
    }

    /** True when the last executed PBMAP found a block. */
    bool lastPbmapValid() const { return last_pbmap_valid_; }

    /**
     * Execute one instruction.
     * @return for PBMAP, whether a block was found; true otherwise
     */
    bool
    step(const Instruction& inst)
    {
        switch (inst.op) {
          case Opcode::kMatinfo:
            bmu_.matinfo(
                static_cast<Index>(reg(inst.rs1)),
                static_cast<Index>(reg(inst.rs2)), inst.grp, exec_);
            return true;
          case Opcode::kBmapinfo:
            bmu_.bmapinfo(static_cast<Index>(reg(inst.rs1)), inst.imm4,
                          inst.grp, exec_);
            return true;
          case Opcode::kRdbmap: {
            auto it = bitmaps_.find(reg(inst.rs1));
            SMASH_CHECK(it != bitmaps_.end(),
                        "rdbmap: no bitmap mapped at address ",
                        reg(inst.rs1));
            bmu_.rdbmap(it->second, inst.imm4, inst.grp, exec_);
            return true;
          }
          case Opcode::kPbmap:
            last_pbmap_valid_ = bmu_.pbmap(inst.grp, exec_);
            return last_pbmap_valid_;
          case Opcode::kRdind: {
            Index row = 0, col = 0;
            bmu_.rdind(row, col, inst.grp, exec_);
            regs_[static_cast<std::size_t>(inst.rd1)] =
                static_cast<std::uint64_t>(row);
            regs_[static_cast<std::size_t>(inst.rd2)] =
                static_cast<std::uint64_t>(col);
            return true;
          }
        }
        SMASH_PANIC("unreachable opcode");
    }

    /**
     * Run a whole program front to back, optionally recording a
     * trace. PBMAP results do not alter control flow (the five-
     * instruction ISA has no branches; loops live in the host
     * program, as in the paper's Algorithms 1-2).
     */
    void
    run(const BmuProgram& program, std::vector<TraceEntry>* trace = nullptr)
    {
        for (std::size_t pc = 0; pc < program.size(); ++pc) {
            Instruction inst = decode(program.words()[pc]);
            bool ok = step(inst);
            if (trace) {
                TraceEntry entry;
                entry.pc = pc;
                entry.inst = inst;
                if (inst.op == Opcode::kPbmap) {
                    entry.pbmapValid = ok;
                } else if (inst.op == Opcode::kRdind) {
                    entry.rowOut = static_cast<Index>(reg(inst.rd1));
                    entry.colOut = static_cast<Index>(reg(inst.rd2));
                }
                trace->push_back(entry);
            }
        }
    }

  private:
    std::uint64_t
    reg(int r) const
    {
        return regs_[static_cast<std::size_t>(r)];
    }

    Bmu& bmu_;
    E& exec_;
    std::array<std::uint64_t, kNumRegisters> regs_{};
    std::unordered_map<std::uint64_t, const core::Bitmap*> bitmaps_;
    bool last_pbmap_valid_ = false;
};

/** Render a trace as human-readable lines (for examples/debugging). */
std::string formatTrace(const std::vector<TraceEntry>& trace);

} // namespace smash::isa

#endif // SMASH_ISA_PROGRAM_HH
