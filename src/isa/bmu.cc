#include "isa/bmu.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace smash::isa
{

Bmu::Group&
Bmu::group(int grp)
{
    SMASH_CHECK(grp >= 0 && grp < kGroups, "BMU group ", grp,
                " out of range [0,", kGroups, ")");
    return groups_[static_cast<std::size_t>(grp)];
}

const Bmu::Group&
Bmu::group(int grp) const
{
    SMASH_CHECK(grp >= 0 && grp < kGroups, "BMU group ", grp,
                " out of range [0,", kGroups, ")");
    return groups_[static_cast<std::size_t>(grp)];
}

void
Bmu::setRatio(int grp, int lvl, Index comp)
{
    SMASH_CHECK(lvl >= 0 && lvl < kBuffersPerGroup,
                "BMU level ", lvl, " out of range");
    SMASH_CHECK(comp >= 2 && comp <= kMaxRatio,
                "compression ratio ", comp,
                " outside the BMU's supported range [2,", kMaxRatio, "]");
    Group& g = group(grp);
    g.ratio[static_cast<std::size_t>(lvl)] = comp;
    g.levels = std::max(g.levels, lvl + 1);
    // Reconfiguring invalidates any scan in progress.
    resetScan(grp);
}

void
Bmu::attachBitmap(int grp, int buf, const core::Bitmap* bitmap)
{
    SMASH_CHECK(buf >= 0 && buf < kBuffersPerGroup,
                "BMU buffer ", buf, " out of range");
    Group& g = group(grp);
    g.bitmap[static_cast<std::size_t>(buf)] = bitmap;
    g.windowWord[static_cast<std::size_t>(buf)] = -1;
    resetScan(grp);
}

void
Bmu::resetScan(int grp)
{
    Group& g = group(grp);
    g.cur.fill(0);
    g.end.fill(0);
    g.scanFrom.fill(0);
    g.scanTo.fill(0);
    g.levelPos = -1;
    g.nzaBlock = -1;
    g.exhausted = false;
}

void
Bmu::clearGroup(int grp)
{
    group(grp) = Group{};
}

void
Bmu::requireConfigured(const Group& g)
{
    SMASH_CHECK(g.levels >= 1,
                "BMU group used before BMAPINFO configured any level");
    for (int lvl = 0; lvl < g.levels; ++lvl) {
        SMASH_CHECK(g.bitmap[static_cast<std::size_t>(lvl)] != nullptr,
                    "BMU level ", lvl, " has no bitmap attached "
                    "(missing RDBMAP)");
    }
}

std::size_t
Bmu::windowBytes(const core::Bitmap& bitmap, Index word)
{
    Index words_left = bitmap.numWords() - word;
    Index words = std::min<Index>(kWindowWords, words_left);
    return static_cast<std::size_t>(words) * sizeof(BitWord);
}

} // namespace smash::isa
