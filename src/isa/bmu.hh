/**
 * @file
 * Bitmap Management Unit (paper §4.2) and the five-instruction
 * SMASH ISA (§4.3, Table 1).
 *
 * The BMU holds up to kGroups independent groups, each with
 * kBuffersPerGroup 256-byte SRAM buffers (one per bitmap level),
 * parameter registers, and row/column output registers.
 *
 * Functional model: each group walks its bitmap hierarchy depth-
 * first exactly like the software cursor, producing Bitmap-0 set
 * bits in order.
 *
 * Timing model: every ISA instruction retires one instruction on
 * the issuing core (charged via the execution-model hooks). The
 * scan itself is hardware logic and costs the core nothing; the
 * only memory cost is SRAM-buffer refills (overlapped device
 * traffic, no core instructions).
 *
 * Refills follow the paper's Fig. 4b compact storage: only the
 * bitmap groups under set parent bits exist in memory, and the
 * depth-first scan consumes each level's compact stream strictly
 * in order. The model therefore charges, per descent into a parent
 * bit, the next `ratio` bits of the child level's compact stream,
 * fetching 64-byte lines at synthetic sequential addresses. The top
 * level is stored whole (it has no parent) and is fetched at its
 * real addresses, one line window at a time.
 */

#ifndef SMASH_ISA_BMU_HH
#define SMASH_ISA_BMU_HH

#include <array>
#include <bit>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "core/bitmap.hh"
#include "core/hierarchy_config.hh"

namespace smash::isa
{

/** BMU activity counters (per BMU, summed over groups). */
struct BmuStats
{
    Counter pbmapCalls = 0;
    Counter bufferRefills = 0;
    Counter wordsScanned = 0;
};

/** The Bitmap Management Unit. */
class Bmu
{
  public:
    static constexpr int kGroups = 4;
    static constexpr int kBuffersPerGroup = 3;
    static constexpr int kBufferBytes = 256;
    /** Max compression ratio supported (bits per buffer, §4.2.1). */
    static constexpr Index kMaxRatio = kBufferBytes * 8;

    Bmu() = default;

    /**
     * MATINFO row,col,grp — load matrix dimensions into the group's
     * parameter registers. `col` is the padded column count used for
     * row/column arithmetic.
     */
    template <typename E>
    void
    matinfo(Index rows, Index cols, int grp, E& e)
    {
        e.op(1);
        group(grp).rows = rows;
        group(grp).cols = cols;
    }

    /** BMAPINFO comp,lvl,grp — set the compression ratio of level
     *  @p lvl. Also (re)defines the number of active levels as the
     *  highest configured lvl + 1. */
    template <typename E>
    void
    bmapinfo(Index comp, int lvl, int grp, E& e)
    {
        e.op(1);
        setRatio(grp, lvl, comp);
    }

    /**
     * RDBMAP [mem],buf,grp — attach bitmap storage for level @p buf
     * and, for the (whole-stored) top level, stream the first
     * buffer window into SRAM. Lower levels are compact streams
     * whose groups are fetched as the scan descends into them.
     */
    template <typename E>
    void
    rdbmap(const core::Bitmap* bitmap, int buf, int grp, E& e)
    {
        e.op(1);
        attachBitmap(grp, buf, bitmap);
        Group& g = group(grp);
        if (buf == g.levels - 1 && bitmap && bitmap->numWords() > 0) {
            std::size_t bytes = windowBytes(*bitmap, 0);
            e.deviceFetch(bitmap->words().data(), bytes);
            ++stats_.bufferRefills;
        }
    }

    /**
     * PBMAP grp — scan to the next non-zero block; updates the
     * group's output registers.
     * @retval true a next block exists (registers valid)
     */
    template <typename E>
    bool
    pbmap(int grp, E& e)
    {
        e.op(1);
        ++stats_.pbmapCalls;
        return advance(grp, e);
    }

    /**
     * Model of `RDBMAP [bitmap + rowOffset]` (Algorithm 2): restrict
     * the scan to Bitmap-0 bits [fromBit, toBit) — one matrix row
     * (or one column of the transposed operand). Works for any
     * hierarchy depth: upper levels are range-restricted to the
     * covering bit ranges, so empty stretches inside the row are
     * skipped without streaming their Bitmap-0 words.
     */
    template <typename E>
    void
    beginScan(Index from_bit, Index to_bit, int grp, E& e)
    {
        e.op(1); // the RDBMAP instruction itself
        Group& g = group(grp);
        requireConfigured(g);
        Index from = from_bit;
        Index to = to_bit;
        for (int lvl = 0; lvl < g.levels; ++lvl) {
            auto sl = static_cast<std::size_t>(lvl);
            if (lvl > 0) {
                Index r = g.ratio[sl];
                from = from / r;
                to = (to + r - 1) / r;
            }
            g.scanFrom[sl] = from;
            g.scanTo[sl] = to;
            g.cur[sl] = from;
            g.end[sl] = lvl == g.levels - 1 ? to : from; // empty below top
        }
        g.levelPos = g.levels - 1;
        g.exhausted = false;
    }

    /** RDIND rd1,rd2,grp — read the output registers. */
    template <typename E>
    void
    rdind(Index& row, Index& col, int grp, E& e)
    {
        e.op(1);
        row = group(grp).rowIndex;
        col = group(grp).colIndex;
    }

    /** Ordinal of the current block inside the NZA (convenience;
     *  the paper's software keeps this counter itself). */
    Index currentNzaBlock(int grp) const { return group(grp).nzaBlock; }

    const BmuStats& stats() const { return stats_; }

    /** Reset one group's scan to the beginning of its hierarchy. */
    void resetScan(int grp);

    /** Forget a group's whole configuration (dimensions, ratios,
     *  attached bitmaps). Modeling convenience, not an ISA op. */
    void clearGroup(int grp);

  private:
    struct Group
    {
        Group() { windowWord.fill(-1); }

        Index rows = 0;
        Index cols = 0;
        std::array<Index, core::HierarchyConfig::kMaxLevels> ratio{};
        std::array<const core::Bitmap*, kBuffersPerGroup> bitmap{};
        /** First word of the buffered window, per level (-1: none). */
        std::array<Index, kBuffersPerGroup> windowWord{};
        int levels = 0;

        /** DFS state: per-level [cur, end) bit windows. */
        std::array<Index, kBuffersPerGroup> cur{};
        std::array<Index, kBuffersPerGroup> end{};
        /** Range restriction from beginScan (whole bitmap if unset). */
        std::array<Index, kBuffersPerGroup> scanFrom{};
        std::array<Index, kBuffersPerGroup> scanTo{};
        /**
         * Compact-layout model per non-top level: each parent set
         * bit owns one `ratio`-bit group in the child's compact
         * stream. Slots are assigned on first touch (ascending for
         * in-order scans, matching the Fig. 4b layout); revisits map
         * to the same synthetic address and hit in the cache model.
         */
        std::array<std::unordered_map<Index, Index>, kBuffersPerGroup>
            compactSlot{};
        std::array<Index, kBuffersPerGroup> nextSlot{};
        int levelPos = -1; //!< -1 = scan not started

        Index rowIndex = 0;
        Index colIndex = 0;
        Index nzaBlock = -1;
        bool exhausted = false;
    };

    Group& group(int grp);
    const Group& group(int grp) const;

    void setRatio(int grp, int lvl, Index comp);
    void attachBitmap(int grp, int buf, const core::Bitmap* bitmap);
    static void requireConfigured(const Group& g);

    /** Bytes of the window starting at word @p word (tail-clipped). */
    static std::size_t windowBytes(const core::Bitmap& bitmap, Index word);

    /**
     * Refill granularity in words. The SRAM buffer is 256 B, but the
     * memory system delivers 64-B lines; modelling fills at line
     * granularity charges exactly the lines the scan touches (a
     * whole-buffer fill is four consecutive line fetches).
     */
    static constexpr Index kWindowWords =
        kCacheLineBytes / static_cast<int>(sizeof(BitWord));

    /**
     * Scan level @p lvl of group @p g for the next set bit in
     * [from, end), charging buffer refills as the window slides.
     * @return bit index or -1
     */
    template <typename E>
    Index scanLevel(Group& g, int lvl, Index from, Index end, E& e);

    /**
     * Synthetic base address of a group/level compact bitmap
     * stream. These addresses exercise the memory model for storage
     * that has no dense host backing (Fig. 4b layout); the range is
     * chosen well away from host heap/mmap regions.
     */
    static Addr
    syntheticStreamBase(int grp, int lvl)
    {
        return Addr(0x0100'0000'0000ULL) +
            static_cast<Addr>(grp) * 0x4'0000'0000ULL +
            static_cast<Addr>(lvl) * 0x1'0000'0000ULL;
    }

    /**
     * Account the fetch of the compact-stream group of level
     * @p lvl owned by parent set bit @p parent_bit (one descent).
     * The group occupies `ratio` bits at its slot's position; the
     * covering 64-byte line(s) are fetched — the cache model turns
     * revisits into hits.
     */
    template <typename E>
    void
    fetchCompactGroup(Group& g, int grp, int lvl, Index parent_bit,
                      Index ratio, E& e)
    {
        if constexpr (!E::kSimulated) {
            // Functional runs skip the traffic model entirely.
            (void)g;
            (void)grp;
            (void)lvl;
            (void)parent_bit;
            (void)ratio;
            (void)e;
            return;
        }
        auto sl = static_cast<std::size_t>(lvl);
        auto [it, fresh] = g.compactSlot[sl].try_emplace(
            parent_bit, g.nextSlot[sl]);
        if (fresh)
            ++g.nextSlot[sl];
        constexpr Index bits_per_line = kCacheLineBytes * 8;
        Index bit_pos = it->second * ratio;
        Index first_line = bit_pos / bits_per_line;
        Index last_line = (bit_pos + ratio - 1) / bits_per_line;
        for (Index line = first_line; line <= last_line; ++line) {
            e.deviceFetchAddr(syntheticStreamBase(grp, lvl) +
                              static_cast<Addr>(line) * kCacheLineBytes,
                              kCacheLineBytes);
        }
        ++stats_.bufferRefills;
    }

    /** DFS step shared by pbmap. */
    template <typename E>
    bool advance(int grp, E& e);

    std::array<Group, kGroups> groups_{};
    BmuStats stats_;
};

template <typename E>
Index
Bmu::scanLevel(Group& g, int lvl, Index from, Index end, E& e)
{
    const core::Bitmap* bm = g.bitmap[static_cast<std::size_t>(lvl)];
    if (!bm)
        return -1;
    if (end > bm->numBits())
        end = bm->numBits();
    if (from >= end)
        return -1;

    // Only the top level is fetched here (it is stored whole in
    // memory); lower-level groups were streamed in at descent time.
    const bool is_top = lvl == g.levels - 1;
    Index w = from / kBitsPerWord;
    const Index w_end = (end + kBitsPerWord - 1) / kBitsPerWord;
    while (w < w_end) {
        if (is_top) {
            // Slide the SRAM window when the scan leaves it.
            Index& win = g.windowWord[static_cast<std::size_t>(lvl)];
            if (win < 0 || w < win || w >= win + kWindowWords) {
                win = (w / kWindowWords) * kWindowWords;
                e.deviceFetch(bm->words().data() + win,
                              windowBytes(*bm, win));
                ++stats_.bufferRefills;
            }
        }
        ++stats_.wordsScanned;
        BitWord word = bm->word(w);
        if (w == from / kBitsPerWord)
            word &= ~BitWord(0) << (from % kBitsPerWord);
        if (word != 0) {
            Index bit = w * kBitsPerWord +
                static_cast<Index>(std::countr_zero(word));
            if (bit < end)
                return bit;
            return -1;
        }
        ++w;
    }
    return -1;
}

template <typename E>
bool
Bmu::advance(int grp, E& e)
{
    Group& g = group(grp);
    if (g.exhausted || g.levels == 0)
        return false;

    const int top = g.levels - 1;
    int lvl = g.levelPos;
    if (lvl < 0) {
        // First PBMAP after configuration: scan the whole hierarchy.
        const core::Bitmap* top_bm = g.bitmap[static_cast<std::size_t>(top)];
        for (int l = 0; l <= top; ++l) {
            auto sl = static_cast<std::size_t>(l);
            const core::Bitmap* bm = g.bitmap[sl];
            g.scanFrom[sl] = 0;
            g.scanTo[sl] = bm ? bm->numBits() : 0;
        }
        g.cur[static_cast<std::size_t>(top)] = 0;
        g.end[static_cast<std::size_t>(top)] =
            top_bm ? top_bm->numBits() : 0;
        lvl = top;
    }

    while (true) {
        auto sl = static_cast<std::size_t>(lvl);
        Index bit = scanLevel(g, lvl, g.cur[sl], g.end[sl], e);
        if (bit < 0) {
            if (lvl == top) {
                g.exhausted = true;
                g.levelPos = top;
                return false;
            }
            ++lvl;
            continue;
        }
        g.cur[sl] = bit + 1;
        if (lvl == 0) {
            Index block_size = g.ratio[0];
            Index linear = bit * block_size;
            g.rowIndex = g.cols > 0 ? linear / g.cols : 0;
            g.colIndex = g.cols > 0 ? linear % g.cols : 0;
            ++g.nzaBlock;
            g.levelPos = 0;
            return true;
        }
        // Descend into the covered range of the level below, clipped
        // to any beginScan() range restriction. The child group is
        // the next `ratio` bits of the child's compact stream:
        // charge its fetch.
        Index ratio = g.ratio[sl];
        auto below = static_cast<std::size_t>(lvl - 1);
        fetchCompactGroup(g, grp, lvl - 1, bit, ratio, e);
        Index lo = bit * ratio;
        Index hi = (bit + 1) * ratio;
        if (lo < g.scanFrom[below])
            lo = g.scanFrom[below];
        if (hi > g.scanTo[below])
            hi = g.scanTo[below];
        g.cur[below] = lo;
        g.end[below] = hi;
        --lvl;
    }
}

} // namespace smash::isa

#endif // SMASH_ISA_BMU_HH
