#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace smash::isa
{

BmuProgram&
BmuProgram::push(const Instruction& inst)
{
    words_.push_back(encode(inst));
    return *this;
}

BmuProgram
BmuProgram::assemble(const std::string& listing)
{
    BmuProgram program;
    std::istringstream is(listing);
    std::string line;
    while (std::getline(is, line)) {
        std::string code = line.substr(0, line.find('#'));
        if (code.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank or comment-only line
        program.push(parseAssembly(code));
    }
    return program;
}

std::string
BmuProgram::disassemble() const
{
    std::ostringstream os;
    for (InstWord w : words_)
        os << toAssembly(decode(w)) << '\n';
    return os.str();
}

std::string
formatTrace(const std::vector<TraceEntry>& trace)
{
    std::ostringstream os;
    for (const TraceEntry& t : trace) {
        os << t.pc << ": " << toAssembly(t.inst);
        if (t.inst.op == Opcode::kPbmap)
            os << (t.pbmapValid ? "   ; block found" : "   ; exhausted");
        else if (t.inst.op == Opcode::kRdind)
            os << "   ; row=" << t.rowOut << " col=" << t.colOut;
        os << '\n';
    }
    return os.str();
}

} // namespace smash::isa
