#include "isa/area_model.hh"

#include "common/logging.hh"

namespace smash::isa
{

AreaReport
computeBmuArea(const BmuSizing& sizing, const AreaParams& params)
{
    SMASH_CHECK(sizing.groups > 0 && sizing.buffersPerGroup > 0 &&
                sizing.bufferBytes > 0,
                "BMU sizing must be positive");
    SMASH_CHECK(params.coreAreaMm2 > 0, "core area must be positive");

    constexpr double kUm2PerMm2 = 1.0e6;

    AreaReport report;
    report.sramBytes =
        static_cast<double>(sizing.groups) *
        static_cast<double>(sizing.buffersPerGroup) *
        static_cast<double>(sizing.bufferBytes);

    double sram_bits = report.sramBytes * 8.0;
    report.sramAreaMm2 = sram_bits * params.sramBitCellUm2 *
        params.sramPeripheryFactor / kUm2PerMm2;

    double reg_bits = static_cast<double>(sizing.registerBytes) * 8.0;
    report.registerAreaMm2 = reg_bits * params.registerBitUm2 / kUm2PerMm2;

    report.logicAreaMm2 = static_cast<double>(sizing.groups) *
        params.logicUm2PerGroup / kUm2PerMm2;

    report.totalAreaMm2 = report.sramAreaMm2 + report.registerAreaMm2 +
        report.logicAreaMm2;
    report.coreOverheadPct =
        report.totalAreaMm2 / params.coreAreaMm2 * 100.0;
    return report;
}

} // namespace smash::isa
