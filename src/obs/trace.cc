#include "obs/trace.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace smash::obs
{

namespace detail
{

std::atomic<bool>&
traceEnabledFlag()
{
    static std::atomic<bool> flag = [] {
        const char* s = std::getenv("SMASH_TRACE");
        if (s == nullptr)
            return false;
        return std::strcmp(s, "1") == 0 || std::strcmp(s, "on") == 0 ||
            std::strcmp(s, "true") == 0;
    }();
    return flag;
}

} // namespace detail

void
setTraceEnabled(bool enabled)
{
    detail::traceEnabledFlag().store(enabled,
                                     std::memory_order_relaxed);
}

std::uint64_t
traceNowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

/** One thread's event storage. Writes touch only head and the
 *  slot it indexes; the dump side reads both without locks (callers
 *  quiesce first — see the header contract). */
struct TraceCollector::Ring
{
    std::array<TraceEvent, kRingCapacity> events{};
    std::atomic<std::uint64_t> head{0}; //!< total ever written
    std::uint16_t tid = 0;

    void
    push(const TraceEvent& e)
    {
        // This thread is the only writer: a relaxed read-modify-write
        // of head and a plain slot store suffice. The release store
        // publishes the slot for a (quiesced) dump.
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        events[h % kRingCapacity] = e;
        head.store(h + 1, std::memory_order_release);
    }
};

struct TraceCollector::Impl
{
    std::mutex mutex; //!< guards ring registration only
    std::vector<std::unique_ptr<Ring>> rings;
};

TraceCollector::TraceCollector() : impl_(new Impl) {}

TraceCollector::~TraceCollector()
{
    delete impl_;
}

TraceCollector&
TraceCollector::global()
{
    // Leaked: worker threads may record during static destruction.
    static TraceCollector* collector = new TraceCollector();
    return *collector;
}

TraceCollector::Ring&
TraceCollector::ringForThisThread()
{
    thread_local Ring* ring = [this] {
        auto owned = std::make_unique<Ring>();
        owned->tid = static_cast<std::uint16_t>(threadId());
        Ring* raw = owned.get();
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->rings.push_back(std::move(owned));
        return raw;
    }();
    return *ring;
}

void
record(EventKind kind, std::uint32_t a0, std::uint32_t a1,
       std::uint32_t a2)
{
    TraceCollector::Ring& ring =
        TraceCollector::global().ringForThisThread();
    TraceEvent e;
    e.ts_ns = traceNowNs();
    e.dur_ns = 0;
    e.a0 = a0;
    e.a1 = a1;
    e.a2 = a2;
    e.kind = static_cast<std::uint16_t>(kind);
    e.tid = ring.tid;
    ring.push(e);
}

void
recordSpan(EventKind kind, std::uint64_t start_ns, std::uint32_t a0,
           std::uint32_t a1, std::uint32_t a2)
{
    TraceCollector::Ring& ring =
        TraceCollector::global().ringForThisThread();
    const std::uint64_t now = traceNowNs();
    TraceEvent e;
    e.ts_ns = start_ns;
    e.dur_ns = now > start_ns ? now - start_ns : 0;
    e.a0 = a0;
    e.a1 = a1;
    e.a2 = a2;
    e.kind = static_cast<std::uint16_t>(kind);
    e.tid = ring.tid;
    ring.push(e);
}

std::uint64_t
TraceCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::uint64_t total = 0;
    for (const auto& ring : impl_->rings) {
        const std::uint64_t h =
            ring->head.load(std::memory_order_acquire);
        if (h > kRingCapacity)
            total += h - kRingCapacity;
    }
    return total;
}

std::uint64_t
TraceCollector::retained() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::uint64_t total = 0;
    for (const auto& ring : impl_->rings)
        total += std::min<std::uint64_t>(
            ring->head.load(std::memory_order_acquire),
            kRingCapacity);
    return total;
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& ring : impl_->rings)
        ring->head.store(0, std::memory_order_release);
}

namespace
{

struct KindInfo
{
    const char* name;
    const char* cat;
};

KindInfo
kindInfo(std::uint16_t kind)
{
    switch (static_cast<EventKind>(kind)) {
      case EventKind::kPoolBatch: return {"parallelFor", "pool"};
      case EventKind::kPoolChunk: return {"chunk", "pool"};
      case EventKind::kPoolTask: return {"task", "pool"};
      case EventKind::kBatchEnqueue: return {"enqueue", "batcher"};
      case EventKind::kBatchFlush: return {"flush", "batcher"};
      case EventKind::kPipelinePrepare:
        return {"prepare", "pipeline"};
      case EventKind::kPipelineCompute:
        return {"compute", "pipeline"};
      case EventKind::kPipelineDeliver:
        return {"deliver", "pipeline"};
      case EventKind::kDispatch: return {"dispatch", "dispatch"};
      case EventKind::kPlanCacheHit: return {"hit", "plan_cache"};
      case EventKind::kPlanCacheMiss: return {"miss", "plan_cache"};
      case EventKind::kEpochSwap: return {"epoch_swap", "registry"};
      case EventKind::kNetFrameRx: return {"rx", "net"};
      case EventKind::kNetFrameTx: return {"tx", "net"};
      case EventKind::kNetConn: return {"conn", "net"};
      case EventKind::kShardScatter: return {"scatter", "shard"};
      case EventKind::kShardGather: return {"gather", "shard"};
      case EventKind::kShardReencode: return {"reencode", "shard"};
    }
    return {"unknown", "unknown"};
}

const char*
flushReasonName(std::uint32_t reason)
{
    switch (static_cast<FlushReason>(reason)) {
      case FlushReason::kSize: return "size";
      case FlushReason::kDeadline: return "deadline";
      case FlushReason::kPriority: return "priority";
      case FlushReason::kManual: return "manual";
    }
    return "unknown";
}

const char*
dispatchPathName(std::uint32_t path)
{
    switch (static_cast<DispatchPath>(path)) {
      case DispatchPath::kSerial: return "serial";
      case DispatchPath::kRows: return "rows";
      case DispatchPath::kTiled: return "tiled";
      case DispatchPath::kWordWalk: return "word_walk";
      case DispatchPath::kScatter: return "scatter";
      case DispatchPath::kBatchRows: return "batch_rows";
      case DispatchPath::kRowColTiles: return "row_col_tiles";
    }
    return "unknown";
}

const char*
isaName(std::uint32_t level)
{
    switch (level) {
      case 0: return "scalar";
      case 1: return "avx2";
      case 2: return "avx512";
    }
    return "unknown";
}

/** The event's "args" object, with per-kind field names. */
void
writeArgs(std::ostream& os, const TraceEvent& e)
{
    switch (static_cast<EventKind>(e.kind)) {
      case EventKind::kPoolBatch:
        os << "{\"chunks\": " << e.a0 << ", \"span\": " << e.a1
           << "}";
        return;
      case EventKind::kPoolChunk:
        os << "{\"chunk\": " << e.a0 << ", \"stolen\": " << e.a1
           << "}";
        return;
      case EventKind::kPoolTask:
        os << "{}";
        return;
      case EventKind::kBatchEnqueue:
        os << "{\"op\": " << e.a0 << ", \"priority\": " << e.a1
           << "}";
        return;
      case EventKind::kBatchFlush:
        os << "{\"reason\": \"" << flushReasonName(e.a0)
           << "\", \"size\": " << e.a1 << "}";
        return;
      case EventKind::kPipelinePrepare:
        os << "{\"op\": " << e.a0 << "}";
        return;
      case EventKind::kPipelineCompute:
        os << "{\"op\": " << e.a0 << ", \"width\": " << e.a1 << "}";
        return;
      case EventKind::kPipelineDeliver:
        os << "{\"ok\": " << e.a0 << "}";
        return;
      case EventKind::kDispatch:
        os << "{\"format\": " << e.a0 << ", \"isa\": \""
           << isaName(e.a1) << "\", \"path\": \""
           << dispatchPathName(e.a2) << "\"}";
        return;
      case EventKind::kPlanCacheHit:
      case EventKind::kPlanCacheMiss:
        os << "{\"kind\": " << e.a0 << "}";
        return;
      case EventKind::kEpochSwap:
        os << "{}";
        return;
      case EventKind::kShardScatter:
        os << "{\"shards\": " << e.a0 << ", \"rhs\": " << e.a1 << "}";
        return;
      case EventKind::kShardGather:
        os << "{\"shard\": " << e.a0 << ", \"rows\": " << e.a1 << "}";
        return;
      case EventKind::kShardReencode:
        os << "{\"shard\": " << e.a0 << ", \"format\": " << e.a1
           << "}";
        return;
    }
    os << "{}";
}

/** Microsecond timestamp with nanosecond decimals (Chrome's unit). */
void
writeUs(std::ostream& os, std::uint64_t ns)
{
    os << ns / 1000 << '.' << static_cast<char>('0' + ns % 1000 / 100)
       << static_cast<char>('0' + ns % 100 / 10)
       << static_cast<char>('0' + ns % 10);
}

} // namespace

void
TraceCollector::dumpJson(std::ostream& os) const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        for (const auto& ring : impl_->rings) {
            const std::uint64_t head =
                ring->head.load(std::memory_order_acquire);
            const std::uint64_t n =
                std::min<std::uint64_t>(head, kRingCapacity);
            for (std::uint64_t i = head - n; i < head; ++i)
                events.push_back(
                    ring->events[i % kRingCapacity]);
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.ts_ns < b.ts_ns;
                     });
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        const KindInfo info = kindInfo(e.kind);
        os << (i == 0 ? "\n" : ",\n");
        os << "  {\"name\": \"" << info.name << "\", \"cat\": \""
           << info.cat << "\", \"ph\": \""
           << (e.dur_ns > 0 ? 'X' : 'i') << "\", \"ts\": ";
        writeUs(os, e.ts_ns);
        if (e.dur_ns > 0) {
            os << ", \"dur\": ";
            writeUs(os, e.dur_ns);
        } else {
            os << ", \"s\": \"t\"";
        }
        os << ", \"pid\": 1, \"tid\": " << e.tid << ", \"args\": ";
        writeArgs(os, e);
        os << "}";
    }
    os << "\n]}\n";
}

// --- Minimal JSON validity checker (tools + tests). ---

namespace
{

struct JsonParser
{
    std::string_view s;
    std::size_t i = 0;
    std::string* error;

    bool
    fail(const std::string& what)
    {
        if (error->empty())
            *error = what + " at byte " + std::to_string(i);
        return false;
    }

    void
    skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                s[i] == '\r'))
            ++i;
    }

    bool
    parseString()
    {
        if (s[i] != '"')
            return fail("expected string");
        ++i;
        while (i < s.size()) {
            const char c = s[i];
            if (c == '"') {
                ++i;
                return true;
            }
            if (c == '\\') {
                ++i;
                if (i >= s.size())
                    return fail("truncated escape");
                const char esc = s[i];
                if (esc == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        ++i;
                        if (i >= s.size() ||
                            std::isxdigit(
                                static_cast<unsigned char>(s[i])) ==
                                0)
                            return fail("bad \\u escape");
                    }
                } else if (std::strchr("\"\\/bfnrt", esc) ==
                           nullptr) {
                    return fail("bad escape");
                }
                ++i;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            ++i;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber()
    {
        const std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        if (i >= s.size() ||
            std::isdigit(static_cast<unsigned char>(s[i])) == 0)
            return fail("bad number");
        while (i < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[i])) != 0)
            ++i;
        if (i < s.size() && s[i] == '.') {
            ++i;
            if (i >= s.size() ||
                std::isdigit(static_cast<unsigned char>(s[i])) == 0)
                return fail("bad fraction");
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i])) !=
                       0)
                ++i;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < s.size() && (s[i] == '+' || s[i] == '-'))
                ++i;
            if (i >= s.size() ||
                std::isdigit(static_cast<unsigned char>(s[i])) == 0)
                return fail("bad exponent");
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i])) !=
                       0)
                ++i;
        }
        return i > start;
    }

    bool
    parseLiteral(std::string_view lit)
    {
        if (s.substr(i, lit.size()) != lit)
            return fail("bad literal");
        i += lit.size();
        return true;
    }

    bool
    parseValue(int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (i >= s.size())
            return fail("unexpected end of input");
        switch (s[i]) {
          case '{': {
            ++i;
            skipWs();
            if (i < s.size() && s[i] == '}') {
                ++i;
                return true;
            }
            for (;;) {
                skipWs();
                if (!parseString())
                    return false;
                skipWs();
                if (i >= s.size() || s[i] != ':')
                    return fail("expected ':'");
                ++i;
                if (!parseValue(depth + 1))
                    return false;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                if (i < s.size() && s[i] == '}') {
                    ++i;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++i;
            skipWs();
            if (i < s.size() && s[i] == ']') {
                ++i;
                return true;
            }
            for (;;) {
                if (!parseValue(depth + 1))
                    return false;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                if (i < s.size() && s[i] == ']') {
                    ++i;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            return parseString();
          case 't':
            return parseLiteral("true");
          case 'f':
            return parseLiteral("false");
          case 'n':
            return parseLiteral("null");
          default:
            return parseNumber();
        }
    }
};

} // namespace

bool
validateJson(std::string_view text, std::string& error)
{
    error.clear();
    JsonParser p{text, 0, &error};
    if (!p.parseValue(0))
        return false;
    p.skipWs();
    if (p.i != text.size()) {
        p.fail("trailing content");
        return false;
    }
    return true;
}

} // namespace smash::obs
