#include "obs/metrics.hh"

#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string_view>

namespace smash::obs
{

std::uint32_t
threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

double
Histogram::percentile(double q) const
{
    std::array<std::uint64_t, kBuckets> snap;
    std::uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
        snap[static_cast<std::size_t>(i)] = bucketCount(i);
        total += snap[static_cast<std::size_t>(i)];
    }
    if (total == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += snap[static_cast<std::size_t>(i)];
        if (seen > rank) {
            if (i == 0)
                return 0.5;
            if (i == kBuckets - 1)
                // Open-ended overflow bucket: the lower bound is the
                // only honest point estimate.
                return static_cast<double>(std::uint64_t(1)
                                           << (i - 1));
            return static_cast<double>(std::uint64_t(1) << (i - 1)) *
                1.5;
        }
    }
    return 0; // unreachable
}

namespace
{

/** `base{labels}` split at the brace (labels keep no braces). */
struct NameParts
{
    std::string_view base;
    std::string_view labels; //!< empty when unlabeled
};

NameParts
splitName(const std::string& name)
{
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos)
        return {name, {}};
    std::string_view labels(name);
    labels.remove_prefix(brace + 1);
    if (!labels.empty() && labels.back() == '}')
        labels.remove_suffix(1);
    return {std::string_view(name).substr(0, brace), labels};
}

/** `base{labels,extra}` (or `base{extra}` when unlabeled). */
std::string
withExtraLabel(const NameParts& parts, const std::string& suffix,
               const std::string& extra)
{
    std::string out(parts.base);
    out += suffix;
    out += '{';
    if (!parts.labels.empty()) {
        out += parts.labels;
        out += ',';
    }
    out += extra;
    out += '}';
    return out;
}

void
typeLineIfNew(std::ostream& os, std::string& last_base,
              const NameParts& parts, const char* type)
{
    if (last_base == parts.base)
        return;
    last_base = std::string(parts.base);
    os << "# TYPE " << parts.base << ' ' << type << '\n';
}

} // namespace

struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    // std::map: sorted iteration groups label variants of one base
    // name together for exportText's # TYPE lines.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry()
{
    delete impl_;
}

MetricsRegistry&
MetricsRegistry::global()
{
    // Leaked intentionally: instruments are referenced from static
    // locals all over the tree and from worker threads that may
    // outlive any static-destruction order.
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto& slot = impl_->counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto& slot = impl_->gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto& slot = impl_->histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->counters.find(name);
    return it == impl_->counters.end() ? 0 : it->second->value();
}

void
MetricsRegistry::exportText(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::string last_base;
    for (const auto& [name, c] : impl_->counters) {
        const NameParts parts = splitName(name);
        typeLineIfNew(os, last_base, parts, "counter");
        os << name << ' ' << c->value() << '\n';
    }
    last_base.clear();
    for (const auto& [name, g] : impl_->gauges) {
        const NameParts parts = splitName(name);
        typeLineIfNew(os, last_base, parts, "gauge");
        os << name << ' ' << g->value() << '\n';
    }
    last_base.clear();
    for (const auto& [name, h] : impl_->histograms) {
        const NameParts parts = splitName(name);
        typeLineIfNew(os, last_base, parts, "histogram");
        // Cumulative buckets: only boundaries whose bucket holds
        // something, plus the mandatory +Inf — keeps the exposition
        // compact while staying valid Prometheus.
        std::uint64_t cum = 0;
        for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
            const std::uint64_t n = h->bucketCount(i);
            if (n == 0)
                continue;
            cum += n;
            os << withExtraLabel(
                      parts, "_bucket",
                      "le=\"" +
                          std::to_string(Histogram::bucketBound(i)) +
                          "\"")
               << ' ' << cum << '\n';
        }
        const std::uint64_t total = h->count();
        os << withExtraLabel(parts, "_bucket", "le=\"+Inf\"") << ' '
           << total << '\n';
        const std::string label_suffix = parts.labels.empty()
            ? std::string()
            : '{' + std::string(parts.labels) + '}';
        os << parts.base << "_sum" << label_suffix << ' ' << h->sum()
           << '\n';
        os << parts.base << "_count" << label_suffix << ' ' << total
           << '\n';
    }
}

} // namespace smash::obs
