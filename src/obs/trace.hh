/**
 * @file
 * Low-overhead event tracing: fixed 32-byte records written into
 * lock-free per-thread ring buffers, dumped as Chrome trace-event
 * JSON (chrome://tracing / Perfetto's legacy loader). Instrumented
 * subsystems: the ThreadPool (parallelFor batches, chunk claims and
 * steals, posted tasks), the serving batcher (enqueues, flushes),
 * the pipeline (prepare/compute/deliver), the engine dispatch
 * (tile-path and ISA-level selections), the plan cache (hits and
 * misses), and the registry's encoding epoch swaps.
 *
 * Cost model: every instrumentation point is
 * `if (traceEnabled()) record(...)` — one relaxed atomic load and a
 * predicted-untaken branch when tracing is off (the default), and
 * one 32-byte store into a thread-private ring when on. Nothing
 * allocates after a thread's first recorded event. Defining
 * SMASH_TRACE_COMPILED_OUT at build time compiles the macros to
 * nothing for a zero-instruction baseline.
 *
 * Toggles: the SMASH_TRACE environment variable (1/on/true) arms
 * recording at startup; setTraceEnabled() flips it at runtime (the
 * perf A/B harness and tests).
 *
 * Ownership/threading contract: rings are owned by the global
 * TraceCollector and live for the process (a thread's ring survives
 * the thread). record() is wait-free and touches only the calling
 * thread's ring. dumpJson() reads every ring without stopping
 * writers — call it after quiescing instrumented activity (drain
 * sessions / join pools) for a self-consistent dump; each ring
 * keeps its newest kRingCapacity events, older ones are counted as
 * dropped.
 */

#ifndef SMASH_OBS_TRACE_HH
#define SMASH_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace smash::obs
{

/** What one trace record describes (the cat/name of its JSON
 *  event). Values are stable — they appear in dumped traces. */
enum class EventKind : std::uint16_t
{
    kPoolBatch = 0,    //!< one parallelFor call (span)
    kPoolChunk = 1,    //!< one chunk claim (a0 chunk, a1 stolen)
    kPoolTask = 2,     //!< one posted task run (span)
    kBatchEnqueue = 3, //!< request entered a batcher queue
    kBatchFlush = 4,   //!< queue flush (a0 reason, a1 batch size)
    kPipelinePrepare = 5, //!< request handed to the batcher
    kPipelineCompute = 6, //!< one batch compute (span; a0 op,
                          //!< a1 width)
    kPipelineDeliver = 7, //!< one request resolved (a0 ok)
    kDispatch = 8,        //!< kernel dispatch (a0 format, a1 isa,
                          //!< a2 path)
    kPlanCacheHit = 9,    //!< plan served from cache (a0 kind)
    kPlanCacheMiss = 10,  //!< plan built cold (a0 kind)
    kEpochSwap = 11,      //!< registry re-encode epoch swap
    kNetFrameRx = 12,     //!< wire frame read (a0 op, a1 bytes)
    kNetFrameTx = 13,     //!< wire frame written (a0 op, a1 bytes)
    kNetConn = 14,        //!< connection lifecycle (a0 1=open
                          //!< 0=close, a1 transport)
    kShardScatter = 15,   //!< sharded compute fan-out (span;
                          //!< a0 shards, a1 rhs width)
    kShardGather = 16,    //!< one shard's slice copied into the
                          //!< caller's y (a0 shard, a1 rows)
    kShardReencode = 17,  //!< per-shard epoch swap (a0 shard,
                          //!< a1 new format)
};

/** Batcher flush reasons (kBatchFlush a0). */
enum class FlushReason : std::uint32_t
{
    kSize = 0,
    kDeadline = 1,
    kPriority = 2,
    kManual = 3,
};

/** Dispatch path shapes (kDispatch a2). */
enum class DispatchPath : std::uint32_t
{
    kSerial = 0,
    kRows = 1,
    kTiled = 2,
    kWordWalk = 3,
    kScatter = 4,
    kBatchRows = 5,
    kRowColTiles = 6,
};

/** One ring record. Fixed 32 bytes — a full ring is a few pages
 *  and a record write is one cache line. */
struct TraceEvent
{
    std::uint64_t ts_ns;  //!< since process trace epoch
    std::uint64_t dur_ns; //!< 0 for instant events
    std::uint32_t a0;
    std::uint32_t a1;
    std::uint32_t a2;
    std::uint16_t kind; //!< EventKind
    std::uint16_t tid;  //!< obs::threadId() of the writer
};
static_assert(sizeof(TraceEvent) == 32, "ring records must be 32B");

namespace detail
{
std::atomic<bool>& traceEnabledFlag();
} // namespace detail

/** Whether recording is armed (inline: the hot-path check). */
inline bool
traceEnabled()
{
    return detail::traceEnabledFlag().load(std::memory_order_relaxed);
}

/** Arm/disarm recording at runtime. */
void setTraceEnabled(bool enabled);

/** Nanoseconds since the process's trace epoch (steady clock). */
std::uint64_t traceNowNs();

/** Append one instant event to the calling thread's ring. */
void record(EventKind kind, std::uint32_t a0 = 0, std::uint32_t a1 = 0,
            std::uint32_t a2 = 0);

/** Append one span event: [start_ns, now] with @p start_ns from an
 *  earlier traceNowNs(). */
void recordSpan(EventKind kind, std::uint64_t start_ns,
                std::uint32_t a0 = 0, std::uint32_t a1 = 0,
                std::uint32_t a2 = 0);

/** Owner of every thread's ring; the dump side of the tracer. */
class TraceCollector
{
  public:
    /** Events one thread's ring retains before overwriting. */
    static constexpr std::size_t kRingCapacity = 4096;

    static TraceCollector& global();

    TraceCollector();
    ~TraceCollector();
    TraceCollector(const TraceCollector&) = delete;
    TraceCollector& operator=(const TraceCollector&) = delete;

    /** Chrome trace-event JSON of every retained event, oldest
     *  first. Quiesce instrumented activity before calling. */
    void dumpJson(std::ostream& os) const;

    /** Events overwritten by ring wraparound so far. */
    std::uint64_t dropped() const;

    /** Events currently retained across all rings. */
    std::uint64_t retained() const;

    /** Forget every recorded event (test isolation). Only safe
     *  when no instrumented activity is running. */
    void clear();

  private:
    friend void record(EventKind, std::uint32_t, std::uint32_t,
                       std::uint32_t);
    friend void recordSpan(EventKind, std::uint64_t, std::uint32_t,
                           std::uint32_t, std::uint32_t);
    struct Ring;
    struct Impl;
    Ring& ringForThisThread();
    Impl* impl_;
};

/**
 * Minimal structural JSON validity check (objects, arrays, strings,
 * numbers, literals — no semantics). Shared by tools/smash_trace
 * and the test suite so a dumped trace can be checked without an
 * external parser. Returns false and fills @p error at the first
 * syntax violation.
 */
bool validateJson(std::string_view text, std::string& error);

} // namespace smash::obs

/**
 * Instrumentation macros: compile to nothing under
 * SMASH_TRACE_COMPILED_OUT, otherwise to a branch on the runtime
 * flag. Use these (not record() directly) at every hot-path site.
 */
#ifdef SMASH_TRACE_COMPILED_OUT
#define SMASH_TRACE_EVENT(...) ((void)0)
#define SMASH_TRACE_SPAN(...) ((void)0)
#else
#define SMASH_TRACE_EVENT(...)                                       \
    do {                                                             \
        if (smash::obs::traceEnabled())                              \
            smash::obs::record(__VA_ARGS__);                         \
    } while (0)
#define SMASH_TRACE_SPAN(...)                                        \
    do {                                                             \
        if (smash::obs::traceEnabled())                              \
            smash::obs::recordSpan(__VA_ARGS__);                     \
    } while (0)
#endif

#endif // SMASH_OBS_TRACE_HH
