/**
 * @file
 * Process-global metrics layer: named counters, gauges, and
 * power-of-two histograms behind one MetricsRegistry, exported in
 * Prometheus text exposition format. This is the layer the
 * ROADMAP's `/metrics` network endpoint will read from; until that
 * endpoint exists, `bench/perf_report --metrics` and the
 * observability example print the same exposition.
 *
 * Hot-path design: a Counter is sharded — each thread increments a
 * cache-line-private atomic slot picked by a stable per-thread id,
 * so concurrent workers never contend on one cache line; value()
 * sums the shards. A Gauge is a single atomic (set/add are rare
 * control-plane events). A Histogram is 48 power-of-two buckets of
 * relaxed atomic counts plus a running sum — record() is two
 * relaxed adds, percentile() scans the snapshot only when asked.
 *
 * Naming convention: metric names may carry Prometheus-style
 * labels inline — `smash_batcher_flushes_total{reason="size"}` —
 * and exportText() groups label variants under one # TYPE line.
 *
 * Ownership/threading contract: the registry owns its instruments;
 * counter()/gauge()/histogram() return stable references that live
 * as long as the process (instruments are never removed), so call
 * sites resolve a name once (static local) and then touch only the
 * instrument. All methods are thread-safe.
 */

#ifndef SMASH_OBS_METRICS_HH
#define SMASH_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace smash::obs
{

/** Small dense id of the calling thread (first use assigns the
 *  next id): shard picking for counters, tid stamping for trace
 *  events. Stable for the thread's lifetime. */
std::uint32_t threadId();

/** Monotonic counter with per-thread sharded storage: add() touches
 *  one cache-line-private slot, value() sums the shards. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void
    add(std::uint64_t n = 1)
    {
        shards_[threadId() % kShards].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const Shard& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    /** Enough shards that an 8–16-worker pool rarely collides; the
     *  alignas keeps two shards off one cache line. */
    static constexpr std::size_t kShards = 16;
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Shard, kShards> shards_{};
};

/** Point-in-time value (in-flight requests, ring occupancy). */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Power-of-two histogram: bucket i holds values in [2^(i-1), 2^i)
 * (bucket 0: value 0, i.e. below 1), the top bucket is open-ended.
 * Unit-agnostic — the serving layer records microseconds.
 *
 * percentile() semantics (exact, tested):
 *  - empty histogram        → 0
 *  - rank lands in bucket 0 → 0.5 (sub-unit)
 *  - middle buckets         → geometric midpoint 1.5 * 2^(i-1)
 *  - top (overflow) bucket  → the bucket's lower bound 2^(i-1),
 *    never a midpoint of an unbounded range
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 48;

    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void
    record(std::uint64_t value)
    {
        int bucket = std::bit_width(value); // 0 for value == 0
        if (bucket >= kBuckets)
            bucket = kBuckets - 1;
        counts_[static_cast<std::size_t>(bucket)].fetch_add(
            1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        std::uint64_t total = 0;
        for (const auto& c : counts_)
            total += c.load(std::memory_order_relaxed);
        return total;
    }

    /** Sum of every recorded value (the Prometheus _sum series). */
    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Value at quantile @p q in [0, 1] under the semantics above. */
    double percentile(double q) const;

    /** Count in bucket @p i (snapshot). */
    std::uint64_t
    bucketCount(int i) const
    {
        return counts_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    }

    /** Exclusive upper bound of bucket @p i (the Prometheus `le`
     *  boundary); the top bucket has none (+Inf). */
    static std::uint64_t
    bucketBound(int i)
    {
        return std::uint64_t(1) << i;
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
    std::atomic<std::uint64_t> sum_{0};
};

/** Process-global named-instrument registry. */
class MetricsRegistry
{
  public:
    /** The process's registry (every subsystem records here). */
    static MetricsRegistry& global();

    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** Get-or-create; the reference stays valid forever. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Prometheus text exposition of every instrument. */
    void exportText(std::ostream& os) const;

    /** Value of the named counter, 0 when it does not exist (test
     *  and tooling convenience — call sites keep references). */
    std::uint64_t counterValue(const std::string& name) const;

  private:
    struct Impl;
    Impl* impl_;
};

} // namespace smash::obs

#endif // SMASH_OBS_METRICS_HH
