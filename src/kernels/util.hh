/**
 * @file
 * Small helpers shared by the kernel templates.
 */

#ifndef SMASH_KERNELS_UTIL_HH
#define SMASH_KERNELS_UTIL_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/block_cursor.hh"
#include "core/smash_matrix.hh"

namespace smash::kern
{

/**
 * Best-effort read prefetch into a far cache level. The CSR-family
 * gather kernels issue it for the x element a fixed distance ahead
 * of the current non-zero: the x access pattern is data-dependent
 * (the paper's pointer chase), so the hardware stride prefetchers
 * cannot cover it, but its *address* is known one col_ind load
 * early. No-op where the builtin is unavailable.
 */
inline void
prefetchRead(const void* p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 1);
#else
    (void)p;
#endif
}

/** How many non-zeros ahead the gather kernels prefetch x. */
inline constexpr std::size_t kXPrefetchDistance = 16;

/**
 * Prefetch only pays when the gathered operand cannot sit in the
 * fast cache levels — on a cache-resident x the extra instruction
 * per non-zero is pure overhead. 256 KiB ~ a typical L2.
 */
inline bool
wantXPrefetch(std::size_t operand_bytes)
{
    return operand_bytes > 256 * 1024;
}

/**
 * Bills BlockCursor scan work to an execution model under the
 * compact-storage assumption (paper Fig. 4b): each examined bitmap
 * word lives at a stable synthetic address assigned on first touch
 * (consecutive for in-order scans, so whole-matrix traversals
 * stream and re-scans hit in the cache model). CLZ/AND register
 * work is billed as instructions.
 */
class ScanBiller
{
  public:
    /** @param base synthetic address region for the compact stream */
    explicit ScanBiller(Addr base)
        : base_(base)
    {}

    /** Default region for software bitmap streams (away from the
     *  host heap and the BMU's device-stream regions). */
    static constexpr Addr kSoftwareStreamBase = 0x0200'0000'0000ULL;

    /** Address space reserved per hierarchy level. */
    static constexpr Addr kLevelStride = 0x4000'0000ULL;

    /** Charge the touches recorded since the previous call. Under
     *  NativeExec this compiles to nothing. */
    template <typename E>
    void
    charge(core::BlockCursor& cursor, E& e)
    {
        if constexpr (!E::kSimulated) {
            (void)cursor;
            (void)e;
            return;
        }
        for (const core::WordTouch& t : cursor.touches()) {
            auto sl = static_cast<std::size_t>(t.level);
            auto [it, fresh] = slot_[sl].try_emplace(t.word,
                                                     nextSlot_[sl]);
            if (fresh)
                ++nextSlot_[sl];
            e.loadAddr(base_ + static_cast<Addr>(t.level) * kLevelStride +
                       static_cast<Addr>(it->second) * sizeof(BitWord),
                       sizeof(BitWord));
        }
        cursor.drainTouches();
        Counter d_ops = cursor.stats().bitOps - prevOps_;
        prevOps_ = cursor.stats().bitOps;
        e.op(static_cast<int>(d_ops));
    }

  private:
    Addr base_;
    std::array<std::unordered_map<Index, Index>,
               core::HierarchyConfig::kMaxLevels> slot_{};
    std::array<Index, core::HierarchyConfig::kMaxLevels> nextSlot_{};
    Counter prevOps_ = 0;
};

/**
 * Return @p x zero-extended to at least @p padded_len entries.
 * SMASH kernels read x at padded-column offsets, so callers pad the
 * operand once up front.
 */
inline std::vector<Value>
padVector(const std::vector<Value>& x, Index padded_len)
{
    std::vector<Value> out(x);
    if (static_cast<Index>(out.size()) < padded_len)
        out.resize(static_cast<std::size_t>(padded_len), Value(0));
    return out;
}

/**
 * Rank of the first Bitmap-0 bit of each row: rowRank[r] is the NZA
 * block ordinal where row r's blocks begin (rowRank[rows] = total).
 * Precomputed once per kernel invocation; used by the row-ranged
 * SpMM scans to locate NZA payloads without a per-bit rank query.
 */
inline std::vector<Index>
rowBlockRanks(const core::SmashMatrix& m)
{
    const Index bits_per_row = m.paddedCols() / m.blockSize();
    std::vector<Index> rank(static_cast<std::size_t>(m.rows()) + 1, 0);
    const core::Bitmap& level0 = m.hierarchy().level(0);
    Index count = 0;
    Index next_row_start = bits_per_row;
    Index row = 0;
    for (Index bit = level0.findNextSet(0); bit >= 0;
         bit = level0.findNextSet(bit + 1)) {
        while (bit >= next_row_start) {
            rank[static_cast<std::size_t>(++row)] = count;
            next_row_start += bits_per_row;
        }
        ++count;
    }
    while (row < m.rows())
        rank[static_cast<std::size_t>(++row)] = count;
    return rank;
}

} // namespace smash::kern

#endif // SMASH_KERNELS_UTIL_HH
