#include "kernels/reference.hh"

#include "common/logging.hh"

namespace smash::kern
{

void
denseSpmv(const fmt::DenseMatrix& a, const std::vector<Value>& x,
          std::vector<Value>& y)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    for (Index r = 0; r < a.rows(); ++r) {
        Value acc = 0;
        const Value* row = a.rowData(r);
        for (Index c = 0; c < a.cols(); ++c)
            acc += row[c] * x[static_cast<std::size_t>(c)];
        y[static_cast<std::size_t>(r)] += acc;
    }
}

void
denseSpmm(const fmt::DenseMatrix& a, const fmt::DenseMatrix& b,
          fmt::DenseMatrix& c)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ: ",
                a.cols(), " vs ", b.rows());
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
                "output shape mismatch");
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index k = 0; k < a.cols(); ++k) {
            Value av = a.at(i, k);
            if (av == Value(0))
                continue;
            for (Index j = 0; j < b.cols(); ++j)
                c.at(i, j) += av * b.at(k, j);
        }
    }
}

void
denseSpadd(const fmt::DenseMatrix& a, const fmt::DenseMatrix& b,
           fmt::DenseMatrix& c)
{
    SMASH_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "operand shapes differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == a.cols(),
                "output shape mismatch");
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index col = 0; col < a.cols(); ++col)
            c.at(r, col) = a.at(r, col) + b.at(r, col);
    }
}

} // namespace smash::kern
