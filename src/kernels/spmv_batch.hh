/**
 * @file
 * Batched SpMV: Y := Y + A X for a block of right-hand sides held
 * column-per-request in a dense operand (X is xLength x nrhs, Y is
 * rows x nrhs, both row-major). One traversal of the sparse operand
 * serves every RHS — the serving-throughput path the ROADMAP names:
 * the per-non-zero indexing work (row_ptr walks, column loads, the
 * x pointer chase, bitmap scans) is paid once and the inner
 * nrhs-wide update is a contiguous, vectorizable row of X against a
 * contiguous row of Y.
 *
 * Kernels mirror the single-RHS row-range entry points in spmv.hh:
 * disjoint row ranges touch disjoint Y rows, so the engine's
 * parallel driver hands one range per worker with no
 * synchronization; the SMASH word walk can straddle rows and is
 * combined with per-thread Y accumulators, exactly like the
 * single-RHS driver.
 */

#ifndef SMASH_KERNELS_SPMV_BATCH_HH
#define SMASH_KERNELS_SPMV_BATCH_HH

#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "core/block_cursor.hh"
#include "core/smash_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"
#include "formats/dia_matrix.hh"
#include "formats/ell_matrix.hh"
#include "kernels/costs.hh"
#include "kernels/util.hh"
#include "sim/core_model.hh"

namespace smash::kern
{

namespace detail
{

/** Shared operand checks of every batched kernel. */
inline Index
batchWidth(Index a_rows, Index a_x_len, const fmt::DenseMatrix& x,
           const fmt::DenseMatrix& y)
{
    SMASH_CHECK(x.cols() == y.cols(), "X carries ", x.cols(),
                " right-hand sides, Y carries ", y.cols());
    SMASH_CHECK(x.rows() >= a_x_len, "X block too short: ", x.rows(),
                " rows, operand needs ", a_x_len);
    SMASH_CHECK(y.rows() >= a_rows, "Y block too short");
    return x.cols();
}

} // namespace detail

/** Widest batch the native CSR kernel accumulates on the stack. */
inline constexpr Index kBatchAccumWidth = 64;

/**
 * Batched CSR SpMV over rows [row_begin, row_end): the Code
 * Listing 1 loop with an nrhs-wide inner update. Indexing cost per
 * non-zero is identical to spmvCsrRange; only the useful work
 * scales with the batch.
 *
 * The native path accumulates each row's nrhs partial sums in a
 * stack array: the compiler cannot prove X and Y don't alias, so
 * accumulating through the Y pointer forces a load+store per
 * non-zero per RHS — the local array keeps the sums in registers
 * and the inner loop vectorizes. Identical FMA order, so results
 * are bit-equal to the generic loop.
 */
template <typename E>
void
spmvBatchCsrRange(const fmt::CsrMatrix& a, const fmt::DenseMatrix& x,
                  fmt::DenseMatrix& y, Index row_begin, Index row_end,
                  E& e)
{
    const Index nrhs = detail::batchWidth(a.rows(), a.cols(), x, y);
    if constexpr (!E::kSimulated) {
        if (nrhs <= kBatchAccumWidth) {
            const auto& row_ptr = a.rowPtr();
            const auto& col_ind = a.colInd();
            const auto& values = a.values();
            const std::size_t prefetch_below =
                wantXPrefetch(
                    static_cast<std::size_t>(a.cols() * nrhs) *
                    sizeof(Value))
                    ? col_ind.size()
                    : 0;
            Value acc[kBatchAccumWidth];
            for (Index i = row_begin; i < row_end; ++i) {
                auto si = static_cast<std::size_t>(i);
                Value* yr = &y.at(i, 0);
                for (Index r = 0; r < nrhs; ++r)
                    acc[r] = yr[r];
                for (fmt::CsrIndex j = row_ptr[si];
                     j < row_ptr[si + 1]; ++j) {
                    auto sj = static_cast<std::size_t>(j);
                    const fmt::CsrIndex col = col_ind[sj];
                    const std::size_t ahead = sj + kXPrefetchDistance;
                    if (ahead < prefetch_below)
                        prefetchRead(x.rowData(
                            static_cast<Index>(col_ind[ahead])));
                    const Value v = values[sj];
                    const Value* xr =
                        x.rowData(static_cast<Index>(col));
                    for (Index r = 0; r < nrhs; ++r)
                        acc[r] += v * xr[r];
                }
                for (Index r = 0; r < nrhs; ++r)
                    yr[r] = acc[r];
            }
            return;
        }
    }
    const int vops = cost::vectorOps(nrhs);
    const auto& row_ptr = a.rowPtr();
    const auto& col_ind = a.colInd();
    const auto& values = a.values();
    // Gate on the gathered range (a.cols() rows of X), as in
    // spmvCsrRange.
    const std::size_t prefetch_below =
        wantXPrefetch(static_cast<std::size_t>(a.cols() * nrhs) *
                      sizeof(Value))
            ? col_ind.size()
            : 0;

    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&row_ptr[si + 1], sizeof(fmt::CsrIndex));
        Value* yr = &y.at(i, 0);
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&col_ind[sj], sizeof(fmt::CsrIndex));
            const fmt::CsrIndex col = col_ind[sj];
            if constexpr (!E::kSimulated) {
                // One chase fetches a whole RHS row; prefetch the
                // row a few non-zeros ahead (see spmvCsrRange).
                const std::size_t ahead = sj + kXPrefetchDistance;
                if (ahead < prefetch_below)
                    prefetchRead(x.rowData(
                        static_cast<Index>(col_ind[ahead])));
            }
            const Value* xr = x.rowData(static_cast<Index>(col));
            // One chase per non-zero fetches a whole RHS row.
            e.load(xr, static_cast<std::size_t>(nrhs) * sizeof(Value),
                   sim::Dep::kDependent);
            e.load(&values[sj], sizeof(Value));
            const Value v = values[sj];
            for (Index r = 0; r < nrhs; ++r)
                yr[r] += v * xr[r];
            e.op(vops + cost::kLoop);
        }
        e.store(yr, static_cast<std::size_t>(nrhs) * sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/** Batched ELL SpMV over rows [row_begin, row_end). */
template <typename E>
void
spmvBatchEllRange(const fmt::EllMatrix& a, const fmt::DenseMatrix& x,
                  fmt::DenseMatrix& y, Index row_begin, Index row_end,
                  E& e)
{
    const Index nrhs = detail::batchWidth(a.rows(), a.cols(), x, y);
    const int vops = cost::vectorOps(nrhs);
    const auto& col_ind = a.colInd();
    const auto& values = a.values();
    const Index width = a.width();

    for (Index i = row_begin; i < row_end; ++i) {
        Value* yr = &y.at(i, 0);
        for (Index k = 0; k < width; ++k) {
            auto slot = static_cast<std::size_t>(i * width + k);
            e.load(&col_ind[slot], sizeof(fmt::CsrIndex));
            e.op(cost::kCompareBranch);
            if (col_ind[slot] == fmt::kEllPad)
                break;
            const Value* xr =
                x.rowData(static_cast<Index>(col_ind[slot]));
            e.load(xr, static_cast<std::size_t>(nrhs) * sizeof(Value),
                   sim::Dep::kDependent);
            e.load(&values[slot], sizeof(Value));
            const Value v = values[slot];
            for (Index r = 0; r < nrhs; ++r)
                yr[r] += v * xr[r];
            e.op(vops + cost::kLoop);
        }
        e.store(yr, static_cast<std::size_t>(nrhs) * sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/** Batched DIA SpMV over rows [row_begin, row_end). */
template <typename E>
void
spmvBatchDiaRange(const fmt::DiaMatrix& a, const fmt::DenseMatrix& x,
                  fmt::DenseMatrix& y, Index row_begin, Index row_end,
                  E& e)
{
    const Index nrhs = detail::batchWidth(a.rows(), a.cols(), x, y);
    const int vops = cost::vectorOps(nrhs);
    const Index cols = a.cols();

    for (Index d = 0; d < a.numDiagonals(); ++d) {
        e.load(&a.offsets()[static_cast<std::size_t>(d)], sizeof(Index));
        const Index off = a.offsets()[static_cast<std::size_t>(d)];
        const Value* lane = a.laneData(d);
        const Index r_begin = std::max(row_begin, off < 0 ? -off : 0);
        const Index r_end = std::min(row_end, cols - off);
        e.op(2 * cost::kAddrCalc);
        for (Index r = r_begin; r < r_end; ++r) {
            auto sr = static_cast<std::size_t>(r);
            e.load(&lane[sr], sizeof(Value));
            const Value v = lane[sr];
            const Value* xr = x.rowData(r + off);
            Value* yr = &y.at(r, 0);
            e.load(xr, static_cast<std::size_t>(nrhs) * sizeof(Value));
            for (Index k = 0; k < nrhs; ++k)
                yr[k] += v * xr[k];
            e.store(yr, static_cast<std::size_t>(nrhs) * sizeof(Value));
            e.op(vops + cost::kLoop);
        }
        e.op(cost::kOuterLoop);
    }
}

/** Batched dense SpMV over rows [row_begin, row_end). */
template <typename E>
void
spmvBatchDenseRange(const fmt::DenseMatrix& a, const fmt::DenseMatrix& x,
                    fmt::DenseMatrix& y, Index row_begin, Index row_end,
                    E& e)
{
    const Index nrhs = detail::batchWidth(a.rows(), a.cols(), x, y);
    const int vops = cost::vectorOps(nrhs);
    const Index cols = a.cols();

    for (Index i = row_begin; i < row_end; ++i) {
        const Value* row = a.rowData(i);
        e.load(row, static_cast<std::size_t>(cols) * sizeof(Value));
        Value* yr = &y.at(i, 0);
        for (Index c = 0; c < cols; ++c) {
            const Value v = row[c];
            const Value* xr = x.rowData(c);
            e.load(xr, static_cast<std::size_t>(nrhs) * sizeof(Value));
            for (Index r = 0; r < nrhs; ++r)
                yr[r] += v * xr[r];
            e.op(vops + cost::kLoop);
        }
        e.store(yr, static_cast<std::size_t>(nrhs) * sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/**
 * Batched §4.4 word walk over Bitmap-0 words [word_begin, word_end):
 * the single-RHS spmvSmashSwWords loop with an nrhs-wide update per
 * NZA element. @p y is the flat row-major rows x nrhs block (a raw
 * pointer so the parallel driver can hand per-thread accumulators);
 * @p nza_block must be the Bitmap-0 rank before word_begin. Words
 * can straddle rows — parallel callers merge private Y copies.
 */
inline void
spmvBatchSmashWords(const core::SmashMatrix& a,
                    const fmt::DenseMatrix& x, Value* y, Index nrhs,
                    Index word_begin, Index word_end, Index nza_block)
{
    const Index bs = a.blockSize();
    const core::Bitmap& level0 = a.hierarchy().level(0);
    const Index padded_cols = a.paddedCols();
    const Value* nza = a.nza().data();
    Index block = nza_block;
    for (Index w = word_begin; w < word_end; ++w) {
        BitWord word = level0.word(w);
        while (word != 0) {
            const Index bit = w * kBitsPerWord + findFirstSet(word);
            word = clearLowestSet(word);
            const Index linear = bit * bs;
            const Index row = linear / padded_cols;
            const Index col0 = linear % padded_cols;
            const Value* blk = nza + static_cast<std::size_t>(block * bs);
            Value* yr = y + static_cast<std::size_t>(row * nrhs);
            for (Index k = 0; k < bs; ++k) {
                const Value v = blk[k];
                if (v == Value(0))
                    continue;
                const Value* xr = x.rowData(col0 + k);
                for (Index r = 0; r < nrhs; ++r)
                    yr[r] += v * xr[r];
            }
            ++block;
        }
    }
}

/**
 * Batched software SMASH SpMV: native path runs the word walk;
 * under simulation the hierarchy scan is billed once per block via
 * the cursor (identical to spmvSmashSw) and the compute charge
 * scales with the batch width.
 *
 * @param x must be padded to matrix.paddedCols() rows.
 */
template <typename E>
void
spmvBatchSmash(const core::SmashMatrix& a, const fmt::DenseMatrix& x,
               fmt::DenseMatrix& y, E& e)
{
    const Index nrhs =
        detail::batchWidth(a.rows(), a.paddedCols(), x, y);
    const Index bs = a.blockSize();
    const int vops = cost::vectorOps(nrhs);

    if constexpr (!E::kSimulated) {
        spmvBatchSmashWords(a, x, y.data().data(), nrhs, 0,
                            a.hierarchy().level(0).numWords(), 0);
        return;
    }

    core::BlockCursor cursor(a);
    cursor.setRecordTouches(E::kSimulated);
    core::BlockPosition pos;
    ScanBiller biller(ScanBiller::kSoftwareStreamBase);
    while (cursor.next(pos)) {
        biller.charge(cursor, e);
        e.op(2 + cost::kAddrCalc);
        const Value* blk = a.blockData(pos.nzaBlock);
        e.load(blk, static_cast<std::size_t>(bs) * sizeof(Value));
        Value* yr = &y.at(pos.row, 0);
        for (Index k = 0; k < bs; ++k) {
            const Value v = blk[k];
            if (v == Value(0))
                continue;
            const Value* xr = x.rowData(pos.colStart + k);
            e.load(xr, static_cast<std::size_t>(nrhs) * sizeof(Value));
            for (Index r = 0; r < nrhs; ++r)
                yr[r] += v * xr[r];
            e.op(vops);
        }
        e.store(yr, static_cast<std::size_t>(nrhs) * sizeof(Value));
        e.op(cost::kLoop);
    }
}

} // namespace smash::kern

#endif // SMASH_KERNELS_SPMV_BATCH_HH
