/**
 * @file
 * SpMV kernels for the structure-specialized formats (DIA, ELL).
 * These complete the format spectrum of the paper's §2.3 discussion:
 * DIA wins outright on banded matrices and drowns in padding on
 * unstructured ones, while ELL sits between CSR and BCSR. Both use
 * regular, pointer-chase-free traversals, so their indexing cost is
 * pure padding overhead — the mirror image of CSR, whose cost is
 * pure indirection.
 */

#ifndef SMASH_KERNELS_SPMV_STRUCTURED_HH
#define SMASH_KERNELS_SPMV_STRUCTURED_HH

#include <vector>

#include "common/logging.hh"
#include "formats/dia_matrix.hh"
#include "formats/ell_matrix.hh"
#include "kernels/costs.hh"
#include "sim/core_model.hh"

namespace smash::kern
{

/**
 * DIA SpMV restricted to rows [row_begin, row_end): every stored
 * diagonal is walked over the slice of rows it intersects. Disjoint
 * row ranges touch disjoint y entries, so the parallel driver hands
 * one range to each worker.
 */
template <typename E>
void
spmvDiaRange(const fmt::DiaMatrix& a, const std::vector<Value>& x,
             std::vector<Value>& y, Index row_begin, Index row_end, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const Index cols = a.cols();

    for (Index d = 0; d < a.numDiagonals(); ++d) {
        e.load(&a.offsets()[static_cast<std::size_t>(d)], sizeof(Index));
        const Index off = a.offsets()[static_cast<std::size_t>(d)];
        const Value* lane = a.laneData(d);
        // Row range for which column r + off stays inside the matrix.
        const Index r_begin = std::max(row_begin, off < 0 ? -off : 0);
        const Index r_end = std::min(row_end, cols - off);
        e.op(2 * cost::kAddrCalc);
        for (Index r = r_begin; r < r_end; ++r) {
            auto sr = static_cast<std::size_t>(r);
            e.load(&lane[sr], sizeof(Value));
            e.load(&x[static_cast<std::size_t>(r + off)], sizeof(Value));
            y[sr] += lane[sr] * x[static_cast<std::size_t>(r + off)];
            e.load(&y[sr], sizeof(Value));
            e.store(&y[sr], sizeof(Value));
            e.op(cost::kFma + cost::kLoop);
        }
        e.op(cost::kOuterLoop);
    }
}

/**
 * DIA SpMV: one dense lane pass per stored diagonal. All accesses
 * are unit-stride (lane, x window, y window); there is no indexing
 * metadata beyond one offset per diagonal. Stored padding zeros are
 * multiplied like any other slot, which is exactly DIA's cost model.
 */
template <typename E>
void
spmvDia(const fmt::DiaMatrix& a, const std::vector<Value>& x,
        std::vector<Value>& y, E& e)
{
    spmvDiaRange(a, x, y, 0, a.rows(), e);
}

/**
 * ELL SpMV over the row range [row_begin, row_end); disjoint row
 * ranges are parallel-safe (fixed-width slabs, private y rows).
 */
template <typename E>
void
spmvEllRange(const fmt::EllMatrix& a, const std::vector<Value>& x,
             std::vector<Value>& y, Index row_begin, Index row_end, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& col_ind = a.colInd();
    const auto& values = a.values();
    const Index width = a.width();

    for (Index r = row_begin; r < row_end; ++r) {
        Value acc = 0;
        for (Index k = 0; k < width; ++k) {
            std::size_t slot = static_cast<std::size_t>(r * width + k);
            e.load(&col_ind[slot], sizeof(fmt::CsrIndex));
            e.op(cost::kCompareBranch);
            if (col_ind[slot] == fmt::kEllPad)
                break;
            e.load(&x[static_cast<std::size_t>(col_ind[slot])],
                   sizeof(Value), sim::Dep::kDependent);
            e.load(&values[slot], sizeof(Value));
            acc += values[slot] *
                x[static_cast<std::size_t>(col_ind[slot])];
            e.op(cost::kFma + cost::kLoop);
        }
        auto sr = static_cast<std::size_t>(r);
        y[sr] += acc;
        e.store(&y[sr], sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/**
 * ELL SpMV: fixed-width row slabs. The column index still gates the
 * x access (a dependent load, like CSR), but there is no row_ptr
 * indirection and the slab address arithmetic is pure register work.
 * Padding slots are skipped by the sentinel test, which still costs
 * the compare/branch.
 */
template <typename E>
void
spmvEll(const fmt::EllMatrix& a, const std::vector<Value>& x,
        std::vector<Value>& y, E& e)
{
    spmvEllRange(a, x, y, 0, a.rows(), e);
}

} // namespace smash::kern

#endif // SMASH_KERNELS_SPMV_STRUCTURED_HH
