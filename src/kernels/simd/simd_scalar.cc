/**
 * @file
 * Scalar (portable C++) kernel variants — the reference
 * implementation of the canonical arithmetic every vector variant
 * reproduces bit-for-bit (see simd_internal.hh). Runs on any host
 * and under SMASH_FORCE_ISA=scalar.
 */

#include "kernels/simd/simd_internal.hh"

namespace smash::simd
{
namespace
{

void
csrSpmvRangeScalar(const fmt::CsrMatrix& a, const std::vector<Value>& x,
                   std::vector<Value>& y, Index row_begin,
                   Index row_end)
{
    detail::checkCsrOperands(a, x, y);
    const fmt::CsrIndex* row_ptr = a.rowPtr().data();
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const Value* xp = x.data();
    // Gate on the gathered range, as in kern::spmvCsrRange: prefetch
    // only pays when x cannot sit in the fast cache levels.
    const Index pf_total =
        kern::wantXPrefetch(static_cast<std::size_t>(a.cols()) *
                            sizeof(Value))
            ? static_cast<Index>(a.colInd().size())
            : 0;
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex b = row_ptr[si];
        const Index n = static_cast<Index>(row_ptr[si + 1] - b);
        y[si] += detail::dotSpanScalar(
            cols + b, vals + b, n, xp,
            pf_total == 0 ? Index(0) : pf_total - b);
    }
}

void
csrSpmvTileRangeScalar(const fmt::CsrMatrix& a,
                       const fmt::CsrIndex* seg_begin,
                       const fmt::CsrIndex* seg_end,
                       const std::vector<Value>& x,
                       std::vector<Value>& y, Index row_begin,
                       Index row_end)
{
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const Value* xp = x.data();
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex b = seg_begin[si];
        const Index n = static_cast<Index>(seg_end[si] - b);
        // Empty segments skip the y read-modify-write entirely —
        // the skip is geometric, so every variant skips alike.
        if (n == 0)
            continue;
        // Tiles are sized to keep the x slice cache-resident, so no
        // prefetch.
        y[si] += detail::dotSpanScalar(cols + b, vals + b, n, xp, 0);
    }
}

void
csrSpmvBatchRangeScalar(const fmt::CsrMatrix& a,
                        const fmt::DenseMatrix& x, fmt::DenseMatrix& y,
                        Index row_begin, Index row_end)
{
    const Index nrhs = kern::detail::batchWidth(a.rows(), a.cols(), x, y);
    const fmt::CsrIndex* row_ptr = a.rowPtr().data();
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const std::size_t prefetch_below =
        kern::wantXPrefetch(
            static_cast<std::size_t>(a.cols() * nrhs) * sizeof(Value))
            ? a.colInd().size()
            : 0;
    if (nrhs <= kern::kBatchAccumWidth) {
        // Stack accumulators keep the row's partial sums in
        // registers (X/Y may alias as far as the compiler knows).
        Value acc[kern::kBatchAccumWidth];
        for (Index i = row_begin; i < row_end; ++i) {
            auto si = static_cast<std::size_t>(i);
            Value* yr = &y.at(i, 0);
            for (Index r = 0; r < nrhs; ++r)
                acc[r] = yr[r];
            for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1];
                 ++j) {
                auto sj = static_cast<std::size_t>(j);
                const std::size_t ahead = sj + kern::kXPrefetchDistance;
                if (ahead < prefetch_below)
                    kern::prefetchRead(
                        x.rowData(static_cast<Index>(cols[ahead])));
                const Value v = vals[sj];
                const Value* xr =
                    x.rowData(static_cast<Index>(cols[sj]));
                for (Index r = 0; r < nrhs; ++r)
                    acc[r] += v * xr[r];
            }
            for (Index r = 0; r < nrhs; ++r)
                yr[r] = acc[r];
        }
        return;
    }
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        Value* yr = &y.at(i, 0);
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            const std::size_t ahead = sj + kern::kXPrefetchDistance;
            if (ahead < prefetch_below)
                kern::prefetchRead(
                    x.rowData(static_cast<Index>(cols[ahead])));
            const Value v = vals[sj];
            const Value* xr = x.rowData(static_cast<Index>(cols[sj]));
            for (Index r = 0; r < nrhs; ++r)
                yr[r] += v * xr[r];
        }
    }
}

void
smashSpmvWordsScalar(const core::SmashMatrix& a,
                     const std::vector<Value>& x, std::vector<Value>& y,
                     Index word_begin, Index word_end, Index nza_block)
{
    detail::checkSmashOperands(a, x, y);
    const Index bs = a.blockSize();
    const core::Bitmap& level0 = a.hierarchy().level(0);
    const Value* nza = a.nza().data();
    const Value* xp = x.data();
    const Index bits_per_row = a.paddedCols() / bs;
    if (word_begin >= word_end || bits_per_row == 0)
        return;
    Index block = nza_block;
    for (Index w = word_begin; w < word_end; ++w) {
        const BitWord word = level0.word(w);
        if (word == 0)
            continue;
        const Index base_bit = w * kBitsPerWord;
        const Index row = base_bit / bits_per_row;
        // Fast path: the whole word maps into one matrix row, so the
        // word's blocks reduce in registers and hit y exactly once.
        if ((base_bit + kBitsPerWord - 1) / bits_per_row == row) {
            const Value* x_org =
                xp + static_cast<std::size_t>(
                         (base_bit - row * bits_per_row) * bs);
            const Value* blk =
                nza + static_cast<std::size_t>(block * bs);
            y[static_cast<std::size_t>(row)] +=
                bs == 2 ? detail::pairWordScalar(word, x_org, blk)
                        : detail::genericWordScalar(word, x_org, blk,
                                                    bs);
            block += popcount(word);
        } else {
            block = detail::smashWordSlow(word, base_bit, bits_per_row,
                                          bs, nza, block, xp,
                                          y.data());
        }
    }
}

void
smashSpmvBatchWordsScalar(const core::SmashMatrix& a,
                          const fmt::DenseMatrix& x, Value* y,
                          Index nrhs, Index word_begin, Index word_end,
                          Index nza_block)
{
    const Index bs = a.blockSize();
    const core::Bitmap& level0 = a.hierarchy().level(0);
    const Index padded_cols = a.paddedCols();
    const Value* nza = a.nza().data();
    Index block = nza_block;
    for (Index w = word_begin; w < word_end; ++w) {
        BitWord word = level0.word(w);
        while (word != 0) {
            const Index bit = w * kBitsPerWord + findFirstSet(word);
            word = clearLowestSet(word);
            const Index linear = bit * bs;
            const Index row = linear / padded_cols;
            const Index col0 = linear % padded_cols;
            const Value* blk =
                nza + static_cast<std::size_t>(block * bs);
            Value* yr = y + static_cast<std::size_t>(row * nrhs);
            for (Index k = 0; k < bs; ++k) {
                const Value v = blk[k];
                if (v == Value(0))
                    continue;
                const Value* xr = x.rowData(col0 + k);
                for (Index r = 0; r < nrhs; ++r)
                    yr[r] += v * xr[r];
            }
            ++block;
        }
    }
}

Index
popcountWordsScalar(const BitWord* words, Index n)
{
    // Bit-clearing loop: beats std::popcount's libcall when the
    // binary is built without -mpopcnt and words are sparse.
    Index total = 0;
    for (Index i = 0; i < n; ++i) {
        BitWord w = words[static_cast<std::size_t>(i)];
        while (w != 0) {
            w = clearLowestSet(w);
            ++total;
        }
    }
    return total;
}

} // namespace

const KernelTable&
scalarKernelTable()
{
    static const KernelTable table = {
        &csrSpmvRangeScalar,     &csrSpmvTileRangeScalar,
        &csrSpmvBatchRangeScalar, &smashSpmvWordsScalar,
        &smashSpmvBatchWordsScalar, &popcountWordsScalar,
        IsaLevel::kScalar,
    };
    return table;
}

} // namespace smash::simd
