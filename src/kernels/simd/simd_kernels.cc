/**
 * @file
 * Dispatch-table selection: map the active IsaLevel (one atomic
 * read) to its variant table. The tables themselves are immutable
 * function-pointer structs defined in the variant translation
 * units; selection is branch-predictable and allocation-free, so
 * the engine can re-resolve on every kernel call and still honor
 * the warmed-dispatch zero-allocation contract.
 */

#include "kernels/simd/simd_internal.hh"

namespace smash::simd
{

const KernelTable&
kernelsFor(IsaLevel level)
{
    switch (level) {
      case IsaLevel::kAvx512:
        return avx512KernelTable();
      case IsaLevel::kAvx2:
        return avx2KernelTable();
      case IsaLevel::kScalar:
        break;
    }
    return scalarKernelTable();
}

const KernelTable&
kernels()
{
    return kernelsFor(activeIsaLevel());
}

} // namespace smash::simd
