/**
 * @file
 * Guarded AVX-512F kernel variants. Only the CSR gather dots get
 * wider here (one 8-lane zmm accumulator, vgatherdpd over a full
 * 8-index vector): the zmm is reduced 256-bit-halves-first, which
 * reproduces the canonical 8-lane tree exactly (lane l of the zmm
 * is lane sum s[l]; the half-add yields s[l] + s[l+4], identical to
 * AVX2's acc0+acc1). Tail groups spill the accumulator and finish
 * with the scalar canonical tail — no AVX-512VL needed, no
 * out-of-bounds index loads.
 *
 * The SMASH walk, batch kernels and popcount reuse the AVX2
 * entries: the blockSize==2 walk is pinned to the 4-lane canonical
 * (an 8-lane grouping would change the addition tree and break
 * bit-identity), and the others are bound by memory, not lanes.
 */

#include "kernels/simd/simd_internal.hh"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SMASH_SIMD_X86 1
#include <immintrin.h>
#else
#define SMASH_SIMD_X86 0
#endif

namespace smash::simd
{

#if SMASH_SIMD_X86

#define SMASH_TARGET_AVX512 \
    __attribute__((target("avx512f,avx2,bmi,bmi2,popcnt")))

namespace
{

/** Canonical CSR span dot, AVX-512F: full groups gather 8 doubles
 *  per iteration; the sub-8 tail spills and finishes scalar. */
SMASH_TARGET_AVX512 inline Value
dotSpanAvx512(const fmt::CsrIndex* cols, const Value* vals, Index n,
              const Value* x, Index prefetch_limit)
{
    __m512d acc = _mm512_setzero_pd();
    Index k = 0;
    for (; k + 8 <= n; k += 8) {
        if (k + static_cast<Index>(kern::kXPrefetchDistance) + 7 <
            prefetch_limit) {
            for (int l = 0; l < 8; ++l)
                kern::prefetchRead(&x[static_cast<std::size_t>(
                    cols[k + kern::kXPrefetchDistance + l])]);
        }
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cols + k));
        // Full-mask gather: defined destination (see the AVX2 TU).
        const __m512d xg = _mm512_mask_i32gather_pd(
            _mm512_setzero_pd(), static_cast<__mmask8>(0xff), idx, x,
            8);
        const __m512d v = _mm512_loadu_pd(vals + k);
        acc = _mm512_add_pd(acc, _mm512_mul_pd(v, xg));
    }
    // Spill the lane sums and run the canonical scalar tail + tree:
    // bit-identical to every other variant by construction.
    alignas(64) Value s[8];
    _mm512_store_pd(s, acc);
    if (k < n) {
        for (int l = 0; l < 8; ++l) {
            const Index kk = k + l;
            s[l] += kk < n
                        ? vals[kk] *
                              x[static_cast<std::size_t>(cols[kk])]
                        : Value(0);
        }
    }
    return detail::reduceLanes8(s);
}

SMASH_TARGET_AVX512 void
csrSpmvRangeAvx512(const fmt::CsrMatrix& a, const std::vector<Value>& x,
                   std::vector<Value>& y, Index row_begin,
                   Index row_end)
{
    detail::checkCsrOperands(a, x, y);
    const fmt::CsrIndex* row_ptr = a.rowPtr().data();
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const Value* xp = x.data();
    const Index pf_total =
        kern::wantXPrefetch(static_cast<std::size_t>(a.cols()) *
                            sizeof(Value))
            ? static_cast<Index>(a.colInd().size())
            : 0;
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex b = row_ptr[si];
        const Index n = static_cast<Index>(row_ptr[si + 1] - b);
        y[si] += dotSpanAvx512(cols + b, vals + b, n, xp,
                               pf_total == 0 ? Index(0)
                                             : pf_total - b);
    }
}

SMASH_TARGET_AVX512 void
csrSpmvTileRangeAvx512(const fmt::CsrMatrix& a,
                       const fmt::CsrIndex* seg_begin,
                       const fmt::CsrIndex* seg_end,
                       const std::vector<Value>& x,
                       std::vector<Value>& y, Index row_begin,
                       Index row_end)
{
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const Value* xp = x.data();
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex b = seg_begin[si];
        const Index n = static_cast<Index>(seg_end[si] - b);
        if (n == 0)
            continue;
        y[si] += dotSpanAvx512(cols + b, vals + b, n, xp, 0);
    }
}

} // namespace

const KernelTable&
avx512KernelTable()
{
    const KernelTable& avx2 = avx2KernelTable();
    static const KernelTable table = {
        &csrSpmvRangeAvx512,   &csrSpmvTileRangeAvx512,
        avx2.csrSpmvBatchRange, avx2.smashSpmvWords,
        avx2.smashSpmvBatchWords, avx2.popcountWords,
        IsaLevel::kAvx512,
    };
    return table;
}

#else // !SMASH_SIMD_X86

const KernelTable&
avx512KernelTable()
{
    return scalarKernelTable();
}

#endif

} // namespace smash::simd
