/**
 * @file
 * Internals shared by the SIMD variant translation units. Not part
 * of the public surface — include simd_kernels.hh instead.
 *
 * This header pins down the *canonical arithmetic* every variant
 * must reproduce bit-for-bit:
 *
 *  - CSR row/segment dots and generic SMASH block dots keep eight
 *    lane sums, element k feeding lane k mod 8, with the final
 *    (n mod 8) group padded by +0.0 products; lanes reduce as
 *    ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)). That is precisely the
 *    result of two 4-lane AVX2 accumulators (or one 8-lane AVX-512
 *    accumulator folded 256-bit-halves-first) reduced
 *    add / extract-high / add / unpack / add.
 *  - The blockSize==2 SMASH fast path keeps four lane sums: set-bit
 *    ordinal b contributes its two products to lanes (b%2)*2 and
 *    (b%2)*2+1 (one ymm holds two blocks), an odd trailing block
 *    pads lanes 2..3 with +0.0, and the reduction is
 *    (s0+s2) + (s1+s3). All ISA levels use this 4-lane canonical
 *    for blockSize==2 — the AVX-512 table reuses the AVX2 walk,
 *    since an 8-lane grouping would change the addition tree.
 *  - Words that straddle a row boundary take the shared per-bit
 *    scalar path below (identical code in every variant); the
 *    fast/slow choice is purely geometric, so every variant makes
 *    the same choice per word.
 *  - Batched kernels accumulate each RHS lane independently in
 *    non-zero order; any vector width over the RHS dimension is
 *    bit-identical by construction.
 *
 * Every TU including this header is compiled with -ffp-contract=off
 * (see CMakeLists.txt) so a*b+c never contracts into FMA behind the
 * scalar variant's back under -mavx2/-mfma builds.
 */

#ifndef SMASH_KERNELS_SIMD_SIMD_INTERNAL_HH
#define SMASH_KERNELS_SIMD_SIMD_INTERNAL_HH

#include "common/bitops.hh"
#include "common/logging.hh"
#include "kernels/simd/simd_kernels.hh"
#include "kernels/spmv_batch.hh"
#include "kernels/util.hh"

namespace smash::simd
{

/** Per-variant tables (each .cc defines one; non-x86 builds alias
 *  the vector tables to the scalar one). */
const KernelTable& scalarKernelTable();
const KernelTable& avx2KernelTable();
const KernelTable& avx512KernelTable();

namespace detail
{

/** The canonical 8-lane reduction tree (see file comment). */
inline Value
reduceLanes8(const Value* s)
{
    return ((s[0] + s[4]) + (s[2] + s[6])) +
           ((s[1] + s[5]) + (s[3] + s[7]));
}

/**
 * Canonical CSR span dot: sum of vals[k] * x[cols[k]] over
 * k in [0, n) in the 8-lane scheme. Prefetches x for elements
 * kXPrefetchDistance ahead while that index stays below
 * @p prefetch_limit — the count of valid col entries from @p cols
 * onward (pass 0 to disable).
 */
inline Value
dotSpanScalar(const fmt::CsrIndex* cols, const Value* vals, Index n,
              const Value* x, Index prefetch_limit)
{
    Value s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    Index k = 0;
    for (; k + 8 <= n; k += 8) {
        for (int l = 0; l < 8; ++l) {
            const Index kk = k + l;
            if (kk + static_cast<Index>(kern::kXPrefetchDistance) <
                prefetch_limit)
                kern::prefetchRead(
                    &x[static_cast<std::size_t>(
                        cols[kk + kern::kXPrefetchDistance])]);
            s[l] += vals[kk] *
                    x[static_cast<std::size_t>(cols[kk])];
        }
    }
    if (k < n) {
        for (int l = 0; l < 8; ++l) {
            const Index kk = k + l;
            s[l] += kk < n
                        ? vals[kk] *
                              x[static_cast<std::size_t>(cols[kk])]
                        : Value(0);
        }
    }
    return reduceLanes8(s);
}

/** Canonical contiguous dot (generic-blockSize SMASH payloads):
 *  sum of a[k] * b[k], k in [0, n), 8-lane scheme. */
inline Value
dotContigScalar(const Value* a, const Value* b, Index n)
{
    Value s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    Index k = 0;
    for (; k + 8 <= n; k += 8)
        for (int l = 0; l < 8; ++l)
            s[l] += a[k + l] * b[k + l];
    if (k < n) {
        for (int l = 0; l < 8; ++l) {
            const Index kk = k + l;
            s[l] += kk < n ? a[kk] * b[kk] : Value(0);
        }
    }
    return reduceLanes8(s);
}

/**
 * Canonical blockSize==2 word sum: @p x_org points at x offset so
 * that set bit t of @p word reads x_org[2t], x_org[2t+1]; @p blk is
 * the first block's payload (consecutive set bits have contiguous
 * payloads). 4-lane scheme (see file comment).
 */
inline Value
pairWordScalar(BitWord word, const Value* x_org, const Value* blk)
{
    Value s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    Index ordinal = 0;
    while (word != 0) {
        const Index t = findFirstSet(word);
        word = clearLowestSet(word);
        const Value* xb = x_org + static_cast<std::size_t>(2 * t);
        if ((ordinal & 1) == 0) {
            s0 += blk[0] * xb[0];
            s1 += blk[1] * xb[1];
        } else {
            s2 += blk[0] * xb[0];
            s3 += blk[1] * xb[1];
        }
        blk += 2;
        ++ordinal;
    }
    if ((ordinal & 1) != 0) {
        s2 += Value(0);
        s3 += Value(0);
    }
    return (s0 + s2) + (s1 + s3);
}

/** Canonical generic-blockSize word sum: left fold of the blocks'
 *  contiguous dots in bit order. */
inline Value
genericWordScalar(BitWord word, const Value* x_org, const Value* blk,
                  Index bs)
{
    Value ws = 0;
    while (word != 0) {
        const Index t = findFirstSet(word);
        word = clearLowestSet(word);
        ws += dotContigScalar(
            blk, x_org + static_cast<std::size_t>(t * bs), bs);
        blk += bs;
    }
    return ws;
}

/**
 * Shared slow path for a Bitmap-0 word whose bits straddle a row
 * boundary: the original per-bit walk (plain sequential block dot,
 * one y read-modify-write per bit). Every variant calls this exact
 * code, so row-spanning words are trivially bit-identical across
 * ISA levels. Returns the NZA block ordinal after the word.
 */
inline Index
smashWordSlow(BitWord word, Index word_base_bit, Index bits_per_row,
              Index bs, const Value* nza, Index block, const Value* x,
              Value* y)
{
    while (word != 0) {
        const Index bit = word_base_bit + findFirstSet(word);
        word = clearLowestSet(word);
        const Index row = bit / bits_per_row;
        const Index col0 = (bit - row * bits_per_row) * bs;
        const Value* blk = nza + static_cast<std::size_t>(block * bs);
        Value acc = 0;
        for (Index k = 0; k < bs; ++k)
            acc += blk[k] * x[static_cast<std::size_t>(col0 + k)];
        y[static_cast<std::size_t>(row)] += acc;
        ++block;
    }
    return block;
}

/** Operand checks shared by the CSR entries. */
inline void
checkCsrOperands(const fmt::CsrMatrix& a, const std::vector<Value>& x,
                 const std::vector<Value>& y)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(),
                "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(),
                "y too short");
}

/** Operand checks shared by the SMASH entries. */
inline void
checkSmashOperands(const core::SmashMatrix& a,
                   const std::vector<Value>& x,
                   const std::vector<Value>& y)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.paddedCols(),
                "x must be padded to paddedCols");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(),
                "y too short");
}

} // namespace detail

} // namespace smash::simd

#endif // SMASH_KERNELS_SIMD_SIMD_INTERNAL_HH
