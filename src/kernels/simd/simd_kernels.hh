/**
 * @file
 * SIMD kernel layer: runtime-dispatched variants of the engine's
 * hot native loops — the CSR gather SpMV/SpMM-batch row loops, the
 * SMASH Bitmap-0 word walk (the software analogue of the paper's
 * BMU), the cache-blocked CSR tile kernel, and the word-rank
 * popcount used by the SMASH partition pre-scan.
 *
 * One binary carries scalar, AVX2+BMI2, and (guarded) AVX-512F
 * implementations of every entry; kernels() returns the table for
 * the active IsaLevel (common/cpu_features.hh). The variants are
 * *bit-identical* by construction: every implementation computes
 * the same canonical reduction tree — eight lane sums filled in
 * element order (lane = element index mod 8, missing tail lanes
 * padded with +0.0 products) reduced as
 * ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)), which is exactly what the
 * vector variants' register layout produces — and the SIMD
 * translation units are compiled with -ffp-contract=off so the
 * scalar variant cannot be silently contracted into FMA under
 * -mavx2 builds. SMASH_FORCE_ISA / setIsaLevel() therefore never
 * changes results, only speed; tests/test_simd.cc enforces this.
 *
 * These entries are native-only (no execution-model billing): the
 * engine's simulated (SimExec) paths keep the cost-accurate kernels
 * in kernels/spmv.hh. None of the entries allocates — the
 * steady-state zero-allocation contract of the dispatch layer
 * extends to every variant.
 */

#ifndef SMASH_KERNELS_SIMD_SIMD_KERNELS_HH
#define SMASH_KERNELS_SIMD_SIMD_KERNELS_HH

#include <vector>

#include "common/cpu_features.hh"
#include "common/types.hh"
#include "core/smash_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::simd
{

/**
 * Function-pointer table of one ISA level. All entries of any
 * table produce bit-identical results; only throughput differs.
 */
struct KernelTable
{
    /** y := y + A x over CSR rows [row_begin, row_end). x must hold
     *  at least a.cols() entries, y at least a.rows(). */
    void (*csrSpmvRange)(const fmt::CsrMatrix& a,
                         const std::vector<Value>& x,
                         std::vector<Value>& y, Index row_begin,
                         Index row_end);

    /**
     * Cache-blocked tile pass: for each row in [row_begin, row_end),
     * accumulate the segment [seg_begin[i], seg_end[i]) of the
     * row's non-zeros into y[i]. seg_begin/seg_end are one column
     * tile's slice of a PartitionPlan::seg table (engine/plan.hh);
     * rows with empty segments are skipped entirely.
     */
    void (*csrSpmvTileRange)(const fmt::CsrMatrix& a,
                             const fmt::CsrIndex* seg_begin,
                             const fmt::CsrIndex* seg_end,
                             const std::vector<Value>& x,
                             std::vector<Value>& y, Index row_begin,
                             Index row_end);

    /** Y := Y + A X (batched SpMV) over CSR rows
     *  [row_begin, row_end); lanes vectorize across the RHS block,
     *  so results are bit-identical to the per-RHS scalar loop. */
    void (*csrSpmvBatchRange)(const fmt::CsrMatrix& a,
                              const fmt::DenseMatrix& x,
                              fmt::DenseMatrix& y, Index row_begin,
                              Index row_end);

    /** The §4.4 SMASH word walk over Bitmap-0 words
     *  [word_begin, word_end); nza_block is the Bitmap-0 rank before
     *  word_begin. x must be padded to a.paddedCols(). */
    void (*smashSpmvWords)(const core::SmashMatrix& a,
                           const std::vector<Value>& x,
                           std::vector<Value>& y, Index word_begin,
                           Index word_end, Index nza_block);

    /** Batched SMASH word walk; y is the flat rows x nrhs block. */
    void (*smashSpmvBatchWords)(const core::SmashMatrix& a,
                                const fmt::DenseMatrix& x, Value* y,
                                Index nrhs, Index word_begin,
                                Index word_end, Index nza_block);

    /** Total set bits in words[0, n) — the SMASH partition rank
     *  pre-scan. */
    Index (*popcountWords)(const BitWord* words, Index n);

    /** The level this table implements. */
    IsaLevel level;
};

/** The table of the active IsaLevel (re-read on every call, so
 *  setIsaLevel() takes effect immediately). */
const KernelTable& kernels();

/** The table of exactly @p level (callers must ensure the host
 *  supports it; kernelsFor(activeIsaLevel()) always does). */
const KernelTable& kernelsFor(IsaLevel level);

} // namespace smash::simd

#endif // SMASH_KERNELS_SIMD_SIMD_KERNELS_HH
