/**
 * @file
 * AVX2 + BMI + POPCNT kernel variants — the software analogue of
 * the paper's Bitmap Management Unit. CSR dots gather x with
 * vgatherdpd under two 4-lane accumulators; the SMASH word walk
 * decodes set bits with tzcnt/blsr (BMI) and, for the common
 * blockSize==2 encoding, multiplies two blocks per ymm; the rank
 * pre-scan uses the popcnt instruction. (_pext_u64 lane compaction
 * was prototyped and lost to the tzcnt/blsr decode — see
 * docs/performance.md.)
 *
 * Every function carries a target attribute instead of the TU being
 * compiled with -mavx2, so the binary stays runnable on any x86-64
 * and the dispatch table alone decides what executes. Arithmetic is
 * mul+add (never FMA) in the canonical order of simd_internal.hh:
 * results are bit-identical to the scalar variant. Tail lanes use
 * masked loads/gathers that contribute +0.0 products, exactly like
 * the scalar tail padding; masked lanes never touch memory, so
 * there are no out-of-bounds reads.
 */

#include "kernels/simd/simd_internal.hh"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SMASH_SIMD_X86 1
#include <immintrin.h>
#else
#define SMASH_SIMD_X86 0
#endif

namespace smash::simd
{

#if SMASH_SIMD_X86

#define SMASH_TARGET_AVX2 \
    __attribute__((target("avx2,bmi,bmi2,popcnt")))

namespace
{

/** Sliding-window tail masks: load at (8 - active) for a 64-bit
 *  4-lane mask with the first `active` lanes enabled. */
alignas(32) constexpr std::int64_t kTailMask64[12] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0,
};
/** Same trick for 32-bit index lanes (first `active` of 4). */
alignas(16) constexpr std::int32_t kTailMask32[8] = {
    -1, -1, -1, -1, 0, 0, 0, 0,
};

SMASH_TARGET_AVX2 inline __m256i
tailMask64(Index active) // 0..4 lanes enabled
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        kTailMask64 + (8 - active)));
}

SMASH_TARGET_AVX2 inline __m128i
tailMask32(Index active) // 0..4 lanes enabled
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        kTailMask32 + (4 - active)));
}

/** The canonical reduction of the two 4-lane accumulators (see
 *  simd_internal.hh: this IS the ((s0+s4)+(s2+s6)) +
 *  ((s1+s5)+(s3+s7)) tree). */
SMASH_TARGET_AVX2 inline Value
reduceAcc(__m256d acc0, __m256d acc1)
{
    const __m256d v = _mm256_add_pd(acc0, acc1);
    const __m128d p = _mm_add_pd(_mm256_castpd256_pd128(v),
                                 _mm256_extractf128_pd(v, 1));
    return _mm_cvtsd_f64(_mm_add_pd(p, _mm_unpackhi_pd(p, p)));
}

/** Canonical CSR span dot, AVX2: dual gather accumulators, masked
 *  tail group. Mirrors detail::dotSpanScalar bit-for-bit. */
SMASH_TARGET_AVX2 inline Value
dotSpanAvx2(const fmt::CsrIndex* cols, const Value* vals, Index n,
            const Value* x, Index prefetch_limit)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    Index k = 0;
    for (; k + 8 <= n; k += 8) {
        if (k + static_cast<Index>(kern::kXPrefetchDistance) + 7 <
            prefetch_limit) {
            // Match the scalar variant's coverage: one prefetch per
            // element, a full group ahead of the gathers.
            for (int l = 0; l < 8; ++l)
                kern::prefetchRead(&x[static_cast<std::size_t>(
                    cols[k + kern::kXPrefetchDistance + l])]);
        }
        const __m128i idx0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(cols + k));
        const __m128i idx1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(cols + k + 4));
        // Full-mask form of the gather: same vgatherdpd, but with a
        // defined destination (the plain intrinsic's undefined dst
        // trips -Wmaybe-uninitialized through the GCC headers).
        const __m256d ones =
            _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        const __m256d x0 = _mm256_mask_i32gather_pd(
            _mm256_setzero_pd(), x, idx0, ones, 8);
        const __m256d x1 = _mm256_mask_i32gather_pd(
            _mm256_setzero_pd(), x, idx1, ones, 8);
        const __m256d v0 = _mm256_loadu_pd(vals + k);
        const __m256d v1 = _mm256_loadu_pd(vals + k + 4);
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, x0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, x1));
    }
    const Index rem = n - k;
    if (rem > 0) {
        const Index r0 = rem < 4 ? rem : 4;
        const Index r1 = rem - r0;
        const __m256i m0 = tailMask64(r0);
        const __m256i m1 = tailMask64(r1);
        // Masked index loads keep inactive lanes at 0; the masked
        // gather never dereferences inactive lanes, so the value is
        // irrelevant.
        const __m128i idx0 = _mm_maskload_epi32(
            reinterpret_cast<const int*>(cols + k), tailMask32(r0));
        const __m128i idx1 = _mm_maskload_epi32(
            reinterpret_cast<const int*>(cols + k + 4), tailMask32(r1));
        const __m256d x0 = _mm256_mask_i32gather_pd(
            _mm256_setzero_pd(), x, idx0, _mm256_castsi256_pd(m0), 8);
        const __m256d x1 = _mm256_mask_i32gather_pd(
            _mm256_setzero_pd(), x, idx1, _mm256_castsi256_pd(m1), 8);
        const __m256d v0 = _mm256_maskload_pd(vals + k, m0);
        const __m256d v1 = _mm256_maskload_pd(vals + k + 4, m1);
        // Inactive lanes add +0.0 * +0.0 — the scalar tail padding.
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, x0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, x1));
    }
    return reduceAcc(acc0, acc1);
}

/** Canonical contiguous dot, AVX2 (generic-blockSize SMASH). */
SMASH_TARGET_AVX2 inline Value
dotContigAvx2(const Value* a, const Value* b, Index n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    Index k = 0;
    for (; k + 8 <= n; k += 8) {
        acc0 = _mm256_add_pd(
            acc0, _mm256_mul_pd(_mm256_loadu_pd(a + k),
                                _mm256_loadu_pd(b + k)));
        acc1 = _mm256_add_pd(
            acc1, _mm256_mul_pd(_mm256_loadu_pd(a + k + 4),
                                _mm256_loadu_pd(b + k + 4)));
    }
    const Index rem = n - k;
    if (rem > 0) {
        const Index r0 = rem < 4 ? rem : 4;
        const Index r1 = rem - r0;
        const __m256i m0 = tailMask64(r0);
        const __m256i m1 = tailMask64(r1);
        acc0 = _mm256_add_pd(
            acc0, _mm256_mul_pd(_mm256_maskload_pd(a + k, m0),
                                _mm256_maskload_pd(b + k, m0)));
        acc1 = _mm256_add_pd(
            acc1, _mm256_mul_pd(_mm256_maskload_pd(a + k + 4, m1),
                                _mm256_maskload_pd(b + k + 4, m1)));
    }
    return reduceAcc(acc0, acc1);
}

SMASH_TARGET_AVX2 void
csrSpmvRangeAvx2(const fmt::CsrMatrix& a, const std::vector<Value>& x,
                 std::vector<Value>& y, Index row_begin, Index row_end)
{
    detail::checkCsrOperands(a, x, y);
    const fmt::CsrIndex* row_ptr = a.rowPtr().data();
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const Value* xp = x.data();
    const Index pf_total =
        kern::wantXPrefetch(static_cast<std::size_t>(a.cols()) *
                            sizeof(Value))
            ? static_cast<Index>(a.colInd().size())
            : 0;
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex b = row_ptr[si];
        const Index n = static_cast<Index>(row_ptr[si + 1] - b);
        y[si] += dotSpanAvx2(cols + b, vals + b, n, xp,
                             pf_total == 0 ? Index(0) : pf_total - b);
    }
}

SMASH_TARGET_AVX2 void
csrSpmvTileRangeAvx2(const fmt::CsrMatrix& a,
                     const fmt::CsrIndex* seg_begin,
                     const fmt::CsrIndex* seg_end,
                     const std::vector<Value>& x, std::vector<Value>& y,
                     Index row_begin, Index row_end)
{
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const Value* xp = x.data();
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex b = seg_begin[si];
        const Index n = static_cast<Index>(seg_end[si] - b);
        if (n == 0)
            continue;
        y[si] += dotSpanAvx2(cols + b, vals + b, n, xp, 0);
    }
}

SMASH_TARGET_AVX2 void
csrSpmvBatchRangeAvx2(const fmt::CsrMatrix& a,
                      const fmt::DenseMatrix& x, fmt::DenseMatrix& y,
                      Index row_begin, Index row_end)
{
    const Index nrhs = kern::detail::batchWidth(a.rows(), a.cols(), x, y);
    const fmt::CsrIndex* row_ptr = a.rowPtr().data();
    const fmt::CsrIndex* cols = a.colInd().data();
    const Value* vals = a.values().data();
    const std::size_t prefetch_below =
        kern::wantXPrefetch(
            static_cast<std::size_t>(a.cols() * nrhs) * sizeof(Value))
            ? a.colInd().size()
            : 0;
    if (nrhs <= kern::kBatchAccumWidth) {
        alignas(32) Value acc[kern::kBatchAccumWidth];
        for (Index i = row_begin; i < row_end; ++i) {
            auto si = static_cast<std::size_t>(i);
            Value* yr = &y.at(i, 0);
            for (Index r = 0; r < nrhs; ++r)
                acc[r] = yr[r];
            for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1];
                 ++j) {
                auto sj = static_cast<std::size_t>(j);
                const std::size_t ahead = sj + kern::kXPrefetchDistance;
                if (ahead < prefetch_below)
                    kern::prefetchRead(
                        x.rowData(static_cast<Index>(cols[ahead])));
                const __m256d v = _mm256_set1_pd(vals[sj]);
                const Value* xr =
                    x.rowData(static_cast<Index>(cols[sj]));
                // RHS lanes are independent accumulation chains:
                // any vector grouping over r is bit-identical.
                Index r = 0;
                for (; r + 4 <= nrhs; r += 4)
                    _mm256_store_pd(
                        acc + r,
                        _mm256_add_pd(
                            _mm256_load_pd(acc + r),
                            _mm256_mul_pd(v,
                                          _mm256_loadu_pd(xr + r))));
                for (; r < nrhs; ++r)
                    acc[r] += vals[sj] * xr[r];
            }
            for (Index r = 0; r < nrhs; ++r)
                yr[r] = acc[r];
        }
        return;
    }
    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        Value* yr = &y.at(i, 0);
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            const std::size_t ahead = sj + kern::kXPrefetchDistance;
            if (ahead < prefetch_below)
                kern::prefetchRead(
                    x.rowData(static_cast<Index>(cols[ahead])));
            const Value vs = vals[sj];
            const __m256d v = _mm256_set1_pd(vs);
            const Value* xr = x.rowData(static_cast<Index>(cols[sj]));
            Index r = 0;
            for (; r + 4 <= nrhs; r += 4)
                _mm256_storeu_pd(
                    yr + r,
                    _mm256_add_pd(_mm256_loadu_pd(yr + r),
                                  _mm256_mul_pd(
                                      v, _mm256_loadu_pd(xr + r))));
            for (; r < nrhs; ++r)
                yr[r] += vs * xr[r];
        }
    }
}

/**
 * Canonical blockSize==2 word sum, AVX2: decode set bits two at a
 * time with tzcnt/blsr, multiply two blocks (four products) per
 * ymm — even block in lanes 0..1, odd block in lanes 2..3 — then
 * reduce (s0+s2) + (s1+s3). Mirrors detail::pairWordScalar.
 */
SMASH_TARGET_AVX2 inline Value
pairWordAvx2(BitWord word, const Value* x_org, const Value* blk)
{
    __m256d acc = _mm256_setzero_pd();
    while (word != 0) {
        const auto t0 = static_cast<Index>(_tzcnt_u64(word));
        word = _blsr_u64(word);
        const __m128d xa =
            _mm_loadu_pd(x_org + static_cast<std::size_t>(2 * t0));
        if (word != 0) {
            const auto t1 = static_cast<Index>(_tzcnt_u64(word));
            word = _blsr_u64(word);
            const __m128d xb = _mm_loadu_pd(
                x_org + static_cast<std::size_t>(2 * t1));
            // Consecutive set bits own contiguous NZA payloads: one
            // unmasked 4-wide load covers both blocks.
            const __m256d bv = _mm256_loadu_pd(blk);
            const __m256d xv = _mm256_set_m128d(xb, xa);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(bv, xv));
            blk += 4;
        } else {
            // Odd trailing block: lanes 2..3 add +0.0 (the scalar
            // variant's explicit padding). Masked load also keeps
            // the last NZA block from reading past the array.
            const __m256d bv = _mm256_maskload_pd(blk, tailMask64(2));
            const __m256d xv =
                _mm256_set_m128d(_mm_setzero_pd(), xa);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(bv, xv));
            blk += 2;
        }
    }
    const __m128d p = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                 _mm256_extractf128_pd(acc, 1));
    return _mm_cvtsd_f64(_mm_add_pd(p, _mm_unpackhi_pd(p, p)));
}

SMASH_TARGET_AVX2 void
smashSpmvWordsAvx2(const core::SmashMatrix& a,
                   const std::vector<Value>& x, std::vector<Value>& y,
                   Index word_begin, Index word_end, Index nza_block)
{
    detail::checkSmashOperands(a, x, y);
    const Index bs = a.blockSize();
    const core::Bitmap& level0 = a.hierarchy().level(0);
    const Value* nza = a.nza().data();
    const Value* xp = x.data();
    const Index bits_per_row = a.paddedCols() / bs;
    if (word_begin >= word_end || bits_per_row == 0)
        return;
    Index block = nza_block;
    for (Index w = word_begin; w < word_end; ++w) {
        const BitWord word = level0.word(w);
        if (word == 0)
            continue;
        const Index base_bit = w * kBitsPerWord;
        const Index row = base_bit / bits_per_row;
        if ((base_bit + kBitsPerWord - 1) / bits_per_row == row) {
            const Value* x_org =
                xp + static_cast<std::size_t>(
                         (base_bit - row * bits_per_row) * bs);
            const Value* blk =
                nza + static_cast<std::size_t>(block * bs);
            Value ws;
            if (bs == 2) {
                ws = pairWordAvx2(word, x_org, blk);
            } else {
                ws = 0;
                BitWord rest = word;
                while (rest != 0) {
                    const auto t =
                        static_cast<Index>(_tzcnt_u64(rest));
                    rest = _blsr_u64(rest);
                    ws += dotContigAvx2(
                        blk,
                        x_org + static_cast<std::size_t>(t * bs), bs);
                    blk += bs;
                }
            }
            y[static_cast<std::size_t>(row)] += ws;
            block += static_cast<Index>(_mm_popcnt_u64(word));
        } else {
            // Row-straddling word: the shared scalar per-bit path
            // (identical code in every variant).
            block = detail::smashWordSlow(word, base_bit, bits_per_row,
                                          bs, nza, block, xp,
                                          y.data());
        }
    }
}

SMASH_TARGET_AVX2 void
smashSpmvBatchWordsAvx2(const core::SmashMatrix& a,
                        const fmt::DenseMatrix& x, Value* y, Index nrhs,
                        Index word_begin, Index word_end,
                        Index nza_block)
{
    const Index bs = a.blockSize();
    const core::Bitmap& level0 = a.hierarchy().level(0);
    const Index padded_cols = a.paddedCols();
    const Value* nza = a.nza().data();
    Index block = nza_block;
    for (Index w = word_begin; w < word_end; ++w) {
        BitWord word = level0.word(w);
        while (word != 0) {
            const Index bit =
                w * kBitsPerWord + static_cast<Index>(_tzcnt_u64(word));
            word = _blsr_u64(word);
            const Index linear = bit * bs;
            const Index row = linear / padded_cols;
            const Index col0 = linear % padded_cols;
            const Value* blk =
                nza + static_cast<std::size_t>(block * bs);
            Value* yr = y + static_cast<std::size_t>(row * nrhs);
            for (Index k = 0; k < bs; ++k) {
                const Value vs = blk[k];
                // Keep the explicit-zero skip: same geometric test
                // in every variant.
                if (vs == Value(0))
                    continue;
                const Value* xr = x.rowData(col0 + k);
                const __m256d v = _mm256_set1_pd(vs);
                Index r = 0;
                for (; r + 4 <= nrhs; r += 4)
                    _mm256_storeu_pd(
                        yr + r,
                        _mm256_add_pd(
                            _mm256_loadu_pd(yr + r),
                            _mm256_mul_pd(
                                v, _mm256_loadu_pd(xr + r))));
                for (; r < nrhs; ++r)
                    yr[r] += vs * xr[r];
            }
            ++block;
        }
    }
}

SMASH_TARGET_AVX2 Index
popcountWordsAvx2(const BitWord* words, Index n)
{
    std::uint64_t total = 0;
    Index i = 0;
    for (; i + 4 <= n; i += 4) {
        total += _mm_popcnt_u64(words[static_cast<std::size_t>(i)]);
        total += _mm_popcnt_u64(words[static_cast<std::size_t>(i + 1)]);
        total += _mm_popcnt_u64(words[static_cast<std::size_t>(i + 2)]);
        total += _mm_popcnt_u64(words[static_cast<std::size_t>(i + 3)]);
    }
    for (; i < n; ++i)
        total += _mm_popcnt_u64(words[static_cast<std::size_t>(i)]);
    return static_cast<Index>(total);
}

} // namespace

const KernelTable&
avx2KernelTable()
{
    static const KernelTable table = {
        &csrSpmvRangeAvx2,     &csrSpmvTileRangeAvx2,
        &csrSpmvBatchRangeAvx2, &smashSpmvWordsAvx2,
        &smashSpmvBatchWordsAvx2, &popcountWordsAvx2,
        IsaLevel::kAvx2,
    };
    return table;
}

#else // !SMASH_SIMD_X86

const KernelTable&
avx2KernelTable()
{
    return scalarKernelTable();
}

#endif

} // namespace smash::simd
