/**
 * @file
 * General sparse-times-sparse multiplication (SpGEMM) with sparse
 * output, C := A B. Two classical dataflows plus the SMASH variants:
 *
 *  - spgemmGustavson     row-wise (Gustavson): for each a(i,k),
 *                        C(i,:) += a(i,k) * B(k,:), merged through a
 *                        sparse accumulator (SPA)
 *  - spgemmOuter         outer-product (the OuterSPACE dataflow the
 *                        paper cites [66]): rank-1 updates
 *                        col_k(A) x row_k(B)
 *  - spgemmSmashSw/Hw    Gustavson with A's non-zeros discovered by
 *                        the SMASH bitmap scan (software CLZ walk or
 *                        BMU), demonstrating §5.2.1 generality: the
 *                        same five instructions index a different
 *                        kernel
 *
 * All variants produce CSR output through the same SPA so results
 * are bit-comparable; the differences are purely in how A's non-zero
 * positions are discovered and traversed.
 */

#ifndef SMASH_KERNELS_SPGEMM_HH
#define SMASH_KERNELS_SPGEMM_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "core/block_cursor.hh"
#include "core/smash_matrix.hh"
#include "formats/csc_matrix.hh"
#include "formats/csr_matrix.hh"
#include "isa/bmu.hh"
#include "kernels/costs.hh"
#include "kernels/util.hh"
#include "sim/core_model.hh"

namespace smash::kern
{

/**
 * Sparse accumulator (SPA): a dense value row plus an occupancy
 * list, reused across output rows. The standard Gustavson helper —
 * O(1) scatter, O(row nnz) harvest.
 */
class SpaRow
{
  public:
    explicit SpaRow(Index cols)
        : values_(static_cast<std::size_t>(cols), Value(0)),
          occupied_(static_cast<std::size_t>(cols), false)
    {}

    /** Scatter one contribution into column @p c. */
    template <typename E>
    void
    scatter(Index c, Value v, E& e)
    {
        auto sc = static_cast<std::size_t>(c);
        e.load(&occupied_[sc], sizeof(bool), sim::Dep::kDependent);
        if (!occupied_[sc]) {
            occupied_[sc] = true;
            touched_.push_back(c);
            e.store(&occupied_[sc], sizeof(bool));
            e.op(cost::kCompareBranch);
        }
        values_[sc] += v;
        e.load(&values_[sc], sizeof(Value));
        e.store(&values_[sc], sizeof(Value));
        e.op(cost::kFma);
    }

    /**
     * Append the accumulated row to a CSR triple under construction
     * (sorted by column) and reset for the next row. Zero-valued
     * results of cancellation are kept, matching what library SpGEMM
     * implementations emit.
     */
    template <typename E>
    void
    harvest(std::vector<fmt::CsrIndex>& col_ind, std::vector<Value>& values,
            E& e)
    {
        std::sort(touched_.begin(), touched_.end());
        // Charge an O(n log n)-ish sort: ~log2(n) compare/swap ops
        // per touched column.
        int log_n = 1;
        for (std::size_t n = touched_.size(); n > 1; n >>= 1)
            ++log_n;
        e.op(static_cast<int>(touched_.size()) * log_n);
        for (Index c : touched_) {
            auto sc = static_cast<std::size_t>(c);
            col_ind.push_back(static_cast<fmt::CsrIndex>(c));
            values.push_back(values_[sc]);
            e.load(&values_[sc], sizeof(Value));
            e.store(&values.back(), sizeof(Value));
            e.op(cost::kLoop);
            values_[sc] = Value(0);
            occupied_[sc] = false;
        }
        touched_.clear();
    }

    /** Columns scattered into since the last harvest. */
    Index touchedCount() const
    {
        return static_cast<Index>(touched_.size());
    }

  private:
    std::vector<Value> values_;
    // std::vector<bool> would pack bits; bytes keep the cost model's
    // one-load-per-flag reading honest.
    std::vector<unsigned char> occupied_;
    std::vector<Index> touched_;
};

/** Row-wise Gustavson SpGEMM: C := A B, all CSR. */
template <typename E>
fmt::CsrMatrix
spgemmGustavson(const fmt::CsrMatrix& a, const fmt::CsrMatrix& b, E& e)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ");
    const auto& a_ptr = a.rowPtr();
    const auto& a_ind = a.colInd();
    const auto& a_val = a.values();
    const auto& b_ptr = b.rowPtr();
    const auto& b_ind = b.colInd();
    const auto& b_val = b.values();

    std::vector<fmt::CsrIndex> row_ptr{0};
    std::vector<fmt::CsrIndex> col_ind;
    std::vector<Value> values;
    SpaRow spa(b.cols());

    for (Index i = 0; i < a.rows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&a_ptr[si + 1], sizeof(fmt::CsrIndex));
        e.op(cost::kOuterLoop);
        for (fmt::CsrIndex ka = a_ptr[si]; ka < a_ptr[si + 1]; ++ka) {
            auto ska = static_cast<std::size_t>(ka);
            e.load(&a_ind[ska], sizeof(fmt::CsrIndex));
            e.load(&a_val[ska], sizeof(Value));
            const Index k = static_cast<Index>(a_ind[ska]);
            const Value av = a_val[ska];
            auto sk = static_cast<std::size_t>(k);
            // Chase into B's row structure through a(i,k)'s index.
            e.load(&b_ptr[sk + 1], sizeof(fmt::CsrIndex),
                   sim::Dep::kDependent);
            for (fmt::CsrIndex kb = b_ptr[sk]; kb < b_ptr[sk + 1]; ++kb) {
                auto skb = static_cast<std::size_t>(kb);
                e.load(&b_ind[skb], sizeof(fmt::CsrIndex));
                e.load(&b_val[skb], sizeof(Value));
                spa.scatter(static_cast<Index>(b_ind[skb]), av * b_val[skb],
                            e);
                e.op(cost::kLoop);
            }
            e.op(cost::kLoop);
        }
        spa.harvest(col_ind, values, e);
        row_ptr.push_back(static_cast<fmt::CsrIndex>(col_ind.size()));
        e.store(&row_ptr.back(), sizeof(fmt::CsrIndex));
    }
    return fmt::CsrMatrix::fromRaw(a.rows(), b.cols(), std::move(row_ptr),
                                   std::move(col_ind), std::move(values));
}

/**
 * Outer-product SpGEMM: A in CSC, B in CSR; for every shared index
 * k, accumulate col_k(A) x row_k(B). One SPA per output row would
 * thrash, so the canonical formulation accumulates into row-major
 * list-of-rows and merges at the end; here rows are merged through
 * per-row SPAs after all rank-1 updates are buffered, keeping the
 * memory behaviour (scattered partial products) visible to the cost
 * model while producing canonical CSR.
 */
template <typename E>
fmt::CsrMatrix
spgemmOuter(const fmt::CscMatrix& a, const fmt::CsrMatrix& b, E& e)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ");
    const auto& a_ptr = a.colPtr();
    const auto& a_ind = a.rowInd();
    const auto& a_val = a.values();
    const auto& b_ptr = b.rowPtr();
    const auto& b_ind = b.colInd();
    const auto& b_val = b.values();

    // Partial products bucketed by output row.
    struct Partial { fmt::CsrIndex col; Value v; };
    std::vector<std::vector<Partial>> buckets(
        static_cast<std::size_t>(a.rows()));

    for (Index k = 0; k < a.cols(); ++k) {
        auto sk = static_cast<std::size_t>(k);
        e.load(&a_ptr[sk + 1], sizeof(fmt::CsrIndex));
        e.load(&b_ptr[sk + 1], sizeof(fmt::CsrIndex));
        e.op(cost::kOuterLoop);
        for (fmt::CsrIndex ia = a_ptr[sk]; ia < a_ptr[sk + 1]; ++ia) {
            auto sia = static_cast<std::size_t>(ia);
            e.load(&a_ind[sia], sizeof(fmt::CsrIndex));
            e.load(&a_val[sia], sizeof(Value));
            const Index row = static_cast<Index>(a_ind[sia]);
            const Value av = a_val[sia];
            auto& bucket = buckets[static_cast<std::size_t>(row)];
            for (fmt::CsrIndex ib = b_ptr[sk]; ib < b_ptr[sk + 1]; ++ib) {
                auto sib = static_cast<std::size_t>(ib);
                e.load(&b_ind[sib], sizeof(fmt::CsrIndex));
                e.load(&b_val[sib], sizeof(Value));
                bucket.push_back({b_ind[sib], av * b_val[sib]});
                // Scattered append through the row index: dependent.
                e.loadAddr(reinterpret_cast<Addr>(&bucket),
                           sizeof(void*), sim::Dep::kDependent);
                e.store(&bucket.back(), sizeof(Partial));
                e.op(cost::kFma + cost::kLoop);
            }
            e.op(cost::kLoop);
        }
    }

    // Merge phase: per-row SPA pass over the buffered partials.
    std::vector<fmt::CsrIndex> row_ptr{0};
    std::vector<fmt::CsrIndex> col_ind;
    std::vector<Value> values;
    SpaRow spa(b.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        for (const Partial& p : buckets[static_cast<std::size_t>(i)]) {
            e.load(&p, sizeof(Partial));
            spa.scatter(static_cast<Index>(p.col), p.v, e);
            e.op(cost::kLoop);
        }
        spa.harvest(col_ind, values, e);
        row_ptr.push_back(static_cast<fmt::CsrIndex>(col_ind.size()));
        e.op(cost::kOuterLoop);
    }
    return fmt::CsrMatrix::fromRaw(a.rows(), b.cols(), std::move(row_ptr),
                                   std::move(col_ind), std::move(values));
}

/**
 * Gustavson SpGEMM with A in the SMASH encoding, scanned in
 * software (§4.4 CLZ walk). B stays CSR. Each discovered NZA block
 * contributes blockSize consecutive a(i,k) candidates; in-block
 * zeros cost one test each, the SMASH storage tradeoff.
 */
template <typename E>
fmt::CsrMatrix
spgemmSmashSw(const core::SmashMatrix& a, const fmt::CsrMatrix& b, E& e)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ");
    const Index bs = a.blockSize();
    const auto& b_ptr = b.rowPtr();
    const auto& b_ind = b.colInd();
    const auto& b_val = b.values();

    std::vector<fmt::CsrIndex> row_ptr{0};
    std::vector<fmt::CsrIndex> col_ind;
    std::vector<Value> values;
    SpaRow spa(b.cols());

    core::BlockCursor cursor(a);
    cursor.setRecordTouches(E::kSimulated);
    core::BlockPosition pos;
    ScanBiller biller(ScanBiller::kSoftwareStreamBase);
    Index current_row = 0;

    auto finish_rows_until = [&](Index next_row) {
        while (current_row < next_row) {
            spa.harvest(col_ind, values, e);
            row_ptr.push_back(static_cast<fmt::CsrIndex>(col_ind.size()));
            ++current_row;
            e.op(cost::kOuterLoop);
        }
    };

    while (cursor.next(pos)) {
        biller.charge(cursor, e);
        e.op(2 + cost::kAddrCalc); // bit -> (row, colStart)
        finish_rows_until(pos.row);
        const Value* block = a.blockData(pos.nzaBlock);
        e.load(block, static_cast<std::size_t>(bs) * sizeof(Value));
        for (Index t = 0; t < bs; ++t) {
            const Index k = pos.colStart + t;
            const Value av = block[t];
            e.op(cost::kCompareBranch);
            if (av == Value(0) || k >= a.cols())
                continue;
            auto sk = static_cast<std::size_t>(k);
            e.load(&b_ptr[sk + 1], sizeof(fmt::CsrIndex));
            for (fmt::CsrIndex kb = b_ptr[sk]; kb < b_ptr[sk + 1]; ++kb) {
                auto skb = static_cast<std::size_t>(kb);
                e.load(&b_ind[skb], sizeof(fmt::CsrIndex));
                e.load(&b_val[skb], sizeof(Value));
                spa.scatter(static_cast<Index>(b_ind[skb]), av * b_val[skb],
                            e);
                e.op(cost::kLoop);
            }
        }
    }
    finish_rows_until(a.rows());
    return fmt::CsrMatrix::fromRaw(a.rows(), b.cols(), std::move(row_ptr),
                                   std::move(col_ind), std::move(values));
}

/**
 * Gustavson SpGEMM with A's blocks discovered by the BMU: the same
 * structure as spgemmSmashSw, but PBMAP/RDIND replace the software
 * bitmap walk (§5.2.1 — "the proposed ISA instructions ... regardless
 * of the computation that will be performed").
 */
template <typename E>
fmt::CsrMatrix
spgemmSmashHw(const core::SmashMatrix& a, isa::Bmu& bmu,
              const fmt::CsrMatrix& b, E& e, int grp = 0)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ");
    const Index bs = a.blockSize();
    const core::HierarchyConfig& cfg = a.config();
    const auto& b_ptr = b.rowPtr();
    const auto& b_ind = b.colInd();
    const auto& b_val = b.values();

    bmu.clearGroup(grp);
    bmu.matinfo(a.rows(), a.paddedCols(), grp, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.bmapinfo(cfg.ratio(lvl), lvl, grp, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.rdbmap(&a.hierarchy().level(lvl), lvl, grp, e);

    std::vector<fmt::CsrIndex> row_ptr{0};
    std::vector<fmt::CsrIndex> col_ind;
    std::vector<Value> values;
    SpaRow spa(b.cols());
    Index current_row = 0;

    auto finish_rows_until = [&](Index next_row) {
        while (current_row < next_row) {
            spa.harvest(col_ind, values, e);
            row_ptr.push_back(static_cast<fmt::CsrIndex>(col_ind.size()));
            ++current_row;
            e.op(cost::kOuterLoop);
        }
    };

    Index row = 0, col0 = 0;
    Index ctr_nz = 0;
    while (bmu.pbmap(grp, e)) {
        bmu.rdind(row, col0, grp, e);
        finish_rows_until(row);
        const Value* block = a.blockData(ctr_nz);
        e.load(block, static_cast<std::size_t>(bs) * sizeof(Value));
        for (Index t = 0; t < bs; ++t) {
            const Index k = col0 + t;
            const Value av = block[t];
            e.op(cost::kCompareBranch);
            if (av == Value(0) || k >= a.cols())
                continue;
            auto sk = static_cast<std::size_t>(k);
            e.load(&b_ptr[sk + 1], sizeof(fmt::CsrIndex));
            for (fmt::CsrIndex kb = b_ptr[sk]; kb < b_ptr[sk + 1]; ++kb) {
                auto skb = static_cast<std::size_t>(kb);
                e.load(&b_ind[skb], sizeof(fmt::CsrIndex));
                e.load(&b_val[skb], sizeof(Value));
                spa.scatter(static_cast<Index>(b_ind[skb]), av * b_val[skb],
                            e);
                e.op(cost::kLoop);
            }
        }
        ++ctr_nz;
    }
    SMASH_CHECK(ctr_nz == a.numBlocks(),
                "BMU scan produced ", ctr_nz, " blocks, expected ",
                a.numBlocks());
    finish_rows_until(a.rows());
    return fmt::CsrMatrix::fromRaw(a.rows(), b.cols(), std::move(row_ptr),
                                   std::move(col_ind), std::move(values));
}

} // namespace smash::kern

#endif // SMASH_KERNELS_SPGEMM_HH
