/**
 * @file
 * Sparse Matrix-Vector multiplication (y := y + A x) in every
 * scheme the paper evaluates:
 *
 *  - spmvCsr          TACO-style CSR loop (paper Code Listing 1)
 *  - spmvCsrIdeal     CSR with free indexing (the Fig. 3 idealism)
 *  - spmvCsrUnrolled  software-optimized CSR (the MKL-like point)
 *  - spmvBcsr         register-blocked BCSR
 *  - spmvSmashSw      Software-only SMASH (§4.4: CLZ/AND scanning)
 *  - spmvSmashHw      SMASH with the BMU (§5.1, Algorithm 1)
 *
 * Every kernel is a template over the execution model E (NativeExec
 * or SimExec): identical source computes the real result and, under
 * SimExec, charges the cost model. Loads whose address depends on a
 * just-loaded value (x[col_ind[j]] in CSR) are tagged kDependent —
 * the pointer-chasing the paper identifies as the key bottleneck.
 */

#ifndef SMASH_KERNELS_SPMV_HH
#define SMASH_KERNELS_SPMV_HH

#include <vector>

#include "common/logging.hh"
#include "core/block_cursor.hh"
#include "core/smash_matrix.hh"
#include "formats/bcsr_matrix.hh"
#include "formats/coo_matrix.hh"
#include "formats/csc_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"
#include "isa/bmu.hh"
#include "kernels/costs.hh"
#include "kernels/util.hh"
#include "sim/core_model.hh"

namespace smash::kern
{

/**
 * COO SpMV over the entry range [entry_begin, entry_end): the
 * engine's parallel driver hands disjoint entry ranges to worker
 * threads (scattered y updates force per-thread accumulators).
 */
template <typename E>
void
spmvCooRange(const fmt::CooMatrix& a, const std::vector<Value>& x,
             std::vector<Value>& y, Index entry_begin, Index entry_end,
             E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& entries = a.entries();
    for (Index i = entry_begin; i < entry_end; ++i) {
        const fmt::CooEntry& entry = entries[static_cast<std::size_t>(i)];
        e.load(&entry, sizeof(fmt::CooEntry));
        e.load(&x[static_cast<std::size_t>(entry.col)], sizeof(Value),
               sim::Dep::kDependent);
        // The y update is a read-modify-write at a just-loaded row
        // index: bill the dependent load before the FMA it feeds.
        e.load(&y[static_cast<std::size_t>(entry.row)], sizeof(Value),
               sim::Dep::kDependent);
        y[static_cast<std::size_t>(entry.row)] +=
            entry.value * x[static_cast<std::size_t>(entry.col)];
        e.store(&y[static_cast<std::size_t>(entry.row)], sizeof(Value));
        e.op(cost::kFma + cost::kLoop);
    }
}

/**
 * COO SpMV: stream (row, col, value) triples. No pointer chasing,
 * but one extra index load per non-zero and a scattered y update —
 * the simplest general baseline (paper §2 cites COO among the
 * general formats).
 */
template <typename E>
void
spmvCoo(const fmt::CooMatrix& a, const std::vector<Value>& x,
        std::vector<Value>& y, E& e)
{
    spmvCooRange(a, x, y, 0, a.nnz(), e);
}

/**
 * CSC SpMV over the column range [col_begin, col_end). Columns
 * scatter into y, so parallel callers combine disjoint column
 * ranges with per-thread y accumulators.
 */
template <typename E>
void
spmvCscRange(const fmt::CscMatrix& a, const std::vector<Value>& x,
             std::vector<Value>& y, Index col_begin, Index col_end, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& col_ptr = a.colPtr();
    const auto& row_ind = a.rowInd();
    const auto& values = a.values();
    for (Index c = col_begin; c < col_end; ++c) {
        auto sc = static_cast<std::size_t>(c);
        e.load(&col_ptr[sc + 1], sizeof(fmt::CsrIndex));
        e.load(&x[sc], sizeof(Value));
        const Value xv = x[sc];
        for (fmt::CsrIndex j = col_ptr[sc]; j < col_ptr[sc + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&row_ind[sj], sizeof(fmt::CsrIndex));
            e.load(&values[sj], sizeof(Value));
            fmt::CsrIndex row = row_ind[sj];
            y[static_cast<std::size_t>(row)] += values[sj] * xv;
            // The y update is a read-modify-write at a loaded index:
            // a dependent access, the CSC analogue of the chase.
            e.load(&y[static_cast<std::size_t>(row)], sizeof(Value),
                   sim::Dep::kDependent);
            e.store(&y[static_cast<std::size_t>(row)], sizeof(Value));
            e.op(cost::kFma + cost::kLoop);
        }
        e.op(cost::kOuterLoop);
    }
}

/**
 * CSC SpMV: column-major traversal; every column's contribution
 * scatters into y (gather from x becomes scatter to y).
 */
template <typename E>
void
spmvCsc(const fmt::CscMatrix& a, const std::vector<Value>& x,
        std::vector<Value>& y, E& e)
{
    spmvCscRange(a, x, y, 0, a.cols(), e);
}

/**
 * TACO-style CSR SpMV restricted to rows [row_begin, row_end).
 * Disjoint row ranges touch disjoint y entries, so the parallel
 * driver runs one range per worker with no synchronization.
 */
template <typename E>
void
spmvCsrRange(const fmt::CsrMatrix& a, const std::vector<Value>& x,
             std::vector<Value>& y, Index row_begin, Index row_end, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& row_ptr = a.rowPtr();
    const auto& col_ind = a.colInd();
    const auto& values = a.values();
    // Gate on the gathered range (a.cols()), not x.size(): an
    // arena-padded x is a grow-only buffer whose capacity says
    // nothing about how much of it this matrix touches.
    const std::size_t prefetch_below =
        wantXPrefetch(static_cast<std::size_t>(a.cols()) *
                      sizeof(Value))
            ? col_ind.size()
            : 0;

    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        // row_ptr[i] is carried in a register from the last iteration.
        e.load(&row_ptr[si + 1], sizeof(fmt::CsrIndex));
        Value acc = 0;
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            // Indexing: stream col_ind, then chase into x.
            e.load(&col_ind[sj], sizeof(fmt::CsrIndex));
            fmt::CsrIndex col = col_ind[sj];
            if constexpr (!E::kSimulated) {
                // The chase's address is known one col_ind load
                // ahead: hide the x miss behind the next few FMAs
                // (skipped entirely for cache-resident operands —
                // prefetch_below is 0 then).
                const std::size_t ahead = sj + kXPrefetchDistance;
                if (ahead < prefetch_below)
                    prefetchRead(&x[static_cast<std::size_t>(
                        col_ind[ahead])]);
            }
            e.load(&x[static_cast<std::size_t>(col)], sizeof(Value),
                   sim::Dep::kDependent);
            e.load(&values[sj], sizeof(Value));
            acc += values[sj] * x[static_cast<std::size_t>(col)];
            e.op(cost::kFma + cost::kLoop);
        }
        y[si] += acc;
        e.store(&y[si], sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/** TACO-style CSR SpMV (Code Listing 1). */
template <typename E>
void
spmvCsr(const fmt::CsrMatrix& a, const std::vector<Value>& x,
        std::vector<Value>& y, E& e)
{
    spmvCsrRange(a, x, y, 0, a.rows(), e);
}

/**
 * Idealized CSR SpMV (Fig. 3): discovering non-zero positions costs
 * nothing — no row_ptr/col_ind loads, no indexing arithmetic, and
 * the x access is no longer a pointer chase. Only the intrinsic
 * work remains: load the value, load x, multiply-accumulate.
 */
template <typename E>
void
spmvCsrIdeal(const fmt::CsrMatrix& a, const std::vector<Value>& x,
             std::vector<Value>& y, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& row_ptr = a.rowPtr();
    const auto& col_ind = a.colInd();
    const auto& values = a.values();

    for (Index i = 0; i < a.rows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        Value acc = 0;
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            fmt::CsrIndex col = col_ind[sj]; // position known for free
            e.load(&x[static_cast<std::size_t>(col)], sizeof(Value));
            e.load(&values[sj], sizeof(Value));
            acc += values[sj] * x[static_cast<std::size_t>(col)];
            e.op(cost::kFma);
        }
        y[si] += acc;
        e.store(&y[si], sizeof(Value));
        e.op(1); // residual row-loop branch
    }
}

/**
 * Software-optimized CSR SpMV: 4-way unrolled inner loop with two
 * independent accumulators — the class of (format-orthogonal)
 * optimization closed-source MKL applies on top of CSR (§7.1).
 * Under simulation the indexing work per non-zero is identical to
 * spmvCsr; the unrolling shows up as reduced loop overhead.
 */
template <typename E>
void
spmvCsrUnrolled(const fmt::CsrMatrix& a, const std::vector<Value>& x,
                std::vector<Value>& y, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& row_ptr = a.rowPtr();
    const auto& col_ind = a.colInd();
    const auto& values = a.values();

    for (Index i = 0; i < a.rows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&row_ptr[si + 1], sizeof(fmt::CsrIndex));
        const fmt::CsrIndex begin = row_ptr[si];
        const fmt::CsrIndex end = row_ptr[si + 1];
        Value acc0 = 0, acc1 = 0;
        fmt::CsrIndex j = begin;
        for (; j + 4 <= end; j += 4) {
            for (int u = 0; u < 4; ++u) {
                auto sj = static_cast<std::size_t>(j + u);
                e.load(&col_ind[sj], sizeof(fmt::CsrIndex));
                fmt::CsrIndex col = col_ind[sj];
                e.load(&x[static_cast<std::size_t>(col)], sizeof(Value),
                       sim::Dep::kDependent);
                e.load(&values[sj], sizeof(Value));
                if (u & 1) {
                    acc1 += values[sj] * x[static_cast<std::size_t>(col)];
                } else {
                    acc0 += values[sj] * x[static_cast<std::size_t>(col)];
                }
                e.op(cost::kFma);
            }
            e.op(cost::kLoop); // one loop check per 4 elements
        }
        for (; j < end; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&col_ind[sj], sizeof(fmt::CsrIndex));
            fmt::CsrIndex col = col_ind[sj];
            e.load(&x[static_cast<std::size_t>(col)], sizeof(Value),
                   sim::Dep::kDependent);
            e.load(&values[sj], sizeof(Value));
            acc0 += values[sj] * x[static_cast<std::size_t>(col)];
            e.op(cost::kFma + cost::kLoop);
        }
        y[si] += acc0 + acc1;
        e.store(&y[si], sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/**
 * BCSR SpMV over the block-row range [brow_begin, brow_end). Block
 * rows cover disjoint y row bands, so the parallel driver assigns
 * one range per worker without synchronization.
 */
template <typename E>
void
spmvBcsrRange(const fmt::BcsrMatrix& a, const std::vector<Value>& x,
              std::vector<Value>& y, Index brow_begin, Index brow_end,
              E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >=
                static_cast<Index>(
                    roundUp(static_cast<std::uint64_t>(a.cols()),
                            static_cast<std::uint64_t>(a.blockCols()))),
                "x must be padded to a block multiple");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& brow_ptr = a.blockRowPtr();
    const auto& bcol = a.blockCol();
    const auto& bval = a.blockValues();
    const Index br = a.blockRows();
    const Index bc = a.blockCols();
    const int x_vops = cost::vectorOps(bc);

    for (Index i = brow_begin; i < brow_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&brow_ptr[si + 1], sizeof(fmt::CsrIndex));
        for (fmt::CsrIndex b = brow_ptr[si]; b < brow_ptr[si + 1]; ++b) {
            auto sb = static_cast<std::size_t>(b);
            e.load(&bcol[sb], sizeof(fmt::CsrIndex));
            const Index col0 = static_cast<Index>(bcol[sb]) * bc;
            const std::size_t base = sb * static_cast<std::size_t>(br * bc);
            // x slice is contiguous: one vector load per lane group.
            e.load(&x[static_cast<std::size_t>(col0)],
                   static_cast<std::size_t>(bc) * sizeof(Value),
                   sim::Dep::kDependent);
            e.op(x_vops - 1 + cost::kAddrCalc);
            for (Index lr = 0; lr < br; ++lr) {
                Index row = i * br + lr;
                if (row >= a.rows())
                    break;
                Value acc = 0;
                const Value* tile_row =
                    &bval[base + static_cast<std::size_t>(lr * bc)];
                e.load(tile_row,
                       static_cast<std::size_t>(bc) * sizeof(Value));
                for (Index lc = 0; lc < bc; ++lc)
                    acc += tile_row[lc] * x[static_cast<std::size_t>(
                        col0 + lc)];
                // One vector FMA per lane group + horizontal reduce.
                e.op(x_vops + cost::kHorizontalReduce);
                y[static_cast<std::size_t>(row)] += acc;
                e.store(&y[static_cast<std::size_t>(row)], sizeof(Value));
            }
            e.op(cost::kLoop);
        }
        e.op(cost::kOuterLoop);
    }
}

/**
 * BCSR SpMV: one column index per tile; tile payloads multiply a
 * contiguous (vectorizable) slice of x. Wasted work on the zeros
 * inside stored tiles is charged faithfully.
 */
template <typename E>
void
spmvBcsr(const fmt::BcsrMatrix& a, const std::vector<Value>& x,
         std::vector<Value>& y, E& e)
{
    spmvBcsrRange(a, x, y, 0, a.numBlockRows(), e);
}

/**
 * The literal §4.4 inner loop over Bitmap-0 words
 * [word_begin, word_end): walk each word, CLZ/AND out the set bits,
 * compute on the corresponding dense NZA blocks. @p nza_block must
 * be the rank (number of set bits) of Bitmap-0 before word_begin —
 * the NZA ordinal of the first block in the range. Native-path
 * building block shared by the serial kernel and the engine's
 * word-partitioned parallel driver; words can straddle row
 * boundaries, so parallel callers accumulate into per-thread y
 * copies merged at the barrier.
 */
inline void
spmvSmashSwWords(const core::SmashMatrix& a, const std::vector<Value>& x,
                 std::vector<Value>& y, Index word_begin, Index word_end,
                 Index nza_block)
{
    const Index bs = a.blockSize();
    const core::Bitmap& level0 = a.hierarchy().level(0);
    const Index padded_cols = a.paddedCols();
    const Value* nza = a.nza().data();
    Index block = nza_block;
    // Amortized bit -> (row, col) tracking: bits ascend across the
    // word range, so the row advances monotonically — one compare
    // per bit replaces a 64-bit divide per bit. A zero-column
    // matrix has bits_per_row == 0 (and no set bits): return before
    // the division instead of faulting on it.
    const Index bits_per_row = padded_cols / bs;
    if (word_begin >= word_end || bits_per_row == 0)
        return;
    Index row = (word_begin * kBitsPerWord) / bits_per_row;
    Index row_first_bit = row * bits_per_row;
    for (Index w = word_begin; w < word_end; ++w) {
        BitWord word = level0.word(w);
        const Index word_base = w * kBitsPerWord;
        while (word != 0) {
            const Index bit = word_base + findFirstSet(word);
            word = clearLowestSet(word);
            while (bit >= row_first_bit + bits_per_row) {
                ++row;
                row_first_bit += bits_per_row;
            }
            const Index col0 = (bit - row_first_bit) * bs;
            const Value* blk = nza + static_cast<std::size_t>(block * bs);
            Value acc = 0;
            for (Index k = 0; k < bs; ++k)
                acc += blk[k] * x[static_cast<std::size_t>(col0 + k)];
            y[static_cast<std::size_t>(row)] += acc;
            ++block;
        }
    }
}

/**
 * Software-only SMASH SpMV (§4.4): the bitmap hierarchy is walked
 * with explicit word loads and CLZ/AND register operations (charged
 * via the cursor's counters); block payloads are dense and
 * contiguous, so the multiply is vectorized, and the x slice
 * address comes from register arithmetic — no pointer chase.
 *
 * @param x must be padded to matrix.paddedCols() (see padVector()).
 */
template <typename E>
void
spmvSmashSw(const core::SmashMatrix& a, const std::vector<Value>& x,
            std::vector<Value>& y, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.paddedCols(),
                "x must be padded to paddedCols");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const Index bs = a.blockSize();
    const int vops = cost::vectorOps(bs);

    if constexpr (!E::kSimulated) {
        // Native fast path: word-granularity skipping makes the
        // upper hierarchy levels unnecessary at native speed; the
        // general cursor below exists for the cost model's
        // level-accurate billing.
        spmvSmashSwWords(a, x, y, 0, a.hierarchy().level(0).numWords(),
                         0);
        return;
    }

    core::BlockCursor cursor(a);
    cursor.setRecordTouches(E::kSimulated);
    core::BlockPosition pos;
    ScanBiller biller(ScanBiller::kSoftwareStreamBase);
    while (cursor.next(pos)) {
        // Bill the scan work this step performed: each bitmap word
        // fetched is a load (from the compact bitmap stream); each
        // CLZ/AND is one instruction.
        biller.charge(cursor, e);
        // Index arithmetic: bit -> (row, colStart).
        e.op(2 + cost::kAddrCalc);

        const Value* block = a.blockData(pos.nzaBlock);
        e.load(block, static_cast<std::size_t>(bs) * sizeof(Value));
        e.load(&x[static_cast<std::size_t>(pos.colStart)],
               static_cast<std::size_t>(bs) * sizeof(Value));
        Value acc = 0;
        for (Index k = 0; k < bs; ++k)
            acc += block[k] * x[static_cast<std::size_t>(pos.colStart + k)];
        // One vector FMA per lane group, accumulator merges, reduce.
        e.op(2 * vops);
        y[static_cast<std::size_t>(pos.row)] += acc;
        e.store(&y[static_cast<std::size_t>(pos.row)], sizeof(Value));
        e.op(cost::kLoop);
    }
}

/**
 * Dense (uncompressed) SpMV over rows [row_begin, row_end): every
 * element is streamed and multiplied, zeros included — the paper's
 * dense baseline, here so the dispatch layer covers the full format
 * spectrum. Disjoint row ranges are parallel-safe.
 */
template <typename E>
void
spmvDenseRange(const fmt::DenseMatrix& a, const std::vector<Value>& x,
               std::vector<Value>& y, Index row_begin, Index row_end,
               E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const Index cols = a.cols();
    const int vops = cost::vectorOps(cols);
    for (Index r = row_begin; r < row_end; ++r) {
        const Value* row = a.rowData(r);
        e.load(row, static_cast<std::size_t>(cols) * sizeof(Value));
        e.load(x.data(), static_cast<std::size_t>(cols) * sizeof(Value));
        Value acc = 0;
        for (Index c = 0; c < cols; ++c)
            acc += row[c] * x[static_cast<std::size_t>(c)];
        e.op(vops + cost::kHorizontalReduce);
        auto sr = static_cast<std::size_t>(r);
        y[sr] += acc;
        e.store(&y[sr], sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/** Dense SpMV over the whole matrix. */
template <typename E>
void
spmvDense(const fmt::DenseMatrix& a, const std::vector<Value>& x,
          std::vector<Value>& y, E& e)
{
    spmvDenseRange(a, x, y, 0, a.rows(), e);
}

/**
 * Hardware-accelerated SMASH SpMV (§5.1, Algorithm 1): the BMU
 * walks the hierarchy; the core issues PBMAP/RDIND per non-zero
 * block and computes on dense block payloads. Bitmap traffic is the
 * BMU's own (overlapped) buffer refills.
 *
 * @param x must be padded to matrix.paddedCols().
 */
template <typename E>
void
spmvSmashHw(const core::SmashMatrix& a, isa::Bmu& bmu,
            const std::vector<Value>& x, std::vector<Value>& y, E& e,
            int grp = 0)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.paddedCols(),
                "x must be padded to paddedCols");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const Index bs = a.blockSize();
    const int vops = cost::vectorOps(bs);
    const core::HierarchyConfig& cfg = a.config();

    // --- Configuration phase (Algorithm 1, lines 2-8). ---
    bmu.clearGroup(grp);
    bmu.matinfo(a.rows(), a.paddedCols(), grp, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.bmapinfo(cfg.ratio(lvl), lvl, grp, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.rdbmap(&a.hierarchy().level(lvl), lvl, grp, e);

    // --- Scan + compute phase (lines 10-18). ---
    Index row = 0, col0 = 0;
    Index ctr_nz = 0;
    while (bmu.pbmap(grp, e)) {
        bmu.rdind(row, col0, grp, e);
        const Value* block = a.blockData(ctr_nz);
        e.load(block, static_cast<std::size_t>(bs) * sizeof(Value));
        // Address from the BMU output register: not a pointer chase.
        e.load(&x[static_cast<std::size_t>(col0)],
               static_cast<std::size_t>(bs) * sizeof(Value));
        Value acc = 0;
        for (Index k = 0; k < bs; ++k)
            acc += block[k] * x[static_cast<std::size_t>(col0 + k)];
        // One vector FMA per lane group, accumulator merges, reduce.
        e.op(2 * vops);
        y[static_cast<std::size_t>(row)] += acc;
        e.store(&y[static_cast<std::size_t>(row)], sizeof(Value));
        e.op(cost::kLoop);
        ++ctr_nz;
    }
    SMASH_CHECK(ctr_nz == a.numBlocks(),
                "BMU scan produced ", ctr_nz, " blocks, expected ",
                a.numBlocks());
}

} // namespace smash::kern

#endif // SMASH_KERNELS_SPMV_HH
