/**
 * @file
 * Sparse triangular solves (SpTRSV) over CSR — the substrate of the
 * paper's §5.2.1 "Sparse LU Decomposition" use case. Forward
 * substitution walks a lower-triangular factor, backward
 * substitution an upper-triangular one. Like SpMV, every step
 * chases col_ind into the solution vector, so the indexing cost the
 * paper targets appears here too.
 */

#ifndef SMASH_KERNELS_SPTRSV_HH
#define SMASH_KERNELS_SPTRSV_HH

#include <vector>

#include "common/logging.hh"
#include "formats/csr_matrix.hh"
#include "kernels/costs.hh"
#include "sim/core_model.hh"

namespace smash::kern
{

/**
 * Forward substitution x := L^-1 b for lower-triangular L in CSR.
 * Rows must have their diagonal entry stored last (the natural CSR
 * order for a lower factor).
 *
 * @param unit_diagonal when true the diagonal is implicitly 1 and a
 *        stored diagonal entry is not expected
 */
template <typename E>
void
sptrsvLowerCsr(const fmt::CsrMatrix& l, const std::vector<Value>& b,
               std::vector<Value>& x, E& e, bool unit_diagonal = false)
{
    SMASH_CHECK(l.rows() == l.cols(), "L must be square");
    SMASH_CHECK(static_cast<Index>(b.size()) >= l.rows(), "b too short");
    SMASH_CHECK(static_cast<Index>(x.size()) >= l.rows(), "x too short");
    const auto& row_ptr = l.rowPtr();
    const auto& col_ind = l.colInd();
    const auto& values = l.values();

    for (Index i = 0; i < l.rows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&row_ptr[si + 1], sizeof(fmt::CsrIndex));
        const fmt::CsrIndex begin = row_ptr[si];
        const fmt::CsrIndex end = row_ptr[si + 1];
        Value acc = b[si];
        e.load(&b[si], sizeof(Value));
        Value diag = 1;
        bool have_diag = false;
        for (fmt::CsrIndex j = begin; j < end; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&col_ind[sj], sizeof(fmt::CsrIndex));
            e.load(&values[sj], sizeof(Value));
            const Index c = static_cast<Index>(col_ind[sj]);
            SMASH_CHECK(c <= i, "entry above the diagonal in L at row ", i);
            if (c == i) {
                diag = values[sj];
                have_diag = true;
                e.op(cost::kCompareBranch);
                continue;
            }
            // x[c] was produced by earlier rows: a dependent load —
            // the serial chain that makes SpTRSV latency-bound.
            e.load(&x[static_cast<std::size_t>(c)], sizeof(Value),
                   sim::Dep::kDependent);
            acc -= values[sj] * x[static_cast<std::size_t>(c)];
            e.op(cost::kFma + cost::kLoop);
        }
        if (!unit_diagonal) {
            SMASH_CHECK(have_diag && diag != Value(0),
                        "missing or zero diagonal at row ", i);
            acc /= diag;
            e.op(1);
        }
        x[si] = acc;
        e.store(&x[si], sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

/**
 * Backward substitution x := U^-1 b for upper-triangular U in CSR.
 * The diagonal entry is each row's first stored element.
 */
template <typename E>
void
sptrsvUpperCsr(const fmt::CsrMatrix& u, const std::vector<Value>& b,
               std::vector<Value>& x, E& e)
{
    SMASH_CHECK(u.rows() == u.cols(), "U must be square");
    SMASH_CHECK(static_cast<Index>(b.size()) >= u.rows(), "b too short");
    SMASH_CHECK(static_cast<Index>(x.size()) >= u.rows(), "x too short");
    const auto& row_ptr = u.rowPtr();
    const auto& col_ind = u.colInd();
    const auto& values = u.values();

    for (Index i = u.rows() - 1; i >= 0; --i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&row_ptr[si + 1], sizeof(fmt::CsrIndex));
        const fmt::CsrIndex begin = row_ptr[si];
        const fmt::CsrIndex end = row_ptr[si + 1];
        Value acc = b[si];
        e.load(&b[si], sizeof(Value));
        Value diag = 0;
        bool have_diag = false;
        for (fmt::CsrIndex j = begin; j < end; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&col_ind[sj], sizeof(fmt::CsrIndex));
            e.load(&values[sj], sizeof(Value));
            const Index c = static_cast<Index>(col_ind[sj]);
            SMASH_CHECK(c >= i, "entry below the diagonal in U at row ", i);
            if (c == i) {
                diag = values[sj];
                have_diag = true;
                e.op(cost::kCompareBranch);
                continue;
            }
            e.load(&x[static_cast<std::size_t>(c)], sizeof(Value),
                   sim::Dep::kDependent);
            acc -= values[sj] * x[static_cast<std::size_t>(c)];
            e.op(cost::kFma + cost::kLoop);
        }
        SMASH_CHECK(have_diag && diag != Value(0),
                    "missing or zero diagonal at row ", i);
        x[si] = acc / diag;
        e.op(1);
        e.store(&x[si], sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

} // namespace smash::kern

#endif // SMASH_KERNELS_SPTRSV_HH
