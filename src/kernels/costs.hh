/**
 * @file
 * Central instruction-cost vocabulary for the simulated kernels.
 *
 * Every kernel charges its dynamic instructions through these named
 * constants so the mapping from source construct to retired x86-like
 * instructions is explicit and calibration lives in one place. The
 * counts correspond to what a compiler emits for the paper's Code
 * Listings 1-2 (scalar loop overhead, fused multiply-add as two
 * arithmetic instructions, AVX-class 4-double vector operations for
 * block kernels).
 */

#ifndef SMASH_KERNELS_COSTS_HH
#define SMASH_KERNELS_COSTS_HH

#include "common/bitops.hh"
#include "common/types.hh"

namespace smash::kern::cost
{

/** mul + add of a scalar multiply-accumulate. */
inline constexpr int kFma = 2;

/** Loop bookkeeping per iteration: increment + compare/branch. */
inline constexpr int kLoop = 2;

/** Per-row/column loop bookkeeping (outer loops). */
inline constexpr int kOuterLoop = 2;

/** Address computation feeding an indexed access. */
inline constexpr int kAddrCalc = 1;

/** Compare + conditional branch of a merge/index-matching step. */
inline constexpr int kCompareBranch = 2;

/** Doubles processed per vector lane group (AVX-256). */
inline constexpr int kVectorWidth = 4;

/** Vector operations needed to cover @p elems doubles. */
inline int
vectorOps(Index elems)
{
    return static_cast<int>(ceilDiv(static_cast<std::uint64_t>(elems),
                                    kVectorWidth));
}

/** Horizontal reduction of one vector accumulator. */
inline constexpr int kHorizontalReduce = 1;

} // namespace smash::kern::cost

#endif // SMASH_KERNELS_COSTS_HH
