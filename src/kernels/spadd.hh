/**
 * @file
 * Sparse Matrix Addition C := A + B — the third kernel of the
 * paper's motivation experiment (Fig. 3), plus a SMASH-native
 * variant that exploits the bitmap encoding directly (bitwise OR of
 * the occupancy bitmaps followed by block merges), demonstrating
 * the generality claim of §5.2.1.
 */

#ifndef SMASH_KERNELS_SPADD_HH
#define SMASH_KERNELS_SPADD_HH

#include <vector>

#include "common/logging.hh"
#include "core/smash_matrix.hh"
#include "formats/coo_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"
#include "kernels/costs.hh"
#include "sim/core_model.hh"

namespace smash::kern
{

/**
 * CSR sparse addition restricted to rows [row_begin, row_end): the
 * per-row two-pointer merge, emitting entries with global row
 * indices. Disjoint row ranges produce disjoint entry sets in row
 * order, so the engine's parallel driver merges one range per
 * worker into a private accumulator and concatenates the results.
 */
template <typename E>
fmt::CooMatrix
spaddCsrRange(const fmt::CsrMatrix& a, const fmt::CsrMatrix& b,
              Index row_begin, Index row_end, E& e)
{
    SMASH_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "operand shapes differ");
    fmt::CooMatrix out(a.rows(), a.cols());
    const auto& a_ptr = a.rowPtr();
    const auto& a_ind = a.colInd();
    const auto& a_val = a.values();
    const auto& b_ptr = b.rowPtr();
    const auto& b_ind = b.colInd();
    const auto& b_val = b.values();

    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&a_ptr[si + 1], sizeof(fmt::CsrIndex));
        e.load(&b_ptr[si + 1], sizeof(fmt::CsrIndex));
        e.op(cost::kOuterLoop);
        fmt::CsrIndex ka = a_ptr[si];
        fmt::CsrIndex kb = b_ptr[si];
        const fmt::CsrIndex a_end = a_ptr[si + 1];
        const fmt::CsrIndex b_end = b_ptr[si + 1];
        while (ka < a_end || kb < b_end) {
            // Index discovery: load both column indices and compare.
            fmt::CsrIndex ca = ka < a_end
                ? a_ind[static_cast<std::size_t>(ka)]
                : static_cast<fmt::CsrIndex>(a.cols());
            fmt::CsrIndex cb = kb < b_end
                ? b_ind[static_cast<std::size_t>(kb)]
                : static_cast<fmt::CsrIndex>(a.cols());
            if (ka < a_end)
                e.load(&a_ind[static_cast<std::size_t>(ka)],
                       sizeof(fmt::CsrIndex));
            if (kb < b_end)
                e.load(&b_ind[static_cast<std::size_t>(kb)],
                       sizeof(fmt::CsrIndex));
            e.op(cost::kCompareBranch);
            Value v;
            Index col;
            if (ca == cb) {
                e.load(&a_val[static_cast<std::size_t>(ka)], sizeof(Value));
                e.load(&b_val[static_cast<std::size_t>(kb)], sizeof(Value));
                v = a_val[static_cast<std::size_t>(ka)] +
                    b_val[static_cast<std::size_t>(kb)];
                col = ca;
                e.op(1 + 2);
                ++ka;
                ++kb;
            } else if (ca < cb) {
                e.load(&a_val[static_cast<std::size_t>(ka)], sizeof(Value));
                v = a_val[static_cast<std::size_t>(ka)];
                col = ca;
                e.op(1);
                ++ka;
            } else {
                e.load(&b_val[static_cast<std::size_t>(kb)], sizeof(Value));
                v = b_val[static_cast<std::size_t>(kb)];
                col = cb;
                e.op(1);
                ++kb;
            }
            if (v != Value(0)) {
                out.add(i, col, v);
                e.store(&out.entries().back(), sizeof(fmt::CooEntry));
            }
        }
    }
    return out;
}

/** CSR sparse addition: per-row two-pointer merge of the operands. */
template <typename E>
fmt::CooMatrix
spaddCsr(const fmt::CsrMatrix& a, const fmt::CsrMatrix& b, E& e)
{
    return spaddCsrRange(a, b, 0, a.rows(), e);
}

/**
 * Idealized CSR addition (Fig. 3): positions are known for free, so
 * only value loads, the add where both operands exist, and output
 * stores remain.
 */
template <typename E>
fmt::CooMatrix
spaddCsrIdeal(const fmt::CsrMatrix& a, const fmt::CsrMatrix& b, E& e)
{
    SMASH_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "operand shapes differ");
    fmt::CooMatrix out(a.rows(), a.cols());
    const auto& a_ptr = a.rowPtr();
    const auto& a_ind = a.colInd();
    const auto& a_val = a.values();
    const auto& b_ptr = b.rowPtr();
    const auto& b_ind = b.colInd();
    const auto& b_val = b.values();

    for (Index i = 0; i < a.rows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        e.op(1);
        fmt::CsrIndex ka = a_ptr[si];
        fmt::CsrIndex kb = b_ptr[si];
        const fmt::CsrIndex a_end = a_ptr[si + 1];
        const fmt::CsrIndex b_end = b_ptr[si + 1];
        while (ka < a_end || kb < b_end) {
            fmt::CsrIndex ca = ka < a_end
                ? a_ind[static_cast<std::size_t>(ka)]
                : static_cast<fmt::CsrIndex>(a.cols());
            fmt::CsrIndex cb = kb < b_end
                ? b_ind[static_cast<std::size_t>(kb)]
                : static_cast<fmt::CsrIndex>(a.cols());
            Value v;
            Index col;
            if (ca == cb) {
                e.load(&a_val[static_cast<std::size_t>(ka)], sizeof(Value));
                e.load(&b_val[static_cast<std::size_t>(kb)], sizeof(Value));
                v = a_val[static_cast<std::size_t>(ka)] +
                    b_val[static_cast<std::size_t>(kb)];
                col = ca;
                e.op(1);
                ++ka;
                ++kb;
            } else if (ca < cb) {
                e.load(&a_val[static_cast<std::size_t>(ka)], sizeof(Value));
                v = a_val[static_cast<std::size_t>(ka)];
                col = ca;
                ++ka;
            } else {
                e.load(&b_val[static_cast<std::size_t>(kb)], sizeof(Value));
                v = b_val[static_cast<std::size_t>(kb)];
                col = cb;
                ++kb;
            }
            if (v != Value(0)) {
                out.add(i, col, v);
                e.store(&out.entries().back(), sizeof(fmt::CooEntry));
            }
        }
    }
    return out;
}

/**
 * SMASH-native sparse addition: OR the Bitmap-0 words (vectorized),
 * then merge the NZAs block-by-block. Blocks present in only one
 * operand are copied; blocks present in both are vector-added.
 * Operands must share shape and hierarchy configuration.
 */
template <typename E>
core::SmashMatrix
spaddSmash(const core::SmashMatrix& a, const core::SmashMatrix& b, E& e)
{
    SMASH_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "operand shapes differ");
    SMASH_CHECK(a.config() == b.config(),
                "operands need a common hierarchy configuration");
    const Index bs = a.blockSize();
    const int vops = cost::vectorOps(bs);
    const core::Bitmap& bm_a = a.hierarchy().level(0);
    const core::Bitmap& bm_b = b.hierarchy().level(0);

    // Phase 1: occupancy OR, one vector op per word pair.
    core::Bitmap bm_c(bm_a.numBits());
    std::vector<Value> nza;
    Index ka = 0, kb = 0;
    for (Index w = 0; w < bm_a.numWords(); ++w) {
        e.load(&bm_a.words()[static_cast<std::size_t>(w)], sizeof(BitWord));
        e.load(&bm_b.words()[static_cast<std::size_t>(w)], sizeof(BitWord));
        e.op(1); // the OR itself
    }
    // Phase 2: walk the union of set bits, merging NZA blocks.
    Index bit_a = bm_a.findNextSet(0);
    Index bit_b = bm_b.findNextSet(0);
    while (bit_a >= 0 || bit_b >= 0) {
        e.op(cost::kCompareBranch);
        Index bit;
        bool from_a = false, from_b = false;
        if (bit_a >= 0 && (bit_b < 0 || bit_a <= bit_b)) {
            from_a = true;
            bit = bit_a;
        } else {
            bit = bit_b;
        }
        if (bit_b == bit)
            from_b = true;

        std::size_t base = nza.size();
        nza.resize(base + static_cast<std::size_t>(bs), Value(0));
        bool any = false;
        if (from_a && from_b) {
            const Value* pa = a.blockData(ka);
            const Value* pb = b.blockData(kb);
            e.load(pa, static_cast<std::size_t>(bs) * sizeof(Value));
            e.load(pb, static_cast<std::size_t>(bs) * sizeof(Value));
            for (Index k = 0; k < bs; ++k) {
                nza[base + static_cast<std::size_t>(k)] = pa[k] + pb[k];
                any |= nza[base + static_cast<std::size_t>(k)] != Value(0);
            }
            e.op(vops); // vector add
        } else {
            const Value* p = from_a ? a.blockData(ka) : b.blockData(kb);
            e.load(p, static_cast<std::size_t>(bs) * sizeof(Value));
            for (Index k = 0; k < bs; ++k) {
                nza[base + static_cast<std::size_t>(k)] = p[k];
                any |= p[k] != Value(0);
            }
        }
        e.store(&nza[base], static_cast<std::size_t>(bs) * sizeof(Value));
        if (!any) {
            nza.resize(base); // exact cancellation: drop the block
        } else {
            bm_c.set(bit);
        }
        if (from_a) {
            bit_a = bm_a.findNextSet(bit_a + 1);
            ++ka;
        }
        if (from_b) {
            bit_b = bm_b.findNextSet(bit_b + 1);
            ++kb;
        }
    }
    return core::SmashMatrix::fromBlocks(a.rows(), a.cols(), a.config(),
                                         std::move(bm_c), std::move(nza));
}

/**
 * Dense elementwise addition C := A + B — the uncompressed baseline,
 * here so the engine's dispatch layer covers SpAdd for every
 * spadd-capable format.
 */
template <typename E>
void
spaddDense(const fmt::DenseMatrix& a, const fmt::DenseMatrix& b,
           fmt::DenseMatrix& c, E& e)
{
    SMASH_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "operand shapes differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == a.cols(),
                "output shape mismatch");
    const std::size_t n = a.data().size();
    for (std::size_t i = 0; i < n; ++i)
        c.data()[i] = a.data()[i] + b.data()[i];
    e.load(a.data().data(), n * sizeof(Value));
    e.load(b.data().data(), n * sizeof(Value));
    e.store(c.data().data(), n * sizeof(Value));
    e.op(cost::vectorOps(static_cast<Index>(n)));
}

} // namespace smash::kern

#endif // SMASH_KERNELS_SPADD_HH
