/**
 * @file
 * Dense reference implementations — the correctness oracles every
 * sparse kernel variant is validated against in the test suite.
 */

#ifndef SMASH_KERNELS_REFERENCE_HH
#define SMASH_KERNELS_REFERENCE_HH

#include <vector>

#include "formats/dense_matrix.hh"

namespace smash::kern
{

/** y := y + A x over the dense representation. */
void denseSpmv(const fmt::DenseMatrix& a, const std::vector<Value>& x,
               std::vector<Value>& y);

/** C := C + A B over the dense representations. */
void denseSpmm(const fmt::DenseMatrix& a, const fmt::DenseMatrix& b,
               fmt::DenseMatrix& c);

/** C := A + B over the dense representations. */
void denseSpadd(const fmt::DenseMatrix& a, const fmt::DenseMatrix& b,
                fmt::DenseMatrix& c);

} // namespace smash::kern

#endif // SMASH_KERNELS_REFERENCE_HH
