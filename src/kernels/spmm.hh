/**
 * @file
 * Inner-product Sparse Matrix-Matrix multiplication C := C + A B
 * with explicit index matching (paper §2.1.2, Fig. 2, Algorithm 2).
 *
 *  - spmmCsr       A in CSR, B in CSC; merge col_ind(A) x row_ind(B)
 *  - spmmCsrIdeal  matching positions known for free (Fig. 3)
 *  - spmmBcsr      A and B^T tiled (TACO-BCSR baseline)
 *  - spmmSmashSw   per-row/column Bitmap-0 range scans in software
 *  - spmmSmashHw   two BMU groups (Algorithm 2), RDBMAP at row/col
 *                  offsets + PBMAP/RDIND index matching
 *
 * SMASH variants take B as the SMASH encoding of B^T (its rows are
 * B's columns), built with the same block size as A so the index
 * grids align.
 */

#ifndef SMASH_KERNELS_SPMM_HH
#define SMASH_KERNELS_SPMM_HH

#include <vector>

#include "common/logging.hh"
#include "core/smash_matrix.hh"
#include "formats/bcsr_matrix.hh"
#include "formats/csc_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"
#include "isa/bmu.hh"
#include "kernels/costs.hh"
#include "kernels/util.hh"
#include "sim/core_model.hh"

namespace smash::kern
{

/**
 * CSR x CSC inner-product SpMM restricted to the output tile
 * [row_begin, row_end) x [col_begin, col_end). Tiles write disjoint
 * regions of C, so the engine's parallel driver partitions the
 * output into row-range x column-band tiles and hands one tile per
 * worker with no synchronization.
 */
template <typename E>
void
spmmCsrRange(const fmt::CsrMatrix& a, const fmt::CscMatrix& b,
             fmt::DenseMatrix& c, Index row_begin, Index row_end,
             Index col_begin, Index col_end, E& e)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
                "output shape mismatch");
    const auto& a_ptr = a.rowPtr();
    const auto& a_ind = a.colInd();
    const auto& a_val = a.values();
    const auto& b_ptr = b.colPtr();
    const auto& b_ind = b.rowInd();
    const auto& b_val = b.values();

    for (Index i = row_begin; i < row_end; ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&a_ptr[si + 1], sizeof(fmt::CsrIndex));
        e.op(cost::kOuterLoop);
        const fmt::CsrIndex a_begin = a_ptr[si];
        const fmt::CsrIndex a_end = a_ptr[si + 1];
        if (a_begin == a_end)
            continue;
        for (Index j = col_begin; j < col_end; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&b_ptr[sj + 1], sizeof(fmt::CsrIndex));
            e.op(cost::kOuterLoop);
            fmt::CsrIndex ka = a_begin;
            fmt::CsrIndex kb = b_ptr[sj];
            const fmt::CsrIndex b_end = b_ptr[sj + 1];
            Value acc = 0;
            // Index matching: two-pointer merge over the position
            // streams (lines 4-6 of Code Listing 2).
            while (ka < a_end && kb < b_end) {
                auto ska = static_cast<std::size_t>(ka);
                auto skb = static_cast<std::size_t>(kb);
                e.load(&a_ind[ska], sizeof(fmt::CsrIndex));
                e.load(&b_ind[skb], sizeof(fmt::CsrIndex));
                e.op(cost::kCompareBranch);
                fmt::CsrIndex pa = a_ind[ska];
                fmt::CsrIndex pb = b_ind[skb];
                if (pa == pb) {
                    e.load(&a_val[ska], sizeof(Value));
                    e.load(&b_val[skb], sizeof(Value));
                    acc += a_val[ska] * b_val[skb];
                    e.op(cost::kFma + 2);
                    ++ka;
                    ++kb;
                } else if (pa < pb) {
                    ++ka;
                    e.op(1);
                } else {
                    ++kb;
                    e.op(1);
                }
            }
            if (acc != Value(0)) {
                c.at(i, j) += acc;
                e.store(&c.at(i, j), sizeof(Value));
            }
        }
    }
}

/** CSR x CSC inner-product SpMM (Code Listing 2). */
template <typename E>
void
spmmCsr(const fmt::CsrMatrix& a, const fmt::CscMatrix& b,
        fmt::DenseMatrix& c, E& e)
{
    spmmCsrRange(a, b, c, 0, a.rows(), 0, b.cols(), e);
}

/**
 * Idealized inner-product SpMM (Fig. 3): the matching index pairs
 * are known for free; only the useful multiplies are charged.
 */
template <typename E>
void
spmmCsrIdeal(const fmt::CsrMatrix& a, const fmt::CscMatrix& b,
             fmt::DenseMatrix& c, E& e)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
                "output shape mismatch");
    const auto& a_ptr = a.rowPtr();
    const auto& a_ind = a.colInd();
    const auto& a_val = a.values();
    const auto& b_ptr = b.colPtr();
    const auto& b_ind = b.rowInd();
    const auto& b_val = b.values();

    for (Index i = 0; i < a.rows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex a_begin = a_ptr[si];
        const fmt::CsrIndex a_end = a_ptr[si + 1];
        e.op(1);
        if (a_begin == a_end)
            continue;
        for (Index j = 0; j < b.cols(); ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.op(1);
            fmt::CsrIndex ka = a_begin;
            fmt::CsrIndex kb = b_ptr[sj];
            const fmt::CsrIndex b_end = b_ptr[sj + 1];
            Value acc = 0;
            while (ka < a_end && kb < b_end) {
                auto ska = static_cast<std::size_t>(ka);
                auto skb = static_cast<std::size_t>(kb);
                fmt::CsrIndex pa = a_ind[ska];
                fmt::CsrIndex pb = b_ind[skb];
                if (pa == pb) {
                    // Only the matched multiply costs anything.
                    e.load(&a_val[ska], sizeof(Value));
                    e.load(&b_val[skb], sizeof(Value));
                    acc += a_val[ska] * b_val[skb];
                    e.op(cost::kFma);
                    ++ka;
                    ++kb;
                } else if (pa < pb) {
                    ++ka;
                } else {
                    ++kb;
                }
            }
            if (acc != Value(0)) {
                c.at(i, j) += acc;
                e.store(&c.at(i, j), sizeof(Value));
            }
        }
    }
}

/**
 * Tiled inner-product SpMM: A in BCSR and B^T in BCSR with the same
 * square tiles. Block-index matching replaces element matching; a
 * match multiplies two dense tiles (vectorized, including the
 * stored zeros).
 *
 * @param bt BCSR encoding of B-transposed
 */
template <typename E>
void
spmmBcsr(const fmt::BcsrMatrix& a, const fmt::BcsrMatrix& bt,
         fmt::DenseMatrix& c, E& e)
{
    SMASH_CHECK(a.blockRows() == a.blockCols() &&
                bt.blockRows() == bt.blockCols() &&
                a.blockCols() == bt.blockCols(),
                "spmmBcsr requires equal square tiles");
    SMASH_CHECK(a.cols() == bt.cols(), "inner dimensions differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == bt.rows(),
                "output shape mismatch");
    const Index t = a.blockRows();
    const auto& a_ptr = a.blockRowPtr();
    const auto& a_col = a.blockCol();
    const auto& a_val = a.blockValues();
    const auto& b_ptr = bt.blockRowPtr();
    const auto& b_col = bt.blockCol();
    const auto& b_val = bt.blockValues();
    const std::size_t tile = static_cast<std::size_t>(t * t);
    const int tile_vops = cost::vectorOps(t * t * t);

    for (Index i = 0; i < a.numBlockRows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&a_ptr[si + 1], sizeof(fmt::CsrIndex));
        e.op(cost::kOuterLoop);
        if (a_ptr[si] == a_ptr[si + 1])
            continue;
        for (Index j = 0; j < bt.numBlockRows(); ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&b_ptr[sj + 1], sizeof(fmt::CsrIndex));
            e.op(cost::kOuterLoop);
            fmt::CsrIndex ka = a_ptr[si];
            fmt::CsrIndex kb = b_ptr[sj];
            const fmt::CsrIndex a_end = a_ptr[si + 1];
            const fmt::CsrIndex b_end = b_ptr[sj + 1];
            while (ka < a_end && kb < b_end) {
                auto ska = static_cast<std::size_t>(ka);
                auto skb = static_cast<std::size_t>(kb);
                e.load(&a_col[ska], sizeof(fmt::CsrIndex));
                e.load(&b_col[skb], sizeof(fmt::CsrIndex));
                e.op(cost::kCompareBranch);
                fmt::CsrIndex pa = a_col[ska];
                fmt::CsrIndex pb = b_col[skb];
                if (pa == pb) {
                    const Value* ta = &a_val[ska * tile];
                    const Value* tb = &b_val[skb * tile];
                    e.load(ta, tile * sizeof(Value));
                    e.load(tb, tile * sizeof(Value));
                    // C(i,j) tile += A tile * (B^T tile)^T.
                    for (Index lr = 0; lr < t; ++lr) {
                        Index row = i * t + lr;
                        if (row >= c.rows())
                            break;
                        for (Index lc = 0; lc < t; ++lc) {
                            Index col = j * t + lc;
                            if (col >= c.cols())
                                break;
                            Value acc = 0;
                            for (Index kk = 0; kk < t; ++kk) {
                                acc += ta[lr * t + kk] * tb[lc * t + kk];
                            }
                            if (acc != Value(0)) {
                                c.at(row, col) += acc;
                                e.store(&c.at(row, col), sizeof(Value));
                            }
                        }
                    }
                    e.op(2 * tile_vops);
                    ++ka;
                    ++kb;
                } else if (pa < pb) {
                    ++ka;
                    e.op(1);
                } else {
                    ++kb;
                    e.op(1);
                }
            }
        }
    }
}

namespace detail
{

/** Dot product of two aligned NZA blocks (vectorized charge). */
template <typename E>
Value
blockDot(const Value* pa, const Value* pb, Index bs, E& e)
{
    e.load(pa, static_cast<std::size_t>(bs) * sizeof(Value));
    e.load(pb, static_cast<std::size_t>(bs) * sizeof(Value));
    Value acc = 0;
    for (Index k = 0; k < bs; ++k)
        acc += pa[k] * pb[k];
    e.op(2 * cost::vectorOps(bs));
    return acc;
}

} // namespace detail

/**
 * Software-only SMASH SpMM: for every (row of A, row of B^T) pair,
 * co-scan the two row ranges through the bitmap hierarchy (§4.4
 * CLZ/AND scanning, billed against the compact streams) and
 * dot-multiply blocks whose inner-dimension offsets match.
 */
template <typename E>
void
spmmSmashSw(const core::SmashMatrix& a, const core::SmashMatrix& bt,
            fmt::DenseMatrix& c, E& e)
{
    SMASH_CHECK(a.blockSize() == bt.blockSize(),
                "operands need a common block size");
    SMASH_CHECK(a.cols() == bt.cols(), "inner dimensions differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == bt.rows(),
                "output shape mismatch");
    const Index bs = a.blockSize();
    const Index a_bpr = a.paddedCols() / bs;
    const Index b_bpr = bt.paddedCols() / bs;
    const std::vector<Index> a_rank = rowBlockRanks(a);
    const std::vector<Index> b_rank = rowBlockRanks(bt);

    core::BlockCursor cur_a(a);
    core::BlockCursor cur_b(bt);
    cur_a.setRecordTouches(E::kSimulated);
    cur_b.setRecordTouches(E::kSimulated);
    ScanBiller bill_a(ScanBiller::kSoftwareStreamBase);
    ScanBiller bill_b(ScanBiller::kSoftwareStreamBase + 0x1'0000'0000ULL);

    core::BlockPosition pa, pb;
    auto next_a = [&]() {
        bool ok = cur_a.next(pa);
        bill_a.charge(cur_a, e);
        return ok;
    };
    auto next_b = [&]() {
        bool ok = cur_b.next(pb);
        bill_b.charge(cur_b, e);
        return ok;
    };

    for (Index i = 0; i < a.rows(); ++i) {
        e.op(cost::kOuterLoop);
        auto sia = static_cast<std::size_t>(i);
        if (a_rank[sia] == a_rank[sia + 1])
            continue; // empty row of A
        for (Index j = 0; j < bt.rows(); ++j) {
            e.op(cost::kOuterLoop);
            auto sjb = static_cast<std::size_t>(j);
            if (b_rank[sjb] == b_rank[sjb + 1])
                continue; // empty column of B
            cur_a.beginRange(i * a_bpr, (i + 1) * a_bpr);
            cur_b.beginRange(j * b_bpr, (j + 1) * b_bpr);
            bool has_a = next_a();
            bool has_b = next_b();
            Value acc = 0;
            while (has_a && has_b) {
                // Compare inner-dimension offsets (index matching).
                e.op(cost::kCompareBranch);
                if (pa.colStart == pb.colStart) {
                    acc += detail::blockDot(
                        a.blockData(a_rank[sia] + pa.nzaBlock),
                        bt.blockData(b_rank[sjb] + pb.nzaBlock), bs, e);
                    has_a = next_a();
                    has_b = next_b();
                } else if (pa.colStart < pb.colStart) {
                    has_a = next_a();
                } else {
                    has_b = next_b();
                }
            }
            if (acc != Value(0)) {
                c.at(i, j) += acc;
                e.store(&c.at(i, j), sizeof(Value));
            }
        }
    }
}

/**
 * BMU-accelerated SMASH SpMM (Algorithm 2): group 0 scans A's row
 * range, group 1 scans B^T's row range; PBMAP/RDIND produce the
 * inner-dimension offsets the core compares.
 */
template <typename E>
void
spmmSmashHw(const core::SmashMatrix& a, const core::SmashMatrix& bt,
            isa::Bmu& bmu, fmt::DenseMatrix& c, E& e)
{
    SMASH_CHECK(a.blockSize() == bt.blockSize(),
                "operands need a common block size");
    SMASH_CHECK(a.cols() == bt.cols(), "inner dimensions differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == bt.rows(),
                "output shape mismatch");
    const Index bs = a.blockSize();
    const Index a_bpr = a.paddedCols() / bs;
    const Index b_bpr = bt.paddedCols() / bs;
    const std::vector<Index> a_rank = rowBlockRanks(a);
    const std::vector<Index> b_rank = rowBlockRanks(bt);

    // Configuration (Algorithm 2, lines 2-5). The paper's example
    // uses one level per group for exposition; we configure each
    // operand's full hierarchy so ranged scans can skip empty
    // stretches inside long rows.
    bmu.clearGroup(0);
    bmu.clearGroup(1);
    bmu.matinfo(a.rows(), a.paddedCols(), 0, e);
    bmu.matinfo(bt.rows(), bt.paddedCols(), 1, e);
    for (int lvl = 0; lvl < a.config().levels(); ++lvl)
        bmu.bmapinfo(a.config().ratio(lvl), lvl, 0, e);
    for (int lvl = 0; lvl < bt.config().levels(); ++lvl)
        bmu.bmapinfo(bt.config().ratio(lvl), lvl, 1, e);
    for (int lvl = 0; lvl < a.config().levels(); ++lvl)
        bmu.rdbmap(&a.hierarchy().level(lvl), lvl, 0, e);
    for (int lvl = 0; lvl < bt.config().levels(); ++lvl)
        bmu.rdbmap(&bt.hierarchy().level(lvl), lvl, 1, e);

    Index row_a = 0, col_a = 0, row_b = 0, col_b = 0;
    for (Index i = 0; i < a.rows(); ++i) {
        e.op(cost::kOuterLoop);
        auto sia = static_cast<std::size_t>(i);
        if (a_rank[sia] == a_rank[sia + 1])
            continue;
        for (Index j = 0; j < bt.rows(); ++j) {
            e.op(cost::kOuterLoop);
            auto sjb = static_cast<std::size_t>(j);
            if (b_rank[sjb] == b_rank[sjb + 1])
                continue;
            // RDBMAP at the row/column offsets (lines 7 and 9).
            bmu.beginScan(i * a_bpr, (i + 1) * a_bpr, 0, e);
            bmu.beginScan(j * b_bpr, (j + 1) * b_bpr, 1, e);
            Index ka = a_rank[sia];
            Index kb = b_rank[sjb];
            bool has_a = bmu.pbmap(0, e);
            bool has_b = bmu.pbmap(1, e);
            if (has_a)
                bmu.rdind(row_a, col_a, 0, e);
            if (has_b)
                bmu.rdind(row_b, col_b, 1, e);
            Value acc = 0;
            while (has_a && has_b) {
                e.op(cost::kCompareBranch);
                if (col_a == col_b) {
                    acc += detail::blockDot(a.blockData(ka),
                                            bt.blockData(kb), bs, e);
                    has_a = bmu.pbmap(0, e);
                    if (has_a)
                        bmu.rdind(row_a, col_a, 0, e);
                    has_b = bmu.pbmap(1, e);
                    if (has_b)
                        bmu.rdind(row_b, col_b, 1, e);
                    ++ka;
                    ++kb;
                } else if (col_a < col_b) {
                    has_a = bmu.pbmap(0, e);
                    if (has_a)
                        bmu.rdind(row_a, col_a, 0, e);
                    ++ka;
                } else {
                    has_b = bmu.pbmap(1, e);
                    if (has_b)
                        bmu.rdind(row_b, col_b, 1, e);
                    ++kb;
                }
            }
            if (acc != Value(0)) {
                c.at(i, j) += acc;
                e.store(&c.at(i, j), sizeof(Value));
            }
        }
    }
}

/**
 * Dense matrix multiply (ikj streaming order): the uncompressed
 * baseline of the format spectrum, here so the engine's dispatch
 * layer covers SpMM for every spmm-capable format.
 */
template <typename E>
void
spmmDense(const fmt::DenseMatrix& a, const fmt::DenseMatrix& b,
          fmt::DenseMatrix& c, E& e)
{
    SMASH_CHECK(a.cols() == b.rows(), "inner dimensions differ");
    SMASH_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
                "output shape mismatch");
    const Index n = b.cols();
    const int row_vops = cost::vectorOps(n);
    for (Index i = 0; i < a.rows(); ++i) {
        const Value* a_row = a.rowData(i);
        e.load(a_row, static_cast<std::size_t>(a.cols()) * sizeof(Value));
        for (Index k = 0; k < a.cols(); ++k) {
            const Value av = a_row[k];
            const Value* b_row = b.rowData(k);
            e.load(b_row, static_cast<std::size_t>(n) * sizeof(Value));
            for (Index j = 0; j < n; ++j)
                c.at(i, j) += av * b_row[j];
            e.op(row_vops + cost::kLoop);
        }
        e.store(c.rowData(i), static_cast<std::size_t>(n) * sizeof(Value));
        e.op(cost::kOuterLoop);
    }
}

} // namespace smash::kern

#endif // SMASH_KERNELS_SPMM_HH
