#include "serve/pipeline.hh"

#include <exception>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/parallel_exec.hh"
#include "engine/dispatch.hh"
#include "kernels/util.hh"

namespace smash::serve
{

namespace
{

/** Relaxed atomic max (for the widest-batch stat). */
void
storeMax(std::atomic<std::uint64_t>& stat, std::uint64_t v)
{
    std::uint64_t prev = stat.load(std::memory_order_relaxed);
    while (prev < v && !stat.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
}

} // namespace

Pipeline::Pipeline(MatrixRegistry& registry, exec::ThreadPool& pool,
                   ComputeExec compute)
    : registry_(registry), pool_(pool), compute_(compute)
{}

Pipeline::~Pipeline()
{
    drain();
}

void
Pipeline::postPrepare(const std::string& matrix, Request request,
                      Batcher& batcher)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++inflight_;
    }
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    // shared_ptr: promises are move-only but the pool's task type
    // (std::function) requires copyable callables.
    auto req = std::make_shared<Request>(std::move(request));
    pool_.post([this, matrix, req, &batcher] {
        try {
            // Encode/convert stage: first touch converts, later
            // touches return the cached encoding immediately.
            registry_.encoded(matrix);
            batcher.enqueue(matrix, std::move(*req));
        } catch (...) {
            req->result.set_exception(std::current_exception());
            finish(1, false);
        }
    });
}

void
Pipeline::postReencode(const std::string& matrix)
{
    stats_.reencodes.fetch_add(1, std::memory_order_relaxed);
    // Capture the registry, not `this`: the task is not counted as
    // in-flight, so it may still sit in the pool's queue while the
    // owning Session destroys this pipeline — the registry is the
    // one party guaranteed to outlive the pool's drain-before-join.
    MatrixRegistry& registry = registry_;
    const bool posted = pool_.tryPost(
        [&registry, matrix] { registry.runReencode(matrix); });
    if (!posted)
        registry.runReencode(matrix);
}

void
Pipeline::postCompute(const std::string& matrix,
                      std::vector<Request> batch)
{
    if (batch.empty())
        return;
    auto shared =
        std::make_shared<std::vector<Request>>(std::move(batch));
    pool_.post([this, matrix, shared] {
        try {
            computeBatch(matrix, *shared);
        } catch (...) {
            const std::exception_ptr error = std::current_exception();
            for (Request& r : *shared)
                r.result.set_exception(error);
            finish(shared->size(), false);
        }
    });
}

void
Pipeline::computeBatch(const std::string& matrix,
                       std::vector<Request>& batch)
{
    // The shared_ptr pins this epoch's encoding for the whole
    // compute: a concurrent mutation or drift re-encode swaps the
    // registry slot without pulling the matrix out from under us.
    const MatrixRegistry::EncodingPtr held = registry_.encoded(matrix);
    const eng::SparseMatrixAny& m = *held;
    const Index rows = m.rows();
    const auto nrhs = static_cast<Index>(batch.size());

    if (nrhs == 1) {
        // Unbatched: a literal single-RHS dispatch (this is the
        // baseline path the throughput bench compares against).
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
        if (compute_ == ComputeExec::kParallel) {
            exec::ParallelExec pe(pool_);
            eng::spmv(m.ref(), batch[0].x, y, pe);
        } else {
            sim::NativeExec ne;
            eng::spmv(m.ref(), batch[0].x, y, ne);
        }
        stats_.batches.fetch_add(1, std::memory_order_relaxed);
        storeMax(stats_.widestBatch, 1);
        auto shared = std::make_shared<std::vector<Request>>();
        shared->push_back(std::move(batch[0]));
        auto result = std::make_shared<std::vector<Value>>(std::move(y));
        pool_.post([this, shared, result] {
            (*shared)[0].result.set_value(std::move(*result));
            stats_.completed.fetch_add(1, std::memory_order_relaxed);
            finish(1, true);
        });
        return;
    }

    // Assemble the tall-skinny X block (one column per request,
    // already padded to the format's operand length) and compute
    // the whole batch with one traversal of the sparse operand.
    const Index xlen = m.xLength();
    auto x = std::make_shared<fmt::DenseMatrix>(xlen, nrhs);
    for (Index r = 0; r < nrhs; ++r) {
        const std::vector<Value>& xr =
            batch[static_cast<std::size_t>(r)].x;
        const auto n = static_cast<Index>(xr.size());
        for (Index j = 0; j < n && j < xlen; ++j)
            x->at(j, r) = xr[static_cast<std::size_t>(j)];
    }
    auto y = std::make_shared<fmt::DenseMatrix>(rows, nrhs);
    if (compute_ == ComputeExec::kParallel) {
        exec::ParallelExec pe(pool_);
        eng::spmvBatch(m.ref(), *x, *y, pe);
    } else {
        sim::NativeExec ne;
        eng::spmvBatch(m.ref(), *x, *y, ne);
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    storeMax(stats_.widestBatch, static_cast<std::uint64_t>(nrhs));

    // Reduce/deliver stage: its own task, so this worker can pick
    // up the next batch while another thread scatters results out.
    auto shared =
        std::make_shared<std::vector<Request>>(std::move(batch));
    pool_.post([this, shared, y, rows] {
        const auto n = static_cast<Index>(shared->size());
        for (Index r = 0; r < n; ++r) {
            std::vector<Value> out(static_cast<std::size_t>(rows));
            for (Index i = 0; i < rows; ++i)
                out[static_cast<std::size_t>(i)] = y->at(i, r);
            (*shared)[static_cast<std::size_t>(r)].result.set_value(
                std::move(out));
            stats_.completed.fetch_add(1, std::memory_order_relaxed);
        }
        finish(static_cast<std::uint64_t>(n), true);
    });
}

void
Pipeline::finish(std::uint64_t n, bool ok)
{
    if (!ok)
        stats_.failed.fetch_add(n, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    SMASH_CHECK(inflight_ >= n, "pipeline accounting underflow");
    inflight_ -= n;
    if (inflight_ == 0)
        idle_.notify_all();
}

void
Pipeline::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inflight_ == 0; });
}

} // namespace smash::serve
