#include "serve/pipeline.hh"

#include <exception>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/parallel_exec.hh"
#include "engine/dispatch.hh"
#include "kernels/util.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/shed.hh"

namespace smash::serve
{

namespace
{

/** Relaxed atomic max (for the widest-batch stat). */
void
storeMax(std::atomic<std::uint64_t>& stat, std::uint64_t v)
{
    std::uint64_t prev = stat.load(std::memory_order_relaxed);
    while (prev < v && !stat.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
}

/** The registry's per-stage latency series (one histogram per
 *  PipelineStage, resolved once). */
obs::Histogram&
globalStageHistogram(PipelineStage s)
{
    static obs::Histogram* by_stage[kNumPipelineStages] = {
        &obs::MetricsRegistry::global().histogram(
            "smash_pipeline_stage_latency_us{stage=\"admit\"}"),
        &obs::MetricsRegistry::global().histogram(
            "smash_pipeline_stage_latency_us{stage=\"prepare\"}"),
        &obs::MetricsRegistry::global().histogram(
            "smash_pipeline_stage_latency_us{stage=\"batch_wait\"}"),
        &obs::MetricsRegistry::global().histogram(
            "smash_pipeline_stage_latency_us{stage=\"compute\"}"),
        &obs::MetricsRegistry::global().histogram(
            "smash_pipeline_stage_latency_us{stage=\"deliver\"}"),
    };
    return *by_stage[static_cast<std::size_t>(s)];
}

/** Stage stamps can be unset (default time_point) on requests that
 *  fail mid-pipeline; clamp the interval to zero then. */
std::uint64_t
stageUs(Request::Clock::time_point from, Request::Clock::time_point to)
{
    if (from == Request::Clock::time_point{} || to < from)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to -
                                                              from)
            .count());
}

} // namespace

Pipeline::Pipeline(MatrixRegistry& registry, exec::ThreadPool& pool,
                   ComputeExec compute, OverloadShedder* shedder)
    : registry_(registry), pool_(pool), compute_(compute),
      shedder_(shedder)
{}

Pipeline::~Pipeline()
{
    drain();
}

void
Pipeline::postPrepare(const QueueKey& key, Request request,
                      Batcher& batcher)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++inflight_;
    }
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);

    // Steady-state fast path: when every encoding the op needs is
    // already cached there is nothing for a prepare task to do —
    // hand the request to the batcher inline. Besides saving one
    // pool hop per request, this keeps same-queue requests in
    // submission order (async prepare tasks race on the workers, so
    // a later kHigh arrival could otherwise flush ahead of an
    // earlier kBatch request still in stage 1).
    if (resolveEncodings(key, request, /*cached_only=*/true)) {
        request.prepared = Request::Clock::now();
        SMASH_TRACE_EVENT(obs::EventKind::kPipelinePrepare,
                          static_cast<std::uint32_t>(key.op),
                          /*cached=*/1);
        // On a throw the promise may already have moved on (enqueue
        // takes the request by value, so e.g. a flush that failed
        // mid-hand-off leaves it stateless); failOne tolerates that.
        try {
            batcher.enqueue(key, std::move(request));
            noteProgress();
        } catch (const std::exception& ex) {
            failOne(request, Status(StatusCode::kInternal, ex.what()));
        } catch (...) {
            failOne(request, Status(StatusCode::kInternal,
                                    "unknown prepare failure"));
        }
        return;
    }

    // shared_ptr: promises are move-only but the pool's task type
    // (std::function) requires copyable callables.
    auto req = std::make_shared<Request>(std::move(request));
    pool_.post([this, key, req, &batcher] {
        try {
            // Encode/convert stage: first touch converts, later
            // touches return the cached encoding immediately. SpAdd
            // computes on the CSR masters of both operands.
            const std::uint64_t t0 =
                obs::traceEnabled() ? obs::traceNowNs() : 0;
            resolveEncodings(key, *req, /*cached_only=*/false);
            req->prepared = Request::Clock::now();
            SMASH_TRACE_SPAN(obs::EventKind::kPipelinePrepare, t0,
                             static_cast<std::uint32_t>(key.op),
                             /*cached=*/0);
            batcher.enqueue(key, std::move(*req));
            // After the hand-off: a drain waiting for the batcher
            // to hold everything in flight can flush it now.
            noteProgress();
        } catch (const std::exception& ex) {
            failOne(*req, Status(StatusCode::kInternal, ex.what()));
        } catch (...) {
            // A non-std exception must still resolve the promise
            // and the accounting, or drain() hangs forever.
            failOne(*req, Status(StatusCode::kInternal,
                                 "unknown prepare failure"));
        }
    });
}

bool
Pipeline::resolveEncodings(const QueueKey& key,
                           const Request& request, bool cached_only)
{
    switch (key.op) {
      case OpClass::kSpmv:
      case OpClass::kSpmm: {
        // Sharded entries prepare per shard: ready when every
        // shard's encoding is built.
        if (const auto sharded = registry_.sharded(key.matrix)) {
            if (cached_only)
                return sharded->allEncoded();
            sharded->ensureEncoded();
            return true;
        }
        if (cached_only)
            return registry_.encodedIfCached(key.matrix) != nullptr;
        registry_.encoded(key.matrix);
        return true;
      }
      case OpClass::kSpadd: {
        const std::string& other =
            std::get<SpaddWork>(request.work).other;
        // A sharded primary operand merges straight off its shard
        // masters — no encoding to prepare; the secondary still
        // needs its whole-matrix CSR view (the registry serves one
        // for sharded secondaries too, from the concatenated
        // slices).
        const bool a_sharded =
            registry_.sharded(key.matrix) != nullptr;
        if (cached_only)
            return (a_sharded ||
                    registry_.encodedAsIfCached(key.matrix,
                                                eng::Format::kCsr) !=
                        nullptr) &&
                   registry_.encodedAsIfCached(
                       other, eng::Format::kCsr) != nullptr;
        if (!a_sharded)
            registry_.encodedAs(key.matrix, eng::Format::kCsr);
        registry_.encodedAs(other, eng::Format::kCsr);
        return true;
      }
    }
    SMASH_PANIC("unknown op class");
}

void
Pipeline::postReencode(const std::string& matrix)
{
    stats_.reencodes.fetch_add(1, std::memory_order_relaxed);
    // Capture the registry, not `this`: the task is not counted as
    // in-flight, so it may still sit in the pool's queue while the
    // owning Session destroys this pipeline — the registry is the
    // one party guaranteed to outlive the pool's drain-before-join.
    MatrixRegistry& registry = registry_;
    const bool posted = pool_.tryPost(
        [&registry, matrix] { registry.runReencode(matrix); });
    if (!posted)
        registry.runReencode(matrix);
}

void
Pipeline::postCompute(const QueueKey& key, std::vector<Request> batch)
{
    if (batch.empty())
        return;
    // The batch-wait stage ends here, when the flush hands the
    // batch to the compute stage (not when the task gets a worker —
    // queueing for a worker is part of the compute stage's cost).
    const Request::Clock::time_point now = Request::Clock::now();
    for (Request& r : batch)
        r.flushed = now;
    auto shared =
        std::make_shared<std::vector<Request>>(std::move(batch));
    pool_.post([this, key, shared] {
        try {
            computeBatch(key, *shared);
        } catch (const std::exception& ex) {
            failRemaining(*shared,
                          Status(StatusCode::kInternal, ex.what()));
        } catch (...) {
            failRemaining(*shared, Status(StatusCode::kInternal,
                                          "unknown compute failure"));
        }
    });
}

void
Pipeline::failOne(Request& request, const Status& status)
{
    request.resolved = true;
    SMASH_TRACE_EVENT(obs::EventKind::kPipelineDeliver, 0);
    try {
        request.fail(status);
    } catch (...) {
        // A moved-from promise has no state; nothing to resolve.
    }
    finish(1, false);
}

void
Pipeline::failRemaining(std::vector<Request>& batch,
                        const Status& status)
{
    std::uint64_t n = 0;
    for (Request& r : batch) {
        if (r.resolved)
            continue;
        r.resolved = true;
        try {
            r.fail(status);
        } catch (...) {
            // A moved-from promise has no state; nothing to resolve.
        }
        ++n;
    }
    if (n > 0)
        finish(n, false);
}

void
Pipeline::recordStages(const Request& request,
                       Request::Clock::time_point delivered)
{
    const struct
    {
        PipelineStage stage;
        Request::Clock::time_point from;
        Request::Clock::time_point to;
    } spans[] = {
        {PipelineStage::kAdmit, request.submitted, request.admitted},
        {PipelineStage::kPrepare, request.admitted, request.prepared},
        {PipelineStage::kBatchWait, request.prepared,
         request.flushed},
        {PipelineStage::kCompute, request.flushed, request.computed},
        {PipelineStage::kDeliver, request.computed, delivered},
    };
    for (const auto& s : spans) {
        const std::uint64_t us = stageUs(s.from, s.to);
        stats_.stageLatency[static_cast<std::size_t>(s.stage)].record(
            std::chrono::microseconds(us));
        globalStageHistogram(s.stage).record(us);
    }
}

template <typename T, typename Work>
void
Pipeline::deliver(Request& request, Work& work, T value)
{
    request.resolved = true;
    const Request::Clock::time_point now = Request::Clock::now();
    stats_
        .latencyByPriority[static_cast<std::size_t>(
            request.options.priority)]
        .record(now - request.submitted);
    recordStages(request, now);
    // The queue-side span (submit → batch flush) is the degradation
    // ladder's latency signal: it grows under pressure well before
    // compute time does.
    if (shedder_)
        shedder_->noteQueueLatency(
            stageUs(request.submitted, request.flushed));
    SMASH_TRACE_EVENT(obs::EventKind::kPipelineDeliver, 1);
    work.done.resolve(Result<T>(std::move(value)));
    // Release the admission slot only after the completion resolved
    // (promise satisfied or callback returned), and before finish():
    // the session may tear its gate down the instant the in-flight
    // count reaches zero, so the ticket must not outlive that
    // accounting — and a completion callback must never still be
    // running once Session::close() observes an empty gate.
    request.ticket.reset();
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    finish(1, true);
}

void
Pipeline::computeBatch(const QueueKey& key,
                       std::vector<Request>& batch)
{
    // Deadline gate: a request whose budget ran out while it was
    // queued resolves to kDeadlineExceeded instead of computing —
    // at overload, work the client has given up on is shed here.
    const Request::Clock::time_point now = Request::Clock::now();
    std::uint64_t n_expired = 0;
    std::vector<Request> live;
    live.reserve(batch.size());
    for (Request& r : batch) {
        if (r.expiry <= now) {
            r.resolved = true;
            r.fail(Status(StatusCode::kDeadlineExceeded,
                          "deadline passed before compute"));
            ++n_expired;
        } else {
            live.push_back(std::move(r));
        }
    }
    if (n_expired > 0) {
        stats_.expired.fetch_add(n_expired, std::memory_order_relaxed);
        finish(n_expired, false);
    }
    if (live.empty())
        return;
    batch.swap(live);

    static obs::Counter& batches_total =
        obs::MetricsRegistry::global().counter(
            "smash_pipeline_batches_total");
    batches_total.inc();
    const auto width = static_cast<std::uint32_t>(batch.size());
    const std::uint64_t t0 =
        obs::traceEnabled() ? obs::traceNowNs() : 0;
    switch (key.op) {
      case OpClass::kSpmv:
        computeSpmv(key.matrix, batch);
        break;
      case OpClass::kSpmm:
        computeSpmm(key.matrix, batch);
        break;
      case OpClass::kSpadd:
        computeSpadd(key.matrix, batch);
        break;
      default:
        SMASH_PANIC("unknown op class");
    }
    SMASH_TRACE_SPAN(obs::EventKind::kPipelineCompute, t0,
                     static_cast<std::uint32_t>(key.op), width);
}

void
Pipeline::computeSpmv(const std::string& matrix,
                      std::vector<Request>& batch)
{
    // Sharded entries compute scatter–gather over their shards;
    // otherwise the shared_ptr pins this epoch's encoding for the
    // whole compute: a concurrent mutation or drift re-encode swaps
    // the registry slot without pulling the matrix out from under
    // us. (Each shard's encoding is pinned the same way, inside the
    // shard layer.)
    const std::shared_ptr<shard::ShardedMatrix> sharded =
        registry_.sharded(matrix);
    const MatrixRegistry::EncodingPtr held =
        sharded ? nullptr : registry_.encoded(matrix);
    const Index rows = sharded ? sharded->rows() : held->rows();
    const auto nrhs = static_cast<Index>(batch.size());
    exec::ThreadPool* shard_pool =
        compute_ == ComputeExec::kParallel ? &pool_ : nullptr;

    if (nrhs == 1) {
        // Unbatched: a literal single-RHS dispatch (this is the
        // baseline path the throughput bench compares against).
        auto& w = std::get<SpmvWork>(batch[0].work);
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
        if (sharded) {
            sharded->spmv(w.x, y, shard_pool);
        } else if (compute_ == ComputeExec::kParallel) {
            exec::ParallelExec pe(pool_);
            eng::spmv(held->ref(), w.x, y, pe);
        } else {
            sim::NativeExec ne;
            eng::spmv(held->ref(), w.x, y, ne);
        }
        stats_.batches.fetch_add(1, std::memory_order_relaxed);
        storeMax(stats_.widestBatch, 1);
        batch[0].computed = Request::Clock::now();
        auto shared = std::make_shared<std::vector<Request>>();
        shared->push_back(std::move(batch[0]));
        auto result = std::make_shared<std::vector<Value>>(std::move(y));
        pool_.post([this, shared, result] {
            deliver((*shared)[0], std::get<SpmvWork>((*shared)[0].work),
                    std::move(*result));
        });
        return;
    }

    // Assemble the tall-skinny X block (one column per request,
    // padded to the format's operand length) and compute the whole
    // batch with one traversal of the sparse operand. Row-outer
    // loop order: X is row-major, so the writes stream through each
    // nrhs-wide row instead of striding one cache line per element.
    // Sharded matrices take the logical height — each shard pads to
    // its own format's granularity internally.
    const Index xlen = sharded ? sharded->cols() : held->xLength();
    fmt::DenseMatrix x(xlen, nrhs);
    {
        std::vector<const Value*> sources(
            static_cast<std::size_t>(nrhs));
        std::vector<Index> lens(static_cast<std::size_t>(nrhs));
        for (Index r = 0; r < nrhs; ++r) {
            const std::vector<Value>& xr =
                std::get<SpmvWork>(
                    batch[static_cast<std::size_t>(r)].work)
                    .x;
            sources[static_cast<std::size_t>(r)] = xr.data();
            lens[static_cast<std::size_t>(r)] =
                std::min(xlen, static_cast<Index>(xr.size()));
        }
        for (Index j = 0; j < xlen; ++j) {
            Value* row = x.rowData(j);
            for (Index r = 0; r < nrhs; ++r)
                row[r] = j < lens[static_cast<std::size_t>(r)]
                    ? sources[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(j)]
                    : Value(0);
        }
    }
    auto y = std::make_shared<fmt::DenseMatrix>(rows, nrhs);
    if (sharded) {
        sharded->spmvBatch(x, *y, shard_pool);
    } else if (compute_ == ComputeExec::kParallel) {
        exec::ParallelExec pe(pool_);
        eng::spmvBatch(held->ref(), x, *y, pe);
    } else {
        sim::NativeExec ne;
        eng::spmvBatch(held->ref(), x, *y, ne);
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    storeMax(stats_.widestBatch, static_cast<std::uint64_t>(nrhs));
    {
        const Request::Clock::time_point done =
            Request::Clock::now();
        for (Request& r : batch)
            r.computed = done;
    }

    // Reduce/deliver stage: its own task, so this worker can pick
    // up the next batch while another thread scatters results out.
    auto shared =
        std::make_shared<std::vector<Request>>(std::move(batch));
    pool_.post([this, shared, y, rows] {
        // One streaming pass over the row-major Y block: each row
        // scatters to every request's result, instead of one
        // strided (line-per-element) pass per request.
        const auto n = static_cast<Index>(shared->size());
        std::vector<std::vector<Value>> outs(
            static_cast<std::size_t>(n));
        for (auto& out : outs)
            out.resize(static_cast<std::size_t>(rows));
        for (Index i = 0; i < rows; ++i) {
            const Value* row = y->rowData(i);
            for (Index r = 0; r < n; ++r)
                outs[static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>(i)] = row[r];
        }
        for (Index r = 0; r < n; ++r) {
            Request& req = (*shared)[static_cast<std::size_t>(r)];
            deliver(req, std::get<SpmvWork>(req.work),
                    std::move(outs[static_cast<std::size_t>(r)]));
        }
    });
}

void
Pipeline::computeSpmm(const std::string& matrix,
                      std::vector<Request>& batch)
{
    const std::shared_ptr<shard::ShardedMatrix> sharded =
        registry_.sharded(matrix);
    const MatrixRegistry::EncodingPtr held =
        sharded ? nullptr : registry_.encoded(matrix);
    const Index rows = sharded ? sharded->rows() : held->rows();
    const Index xlen = sharded ? sharded->cols() : held->xLength();

    // Concatenate every request's dense block into one wide X: the
    // per-column arithmetic of the batched kernels is independent,
    // so each block's C columns are bit-identical to computing its
    // eng::spmmBatch alone — one traversal now serves all blocks.
    Index total = 0;
    for (const Request& r : batch)
        total += std::get<SpmmWork>(r.work).b.cols();
    fmt::DenseMatrix x(xlen, total);
    Index off = 0;
    for (const Request& r : batch) {
        // Row-streaming copy: both blocks are row-major, so copy
        // each source row into its slice of the wide row.
        const fmt::DenseMatrix& b = std::get<SpmmWork>(r.work).b;
        const Index jmax = std::min(xlen, b.rows());
        const Index nc = b.cols();
        for (Index j = 0; j < jmax; ++j) {
            const Value* src = b.rowData(j);
            Value* dst = x.rowData(j) + off;
            for (Index c = 0; c < nc; ++c)
                dst[c] = src[c];
        }
        off += nc;
    }
    auto y = std::make_shared<fmt::DenseMatrix>(rows, total);
    if (sharded) {
        sharded->spmvBatch(
            x, *y, compute_ == ComputeExec::kParallel ? &pool_ : nullptr);
    } else if (compute_ == ComputeExec::kParallel) {
        exec::ParallelExec pe(pool_);
        eng::spmmBatch(held->ref(), x, *y, pe);
    } else {
        sim::NativeExec ne;
        eng::spmmBatch(held->ref(), x, *y, ne);
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    storeMax(stats_.widestBatch,
             static_cast<std::uint64_t>(batch.size()));
    {
        const Request::Clock::time_point done =
            Request::Clock::now();
        for (Request& r : batch)
            r.computed = done;
    }

    // Deliver: slice each request's columns back out of the wide Y.
    auto shared =
        std::make_shared<std::vector<Request>>(std::move(batch));
    pool_.post([this, shared, y, rows] {
        Index off = 0;
        for (Request& req : *shared) {
            auto& w = std::get<SpmmWork>(req.work);
            const Index nc = w.b.cols();
            fmt::DenseMatrix out(rows, nc);
            // Row-streaming slice out of the wide row-major Y.
            for (Index i = 0; i < rows; ++i) {
                const Value* src = y->rowData(i) + off;
                Value* dst = out.rowData(i);
                for (Index c = 0; c < nc; ++c)
                    dst[c] = src[c];
            }
            off += nc;
            deliver(req, w, std::move(out));
        }
    });
}

void
Pipeline::computeSpadd(const std::string& matrix,
                       std::vector<Request>& batch)
{
    // SpAdd requests do not coalesce into one kernel call; the
    // queue still gives them batching's scheduling benefits (one
    // task per flush, priority ordering). Each merge runs on the
    // CSR masters and delivers inline — the result is the payload,
    // there is no block to scatter.
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    storeMax(stats_.widestBatch,
             static_cast<std::uint64_t>(batch.size()));
    const std::shared_ptr<shard::ShardedMatrix> sharded =
        registry_.sharded(matrix);
    for (Request& req : batch) {
        auto& w = std::get<SpaddWork>(req.work);
        try {
            if (sharded) {
                // Per-shard merge straight off the shard masters; the
                // secondary operand still comes through the registry's
                // whole-matrix CSR view.
                const MatrixRegistry::EncodingPtr b =
                    registry_.encodedAs(w.other, eng::Format::kCsr);
                fmt::CooMatrix sum = sharded->spadd(
                    b->as<fmt::CsrMatrix>(),
                    compute_ == ComputeExec::kParallel ? &pool_
                                                       : nullptr);
                req.computed = Request::Clock::now();
                deliver(req, w, std::move(sum));
                continue;
            }
            const MatrixRegistry::EncodingPtr a =
                registry_.encodedAs(matrix, eng::Format::kCsr);
            const MatrixRegistry::EncodingPtr b =
                registry_.encodedAs(w.other, eng::Format::kCsr);
            eng::SparseMatrixAny sum = [&] {
                if (compute_ == ComputeExec::kParallel) {
                    exec::ParallelExec pe(pool_);
                    return eng::spadd(a->ref(), b->ref(), pe);
                }
                sim::NativeExec ne;
                return eng::spadd(a->ref(), b->ref(), ne);
            }();
            req.computed = Request::Clock::now();
            deliver(req, w, sum.as<fmt::CooMatrix>());
        } catch (const std::exception& ex) {
            failOne(req, Status(StatusCode::kInternal, ex.what()));
        }
    }
}

void
Pipeline::finish(std::uint64_t n, bool ok)
{
    static obs::Counter& completed =
        obs::MetricsRegistry::global().counter(
            "smash_pipeline_requests_total{result=\"completed\"}");
    static obs::Counter& failed =
        obs::MetricsRegistry::global().counter(
            "smash_pipeline_requests_total{result=\"failed\"}");
    (ok ? completed : failed).add(n);
    if (!ok)
        stats_.failed.fetch_add(n, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    SMASH_CHECK(inflight_ >= n, "pipeline accounting underflow");
    inflight_ -= n;
    if (inflight_ == 0)
        idle_.notify_all();
}

void
Pipeline::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inflight_ == 0; });
}

bool
Pipeline::drainFor(std::chrono::microseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return idle_.wait_for(lock, timeout,
                          [this] { return inflight_ == 0; });
}

void
Pipeline::noteProgress()
{
    // seq_cst on the bump and the waiter check (and on their
    // counterparts in drainWait): with weaker orders this is the
    // classic store-buffering shape, where this thread could miss
    // the waiter AND the waiter miss the bump — a lost wakeup.
    progress_.fetch_add(1);
    if (drain_waiters_.load() == 0)
        return; // nobody draining: skip the lock entirely
    // Serialize with the waiter: it re-reads progress_ under
    // mutex_ before every sleep, so either it sees this bump there
    // or it is already waiting and this notify lands.
    {
        std::lock_guard<std::mutex> lock(mutex_);
    }
    idle_.notify_all();
}

bool
Pipeline::drainWait(std::uint64_t& seen)
{
    std::unique_lock<std::mutex> lock(mutex_);
    drain_waiters_.fetch_add(1);
    idle_.wait(lock, [this, &seen] {
        return inflight_ == 0 || progress_.load() != seen;
    });
    drain_waiters_.fetch_sub(1);
    if (inflight_ == 0)
        return true;
    seen = progress_.load();
    return false;
}

} // namespace smash::serve
