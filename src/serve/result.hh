/**
 * @file
 * The serving API's status model: every typed request resolves to a
 * serve::Result<T> — a Status plus, when the status is kOk, the
 * operation's value. No exception crosses the serving API boundary;
 * validation failures come back as ready Results, runtime failures
 * travel through the request's future as non-kOk Results.
 *
 * Status codes:
 *   kOk               — the request completed; value() is populated
 *   kNotFound         — no matrix registered under the given name
 *   kInvalidOperand   — operand shape/length does not fit the matrix
 *   kOverloaded       — admission denied (kFailFast at capacity)
 *   kDeadlineExceeded — deadline passed while queued or blocked
 *   kShuttingDown     — session closed before the request ran
 *   kInternal         — a stage failed (conversion/compute error)
 *   kQuotaExceeded    — the tenant's rate or in-flight quota denied
 *                       the request (TenantGovernor, before the
 *                       session's admission gate)
 */

#ifndef SMASH_SERVE_RESULT_HH
#define SMASH_SERVE_RESULT_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace smash::serve
{

/** Outcome class of one serving request. */
enum class StatusCode
{
    kOk,
    kNotFound,
    kInvalidOperand,
    kOverloaded,
    kDeadlineExceeded,
    kShuttingDown,
    kInternal,
    // Appended after kInternal so the wire encoding (u16 of this
    // enum) stays stable across protocol versions.
    kQuotaExceeded,
};

/** Short stable name ("ok", "not_found", ...). */
inline const char*
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kNotFound: return "not_found";
      case StatusCode::kInvalidOperand: return "invalid_operand";
      case StatusCode::kOverloaded: return "overloaded";
      case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
      case StatusCode::kShuttingDown: return "shutting_down";
      case StatusCode::kInternal: return "internal";
      case StatusCode::kQuotaExceeded: return "quota_exceeded";
    }
    return "unknown";
}

/** One status code plus a human-readable detail message. */
class Status
{
  public:
    /** Default: kOk with no message. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "code: message" (or just "ok"). */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(serve::toString(code_)) + ": " + message_;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Status-or-value of one typed request. A Result is either kOk and
 * holds a T, or a non-kOk Status and holds nothing; value() on a
 * failed Result is a caller bug (FatalError), so callers check ok()
 * first — the error path is data, never control flow by exception.
 */
template <typename T>
class Result
{
  public:
    /** Success, owning the operation's value. */
    Result(T value) // NOLINT: implicit by design
        : value_(std::move(value))
    {}

    /** Failure; @p status must not be kOk. */
    Result(Status status) // NOLINT: implicit by design
        : status_(std::move(status))
    {
        SMASH_CHECK(!status_.ok(),
                    "a kOk Result must be built from a value");
    }

    bool ok() const { return status_.ok(); }
    const Status& status() const { return status_; }

    const T&
    value() const&
    {
        SMASH_CHECK(ok(), "value() on failed Result (",
                    status_.toString(), ")");
        return *value_;
    }

    T&
    value() &
    {
        SMASH_CHECK(ok(), "value() on failed Result (",
                    status_.toString(), ")");
        return *value_;
    }

    T&&
    value() &&
    {
        SMASH_CHECK(ok(), "value() on failed Result (",
                    status_.toString(), ")");
        return std::move(*value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace smash::serve

#endif // SMASH_SERVE_RESULT_HH
