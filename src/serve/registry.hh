/**
 * @file
 * MatrixRegistry: the serving layer's owner of named, mutable
 * matrices.
 *
 * put() registers a matrix under a name, runs the engine's §7.2.3
 * structure analysis once to pick its primary format, and keeps the
 * content as a canonical CSR *master copy*. Encodings are built
 * lazily from the master — the first encoded() call converts (the
 * cost fig20 shows can dominate short-running kernels) and later
 * calls return the cached object.
 *
 * Served matrices drift. The mutation API (applyUpdates /
 * replaceRows / scaleValues) applies deltas to the master,
 * invalidates every cached encoding (values changed), and feeds an
 * incremental StructureTracker. When enough structure has changed
 * (ReselectPolicy::minChangedFraction) and the profile has crossed
 * a §7.2.3 format boundary *decisively* (chooseFormatSticky's
 * hysteresis margin), the registry schedules one re-encode: through
 * the installed hook when a serving pipeline is attached (async, on
 * the shared ThreadPool), inline otherwise. runReencode() builds
 * the new encoding from a snapshot and swaps it in atomically.
 *
 * Ownership/threading contract: all entry points are thread-safe —
 * the name table and each slot are independently locked, and
 * mutations of one matrix serialize on its slot. encoded() returns
 * shared_ptr snapshots: a reader holds whatever epoch it fetched
 * for as long as it needs (in-flight requests keep computing on the
 * old encoding while a re-encode swaps the slot underneath), and
 * the last holder frees it. The hook is invoked with no slot lock
 * held, but under the registry's hook lock — clearing the hook
 * therefore waits out in-flight invocations, so a scheduler being
 * destroyed (a dying Session's pool) can never be called into after
 * its clearReencodeHook() returns.
 */

#ifndef SMASH_SERVE_REGISTRY_HH
#define SMASH_SERVE_REGISTRY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/matrix_any.hh"
#include "engine/profile.hh"
#include "formats/coo_matrix.hh"
#include "shard/sharded_matrix.hh"

namespace smash::serve
{

/** When drift re-selection fires (see MatrixRegistry). */
struct ReselectPolicy
{
    bool enabled = true;
    /** Structural changes since the last baseline, as a fraction of
     *  the current nnz, before the profile is even re-examined. */
    double minChangedFraction = 0.05;
    Index minChanged = 16; //!< absolute floor on that change count
    /** Hysteresis band on the §7.2.3 boundaries: leaving the
     *  current format must beat them by this margin. */
    double margin = 0.1;
};

/** Snapshot of one registered matrix (for stats and tooling). */
struct MatrixInfo
{
    eng::Format chosen;            //!< current primary format
    Index rows = 0;
    Index cols = 0;
    Index nnz = 0;
    std::size_t conversions = 0;   //!< encodings built so far
    std::size_t reselects = 0;     //!< drift-triggered format swaps
    std::uint64_t epoch = 0;       //!< bumped by every mutation
    bool reencodePending = false;  //!< a re-encode is scheduled
    std::vector<eng::Format> cached; //!< formats currently encoded
    /** Shard count for registerSharded() entries, 0 otherwise. For
     *  sharded entries `chosen` is shard 0's format and `cached`
     *  lists the distinct per-shard formats. */
    Index shards = 0;
};

/** What one mutation call changed and triggered. */
struct UpdateOutcome
{
    eng::MutationStats stats;       //!< entry-level change counts
    bool reencodeScheduled = false; //!< this call crossed a boundary
    /** Format the matrix is headed for: the pending re-encode's
     *  target, or the current primary when none is pending. */
    eng::Format target = eng::Format::kCsr;
};

/** Named-matrix store: cached encodings + drift-aware reselection. */
class MatrixRegistry
{
  public:
    /** Reader's handle on one encoding epoch. */
    using EncodingPtr = std::shared_ptr<const eng::SparseMatrixAny>;
    /** Re-encode scheduler: must eventually call runReencode(name)
     *  (the serving pipeline posts it onto the thread pool). */
    using ReencodeHook =
        std::function<void(const std::string& name, eng::Format target)>;

    MatrixRegistry() = default;
    MatrixRegistry(const MatrixRegistry&) = delete;
    MatrixRegistry& operator=(const MatrixRegistry&) = delete;

    /**
     * Register @p coo under @p name (must be unused) and analyze
     * its structure once to choose the primary format. The content
     * is canonicalized into the CSR master copy; no encoding is
     * built yet.
     * @return the chosen format
     */
    eng::Format put(const std::string& name, fmt::CooMatrix coo);
    eng::Format put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format);
    eng::Format put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format,
                    const eng::SparseMatrixAny::BuildOptions& build);

    /**
     * Register @p coo under @p name as a shard::ShardedMatrix
     * row-partitioned into @p shards nnz-balanced bands, each with
     * its own format selection, plan cache, drift detector, and
     * NUMA placement. Requests route to the sharded scatter–gather
     * paths transparently; mutations route deltas to the owning
     * shard, and drift re-encodes run per shard (through the same
     * async hook as whole-matrix re-encodes).
     * @return shard 0's format (the entry's "primary")
     */
    eng::Format registerSharded(const std::string& name,
                                fmt::CooMatrix coo, Index shards);
    eng::Format registerSharded(
        const std::string& name, fmt::CooMatrix coo, Index shards,
        const eng::SparseMatrixAny::BuildOptions& build);

    /** The entry's ShardedMatrix, or null when @p name was
     *  registered unsharded. */
    std::shared_ptr<shard::ShardedMatrix>
    sharded(const std::string& name) const;

    bool contains(const std::string& name) const;
    Index rows(const std::string& name) const;
    Index cols(const std::string& name) const;

    /** Current primary format (put()-time choice until a
     *  drift-triggered re-encode swaps it). */
    eng::Format format(const std::string& name) const;

    /**
     * The primary encoding; converts on first use, cached until the
     * next mutation or format swap. The returned shared_ptr pins
     * that epoch's object for as long as the caller holds it.
     */
    EncodingPtr encoded(const std::string& name);

    /** Encoding in an explicit format (same caching contract). */
    EncodingPtr encodedAs(const std::string& name, eng::Format format);

    /**
     * The primary encoding if (and only if) it is already built —
     * never converts; returns null on a cold slot. The serving
     * pipeline's fast path: a cached matrix skips the async
     * prepare hop entirely, so steady-state requests reach their
     * batcher inline, in submission order.
     */
    EncodingPtr encodedIfCached(const std::string& name);

    /** encodedIfCached() for an explicit format. */
    EncodingPtr encodedAsIfCached(const std::string& name,
                                  eng::Format format);

    /**
     * Mutation API. Each call applies to the CSR master under the
     * slot lock, invalidates the cached encodings, updates the
     * incremental profile, and runs the drift detector; results
     * served afterwards reflect the new content (the next encoded()
     * call rebuilds in the current format).
     */
    UpdateOutcome applyUpdates(const std::string& name,
                               fmt::CooMatrix deltas);
    UpdateOutcome replaceRows(const std::string& name,
                              const std::vector<Index>& rows,
                              fmt::CooMatrix replacement);
    UpdateOutcome scaleValues(const std::string& name, Value factor);

    /** Incrementally maintained structural profile. */
    eng::StructureStats profile(const std::string& name) const;

    /**
     * Execute the pending re-encode for @p name (no-op when none is
     * pending): snapshot the master, build the target encoding
     * outside the lock, and swap it in atomically if no mutation
     * intervened (retrying a few times when one did). This is what
     * the hook must eventually invoke; with no hook installed the
     * registry calls it inline from the mutating thread.
     */
    void runReencode(const std::string& name);

    /**
     * Install (or clear, with nullptr) the re-encode scheduler.
     * serve::Session installs one that posts onto its pipeline.
     * @p owner tags the installation so clearReencodeHook() from a
     * stale owner cannot wipe a newer session's hook.
     */
    void setReencodeHook(ReencodeHook hook,
                         const void* owner = nullptr);

    /**
     * Clear the hook only if @p owner still owns it (a destroyed
     * session must not detach its successor's scheduler). Blocks
     * until any in-flight hook invocation has returned: after this
     * call, no mutation — however far past its drift detection —
     * can reach the owner's pipeline again.
     */
    void clearReencodeHook(const void* owner);

    /** Policy for every registered matrix (tunable at runtime). */
    void setReselectPolicy(const ReselectPolicy& policy);

    /** Conversions performed so far for @p name. */
    std::size_t conversions(const std::string& name) const;
    /** Drift-triggered format swaps completed so far. */
    std::size_t reselects(const std::string& name) const;

    MatrixInfo info(const std::string& name) const;
    std::vector<std::string> names() const;

  private:
    struct Slot
    {
        fmt::CsrMatrix master;     //!< canonical content, mutable
        /** Set for registerSharded() entries; the master above then
         *  stays empty (the shards own the content) and encodings
         *  in this map are whole-matrix materializations built from
         *  the concatenated shard slices (the secondary-operand
         *  path, e.g. SpAdd's CSR view). */
        std::shared_ptr<shard::ShardedMatrix> sharded;
        eng::Format chosen;
        eng::SparseMatrixAny::BuildOptions build;
        eng::StructureTracker profile;
        /** Guards everything above and below; held across a
         *  conversion so racing requests build each encoding
         *  exactly once, released while a re-encode builds. */
        mutable std::mutex mutex;
        std::map<eng::Format, EncodingPtr> encodings;
        std::size_t conversions = 0;
        std::size_t reselects = 0;
        std::uint64_t epoch = 0;
        bool reencodePending = false;
        eng::Format pendingTarget = eng::Format::kCsr;
    };

    Slot& slot(const std::string& name) const;
    /** Find-or-build one encoding; s.mutex must be held. */
    EncodingPtr encodedLocked(Slot& s, eng::Format format);
    /** Shared put() tail: build and insert one slot (name unused). */
    eng::Format insertSlot(const std::string& name,
                           fmt::CsrMatrix master,
                           eng::StructureTracker profile,
                           eng::Format format,
                           const eng::SparseMatrixAny::BuildOptions&
                               build);
    /** Shared mutation tail: bump the epoch, drop stale encodings,
     *  and run the drift detector. Returns whether this call
     *  scheduled the re-encode — the caller fires it through
     *  fireReencode() after the slot lock is released. */
    bool finishMutation(Slot& s, bool structural, UpdateOutcome& out);
    /** The reselect policy as the shard layer's drift gate. */
    shard::DriftPolicy shardPolicy() const;
    /** Shared tail of the sharded mutation paths: fold the shard
     *  outcome into @p out and invalidate the slot's whole-matrix
     *  materializations (s.mutex must be held). Returns whether the
     *  caller must fire the re-encode hook. */
    bool finishShardedMutation(Slot& s,
                               const shard::ShardMutationOutcome& so,
                               UpdateOutcome& out);
    /** Dispatch one scheduled re-encode: through the installed hook
     *  (invoked under hook_mutex_, so clearReencodeHook() blocks
     *  until the invocation finishes — the hook target can never be
     *  torn down mid-call), inline otherwise. */
    void fireReencode(const std::string& name, eng::Format target);

    mutable std::mutex mutex_; //!< guards the name table + policy
    std::unordered_map<std::string, std::unique_ptr<Slot>> slots_;
    /** Guards the hook pair below and serializes hook invocation
     *  against install/clear: held while the hook runs, so a
     *  cleared hook has provably finished every invocation when
     *  clearReencodeHook() returns. */
    mutable std::mutex hook_mutex_;
    ReencodeHook hook_;
    const void* hookOwner_ = nullptr;
    ReselectPolicy policy_;
};

} // namespace smash::serve

#endif // SMASH_SERVE_REGISTRY_HH
