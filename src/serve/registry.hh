/**
 * @file
 * MatrixRegistry: the serving layer's owner of named matrices.
 *
 * put() registers a canonical COO matrix under a name and runs the
 * engine's §7.2.3-style structure analysis once to pick its primary
 * format. Encodings are built lazily — the first encoded() call
 * converts (that is the pipeline's encode/convert stage, the cost
 * fig20 shows can dominate short-running kernels) and every later
 * call returns the cached object, so a matrix is converted at most
 * once per requested format for its lifetime.
 *
 * Thread-safe: the name table and each slot's encoding cache are
 * independently locked, so conversions of different matrices
 * proceed concurrently while two racing requests for the same
 * (matrix, format) pair produce exactly one conversion. Returned
 * references stay valid for the registry's lifetime (encodings are
 * never evicted).
 */

#ifndef SMASH_SERVE_REGISTRY_HH
#define SMASH_SERVE_REGISTRY_HH

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/matrix_any.hh"
#include "formats/coo_matrix.hh"

namespace smash::serve
{

/** Snapshot of one registered matrix (for stats and tooling). */
struct MatrixInfo
{
    eng::Format chosen;            //!< auto- or caller-selected format
    Index rows = 0;
    Index cols = 0;
    Index nnz = 0;
    std::size_t conversions = 0;   //!< encodings built so far
    std::vector<eng::Format> cached; //!< formats currently encoded
};

/** Named-matrix store with one-time selection and cached encodings. */
class MatrixRegistry
{
  public:
    MatrixRegistry() = default;
    MatrixRegistry(const MatrixRegistry&) = delete;
    MatrixRegistry& operator=(const MatrixRegistry&) = delete;

    /**
     * Register @p coo under @p name (must be unused) and analyze
     * its structure once to choose the primary format. The matrix
     * is canonicalized if needed; no encoding is built yet.
     * @return the chosen format
     */
    eng::Format put(const std::string& name, fmt::CooMatrix coo);
    eng::Format put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format);
    eng::Format put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format,
                    const eng::SparseMatrixAny::BuildOptions& build);

    bool contains(const std::string& name) const;
    Index rows(const std::string& name) const;
    Index cols(const std::string& name) const;

    /** Primary format chosen at put() time. */
    eng::Format format(const std::string& name) const;

    /**
     * The primary encoding; converts on first use, cached after.
     * The reference stays valid for the registry's lifetime.
     */
    const eng::SparseMatrixAny& encoded(const std::string& name);

    /** Encoding in an explicit format (same caching contract). */
    const eng::SparseMatrixAny& encodedAs(const std::string& name,
                                          eng::Format format);

    /** Conversions performed so far for @p name. */
    std::size_t conversions(const std::string& name) const;

    MatrixInfo info(const std::string& name) const;
    std::vector<std::string> names() const;

  private:
    struct Slot
    {
        fmt::CooMatrix coo;
        eng::Format chosen;
        eng::SparseMatrixAny::BuildOptions build;
        /** Guards encodings/conversions; held across a conversion
         *  so racing requests build each encoding exactly once. */
        mutable std::mutex mutex;
        std::map<eng::Format, eng::SparseMatrixAny> encodings;
        std::size_t conversions = 0;
    };

    Slot& slot(const std::string& name) const;

    mutable std::mutex mutex_; //!< guards the name table only
    std::unordered_map<std::string, std::unique_ptr<Slot>> slots_;
};

} // namespace smash::serve

#endif // SMASH_SERVE_REGISTRY_HH
