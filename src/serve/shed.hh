/**
 * @file
 * serve::OverloadShedder — the graceful-degradation ladder.
 *
 * Under sustained overload a session stops serving its cheapest
 * traffic first instead of letting every class time out together.
 * The ladder has four levels, each shedding one more priority
 * class (shed requests resolve to kOverloaded inline, so retrying
 * clients back off):
 *
 *   level 0  admit everything (normal operation)
 *   level 1  shed kBatch
 *   level 2  shed kBatch + kNormal
 *   level 3  shed everything, kHigh included (blackout)
 *
 * Two signals feed the level decision, combined as a pressure
 * score (the worse one wins):
 *
 *   in-flight fraction — current admitted requests over the
 *       session's maxInflight cap, against ShedOptions::inflightHigh;
 *   queue-latency EWMA — an exponentially weighted average of each
 *       delivered request's queue-side time (admit + prepare +
 *       batch wait), fed by the pipeline's deliver stage, against
 *       ShedOptions::queueTarget.
 *
 * "Sustained" is enforced by stepping: the ladder moves at most
 * one level per ShedOptions::hold interval, up when the score is
 * >= 1, down when it falls under ShedOptions::stepDownRatio
 * (hysteresis, so the level doesn't flap around the threshold).
 * While nothing is delivered (e.g. at level 3, when everything is
 * shed), the EWMA decays geometrically per hold interval — a
 * blackout always steps back down once pressure is gone rather
 * than latching on its own stale signal.
 *
 * The current level is exported as the gauge `smash_shed_level`
 * (brownout visible before blackout), sheds as
 * `smash_shed_total{priority=...}`. Disabled (queueTarget == 0 and
 * no force) the shedder admits everything at zero cost beyond one
 * branch.
 */

#ifndef SMASH_SERVE_SHED_HH
#define SMASH_SERVE_SHED_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/types.hh"
#include "serve/request.hh"

namespace smash::serve
{

/** Tuning of the degradation ladder (SessionOptions::shed). */
struct ShedOptions
{
    /** Queue-latency EWMA target; 0 disables the ladder (it then
     *  only reacts to forceLevel()). */
    std::chrono::microseconds queueTarget{0};
    /** In-flight fraction (of the session's maxInflight) treated
     *  as full pressure. Ignored when the session is unbounded. */
    double inflightHigh = 0.9;
    /** Score below which the ladder steps down (hysteresis gap
     *  between this and the step-up threshold of 1.0). */
    double stepDownRatio = 0.7;
    /** Minimum dwell per level: the ladder moves at most one level
     *  per hold interval in either direction. */
    std::chrono::microseconds hold{2000};
    /** EWMA smoothing factor per delivered sample. */
    double alpha = 0.2;
};

/** Priority-ordered load shedding for one Session. */
class OverloadShedder
{
  public:
    OverloadShedder(const ShedOptions& options, Index max_inflight);

    OverloadShedder(const OverloadShedder&) = delete;
    OverloadShedder& operator=(const OverloadShedder&) = delete;

    /** The ladder can change levels (config or operator force). */
    bool
    enabled() const
    {
        return options_.queueTarget.count() > 0 ||
            forced_.load(std::memory_order_relaxed) >= 0;
    }

    /** Feed one delivered request's queue-side latency (pipeline
     *  deliver stage). */
    void noteQueueLatency(std::uint64_t us);

    /** Feed the session's current in-flight count (submit path). */
    void
    noteInflight(Index inflight)
    {
        inflight_.store(inflight, std::memory_order_relaxed);
    }

    /** Re-evaluate the ladder and decide @p priority's fate: true
     *  admits, false sheds (caller answers kOverloaded). */
    bool admit(Priority priority);

    /** Current ladder level, 0..3. */
    int
    level() const
    {
        return level_.load(std::memory_order_relaxed);
    }

    /** Operator/test override: pin the ladder to @p level (0..3);
     *  -1 returns to automatic. */
    void forceLevel(int level);

    /** Requests shed so far (all priorities). */
    std::uint64_t
    shedTotal() const
    {
        return shed_.load(std::memory_order_relaxed);
    }

    /** Current queue-latency EWMA in microseconds (probe). */
    double queueEwmaUs() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** Step the ladder toward the current score (mutex_ held). */
    void reevaluate(Clock::time_point now);
    void publishLevel(int level);

    const ShedOptions options_;
    const Index max_inflight_;
    std::atomic<Index> inflight_{0};
    std::atomic<int> level_{0};
    std::atomic<int> forced_{-1};
    std::atomic<std::uint64_t> shed_{0};

    mutable std::mutex mutex_;
    double ewma_us_ = 0;           //!< guarded by mutex_
    Clock::time_point last_step_{}; //!< guarded by mutex_
    Clock::time_point last_sample_{}; //!< guarded by mutex_
};

} // namespace smash::serve

#endif // SMASH_SERVE_SHED_HH
