#include "serve/tenant.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace smash::serve
{

namespace
{

obs::Counter&
rejectCounter(bool rate)
{
    if (rate) {
        static obs::Counter& c = obs::MetricsRegistry::global().counter(
            "smash_tenant_rejects_total{reason=\"rate\"}");
        return c;
    }
    static obs::Counter& c = obs::MetricsRegistry::global().counter(
        "smash_tenant_rejects_total{reason=\"inflight\"}");
    return c;
}

obs::Gauge&
tenantInflightGauge()
{
    static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
        "smash_tenant_inflight");
    return g;
}

} // namespace

TenantGovernor::TenantGovernor(const TenantQuota& defaults)
    : defaults_(defaults)
{
}

double
TenantGovernor::burstOf(const TenantQuota& quota)
{
    if (quota.burst > 0)
        return quota.burst;
    return std::max(quota.ratePerSec, 1.0);
}

void
TenantGovernor::refill(TenantState& state, Clock::time_point now)
{
    if (state.quota.ratePerSec <= 0)
        return;
    const double dt =
        std::chrono::duration<double>(now - state.lastRefill).count();
    if (dt > 0) {
        state.tokens = std::min(burstOf(state.quota),
                                state.tokens +
                                    dt * state.quota.ratePerSec);
        state.lastRefill = now;
    }
}

TenantGovernor::TenantState&
TenantGovernor::stateLocked(const std::string& tenant)
{
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        TenantState state;
        state.quota = defaults_;
        state.tokens = burstOf(state.quota);
        state.lastRefill = Clock::now();
        it = tenants_.emplace(tenant, state).first;
    }
    return it->second;
}

void
TenantGovernor::setQuota(const std::string& tenant,
                         const TenantQuota& quota)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TenantState& state = stateLocked(tenant);
    state.quota = quota;
    state.tokens = burstOf(quota);
    state.lastRefill = Clock::now();
}

TenantGovernor::Admitted
TenantGovernor::admit(const std::string& tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TenantState& state = stateLocked(tenant);
    refill(state, Clock::now());
    if (state.quota.ratePerSec > 0 && state.tokens < 1.0) {
        rejects_.fetch_add(1, std::memory_order_relaxed);
        rejectCounter(/*rate=*/true).inc();
        return {nullptr,
                Status(StatusCode::kQuotaExceeded,
                       "tenant '" + tenant + "' rate limit (" +
                           std::to_string(state.quota.ratePerSec) +
                           " req/s)")};
    }
    if (state.quota.maxInflight > 0 &&
        state.inflight >= state.quota.maxInflight) {
        rejects_.fetch_add(1, std::memory_order_relaxed);
        rejectCounter(/*rate=*/false).inc();
        return {nullptr,
                Status(StatusCode::kQuotaExceeded,
                       "tenant '" + tenant + "' in-flight limit (" +
                           std::to_string(state.quota.maxInflight) +
                           ")")};
    }
    if (state.quota.ratePerSec > 0)
        state.tokens -= 1.0;
    ++state.inflight;
    tenantInflightGauge().add(1);
    // The ticket returns the slot when the request's completion
    // resolves — whichever path (delivery, expiry, shed, shutdown)
    // the envelope dies on.
    std::shared_ptr<void> ticket(
        new std::string(tenant), [this](void* p) {
            auto* name = static_cast<std::string*>(p);
            release(*name);
            delete name;
        });
    return {std::move(ticket), Status()};
}

void
TenantGovernor::release(const std::string& tenant)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = tenants_.find(tenant);
        if (it != tenants_.end() && it->second.inflight > 0)
            --it->second.inflight;
    }
    tenantInflightGauge().add(-1);
}

Index
TenantGovernor::inflightOf(const std::string& tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.inflight;
}

double
TenantGovernor::tokensOf(const std::string& tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return burstOf(defaults_);
    TenantState state = it->second;
    refill(state, Clock::now());
    return state.quota.ratePerSec > 0 ? state.tokens
                                      : burstOf(state.quota);
}

} // namespace smash::serve
