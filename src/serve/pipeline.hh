/**
 * @file
 * The serving layer's async pipeline. Each request flows through
 * three stages, every one a task posted to the shared ThreadPool:
 *
 *   encode/convert — resolve the encodings the request's op class
 *       needs through the registry (first touch converts, later
 *       touches hit the cache) and hand the request to the batcher;
 *   compute        — lower a flushed (matrix, op) batch onto one
 *       engine call: SpMV batches onto eng::spmvBatch, SpMM blocks
 *       concatenate onto eng::spmmBatch, SpAdd merges run per
 *       request through eng::spadd;
 *   reduce/deliver — scatter results back per request and fulfil
 *       the promises with serve::Result values.
 *
 * Because the stages are independent tasks, the expensive CSR→SMASH
 * conversion of one request overlaps the compute of another — the
 * fig20 conversion cost hides behind in-flight work instead of
 * serializing in front of it. Failures travel through the promises
 * as non-kOk Results (no exception crosses the serving boundary):
 * a stage failure resolves exactly the requests it was carrying
 * with kInternal, and a request whose deadline passed before its
 * batch computed resolves to kDeadlineExceeded.
 *
 * Delivery also records each request's submit→delivery latency into
 * a per-priority histogram (latency.hh) — the source of the
 * throughput bench's p50/p99 report.
 *
 * The pipeline is also the registry's re-encode scheduler: when a
 * mutated matrix drifts across a format boundary, postReencode()
 * runs the rebuild as one more pool task, so requests keep flowing
 * on the old encoding (their compute stages hold its shared_ptr)
 * until the registry swaps the new one in.
 *
 * Ownership/threading contract: the pipeline borrows the registry
 * and the pool — both must outlive it. All entry points are
 * thread-safe; drain() may be called from any thread and blocks
 * until the in-flight request count reaches zero.
 */

#ifndef SMASH_SERVE_PIPELINE_HH
#define SMASH_SERVE_PIPELINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "serve/batcher.hh"
#include "serve/latency.hh"
#include "serve/registry.hh"
#include "serve/request.hh"

namespace smash::serve
{

class OverloadShedder;

/** How the compute stage executes one batch. */
enum class ComputeExec
{
    kSerial,   //!< native serial kernel inside the worker task
               //!< (throughput mode: batches overlap across workers)
    kParallel, //!< ParallelExec spread over the same pool (latency
               //!< mode: one batch uses every worker)
};

/** Stage boundaries of one delivered request's lifetime (the index
 *  into PipelineStats::stageLatency). */
enum class PipelineStage
{
    kAdmit = 0,     //!< submit → admission ticket granted
    kPrepare = 1,   //!< admitted → encodings ready, in the batcher
    kBatchWait = 2, //!< enqueued → batch flushed
    kCompute = 3,   //!< flushed → kernel finished
    kDeliver = 4,   //!< computed → promise fulfilled
};

inline constexpr std::size_t kNumPipelineStages = 5;

inline const char*
toString(PipelineStage s)
{
    switch (s) {
      case PipelineStage::kAdmit: return "admit";
      case PipelineStage::kPrepare: return "prepare";
      case PipelineStage::kBatchWait: return "batch_wait";
      case PipelineStage::kCompute: return "compute";
      case PipelineStage::kDeliver: return "deliver";
    }
    return "unknown";
}

/** Monotonic counters published by the pipeline stages. */
struct PipelineStats
{
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};   //!< includes expired
    std::atomic<std::uint64_t> expired{0};  //!< kDeadlineExceeded
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> widestBatch{0};
    std::atomic<std::uint64_t> reencodes{0}; //!< drift re-encodes run

    /** Submit→delivery latency per priority class. */
    LatencyHistogram latencyByPriority[kNumPriorities];

    /** Per-stage latency of every delivered request (trace spans
     *  aggregated; the same samples feed the registry's
     *  smash_pipeline_stage_latency_us{stage=...} series). */
    LatencyHistogram stageLatency[kNumPipelineStages];

    const LatencyHistogram&
    latency(Priority p) const
    {
        return latencyByPriority[static_cast<std::size_t>(p)];
    }

    const LatencyHistogram&
    stage(PipelineStage s) const
    {
        return stageLatency[static_cast<std::size_t>(s)];
    }

    /** Queue-side time (admit + prepare + batch wait) of every
     *  delivered request, in microseconds. */
    std::uint64_t
    queueUs() const
    {
        return stageLatency[0].sumUs() + stageLatency[1].sumUs() +
            stageLatency[2].sumUs();
    }

    /** Compute-side time (compute + deliver) of every delivered
     *  request, in microseconds. */
    std::uint64_t
    computeUs() const
    {
        return stageLatency[3].sumUs() + stageLatency[4].sumUs();
    }
};

/** Stage bodies + in-flight accounting of the serving pipeline. */
class Pipeline
{
  public:
    /** @p shedder (optional) receives each delivered request's
     *  queue-side latency — the degradation ladder's EWMA signal. */
    Pipeline(MatrixRegistry& registry, exec::ThreadPool& pool,
             ComputeExec compute, OverloadShedder* shedder = nullptr);

    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    /** Waits for every in-flight request (see drain()). */
    ~Pipeline();

    /**
     * Stage 1 entry: post the encode/convert task for @p request,
     * which hands it to @p batcher on completion. @p batcher must
     * stay alive until drain() returns.
     */
    void postPrepare(const QueueKey& key, Request request,
                     Batcher& batcher);

    /** Stage 2 entry: post the compute task for a flushed batch. */
    void postCompute(const QueueKey& key, std::vector<Request> batch);

    /**
     * Maintenance entry: run the registry's pending re-encode for
     * @p matrix as a pool task (the ReencodeHook target). Falls
     * back to running inline when the pool is already shutting
     * down — the swap is perf-only, so correctness never depends
     * on where it executes.
     */
    void postReencode(const std::string& matrix);

    /**
     * Block until every submitted request has been delivered or
     * failed. Requests still parked in a batcher count as in-flight;
     * its deadline timer (or flushAll()) releases them. Callers that
     * own the batcher (Session::drain) use drainWait() and flush on
     * every progress event, so draining neither sits out a long
     * flush cap nor burns a core polling.
     */
    void drain();

    /** drain() bounded by @p timeout; true when idle was reached. */
    bool drainFor(std::chrono::microseconds timeout);

    /**
     * Event-driven drain step: block until the pipeline is idle
     * (returns true) or until progress — a request handed to its
     * batcher by the prepare stage — has advanced past @p seen
     * (returns false with @p seen updated). The caller flushes its
     * batcher between steps; waking only on progress events
     * replaces the old fixed-interval drainFor() polling loop.
     */
    bool drainWait(std::uint64_t& seen);

    const PipelineStats& stats() const { return stats_; }

  private:
    void computeBatch(const QueueKey& key,
                      std::vector<Request>& batch);
    void computeSpmv(const std::string& matrix,
                     std::vector<Request>& batch);
    void computeSpmm(const std::string& matrix,
                     std::vector<Request>& batch);
    void computeSpadd(const std::string& matrix,
                      std::vector<Request>& batch);
    /** Resolve one delivered request: value, latency, accounting. */
    template <typename T, typename Work>
    void deliver(Request& request, Work& work, T value);
    /** Record the request's per-stage latencies from its stamps. */
    void recordStages(const Request& request,
                      Request::Clock::time_point delivered);
    /** Fail every not-yet-resolved request in @p batch. */
    void failRemaining(std::vector<Request>& batch,
                       const Status& status);
    /** Resolve one request as failed (tolerating a moved-from
     *  promise) and account for it. */
    void failOne(Request& request, const Status& status);
    /** Mark @p n requests left the pipeline (delivered or failed). */
    void finish(std::uint64_t n, bool ok);

    MatrixRegistry& registry_;
    exec::ThreadPool& pool_;
    const ComputeExec compute_;
    OverloadShedder* const shedder_;
    PipelineStats stats_;

    /** A request reached its batcher (drainWait wake signal). */
    void noteProgress();
    /** Resolve the encodings @p key's op class needs through the
     *  registry — or, with @p cached_only, just probe for them
     *  (building nothing). False when one is missing (probe mode
     *  only; resolution always succeeds or throws). */
    bool resolveEncodings(const QueueKey& key, const Request& request,
                          bool cached_only);

    std::mutex mutex_;
    std::condition_variable idle_;
    std::uint64_t inflight_ = 0;
    /** Monotonic count of requests handed to a batcher. Atomic
     *  (seq_cst) so the hot path bumps it without mutex_; drainWait
     *  registers as a waiter before re-reading it, and the total
     *  order over the two atomics rules out the store-buffering
     *  lost-wakeup (see noteProgress()). */
    std::atomic<std::uint64_t> progress_{0};
    /** Drains currently blocked in drainWait(); noteProgress only
     *  takes the lock to notify when this is non-zero. */
    std::atomic<int> drain_waiters_{0};
};

} // namespace smash::serve

#endif // SMASH_SERVE_PIPELINE_HH
