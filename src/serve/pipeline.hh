/**
 * @file
 * The serving layer's async pipeline. Each request flows through
 * three stages, every one a task posted to the shared ThreadPool:
 *
 *   encode/convert — resolve the matrix's primary encoding through
 *       the registry (first touch converts, later touches hit the
 *       cache) and hand the request to the batcher;
 *   compute        — lower a flushed batch onto one eng::spmvBatch
 *       call (a literal eng::spmv when the batch is a single
 *       request);
 *   reduce/deliver — scatter the Y block back into per-request
 *       result vectors and fulfil the promises.
 *
 * Because the stages are independent tasks, the expensive CSR→SMASH
 * conversion of one request overlaps the compute of another — the
 * fig20 conversion cost hides behind in-flight work instead of
 * serializing in front of it. Errors travel through the promises:
 * a stage failure rejects exactly the requests it was carrying.
 *
 * The pipeline is also the registry's re-encode scheduler: when a
 * mutated matrix drifts across a format boundary, postReencode()
 * runs the rebuild as one more pool task, so requests keep flowing
 * on the old encoding (their compute stages hold its shared_ptr)
 * until the registry swaps the new one in.
 *
 * Ownership/threading contract: the pipeline borrows the registry
 * and the pool — both must outlive it. All entry points are
 * thread-safe; drain() may be called from any thread and blocks
 * until the in-flight request count reaches zero.
 */

#ifndef SMASH_SERVE_PIPELINE_HH
#define SMASH_SERVE_PIPELINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "serve/batcher.hh"
#include "serve/registry.hh"

namespace smash::serve
{

/** How the compute stage executes one batch. */
enum class ComputeExec
{
    kSerial,   //!< native serial kernel inside the worker task
               //!< (throughput mode: batches overlap across workers)
    kParallel, //!< ParallelExec spread over the same pool (latency
               //!< mode: one batch uses every worker)
};

/** Monotonic counters published by the pipeline stages. */
struct PipelineStats
{
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> widestBatch{0};
    std::atomic<std::uint64_t> reencodes{0}; //!< drift re-encodes run
};

/** Stage bodies + in-flight accounting of the serving pipeline. */
class Pipeline
{
  public:
    Pipeline(MatrixRegistry& registry, exec::ThreadPool& pool,
             ComputeExec compute);

    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    /** Waits for every in-flight request (see drain()). */
    ~Pipeline();

    /**
     * Stage 1 entry: post the encode/convert task for @p request,
     * which hands it to @p batcher on completion. @p batcher must
     * stay alive until drain() returns.
     */
    void postPrepare(const std::string& matrix, Request request,
                     Batcher& batcher);

    /** Stage 2 entry: post the compute task for a flushed batch. */
    void postCompute(const std::string& matrix,
                     std::vector<Request> batch);

    /**
     * Maintenance entry: run the registry's pending re-encode for
     * @p matrix as a pool task (the ReencodeHook target). Falls
     * back to running inline when the pool is already shutting
     * down — the swap is perf-only, so correctness never depends
     * on where it executes.
     */
    void postReencode(const std::string& matrix);

    /**
     * Block until every submitted request has been delivered or
     * failed. Requests still parked in a batcher count as in-flight;
     * its deadline timer (or flushAll()) releases them, so drain()
     * waits at most one deadline past the last queued request.
     */
    void drain();

    const PipelineStats& stats() const { return stats_; }

  private:
    void computeBatch(const std::string& matrix,
                      std::vector<Request>& batch);
    /** Mark @p n requests left the pipeline (delivered or failed). */
    void finish(std::uint64_t n, bool ok);

    MatrixRegistry& registry_;
    exec::ThreadPool& pool_;
    const ComputeExec compute_;
    PipelineStats stats_;

    std::mutex mutex_;
    std::condition_variable idle_;
    std::uint64_t inflight_ = 0;
};

} // namespace smash::serve

#endif // SMASH_SERVE_PIPELINE_HH
