/**
 * @file
 * Typed requests of the serving API.
 *
 * Public surface: SpmvRequest / SpmmRequest / SpaddRequest, each
 * carrying RequestOptions {priority, deadline, admission}. A request
 * names registered matrices; Session::submit() validates it, runs
 * admission control, and returns a future<Result<T>> (result.hh).
 *
 *   priority  — kHigh flushes its queue immediately (latency),
 *               kNormal waits up to the session's maxDelay,
 *               kBatch waits up to batchDelay (throughput);
 *   deadline  — relative budget covering admission blocking and
 *               queue wait; expired requests resolve to
 *               kDeadlineExceeded instead of computing (0 = none);
 *   admission — at capacity, kFailFast resolves to kOverloaded
 *               immediately, kBlock waits for a slot.
 *
 * Internal surface: Request is the envelope the batcher queues and
 * the pipeline computes — the op payload (a variant, one alternative
 * per op class) plus the promise, timing, and the admission ticket
 * whose destruction releases the in-flight slot. Batcher queues are
 * keyed by QueueKey = (matrix, op class), so SpMV coalescing never
 * mixes with SpMM blocks or SpAdd merges.
 */

#ifndef SMASH_SERVE_REQUEST_HH
#define SMASH_SERVE_REQUEST_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hh"
#include "formats/coo_matrix.hh"
#include "formats/dense_matrix.hh"
#include "serve/result.hh"

namespace smash::serve
{

/** Scheduling class of one request (array index: kHigh first). */
enum class Priority
{
    kHigh = 0,   //!< flush immediately; drags its queue along
    kNormal = 1, //!< flush within the session's maxDelay
    kBatch = 2,  //!< flush within batchDelay (deep coalescing)
};

inline constexpr std::size_t kNumPriorities = 3;

inline const char*
toString(Priority p)
{
    switch (p) {
      case Priority::kHigh: return "high";
      case Priority::kNormal: return "normal";
      case Priority::kBatch: return "batch";
    }
    return "unknown";
}

/** What happens when the session is at its in-flight limit. */
enum class Admission
{
    kFailFast, //!< resolve to kOverloaded immediately
    kBlock,    //!< wait for capacity (bounded by the deadline)
};

/** Per-request knobs, defaulting to the pre-redesign behaviour. */
struct RequestOptions
{
    Priority priority = Priority::kNormal;
    /** Admission-block + queue-wait budget; zero means none. */
    std::chrono::microseconds deadline{0};
    Admission admission = Admission::kFailFast;
};

/** y = A x against the registered matrix @p matrix. */
struct SpmvRequest
{
    std::string matrix;
    std::vector<Value> x;
    RequestOptions options{};
};

/**
 * C = A B for a dense multi-RHS block @p b (one column per RHS,
 * b.rows() == A.cols()); lowered onto the batched SpMM driver, with
 * concurrent blocks against the same matrix concatenated into one
 * traversal.
 */
struct SpmmRequest
{
    std::string matrix;
    fmt::DenseMatrix b;
    RequestOptions options{};
};

/** A + B over two registered matrices (canonical COO out). */
struct SpaddRequest
{
    std::string a;
    std::string b;
    RequestOptions options{};
};

/** Operation class of a batcher queue (variant index of Request). */
enum class OpClass
{
    kSpmv = 0,
    kSpmm = 1,
    kSpadd = 2,
};

inline const char*
toString(OpClass op)
{
    switch (op) {
      case OpClass::kSpmv: return "spmv";
      case OpClass::kSpmm: return "spmm";
      case OpClass::kSpadd: return "spadd";
    }
    return "unknown";
}

/** Batcher queue key: requests coalesce per (matrix, op class). */
struct QueueKey
{
    std::string matrix;
    OpClass op = OpClass::kSpmv;

    bool operator==(const QueueKey&) const = default;
};

struct QueueKeyHash
{
    std::size_t
    operator()(const QueueKey& k) const
    {
        return std::hash<std::string>()(k.matrix) ^
            (static_cast<std::size_t>(k.op) * 0x9e3779b97f4a7c15ull);
    }
};

/**
 * Completion channel of one in-flight request: the future's promise
 * by default, or — for remote completion, where the consumer is a
 * socket writer rather than an in-process future holder — a
 * callback. resolve() routes to whichever is set; the pipeline
 * always resolves *before* releasing the admission ticket, so
 * Session::close() returning guarantees every callback has returned
 * (the wire layer's teardown safety rests on that ordering).
 * Callbacks run on a pipeline worker (or inline on the submitting
 * thread for validation/admission failures) and must not throw —
 * an escaping exception is swallowed so it cannot take down the
 * worker or strand the batch's remaining requests.
 */
template <typename T>
struct Completion
{
    std::promise<Result<T>> result;
    std::function<void(Result<T>)> onComplete;

    void
    resolve(Result<T> r)
    {
        if (onComplete) {
            try {
                onComplete(std::move(r));
            } catch (...) {
                // Callbacks must not throw; see above.
            }
            return;
        }
        result.set_value(std::move(r));
    }
};

/** Payload + completion of one in-flight SpMV request. */
struct SpmvWork
{
    std::vector<Value> x;
    Completion<std::vector<Value>> done;
};

/** Payload + completion of one in-flight SpMM request. */
struct SpmmWork
{
    fmt::DenseMatrix b;
    Completion<fmt::DenseMatrix> done;
};

/** Payload + completion of one in-flight SpAdd request. */
struct SpaddWork
{
    std::string other; //!< the B operand's registry name
    Completion<fmt::CooMatrix> done;
};

/**
 * The internal envelope: one admitted request flowing through the
 * batcher and pipeline. Move-only (it owns the result promise). The
 * admission ticket is released when the envelope dies — wherever
 * that happens (delivery, expiry, or a failed stage).
 */
struct Request
{
    using Clock = std::chrono::steady_clock;

    RequestOptions options{};
    Clock::time_point submitted{};                      //!< latency base
    Clock::time_point expiry = Clock::time_point::max(); //!< absolute
    /** Trace stamps, set as the request crosses each pipeline
     *  stage boundary (obs: per-stage latency histograms and the
     *  queue-vs-compute breakdown in PipelineStats). */
    Clock::time_point admitted{};  //!< passed the admission gate
    Clock::time_point prepared{};  //!< encodings ready, handed over
    Clock::time_point flushed{};   //!< batch left its queue
    Clock::time_point computed{};  //!< kernel finished
    std::shared_ptr<void> ticket;                       //!< admission slot
    /** Promise already satisfied (pipeline-internal bookkeeping, so
     *  a failure sweep never double-resolves a delivered request). */
    bool resolved = false;
    std::variant<SpmvWork, SpmmWork, SpaddWork> work;

    OpClass
    op() const
    {
        return static_cast<OpClass>(work.index());
    }

    /** Resolve the completion (whichever op) with a failure status. */
    void
    fail(const Status& status)
    {
        std::visit([&](auto& w) { w.done.resolve(status); }, work);
        // Release the admission slot before the pipeline's finish()
        // accounting runs: teardown may proceed the instant the
        // in-flight count hits zero, so the gate must not be
        // touched by a ticket outliving that moment.
        ticket.reset();
    }
};

} // namespace smash::serve

#endif // SMASH_SERVE_REQUEST_HH
