/**
 * @file
 * serve::Session — the serving subsystem's front door.
 *
 * A Session wires a shared MatrixRegistry to its own ThreadPool,
 * Batcher, and Pipeline. submit() accepts one SpMV request (matrix
 * name + operand vector) and immediately returns a future; the
 * request then flows through the async pipeline: conversion (cached
 * in the registry), batching (coalesced with concurrent requests
 * against the same matrix), one batched multi-RHS compute, and
 * delivery. Minimal use:
 *
 *   serve::MatrixRegistry registry;
 *   registry.put("ranker", std::move(coo)); // auto-selects format
 *   serve::Session session(registry, {.threads = 8});
 *   auto y = session.submit("ranker", x);   // std::future
 *   use(y.get());                           // y = A x
 *
 * Sessions are thread-safe: any number of client threads may
 * submit() concurrently, and several Sessions may share one
 * registry (conversions are still performed once).
 *
 * A Session also installs itself as the registry's re-encode
 * scheduler: when a mutation (applyUpdates/replaceRows/scaleValues,
 * callable on the session or the registry) drifts a matrix across
 * a §7.2.3 format boundary, the rebuild runs asynchronously on this
 * session's pool while requests keep being served from the old
 * encoding. With several sessions on one registry the most recently
 * constructed session schedules re-encodes; destroying it falls
 * back to synchronous (inline) reselection.
 *
 * Ownership/threading contract: the Session borrows the registry,
 * which must outlive it, and owns its pool/batcher/pipeline. Do not
 * mutate matrices concurrently with destroying the session serving
 * them — the destructor clears the hook, but a mutation already
 * past the hook copy may still post onto the dying pool.
 */

#ifndef SMASH_SERVE_SESSION_HH
#define SMASH_SERVE_SESSION_HH

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "serve/batcher.hh"
#include "serve/pipeline.hh"
#include "serve/registry.hh"

namespace smash::serve
{

/** Tuning knobs of one Session. */
struct SessionOptions
{
    int threads = 4;     //!< pool workers running the stages
    Index maxBatch = 16; //!< coalesce up to this many requests
    std::chrono::microseconds maxDelay{200}; //!< deadline flush
    ComputeExec compute = ComputeExec::kSerial;
};

/** One serving endpoint over a (possibly shared) registry. */
class Session
{
  public:
    explicit Session(MatrixRegistry& registry,
                     const SessionOptions& options = {});

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /** Drains in-flight requests, then tears the pool down. */
    ~Session();

    /**
     * Submit y = A x against the registered matrix @p matrix
     * (@p x at logical length, matrix cols). Fails fast on an
     * unknown name or a wrong operand length; later failures
     * arrive through the future.
     */
    std::future<std::vector<Value>>
    submit(const std::string& matrix, std::vector<Value> x);

    /**
     * Mutation passthroughs: apply to the shared registry, with any
     * drift-triggered re-encode scheduled on this session's pool.
     * Safe to call while requests are in flight — they finish on
     * the encoding epoch they already hold.
     */
    UpdateOutcome applyUpdates(const std::string& matrix,
                               fmt::CooMatrix deltas);
    UpdateOutcome replaceRows(const std::string& matrix,
                              const std::vector<Index>& rows,
                              fmt::CooMatrix replacement);
    UpdateOutcome scaleValues(const std::string& matrix, Value factor);

    /** Flush partial batches and wait for every in-flight request. */
    void drain();

    const PipelineStats& stats() const { return pipeline_.stats(); }
    int threads() const { return pool_.size(); }
    Index maxBatch() const { return batcher_.maxBatch(); }

  private:
    MatrixRegistry& registry_;
    exec::ThreadPool pool_;
    Pipeline pipeline_;
    Batcher batcher_; //!< declared after the pipeline it flushes into
};

} // namespace smash::serve

#endif // SMASH_SERVE_SESSION_HH
