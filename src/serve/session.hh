/**
 * @file
 * serve::Session — the serving subsystem's front door.
 *
 * A Session wires a shared MatrixRegistry to its own ThreadPool,
 * Batcher, and Pipeline. submit() accepts a typed request (SpMV,
 * SpMM, or SpAdd — request.hh) and returns a future<Result<T>>;
 * admitted requests flow through the async pipeline: conversion
 * (cached in the registry), batching (coalesced per (matrix, op)
 * with concurrent requests), one batched compute, and delivery.
 * No exception crosses the API boundary — validation failures come
 * back as ready Results (kNotFound / kInvalidOperand), admission
 * failures as kOverloaded / kDeadlineExceeded / kShuttingDown, and
 * stage failures through the future as kInternal. Minimal use:
 *
 *   serve::MatrixRegistry registry;
 *   registry.put("ranker", std::move(coo)); // auto-selects format
 *   serve::Session session(registry, {.threads = 8});
 *   auto f = session.submit(serve::SpmvRequest{"ranker", x});
 *   serve::Result<std::vector<Value>> r = f.get();
 *   if (r.ok()) use(r.value());             // y = A x
 *
 * Admission control: SessionOptions::maxInflight and
 * maxInflightPerMatrix bound the requests between submit() and
 * delivery. At capacity, a request's RequestOptions decide —
 * kFailFast resolves to kOverloaded immediately; kBlock waits for
 * a slot (bounded by the request's deadline). Priorities shape the
 * batcher's flush order: kHigh flushes its queue now, kNormal
 * within maxDelay, kBatch within batchDelay.
 *
 * Sessions are thread-safe: any number of client threads may
 * submit() concurrently, and several Sessions may share one
 * registry (conversions are still performed once).
 *
 * A Session also installs itself as the registry's re-encode
 * scheduler: when a mutation (applyUpdates/replaceRows/scaleValues,
 * callable on the session or the registry) drifts a matrix across
 * a §7.2.3 format boundary, the rebuild runs asynchronously on this
 * session's pool while requests keep being served from the old
 * encoding. With several sessions on one registry the most recently
 * constructed session schedules re-encodes; destroying it falls
 * back to synchronous (inline) reselection.
 *
 * Ownership/threading contract: the Session borrows the registry,
 * which must outlive it, and owns its pool/batcher/pipeline.
 * Mutating matrices concurrently with destroying the session
 * serving them is safe: the registry invokes the hook under its
 * hook lock, and the destructor's detach blocks on that lock — a
 * mutation either schedules onto the still-alive pool or, once the
 * destructor holds the lock, falls back to inline re-encoding.
 */

#ifndef SMASH_SERVE_SESSION_HH
#define SMASH_SERVE_SESSION_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hh"
#include "serve/batcher.hh"
#include "serve/pipeline.hh"
#include "serve/registry.hh"
#include "serve/request.hh"
#include "serve/result.hh"
#include "serve/shed.hh"

namespace smash::serve
{

/** Tuning knobs of one Session. */
struct SessionOptions
{
    int threads = 4;     //!< pool workers running the stages
    Index maxBatch = 16; //!< coalesce up to this many requests
    std::chrono::microseconds maxDelay{200}; //!< kNormal flush cap
    /** kBatch flush cap; zero means 8 x maxDelay, and a value
     *  below maxDelay is raised to it. */
    std::chrono::microseconds batchDelay{0};
    ComputeExec compute = ComputeExec::kSerial;
    /** In-flight request caps (submit → delivery); 0 = unbounded. */
    Index maxInflight = 0;
    Index maxInflightPerMatrix = 0;
    /** Pin pool workers to CPUs (round-robin, Linux best-effort;
     *  see exec::ThreadPool::Options::pinWorkers). Keeps a served
     *  matrix's sticky partitions resident on the same cores. */
    bool pinWorkers = false;
    /** Graceful-degradation ladder (shed.hh): under sustained
     *  overload the session sheds kBatch first, then kNormal, kHigh
     *  last. Default-disabled (queueTarget == 0). */
    ShedOptions shed{};
};

/** One serving endpoint over a (possibly shared) registry. */
class Session
{
  public:
    /** Completion callbacks of the remote-delivery submit overloads
     *  (the network layer's socket writers). */
    using SpmvCallback =
        std::function<void(Result<std::vector<Value>>)>;
    using SpmmCallback = std::function<void(Result<fmt::DenseMatrix>)>;
    using SpaddCallback = std::function<void(Result<fmt::CooMatrix>)>;

    explicit Session(MatrixRegistry& registry,
                     const SessionOptions& options = {});

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /** close()s, drains in-flight requests, tears the pool down. */
    ~Session();

    /**
     * Submit y = A x. Validation failures (kNotFound for an unknown
     * matrix, kInvalidOperand for a wrong-length x) and admission
     * failures return as already-resolved futures; admitted
     * requests resolve when their batch computes.
     */
    std::future<Result<std::vector<Value>>> submit(SpmvRequest req);

    /**
     * Submit C = A B for a dense multi-RHS block (b.rows() must be
     * A's column count; at least one column). Concurrent blocks
     * against the same matrix concatenate into one traversal.
     */
    std::future<Result<fmt::DenseMatrix>> submit(SpmmRequest req);

    /** Submit A + B over two registered matrices (same shape). */
    std::future<Result<fmt::CooMatrix>> submit(SpaddRequest req);

    /**
     * Remote-completion submits: instead of a future, the result is
     * pushed through @p done — the channel the network front door
     * uses to write responses back to a socket. Semantics match the
     * future overloads exactly (same validation, admission, and
     * status model); validation/admission failures invoke @p done
     * inline on the calling thread, successes and pipeline failures
     * invoke it on a pipeline worker. @p done must not throw.
     *
     * Teardown contract (load-bearing for connection teardown): a
     * request's completion is always resolved *before* its admission
     * ticket is released, and close() returns only once the
     * admission gate is empty — so after close() returns, no
     * callback is still running and none will run. Callers may then
     * free whatever state their callbacks capture.
     */
    void submit(SpmvRequest req, SpmvCallback done);
    void submit(SpmmRequest req, SpmmCallback done);
    void submit(SpaddRequest req, SpaddCallback done);

    /**
     * Legacy SpMV entry — a shim over the typed path: statuses
     * surface as FatalError from future::get() instead of Results.
     */
    [[deprecated("use submit(SpmvRequest) and the Result status "
                 "model")]]
    std::future<std::vector<Value>>
    submit(const std::string& matrix, std::vector<Value> x);

    /**
     * Stop admitting: every later (and every blocked) submit
     * resolves to kShuttingDown, then in-flight work drains.
     * Idempotent; the destructor calls it.
     */
    void close();

    /**
     * Mutation passthroughs: apply to the shared registry, with any
     * drift-triggered re-encode scheduled on this session's pool.
     * Safe to call while requests are in flight — they finish on
     * the encoding epoch they already hold.
     */
    UpdateOutcome applyUpdates(const std::string& matrix,
                               fmt::CooMatrix deltas);
    UpdateOutcome replaceRows(const std::string& matrix,
                              const std::vector<Index>& rows,
                              fmt::CooMatrix replacement);
    UpdateOutcome scaleValues(const std::string& matrix, Value factor);

    /** Flush partial batches and wait for every in-flight request. */
    void drain();

    const PipelineStats& stats() const { return pipeline_.stats(); }
    /** Admission rejections (kOverloaded) so far. */
    std::uint64_t overloadRejects() const { return overloaded_.load(); }
    int threads() const { return pool_.size(); }
    Index maxBatch() const { return batcher_.maxBatch(); }
    const Batcher& batcher() const { return batcher_; }
    /** The degradation ladder (tests/operators force levels and
     *  read the current one through this). */
    OverloadShedder& shedder() { return shedder_; }
    const OverloadShedder& shedder() const { return shedder_; }

  private:
    /** Admission gate state (in-flight slot accounting). */
    struct Gate
    {
        std::mutex mutex;
        std::condition_variable freed;
        Index total = 0;
        std::unordered_map<std::string, Index> perMatrix;
        bool closing = false;
    };

    /** Outcome of admission: a ticket, or the status denying it. */
    struct Admitted
    {
        std::shared_ptr<void> ticket; //!< null when denied
        Status status;
    };

    /** kNotFound/kInvalidOperand checks shared by the submits. */
    Status validateMatrix(const std::string& name) const;
    /** Degradation-ladder gate (between precheck and admission):
     *  kOverloaded when the current shed level drops @p options'
     *  priority class. */
    Status shedCheck(const RequestOptions& options);
    /** Full pre-admission validation per op class (shared by the
     *  future- and callback-returning submit overloads). */
    Status precheck(const SpmvRequest& req) const;
    Status precheck(const SpmmRequest& req) const;
    Status precheck(const SpaddRequest& req) const;
    /** Take one in-flight slot (or block/deny per @p options). */
    Admitted admit(const std::string& matrix,
                   const RequestOptions& options,
                   Request::Clock::time_point expiry);
    /** Return one slot and wake blocked admitters. */
    void release(const std::string& matrix);
    /** Build the envelope and post stage 1. */
    template <typename Work>
    void launch(QueueKey key, const RequestOptions& options,
                Request::Clock::time_point now,
                Request::Clock::time_point expiry,
                std::shared_ptr<void> ticket, Work work);

    MatrixRegistry& registry_;
    const SessionOptions options_;
    exec::ThreadPool pool_;
    OverloadShedder shedder_; //!< before the pipeline feeding it
    Pipeline pipeline_;
    Batcher batcher_; //!< declared after the pipeline it flushes into
    Gate gate_;
    std::atomic<std::uint64_t> overloaded_{0};
    /** Mirror of gate_.total for the shedder's lock-free signal. */
    std::atomic<Index> inflight_now_{0};
};

} // namespace smash::serve

#endif // SMASH_SERVE_SESSION_HH
