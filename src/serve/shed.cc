#include "serve/shed.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace smash::serve
{

namespace
{

obs::Gauge&
shedLevelGauge()
{
    static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
        "smash_shed_level");
    return g;
}

obs::Counter&
shedCounter(Priority priority)
{
    switch (priority) {
      case Priority::kHigh: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_shed_total{priority=\"high\"}");
          return c;
      }
      case Priority::kNormal: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_shed_total{priority=\"normal\"}");
          return c;
      }
      default: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_shed_total{priority=\"batch\"}");
          return c;
      }
    }
}

/** The lowest ladder level that sheds @p priority: kBatch goes
 *  first (level 1), kHigh survives to the end (level 3). */
int
shedAtLevel(Priority priority)
{
    switch (priority) {
      case Priority::kBatch: return 1;
      case Priority::kNormal: return 2;
      case Priority::kHigh: return 3;
    }
    return 3;
}

} // namespace

OverloadShedder::OverloadShedder(const ShedOptions& options,
                                 Index max_inflight)
    : options_(options), max_inflight_(max_inflight)
{
}

void
OverloadShedder::noteQueueLatency(std::uint64_t us)
{
    if (options_.queueTarget.count() <= 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (last_sample_ == Clock::time_point{})
        ewma_us_ = static_cast<double>(us);
    else
        ewma_us_ = options_.alpha * static_cast<double>(us) +
            (1.0 - options_.alpha) * ewma_us_;
    last_sample_ = Clock::now();
}

double
OverloadShedder::queueEwmaUs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ewma_us_;
}

void
OverloadShedder::publishLevel(int level)
{
    const int prev = level_.exchange(level, std::memory_order_relaxed);
    if (prev != level)
        shedLevelGauge().add(level - prev);
}

void
OverloadShedder::forceLevel(int level)
{
    forced_.store(level, std::memory_order_relaxed);
    if (level >= 0) {
        publishLevel(std::min(level, 3));
    } else {
        // Back to automatic: restart from calm rather than keeping
        // the pinned level (the next reevaluate climbs if pressure
        // is still real).
        std::lock_guard<std::mutex> lock(mutex_);
        ewma_us_ = 0;
        last_sample_ = Clock::time_point{};
        last_step_ = Clock::now();
        publishLevel(0);
    }
}

void
OverloadShedder::reevaluate(Clock::time_point now)
{
    // No delivered sample for a while (possibly because the ladder
    // itself is shedding everything): decay the EWMA geometrically
    // per hold interval so a blackout cannot latch on stale signal.
    if (last_sample_ != Clock::time_point{} &&
        options_.hold.count() > 0) {
        while (now - last_sample_ >= options_.hold) {
            ewma_us_ *= 0.5;
            last_sample_ += options_.hold;
        }
    }

    double score = 0;
    if (options_.queueTarget.count() > 0)
        score = std::max(
            score,
            ewma_us_ /
                static_cast<double>(options_.queueTarget.count()));
    if (max_inflight_ > 0 && options_.inflightHigh > 0)
        score = std::max(
            score, static_cast<double>(inflight_.load(
                       std::memory_order_relaxed)) /
                (static_cast<double>(max_inflight_) *
                 options_.inflightHigh));

    const int level = level_.load(std::memory_order_relaxed);
    if (now - last_step_ < options_.hold)
        return; // dwell: at most one step per hold interval
    if (score >= 1.0 && level < 3) {
        publishLevel(level + 1);
        last_step_ = now;
    } else if (score < options_.stepDownRatio && level > 0) {
        publishLevel(level - 1);
        last_step_ = now;
    }
}

bool
OverloadShedder::admit(Priority priority)
{
    const int forced = forced_.load(std::memory_order_relaxed);
    int level;
    if (forced >= 0) {
        level = std::min(forced, 3);
    } else {
        if (options_.queueTarget.count() <= 0)
            return true; // ladder disabled
        std::lock_guard<std::mutex> lock(mutex_);
        reevaluate(Clock::now());
        level = level_.load(std::memory_order_relaxed);
    }
    if (level < shedAtLevel(priority))
        return true;
    shed_.fetch_add(1, std::memory_order_relaxed);
    shedCounter(priority).inc();
    return false;
}

} // namespace smash::serve
