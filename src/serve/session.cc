#include "serve/session.hh"

#include <utility>

#include "common/logging.hh"

namespace smash::serve
{

Session::Session(MatrixRegistry& registry, const SessionOptions& options)
    : registry_(registry), pool_(options.threads),
      pipeline_(registry, pool_, options.compute),
      batcher_(options.maxBatch, options.maxDelay,
               [this](const std::string& matrix,
                      std::vector<Request> batch) {
                   pipeline_.postCompute(matrix, std::move(batch));
               })
{}

Session::~Session()
{
    // Members tear down in reverse order (batcher, pipeline, pool),
    // but a stage-1 task still running on the pool may touch the
    // batcher — so drain everything first, while all parts live.
    drain();
}

std::future<std::vector<Value>>
Session::submit(const std::string& matrix, std::vector<Value> x)
{
    SMASH_CHECK(registry_.contains(matrix),
                "submit() against unregistered matrix '", matrix, "'");
    const Index cols = registry_.cols(matrix);
    SMASH_CHECK(static_cast<Index>(x.size()) == cols, "operand for '",
                matrix, "' has length ", x.size(), ", matrix has ",
                cols, " columns");
    Request request{std::move(x), {}};
    std::future<std::vector<Value>> future =
        request.result.get_future();
    pipeline_.postPrepare(matrix, std::move(request), batcher_);
    return future;
}

void
Session::drain()
{
    // Partial batches would otherwise wait out their deadline; the
    // explicit flush lets drain() finish as soon as compute does.
    batcher_.flushAll();
    pipeline_.drain();
}

} // namespace smash::serve
