#include "serve/session.hh"

#include <utility>

#include "common/logging.hh"

namespace smash::serve
{

Session::Session(MatrixRegistry& registry, const SessionOptions& options)
    : registry_(registry), pool_(options.threads),
      pipeline_(registry, pool_, options.compute),
      batcher_(options.maxBatch, options.maxDelay,
               [this](const std::string& matrix,
                      std::vector<Request> batch) {
                   pipeline_.postCompute(matrix, std::move(batch));
               })
{
    // Drift re-encodes of served matrices run as tasks on this
    // session's pool (latest-constructed session wins the hook
    // when several share the registry).
    registry_.setReencodeHook(
        [this](const std::string& matrix, eng::Format) {
            pipeline_.postReencode(matrix);
        },
        this);
}

Session::~Session()
{
    // Detach from the registry first: a mutation arriving during
    // teardown must not schedule work onto the dying pipeline. The
    // owner tag keeps this from wiping a newer session's hook on a
    // shared registry.
    registry_.clearReencodeHook(this);
    // Members tear down in reverse order (batcher, pipeline, pool),
    // but a stage-1 task still running on the pool may touch the
    // batcher — so drain everything first, while all parts live.
    drain();
}

std::future<std::vector<Value>>
Session::submit(const std::string& matrix, std::vector<Value> x)
{
    SMASH_CHECK(registry_.contains(matrix),
                "submit() against unregistered matrix '", matrix, "'");
    const Index cols = registry_.cols(matrix);
    SMASH_CHECK(static_cast<Index>(x.size()) == cols, "operand for '",
                matrix, "' has length ", x.size(), ", matrix has ",
                cols, " columns");
    Request request{std::move(x), {}};
    std::future<std::vector<Value>> future =
        request.result.get_future();
    pipeline_.postPrepare(matrix, std::move(request), batcher_);
    return future;
}

UpdateOutcome
Session::applyUpdates(const std::string& matrix, fmt::CooMatrix deltas)
{
    return registry_.applyUpdates(matrix, std::move(deltas));
}

UpdateOutcome
Session::replaceRows(const std::string& matrix,
                     const std::vector<Index>& rows,
                     fmt::CooMatrix replacement)
{
    return registry_.replaceRows(matrix, rows, std::move(replacement));
}

UpdateOutcome
Session::scaleValues(const std::string& matrix, Value factor)
{
    return registry_.scaleValues(matrix, factor);
}

void
Session::drain()
{
    // Partial batches would otherwise wait out their deadline; the
    // explicit flush lets drain() finish as soon as compute does.
    batcher_.flushAll();
    pipeline_.drain();
}

} // namespace smash::serve
