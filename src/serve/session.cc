#include "serve/session.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace smash::serve
{

namespace
{

/** Already-resolved future carrying a failure status. */
template <typename T>
std::future<Result<T>>
readyFuture(Status status)
{
    std::promise<Result<T>> promise;
    std::future<Result<T>> future = promise.get_future();
    promise.set_value(Result<T>(std::move(status)));
    return future;
}

Request::Clock::time_point
expiryOf(Request::Clock::time_point now, const RequestOptions& options)
{
    if (options.deadline.count() <= 0)
        return Request::Clock::time_point::max();
    return now + options.deadline;
}

std::chrono::microseconds
resolveBatchDelay(const SessionOptions& options)
{
    if (options.batchDelay.count() > 0)
        return std::max(options.batchDelay, options.maxDelay);
    return options.maxDelay * 8;
}

} // namespace

Session::Session(MatrixRegistry& registry, const SessionOptions& options)
    : registry_(registry), options_(options),
      pool_(exec::ThreadPool::Options{options.threads,
                                      options.pinWorkers}),
      shedder_(options.shed, options.maxInflight),
      pipeline_(registry, pool_, options.compute, &shedder_),
      batcher_(options.maxBatch, options.maxDelay,
               resolveBatchDelay(options),
               [this](const QueueKey& key, std::vector<Request> batch) {
                   pipeline_.postCompute(key, std::move(batch));
               })
{
    SMASH_CHECK(options_.maxInflight >= 0 &&
                    options_.maxInflightPerMatrix >= 0,
                "in-flight limits must be non-negative");
    // Drift re-encodes of served matrices run as tasks on this
    // session's pool (latest-constructed session wins the hook
    // when several share the registry).
    registry_.setReencodeHook(
        [this](const std::string& matrix, eng::Format) {
            pipeline_.postReencode(matrix);
        },
        this);
}

Session::~Session()
{
    // Detach from the registry first: the registry invokes the hook
    // under its hook lock, and clearReencodeHook() blocks on that
    // same lock — once it returns, no mutation can reach the dying
    // pipeline (later drifts fall back to inline re-encoding), and
    // anything already posted runs before the pool joins.
    registry_.clearReencodeHook(this);
    close();
}

Status
Session::validateMatrix(const std::string& name) const
{
    if (!registry_.contains(name))
        return Status(StatusCode::kNotFound,
                      "no matrix registered as '" + name + "'");
    return Status();
}

Status
Session::shedCheck(const RequestOptions& options)
{
    if (!shedder_.enabled())
        return Status();
    shedder_.noteInflight(
        inflight_now_.load(std::memory_order_relaxed));
    if (shedder_.admit(options.priority))
        return Status();
    overloaded_.fetch_add(1, std::memory_order_relaxed);
    // kOverloaded (not a new code): retrying clients already back
    // off on it, and to a caller "shed by the ladder" and "gate
    // full" are the same instruction — come back later.
    return Status(StatusCode::kOverloaded,
                  "shed at degradation level " +
                      std::to_string(shedder_.level()));
}

Session::Admitted
Session::admit(const std::string& matrix, const RequestOptions& options,
               Request::Clock::time_point expiry)
{
    std::unique_lock<std::mutex> lock(gate_.mutex);
    const auto full = [&] {
        if (options_.maxInflight > 0 &&
            gate_.total >= options_.maxInflight)
            return true;
        if (options_.maxInflightPerMatrix > 0) {
            auto it = gate_.perMatrix.find(matrix);
            if (it != gate_.perMatrix.end() &&
                it->second >= options_.maxInflightPerMatrix)
                return true;
        }
        return false;
    };
    for (;;) {
        if (gate_.closing)
            return {nullptr, Status(StatusCode::kShuttingDown,
                                    "session is closing")};
        if (!full())
            break;
        if (options.admission == Admission::kFailFast) {
            overloaded_.fetch_add(1, std::memory_order_relaxed);
            static obs::Counter& rejects =
                obs::MetricsRegistry::global().counter(
                    "smash_admission_rejects_total{reason="
                    "\"overloaded\"}");
            rejects.inc();
            return {nullptr,
                    Status(StatusCode::kOverloaded,
                           "in-flight limit reached for '" + matrix +
                               "'")};
        }
        if (expiry == Request::Clock::time_point::max()) {
            gate_.freed.wait(lock); // woken by release() or close()
            continue;
        }
        if (gate_.freed.wait_until(lock, expiry) ==
            std::cv_status::timeout) {
            if (gate_.closing)
                return {nullptr, Status(StatusCode::kShuttingDown,
                                        "session is closing")};
            if (full())
                return {nullptr,
                        Status(StatusCode::kDeadlineExceeded,
                               "deadline passed while blocked on "
                               "admission")};
            break;
        }
    }
    ++gate_.total;
    ++gate_.perMatrix[matrix];
    inflight_now_.store(gate_.total, std::memory_order_relaxed);
    static obs::Gauge& inflight =
        obs::MetricsRegistry::global().gauge(
            "smash_admission_inflight");
    inflight.add(1);
    // The ticket returns the slot when the envelope dies — at
    // delivery, expiry, or any failure path, without the pipeline
    // having to know about admission at all.
    std::shared_ptr<void> ticket(
        new std::string(matrix), [this](void* p) {
            auto* name = static_cast<std::string*>(p);
            release(*name);
            delete name;
        });
    return {std::move(ticket), Status()};
}

void
Session::release(const std::string& matrix)
{
    {
        std::lock_guard<std::mutex> lock(gate_.mutex);
        auto it = gate_.perMatrix.find(matrix);
        if (it != gate_.perMatrix.end() && --it->second == 0)
            gate_.perMatrix.erase(it);
        if (gate_.total > 0)
            --gate_.total;
        inflight_now_.store(gate_.total, std::memory_order_relaxed);
        // Notify while still holding the lock (teardown audit): the
        // close() loop can only observe total == 0 after acquiring
        // gate_.mutex, i.e. after this releaser has finished
        // notifying and unlocked — so a dying Session can never
        // destroy the condition variable out from under a
        // notify_all() still in flight on a pool worker.
        gate_.freed.notify_all();
    }
    static obs::Gauge& inflight =
        obs::MetricsRegistry::global().gauge(
            "smash_admission_inflight");
    inflight.add(-1);
}

template <typename Work>
void
Session::launch(QueueKey key, const RequestOptions& options,
                Request::Clock::time_point now,
                Request::Clock::time_point expiry,
                std::shared_ptr<void> ticket, Work work)
{
    Request envelope;
    envelope.options = options;
    envelope.submitted = now;
    envelope.expiry = expiry;
    // The admit stage ends here: the gate granted a ticket (after
    // blocking, for kBlock at capacity) and the envelope is built.
    envelope.admitted = Request::Clock::now();
    envelope.ticket = std::move(ticket);
    envelope.work = std::move(work);
    pipeline_.postPrepare(key, std::move(envelope), batcher_);
}

Status
Session::precheck(const SpmvRequest& req) const
{
    if (Status s = validateMatrix(req.matrix); !s.ok())
        return s;
    const Index cols = registry_.cols(req.matrix);
    if (static_cast<Index>(req.x.size()) != cols)
        return Status(
            StatusCode::kInvalidOperand,
            "operand for '" + req.matrix + "' has length " +
                std::to_string(req.x.size()) + ", matrix has " +
                std::to_string(cols) + " columns");
    return Status();
}

Status
Session::precheck(const SpmmRequest& req) const
{
    if (Status s = validateMatrix(req.matrix); !s.ok())
        return s;
    const Index cols = registry_.cols(req.matrix);
    if (req.b.rows() != cols)
        return Status(
            StatusCode::kInvalidOperand,
            "B block for '" + req.matrix + "' has " +
                std::to_string(req.b.rows()) + " rows, matrix has " +
                std::to_string(cols) + " columns");
    if (req.b.cols() < 1)
        return Status(StatusCode::kInvalidOperand,
                      "B block carries no right-hand sides");
    return Status();
}

Status
Session::precheck(const SpaddRequest& req) const
{
    if (Status s = validateMatrix(req.a); !s.ok())
        return s;
    if (Status s = validateMatrix(req.b); !s.ok())
        return s;
    if (registry_.rows(req.a) != registry_.rows(req.b) ||
        registry_.cols(req.a) != registry_.cols(req.b))
        return Status(StatusCode::kInvalidOperand,
                      "spadd operands '" + req.a + "' and '" + req.b +
                          "' have different shapes");
    return Status();
}

std::future<Result<std::vector<Value>>>
Session::submit(SpmvRequest req)
{
    const auto now = Request::Clock::now();
    const auto expiry = expiryOf(now, req.options);
    if (Status s = precheck(req); !s.ok())
        return readyFuture<std::vector<Value>>(std::move(s));
    if (Status s = shedCheck(req.options); !s.ok())
        return readyFuture<std::vector<Value>>(std::move(s));
    Admitted admitted = admit(req.matrix, req.options, expiry);
    if (!admitted.ticket)
        return readyFuture<std::vector<Value>>(
            std::move(admitted.status));
    SpmvWork work{std::move(req.x), {}};
    std::future<Result<std::vector<Value>>> future =
        work.done.result.get_future();
    launch(QueueKey{std::move(req.matrix), OpClass::kSpmv},
           req.options, now, expiry, std::move(admitted.ticket),
           std::move(work));
    return future;
}

void
Session::submit(SpmvRequest req, SpmvCallback done)
{
    const auto now = Request::Clock::now();
    const auto expiry = expiryOf(now, req.options);
    if (Status s = precheck(req); !s.ok()) {
        done(Result<std::vector<Value>>(std::move(s)));
        return;
    }
    if (Status s = shedCheck(req.options); !s.ok()) {
        done(Result<std::vector<Value>>(std::move(s)));
        return;
    }
    Admitted admitted = admit(req.matrix, req.options, expiry);
    if (!admitted.ticket) {
        done(Result<std::vector<Value>>(std::move(admitted.status)));
        return;
    }
    SpmvWork work{std::move(req.x), {}};
    work.done.onComplete = std::move(done);
    launch(QueueKey{std::move(req.matrix), OpClass::kSpmv},
           req.options, now, expiry, std::move(admitted.ticket),
           std::move(work));
}

std::future<Result<fmt::DenseMatrix>>
Session::submit(SpmmRequest req)
{
    const auto now = Request::Clock::now();
    const auto expiry = expiryOf(now, req.options);
    if (Status s = precheck(req); !s.ok())
        return readyFuture<fmt::DenseMatrix>(std::move(s));
    if (Status s = shedCheck(req.options); !s.ok())
        return readyFuture<fmt::DenseMatrix>(std::move(s));
    Admitted admitted = admit(req.matrix, req.options, expiry);
    if (!admitted.ticket)
        return readyFuture<fmt::DenseMatrix>(
            std::move(admitted.status));
    SpmmWork work{std::move(req.b), {}};
    std::future<Result<fmt::DenseMatrix>> future =
        work.done.result.get_future();
    launch(QueueKey{std::move(req.matrix), OpClass::kSpmm},
           req.options, now, expiry, std::move(admitted.ticket),
           std::move(work));
    return future;
}

void
Session::submit(SpmmRequest req, SpmmCallback done)
{
    const auto now = Request::Clock::now();
    const auto expiry = expiryOf(now, req.options);
    if (Status s = precheck(req); !s.ok()) {
        done(Result<fmt::DenseMatrix>(std::move(s)));
        return;
    }
    if (Status s = shedCheck(req.options); !s.ok()) {
        done(Result<fmt::DenseMatrix>(std::move(s)));
        return;
    }
    Admitted admitted = admit(req.matrix, req.options, expiry);
    if (!admitted.ticket) {
        done(Result<fmt::DenseMatrix>(std::move(admitted.status)));
        return;
    }
    SpmmWork work{std::move(req.b), {}};
    work.done.onComplete = std::move(done);
    launch(QueueKey{std::move(req.matrix), OpClass::kSpmm},
           req.options, now, expiry, std::move(admitted.ticket),
           std::move(work));
}

std::future<Result<fmt::CooMatrix>>
Session::submit(SpaddRequest req)
{
    const auto now = Request::Clock::now();
    const auto expiry = expiryOf(now, req.options);
    if (Status s = precheck(req); !s.ok())
        return readyFuture<fmt::CooMatrix>(std::move(s));
    if (Status s = shedCheck(req.options); !s.ok())
        return readyFuture<fmt::CooMatrix>(std::move(s));
    Admitted admitted = admit(req.a, req.options, expiry);
    if (!admitted.ticket)
        return readyFuture<fmt::CooMatrix>(std::move(admitted.status));
    SpaddWork work{std::move(req.b), {}};
    std::future<Result<fmt::CooMatrix>> future =
        work.done.result.get_future();
    launch(QueueKey{std::move(req.a), OpClass::kSpadd}, req.options,
           now, expiry, std::move(admitted.ticket), std::move(work));
    return future;
}

void
Session::submit(SpaddRequest req, SpaddCallback done)
{
    const auto now = Request::Clock::now();
    const auto expiry = expiryOf(now, req.options);
    if (Status s = precheck(req); !s.ok()) {
        done(Result<fmt::CooMatrix>(std::move(s)));
        return;
    }
    if (Status s = shedCheck(req.options); !s.ok()) {
        done(Result<fmt::CooMatrix>(std::move(s)));
        return;
    }
    Admitted admitted = admit(req.a, req.options, expiry);
    if (!admitted.ticket) {
        done(Result<fmt::CooMatrix>(std::move(admitted.status)));
        return;
    }
    SpaddWork work{std::move(req.b), {}};
    work.done.onComplete = std::move(done);
    launch(QueueKey{std::move(req.a), OpClass::kSpadd}, req.options,
           now, expiry, std::move(admitted.ticket), std::move(work));
}

std::future<std::vector<Value>>
Session::submit(const std::string& matrix, std::vector<Value> x)
{
    // Shim over the typed path: the adapter unwraps the Result,
    // rethrowing any failure as FatalError (the legacy contract's
    // only error channel). Launched async, not deferred, so the
    // returned future keeps the legacy wait_for()/wait_until()
    // behaviour (a deferred future never reports ready) — one
    // short-lived thread per call is fine for a deprecated path.
    return std::async(
        std::launch::async,
        [f = submit(SpmvRequest{matrix, std::move(x)})]() mutable {
            Result<std::vector<Value>> r = f.get();
            if (!r.ok())
                throw FatalError(r.status().toString());
            return std::move(r).value();
        });
}

void
Session::close()
{
    {
        std::lock_guard<std::mutex> lock(gate_.mutex);
        gate_.closing = true;
    }
    gate_.freed.notify_all(); // blocked admitters see kShuttingDown
    // Drain until the admission gate is empty too, not just the
    // pipeline: a submit that passed admit() holds a ticket
    // (gate_.total > 0, under the gate lock) until its envelope
    // resolves, but may not have reached postPrepare() yet — the
    // pipeline cannot see it. Waiting the gate out guarantees no
    // such straggler can touch the members being torn down.
    for (;;) {
        drain();
        std::unique_lock<std::mutex> lock(gate_.mutex);
        if (gate_.total == 0)
            return;
        gate_.freed.wait_for(lock, std::chrono::milliseconds(1));
    }
}

UpdateOutcome
Session::applyUpdates(const std::string& matrix, fmt::CooMatrix deltas)
{
    return registry_.applyUpdates(matrix, std::move(deltas));
}

UpdateOutcome
Session::replaceRows(const std::string& matrix,
                     const std::vector<Index>& rows,
                     fmt::CooMatrix replacement)
{
    return registry_.replaceRows(matrix, rows, std::move(replacement));
}

UpdateOutcome
Session::scaleValues(const std::string& matrix, Value factor)
{
    return registry_.scaleValues(matrix, factor);
}

void
Session::drain()
{
    // Partial batches would otherwise wait out their flush cap (up
    // to batchDelay); the explicit flush lets drain() finish as
    // soon as compute does. Flush on every progress event rather
    // than once: a request whose stage-1 task has not reached the
    // batcher yet would miss a single sweep and strand drain() on
    // the cap. drainWait() sleeps on the pipeline's condition
    // variable between events — no fixed-interval polling.
    std::uint64_t seen = 0;
    for (;;) {
        batcher_.flushAll();
        if (pipeline_.drainWait(seen))
            return;
    }
}

} // namespace smash::serve
