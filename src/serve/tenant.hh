/**
 * @file
 * serve::TenantGovernor — per-tenant quotas in front of the
 * admission gate.
 *
 * The network layer's kHello handshake names a tenant per
 * connection; every request on that connection is then charged to
 * the tenant, and the governor enforces two independent quotas
 * *shared across all of the tenant's connections*:
 *
 *   token bucket  — TenantQuota::ratePerSec requests/second with a
 *       burst depth of TenantQuota::burst tokens. Each admitted
 *       request consumes one token; an empty bucket answers
 *       kQuotaExceeded immediately (quota denials never block —
 *       the retrying client's backoff is the wait).
 *   in-flight cap — at most TenantQuota::maxInflight requests
 *       between admit and completion, across every connection the
 *       tenant holds. A slot is held by an RAII ticket and returns
 *       when the request's completion resolves.
 *
 * Order in the admission stack (conn.cc): per-connection in-flight
 * cap → tenant governor → session admission gate. A rejected
 * request never touches the session, so a noisy tenant cannot eat
 * gate slots that other tenants' admitted work needs.
 *
 * Connections that never send kHello are charged to the default
 * tenant "" under the same default quota. A zero-valued quota field
 * means "unlimited" for that dimension; a fully-zero TenantQuota
 * makes the governor a pass-through (it still counts in-flight for
 * the leak probes the chaos tests run).
 *
 * Thread-safety: all methods are safe from any thread; state is one
 * mutex-guarded map (quota decisions are control-plane work next to
 * a kernel invocation, so a single lock is not the bottleneck).
 */

#ifndef SMASH_SERVE_TENANT_HH
#define SMASH_SERVE_TENANT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "serve/result.hh"

namespace smash::serve
{

/** Quota of one tenant (0 = unlimited per field). */
struct TenantQuota
{
    double ratePerSec = 0; //!< token-bucket refill rate
    /** Bucket depth; 0 defaults to max(ratePerSec, 1) so a plain
     *  rate limit still absorbs a one-second burst. */
    double burst = 0;
    Index maxInflight = 0; //!< across all the tenant's connections

    bool
    limited() const
    {
        return ratePerSec > 0 || maxInflight > 0;
    }
};

/** Shared quota enforcement for every tenant of one server. */
class TenantGovernor
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit TenantGovernor(const TenantQuota& defaults = {});

    TenantGovernor(const TenantGovernor&) = delete;
    TenantGovernor& operator=(const TenantGovernor&) = delete;

    /** Override the default quota for one named tenant (takes
     *  effect on its next admit; resets its bucket to the new
     *  burst). */
    void setQuota(const std::string& tenant, const TenantQuota& quota);

    /** Outcome of one quota check: a ticket holding the tenant's
     *  in-flight slot, or the kQuotaExceeded status denying it. */
    struct Admitted
    {
        std::shared_ptr<void> ticket; //!< null when denied
        Status status;
    };

    /** Charge one request to @p tenant: take a token and an
     *  in-flight slot, or deny with kQuotaExceeded. Never blocks. */
    Admitted admit(const std::string& tenant);

    // --- Probes (tests verify no token/slot leaks through these). ---

    /** The tenant's current in-flight count (0 for never-seen). */
    Index inflightOf(const std::string& tenant) const;
    /** The tenant's current token balance after refill (full burst
     *  for never-seen tenants). */
    double tokensOf(const std::string& tenant) const;
    /** Total quota denials (both dimensions). */
    std::uint64_t rejects() const
    {
        return rejects_.load(std::memory_order_relaxed);
    }

  private:
    struct TenantState
    {
        TenantQuota quota;
        double tokens = 0;
        Clock::time_point lastRefill{};
        Index inflight = 0;
    };

    /** Find-or-create @p tenant's state (mutex_ held). */
    TenantState& stateLocked(const std::string& tenant);
    static double burstOf(const TenantQuota& quota);
    static void refill(TenantState& state, Clock::time_point now);
    void release(const std::string& tenant);

    mutable std::mutex mutex_;
    TenantQuota defaults_;
    std::unordered_map<std::string, TenantState> tenants_;
    std::atomic<std::uint64_t> rejects_{0};
};

} // namespace smash::serve

#endif // SMASH_SERVE_TENANT_HH
