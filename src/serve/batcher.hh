/**
 * @file
 * Request batching for the serving layer.
 *
 * A Batcher coalesces concurrent SpMV requests against the same
 * named matrix into one batched multi-RHS call: requests accumulate
 * in a per-matrix queue and flush either when the queue reaches the
 * maximum batch size (inline, on the enqueuing thread — zero added
 * latency at full load) or when the oldest queued request has
 * waited the deadline (from the batcher's timer thread — bounded
 * latency at low load). The flush callback receives the whole
 * batch; the pipeline lowers it onto eng::spmvBatch, whose one
 * traversal of the sparse operand serves every request.
 *
 * Ownership/threading contract: the Batcher owns its queues and
 * timer thread; requests own their promises until a flush hands
 * them to the callback. enqueue()/flushAll() are thread-safe, and
 * the flush callback always runs with no Batcher lock held (it may
 * re-enter the pool or run compute inline). The callback must
 * outlive the Batcher; destruction stops the timer, then flushes
 * every remaining queue.
 */

#ifndef SMASH_SERVE_BATCHER_HH
#define SMASH_SERVE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace smash::serve
{

/** One in-flight SpMV request: operand in, result promised out. */
struct Request
{
    std::vector<Value> x;
    std::promise<std::vector<Value>> result;
};

/** Coalesces per-matrix requests; flushes on size or deadline. */
class Batcher
{
  public:
    using Clock = std::chrono::steady_clock;
    /** Receives a full batch; called with no Batcher lock held. */
    using FlushFn =
        std::function<void(const std::string&, std::vector<Request>)>;

    /**
     * @param max_batch  flush threshold (1 disables coalescing:
     *        every request flushes immediately)
     * @param max_delay  deadline for a queued request before its
     *        (possibly partial) batch flushes anyway
     */
    Batcher(Index max_batch, std::chrono::microseconds max_delay,
            FlushFn flush);

    Batcher(const Batcher&) = delete;
    Batcher& operator=(const Batcher&) = delete;

    /** Stops the timer and flushes everything still queued. */
    ~Batcher();

    /**
     * Add one request to @p matrix's queue. Flushes inline when the
     * queue reaches max_batch; otherwise the timer flushes it at
     * deadline.
     */
    void enqueue(const std::string& matrix, Request request);

    /** Flush every queue now (partial batches included). */
    void flushAll();

    Index maxBatch() const { return max_batch_; }
    /** Batches flushed by reaching max_batch. */
    std::uint64_t sizeFlushes() const;
    /** Batches flushed by the timer at deadline (explicit
     *  flushAll() calls are counted by neither). */
    std::uint64_t deadlineFlushes() const;

  private:
    struct Queue
    {
        std::vector<Request> pending;
        Clock::time_point deadline; //!< of the oldest pending request
    };

    void timerLoop();

    const Index max_batch_;
    const std::chrono::microseconds max_delay_;
    const FlushFn flush_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<std::string, Queue> queues_;
    std::uint64_t size_flushes_ = 0;
    std::uint64_t deadline_flushes_ = 0;
    bool stop_ = false;
    std::thread timer_; //!< started in the ctor body, after validation
};

} // namespace smash::serve

#endif // SMASH_SERVE_BATCHER_HH
