/**
 * @file
 * Request batching for the serving layer.
 *
 * A Batcher coalesces concurrent requests into per-(matrix, op
 * class) queues (QueueKey): SpMV requests against one matrix merge
 * into one batched multi-RHS call, SpMM blocks concatenate into one
 * wide traversal, SpAdd merges share a queue for ordering. A queue
 * flushes when it reaches the maximum batch size (inline, on the
 * enqueuing thread — zero added latency at full load), when its
 * deadline passes (from the timer thread — bounded latency at low
 * load), or immediately when a kHigh-priority request arrives
 * (inline; the high request drags any already-queued work along
 * with it).
 *
 * Priority-aware flush ordering: each request's priority caps its
 * queue's wait — kHigh flushes now, kNormal within max_delay,
 * kBatch within batch_delay — and a request's own deadline tightens
 * the cap further so expiring work is surfaced, not hoarded. When
 * several queues are due at once (timer or flushAll), queues
 * holding higher-priority requests flush first.
 *
 * Ownership/threading contract: the Batcher owns its queues and
 * timer thread; requests own their promises until a flush hands
 * them to the callback. enqueue()/flushAll() are thread-safe, and
 * the flush callback always runs with no Batcher lock held (it may
 * re-enter the pool or run compute inline). The callback must
 * outlive the Batcher; destruction stops the timer, then flushes
 * every remaining queue (counted as manual flushes).
 */

#ifndef SMASH_SERVE_BATCHER_HH
#define SMASH_SERVE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"
#include "serve/request.hh"

namespace smash::serve
{

/** Coalesces per-(matrix, op) requests; flushes on size, deadline,
 *  or a high-priority arrival. */
class Batcher
{
  public:
    using Clock = Request::Clock;
    /** Receives a full batch; called with no Batcher lock held. */
    using FlushFn =
        std::function<void(const QueueKey&, std::vector<Request>)>;

    /**
     * @param max_batch   flush threshold (1 disables coalescing:
     *        every request flushes immediately)
     * @param max_delay   wait cap of a queued kNormal request
     * @param batch_delay wait cap of a queued kBatch request
     *        (kHigh requests flush their queue immediately)
     */
    Batcher(Index max_batch, std::chrono::microseconds max_delay,
            std::chrono::microseconds batch_delay, FlushFn flush);

    Batcher(const Batcher&) = delete;
    Batcher& operator=(const Batcher&) = delete;

    /** Stops the timer and flushes everything still queued. */
    ~Batcher();

    /**
     * Add one request to the (matrix, op) queue of @p key. Flushes
     * inline when the queue reaches max_batch or the request is
     * kHigh priority; otherwise the timer flushes at the queue's
     * (priority/deadline-capped) flush time.
     */
    void enqueue(const QueueKey& key, Request request);

    /** Flush every queue now, highest-priority queues first. */
    void flushAll();

    Index maxBatch() const { return max_batch_; }
    /** Batches flushed by reaching max_batch. Per-instance read-
     *  throughs over the obs counters (which also feed the global
     *  smash_batcher_flushes_total{reason=...} series). */
    std::uint64_t sizeFlushes() const { return size_flushes_.value(); }
    /** Batches flushed by the timer at a deadline. */
    std::uint64_t
    deadlineFlushes() const
    {
        return deadline_flushes_.value();
    }
    /** Batches flushed inline by a kHigh-priority arrival. */
    std::uint64_t
    priorityFlushes() const
    {
        return priority_flushes_.value();
    }
    /** Batches flushed by explicit flushAll() calls (including the
     *  destructor's final sweep). */
    std::uint64_t
    manualFlushes() const
    {
        return manual_flushes_.value();
    }

  private:
    struct Queue
    {
        std::vector<Request> pending;
        /** Earliest wait cap among the pending requests. */
        Clock::time_point due = Clock::time_point::max();
    };

    /** Wait cap of one request, from its priority and deadline. */
    Clock::time_point flushBy(const Request& request) const;
    void timerLoop();
    /** Count one flush: the per-instance counter (accessor API)
     *  plus the process-global reason-labelled series and trace. */
    void noteFlush(obs::Counter& local, std::size_t batch_size,
                   int reason);

    const Index max_batch_;
    const std::chrono::microseconds max_delay_;
    const std::chrono::microseconds batch_delay_;
    const FlushFn flush_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<QueueKey, Queue, QueueKeyHash> queues_;
    /** Per-instance flush counters (the accessor API above); the
     *  same events also bump the registry's global series. */
    obs::Counter size_flushes_;
    obs::Counter deadline_flushes_;
    obs::Counter priority_flushes_;
    obs::Counter manual_flushes_;
    bool stop_ = false;
    std::thread timer_; //!< started in the ctor body, after validation
};

} // namespace smash::serve

#endif // SMASH_SERVE_BATCHER_HH
