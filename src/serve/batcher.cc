#include "serve/batcher.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace smash::serve
{

namespace
{

/** Registry reason label of one FlushReason (obs::FlushReason). */
obs::Counter&
globalFlushCounter(int reason)
{
    static obs::Counter* by_reason[4] = {
        &obs::MetricsRegistry::global().counter(
            "smash_batcher_flushes_total{reason=\"size\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_batcher_flushes_total{reason=\"deadline\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_batcher_flushes_total{reason=\"priority\"}"),
        &obs::MetricsRegistry::global().counter(
            "smash_batcher_flushes_total{reason=\"manual\"}"),
    };
    return *by_reason[static_cast<std::size_t>(reason) % 4];
}

/** Best (numerically lowest) priority present in a batch. */
Priority
topPriority(const std::vector<Request>& batch)
{
    Priority best = Priority::kBatch;
    for (const Request& r : batch)
        best = std::min(best, r.options.priority);
    return best;
}

} // namespace

Batcher::Batcher(Index max_batch, std::chrono::microseconds max_delay,
                 std::chrono::microseconds batch_delay, FlushFn flush)
    : max_batch_(max_batch), max_delay_(max_delay),
      batch_delay_(batch_delay), flush_(std::move(flush))
{
    // Validate before the timer thread exists: a throw with a
    // joinable thread member would std::terminate during unwinding.
    SMASH_CHECK(max_batch_ >= 1, "batch size must be positive");
    SMASH_CHECK(flush_ != nullptr, "batcher needs a flush callback");
    timer_ = std::thread([this] { timerLoop(); });
}

Batcher::~Batcher()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    timer_.join();
    flushAll(); // the timer is gone; drain whatever is left
}

Batcher::Clock::time_point
Batcher::flushBy(const Request& request) const
{
    // The priority caps the wait; the request's own deadline can
    // only tighten it (an expiring request must surface in time to
    // be failed with kDeadlineExceeded, not rot in the queue).
    Clock::time_point cap;
    switch (request.options.priority) {
      case Priority::kHigh:
        cap = Clock::now();
        break;
      case Priority::kNormal:
        cap = Clock::now() + max_delay_;
        break;
      case Priority::kBatch:
        cap = Clock::now() + batch_delay_;
        break;
    }
    return std::min(cap, request.expiry);
}

void
Batcher::noteFlush(obs::Counter& local, std::size_t batch_size,
                   int reason)
{
    local.inc();
    globalFlushCounter(reason).inc();
    static obs::Histogram& width =
        obs::MetricsRegistry::global().histogram(
            "smash_batcher_flush_width");
    width.record(batch_size);
    SMASH_TRACE_EVENT(obs::EventKind::kBatchFlush,
                      static_cast<std::uint32_t>(reason),
                      static_cast<std::uint32_t>(batch_size));
}

void
Batcher::enqueue(const QueueKey& key, Request request)
{
    const Priority priority = request.options.priority;
    static obs::Counter& enqueues =
        obs::MetricsRegistry::global().counter(
            "smash_batcher_enqueues_total");
    enqueues.inc();
    SMASH_TRACE_EVENT(obs::EventKind::kBatchEnqueue,
                      static_cast<std::uint32_t>(key.op),
                      static_cast<std::uint32_t>(priority));
    std::vector<Request> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Queue& q = queues_[key];
        if (q.pending.empty())
            q.due = Clock::time_point::max();
        const Clock::time_point cap = flushBy(request);
        const bool tightened = cap < q.due;
        q.due = std::min(q.due, cap);
        q.pending.push_back(std::move(request));
        const bool full =
            static_cast<Index>(q.pending.size()) >= max_batch_;
        if (!full && priority != Priority::kHigh) {
            if (tightened)
                cv_.notify_all(); // timer re-evaluates its target
            return;
        }
        batch.swap(q.pending);
    }
    if (static_cast<Index>(batch.size()) >= max_batch_)
        noteFlush(size_flushes_, batch.size(),
                  static_cast<int>(obs::FlushReason::kSize));
    else
        noteFlush(priority_flushes_, batch.size(),
                  static_cast<int>(obs::FlushReason::kPriority));
    // Full batch or a kHigh arrival: flush inline on the enqueuing
    // thread, outside the lock (the callback may enqueue pool work
    // or run compute).
    flush_(key, std::move(batch));
}

void
Batcher::flushAll()
{
    std::vector<std::pair<QueueKey, std::vector<Request>>> due;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [key, q] : queues_) {
            if (q.pending.empty())
                continue;
            due.emplace_back(key, std::move(q.pending));
            q.pending.clear();
        }
    }
    // Priority-aware ordering: queues holding high-priority work
    // reach the pipeline first.
    std::stable_sort(due.begin(), due.end(),
                     [](const auto& a, const auto& b) {
                         return topPriority(a.second) <
                             topPriority(b.second);
                     });
    for (auto& [key, batch] : due) {
        noteFlush(manual_flushes_, batch.size(),
                  static_cast<int>(obs::FlushReason::kManual));
        flush_(key, std::move(batch));
    }
}

void
Batcher::timerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (stop_)
            return;
        // Earliest flush time among the non-empty queues.
        bool any = false;
        Clock::time_point earliest = Clock::time_point::max();
        for (const auto& [key, q] : queues_) {
            if (!q.pending.empty() && q.due < earliest) {
                earliest = q.due;
                any = true;
            }
        }
        if (!any) {
            cv_.wait(lock); // woken by enqueue() or the destructor
            continue;
        }
        if (cv_.wait_until(lock, earliest) ==
            std::cv_status::no_timeout)
            continue; // new request or stop: recompute the target

        // Flush every queue that is due, best priority first.
        const Clock::time_point now = Clock::now();
        std::vector<std::pair<QueueKey, std::vector<Request>>> due;
        for (auto& [key, q] : queues_) {
            if (!q.pending.empty() && q.due <= now) {
                due.emplace_back(key, std::move(q.pending));
                q.pending.clear();
            }
        }
        std::stable_sort(due.begin(), due.end(),
                         [](const auto& a, const auto& b) {
                             return topPriority(a.second) <
                                 topPriority(b.second);
                         });
        lock.unlock();
        for (auto& [key, batch] : due) {
            noteFlush(deadline_flushes_, batch.size(),
                      static_cast<int>(obs::FlushReason::kDeadline));
            flush_(key, std::move(batch));
        }
        lock.lock();
    }
}

} // namespace smash::serve
