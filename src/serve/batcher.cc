#include "serve/batcher.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace smash::serve
{

Batcher::Batcher(Index max_batch, std::chrono::microseconds max_delay,
                 FlushFn flush)
    : max_batch_(max_batch), max_delay_(max_delay),
      flush_(std::move(flush))
{
    // Validate before the timer thread exists: a throw with a
    // joinable thread member would std::terminate during unwinding.
    SMASH_CHECK(max_batch_ >= 1, "batch size must be positive");
    SMASH_CHECK(flush_ != nullptr, "batcher needs a flush callback");
    timer_ = std::thread([this] { timerLoop(); });
}

Batcher::~Batcher()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    timer_.join();
    flushAll(); // the timer is gone; drain whatever is left
}

void
Batcher::enqueue(const std::string& matrix, Request request)
{
    std::vector<Request> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Queue& q = queues_[matrix];
        if (q.pending.empty()) {
            q.deadline = Clock::now() + max_delay_;
            cv_.notify_all(); // timer re-evaluates its wait target
        }
        q.pending.push_back(std::move(request));
        if (static_cast<Index>(q.pending.size()) < max_batch_)
            return;
        batch.swap(q.pending);
        ++size_flushes_;
    }
    // Full batch: flush inline on the enqueuing thread, outside the
    // lock (the callback may enqueue pool work or run compute).
    flush_(matrix, std::move(batch));
}

void
Batcher::flushAll()
{
    // Explicit flushes are not counted: the size/deadline counters
    // exist to tune max_batch_/max_delay_ against organic traffic.
    std::vector<std::pair<std::string, std::vector<Request>>> due;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [name, q] : queues_) {
            if (q.pending.empty())
                continue;
            due.emplace_back(name, std::move(q.pending));
            q.pending.clear();
        }
    }
    for (auto& [name, batch] : due)
        flush_(name, std::move(batch));
}

std::uint64_t
Batcher::sizeFlushes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return size_flushes_;
}

std::uint64_t
Batcher::deadlineFlushes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return deadline_flushes_;
}

void
Batcher::timerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (stop_)
            return;
        // Earliest deadline among the non-empty queues.
        bool any = false;
        Clock::time_point earliest = Clock::time_point::max();
        for (const auto& [name, q] : queues_) {
            if (!q.pending.empty() && q.deadline < earliest) {
                earliest = q.deadline;
                any = true;
            }
        }
        if (!any) {
            cv_.wait(lock); // woken by enqueue() or the destructor
            continue;
        }
        if (cv_.wait_until(lock, earliest) ==
            std::cv_status::no_timeout)
            continue; // new request or stop: recompute the target

        // Deadline reached: flush every queue that is due.
        const Clock::time_point now = Clock::now();
        std::vector<std::pair<std::string, std::vector<Request>>> due;
        for (auto& [name, q] : queues_) {
            if (!q.pending.empty() && q.deadline <= now) {
                due.emplace_back(name, std::move(q.pending));
                q.pending.clear();
                ++deadline_flushes_;
            }
        }
        lock.unlock();
        for (auto& [name, batch] : due)
            flush_(name, std::move(batch));
        lock.lock();
    }
}

} // namespace smash::serve
