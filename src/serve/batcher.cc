#include "serve/batcher.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace smash::serve
{

namespace
{

/** Best (numerically lowest) priority present in a batch. */
Priority
topPriority(const std::vector<Request>& batch)
{
    Priority best = Priority::kBatch;
    for (const Request& r : batch)
        best = std::min(best, r.options.priority);
    return best;
}

} // namespace

Batcher::Batcher(Index max_batch, std::chrono::microseconds max_delay,
                 std::chrono::microseconds batch_delay, FlushFn flush)
    : max_batch_(max_batch), max_delay_(max_delay),
      batch_delay_(batch_delay), flush_(std::move(flush))
{
    // Validate before the timer thread exists: a throw with a
    // joinable thread member would std::terminate during unwinding.
    SMASH_CHECK(max_batch_ >= 1, "batch size must be positive");
    SMASH_CHECK(flush_ != nullptr, "batcher needs a flush callback");
    timer_ = std::thread([this] { timerLoop(); });
}

Batcher::~Batcher()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    timer_.join();
    flushAll(); // the timer is gone; drain whatever is left
}

Batcher::Clock::time_point
Batcher::flushBy(const Request& request) const
{
    // The priority caps the wait; the request's own deadline can
    // only tighten it (an expiring request must surface in time to
    // be failed with kDeadlineExceeded, not rot in the queue).
    Clock::time_point cap;
    switch (request.options.priority) {
      case Priority::kHigh:
        cap = Clock::now();
        break;
      case Priority::kNormal:
        cap = Clock::now() + max_delay_;
        break;
      case Priority::kBatch:
        cap = Clock::now() + batch_delay_;
        break;
    }
    return std::min(cap, request.expiry);
}

void
Batcher::enqueue(const QueueKey& key, Request request)
{
    const Priority priority = request.options.priority;
    std::vector<Request> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Queue& q = queues_[key];
        if (q.pending.empty())
            q.due = Clock::time_point::max();
        const Clock::time_point cap = flushBy(request);
        const bool tightened = cap < q.due;
        q.due = std::min(q.due, cap);
        q.pending.push_back(std::move(request));
        const bool full =
            static_cast<Index>(q.pending.size()) >= max_batch_;
        if (!full && priority != Priority::kHigh) {
            if (tightened)
                cv_.notify_all(); // timer re-evaluates its target
            return;
        }
        batch.swap(q.pending);
        if (full)
            ++size_flushes_;
        else
            ++priority_flushes_;
    }
    // Full batch or a kHigh arrival: flush inline on the enqueuing
    // thread, outside the lock (the callback may enqueue pool work
    // or run compute).
    flush_(key, std::move(batch));
}

void
Batcher::flushAll()
{
    std::vector<std::pair<QueueKey, std::vector<Request>>> due;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [key, q] : queues_) {
            if (q.pending.empty())
                continue;
            due.emplace_back(key, std::move(q.pending));
            q.pending.clear();
            ++manual_flushes_;
        }
    }
    // Priority-aware ordering: queues holding high-priority work
    // reach the pipeline first.
    std::stable_sort(due.begin(), due.end(),
                     [](const auto& a, const auto& b) {
                         return topPriority(a.second) <
                             topPriority(b.second);
                     });
    for (auto& [key, batch] : due)
        flush_(key, std::move(batch));
}

std::uint64_t
Batcher::sizeFlushes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return size_flushes_;
}

std::uint64_t
Batcher::deadlineFlushes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return deadline_flushes_;
}

std::uint64_t
Batcher::priorityFlushes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return priority_flushes_;
}

std::uint64_t
Batcher::manualFlushes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return manual_flushes_;
}

void
Batcher::timerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (stop_)
            return;
        // Earliest flush time among the non-empty queues.
        bool any = false;
        Clock::time_point earliest = Clock::time_point::max();
        for (const auto& [key, q] : queues_) {
            if (!q.pending.empty() && q.due < earliest) {
                earliest = q.due;
                any = true;
            }
        }
        if (!any) {
            cv_.wait(lock); // woken by enqueue() or the destructor
            continue;
        }
        if (cv_.wait_until(lock, earliest) ==
            std::cv_status::no_timeout)
            continue; // new request or stop: recompute the target

        // Flush every queue that is due, best priority first.
        const Clock::time_point now = Clock::now();
        std::vector<std::pair<QueueKey, std::vector<Request>>> due;
        for (auto& [key, q] : queues_) {
            if (!q.pending.empty() && q.due <= now) {
                due.emplace_back(key, std::move(q.pending));
                q.pending.clear();
                ++deadline_flushes_;
            }
        }
        std::stable_sort(due.begin(), due.end(),
                         [](const auto& a, const auto& b) {
                             return topPriority(a.second) <
                                 topPriority(b.second);
                         });
        lock.unlock();
        for (auto& [key, batch] : due)
            flush_(key, std::move(batch));
        lock.lock();
    }
}

} // namespace smash::serve
