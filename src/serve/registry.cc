#include "serve/registry.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "engine/autoselect.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace smash::serve
{

eng::Format
MatrixRegistry::insertSlot(const std::string& name,
                           fmt::CsrMatrix master,
                           eng::StructureTracker profile,
                           eng::Format format,
                           const eng::SparseMatrixAny::BuildOptions&
                               build)
{
    auto slot = std::make_unique<Slot>();
    slot->master = std::move(master);
    slot->profile = std::move(profile);
    slot->chosen = format;
    slot->pendingTarget = format;
    slot->build = build;
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted =
        slots_.emplace(name, std::move(slot)).second;
    SMASH_CHECK(inserted, "registry already holds a matrix named '",
                name, "'");
    return format;
}

eng::Format
MatrixRegistry::put(const std::string& name, fmt::CooMatrix coo)
{
    if (!coo.isCanonical())
        coo.canonicalize();
    // §7.2.3-style structure analysis, run exactly once per matrix
    // (the tracker's one-pass scan doubles as the initial profile).
    fmt::CsrMatrix master = fmt::CsrMatrix::fromCoo(coo);
    eng::StructureTracker profile(master);
    const eng::Format chosen = eng::chooseFormat(profile.stats());
    return insertSlot(name, std::move(master), std::move(profile),
                      chosen, eng::SparseMatrixAny::BuildOptions());
}

eng::Format
MatrixRegistry::put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format)
{
    return put(name, std::move(coo), format,
               eng::SparseMatrixAny::BuildOptions());
}

eng::Format
MatrixRegistry::put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format,
                    const eng::SparseMatrixAny::BuildOptions& build)
{
    if (!coo.isCanonical())
        coo.canonicalize();
    fmt::CsrMatrix master = fmt::CsrMatrix::fromCoo(coo);
    eng::StructureTracker profile(master);
    return insertSlot(name, std::move(master), std::move(profile),
                      format, build);
}

eng::Format
MatrixRegistry::registerSharded(const std::string& name,
                                fmt::CooMatrix coo, Index shards)
{
    return registerSharded(name, std::move(coo), shards,
                           eng::SparseMatrixAny::BuildOptions());
}

eng::Format
MatrixRegistry::registerSharded(
    const std::string& name, fmt::CooMatrix coo, Index shards,
    const eng::SparseMatrixAny::BuildOptions& build)
{
    if (!coo.isCanonical())
        coo.canonicalize();
    const fmt::CsrMatrix master = fmt::CsrMatrix::fromCoo(coo);
    auto slot = std::make_unique<Slot>();
    // The ShardedMatrix owns the content (per-shard masters,
    // profiles, format choices, encodings); the slot's own master
    // stays empty and its encodings map only caches whole-matrix
    // materializations.
    slot->sharded = std::make_shared<shard::ShardedMatrix>(
        name, master, shards, build);
    slot->chosen = slot->sharded->primaryFormat();
    slot->pendingTarget = slot->chosen;
    slot->build = build;
    const eng::Format chosen = slot->chosen;
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted =
        slots_.emplace(name, std::move(slot)).second;
    SMASH_CHECK(inserted, "registry already holds a matrix named '",
                name, "'");
    return chosen;
}

std::shared_ptr<shard::ShardedMatrix>
MatrixRegistry::sharded(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.sharded;
}

bool
MatrixRegistry::contains(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.count(name) != 0;
}

MatrixRegistry::Slot&
MatrixRegistry::slot(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(name);
    SMASH_CHECK(it != slots_.end(), "registry has no matrix named '",
                name, "'");
    return *it->second;
}

Index
MatrixRegistry::rows(const std::string& name) const
{
    // The master is mutable now: even shape reads take the slot
    // lock (adopt() move-assigns the whole CsrMatrix).
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.sharded ? s.sharded->rows() : s.master.rows();
}

Index
MatrixRegistry::cols(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.sharded ? s.sharded->cols() : s.master.cols();
}

eng::Format
MatrixRegistry::format(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.sharded ? s.sharded->primaryFormat() : s.chosen;
}

MatrixRegistry::EncodingPtr
MatrixRegistry::encodedLocked(Slot& s, eng::Format format)
{
    auto it = s.encodings.find(format);
    if (it == s.encodings.end()) {
        // Sharded entries build whole-matrix views from the
        // concatenated shard slices (bit-identical to the content
        // the matrix was registered with, as mutated since); these
        // serve ops that need a monolithic operand, e.g. SpAdd.
        const fmt::CsrMatrix source =
            s.sharded ? s.sharded->toCsr() : fmt::CsrMatrix();
        it = s.encodings
                 .emplace(format,
                          std::make_shared<const eng::SparseMatrixAny>(
                              eng::SparseMatrixAny::fromCsr(
                                  s.sharded ? source : s.master,
                                  format, s.build)))
                 .first;
        ++s.conversions;
    }
    return it->second;
}

MatrixRegistry::EncodingPtr
MatrixRegistry::encoded(const std::string& name)
{
    // Resolve the current format and the encoding under one
    // critical section: reading chosen, dropping the lock, and
    // re-locking would let a concurrent re-encode swap land in
    // between — and this call would then rebuild and cache the
    // just-retired format.
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return encodedLocked(s, s.chosen);
}

MatrixRegistry::EncodingPtr
MatrixRegistry::encodedAs(const std::string& name, eng::Format format)
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return encodedLocked(s, format);
}

MatrixRegistry::EncodingPtr
MatrixRegistry::encodedIfCached(const std::string& name)
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.encodings.find(s.chosen);
    return it != s.encodings.end() ? it->second : nullptr;
}

MatrixRegistry::EncodingPtr
MatrixRegistry::encodedAsIfCached(const std::string& name,
                                  eng::Format format)
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.encodings.find(format);
    return it != s.encodings.end() ? it->second : nullptr;
}

bool
MatrixRegistry::finishMutation(Slot& s, bool structural,
                               UpdateOutcome& out)
{
    out.target = s.reencodePending ? s.pendingTarget : s.chosen;
    if (out.stats.inserted + out.stats.removed + out.stats.updated ==
        0) {
        // Nothing changed (empty deltas, scale by 1): keep the
        // cached encodings — invalidation would force a pointless
        // reconversion (the fig20 cost) on the next request.
        return false;
    }
    // Values changed: every cached encoding is stale. In-flight
    // readers keep their shared_ptr epochs; the next encoded() call
    // rebuilds from the new master.
    ++s.epoch;
    s.encodings.clear();
    if (!structural)
        return false; // value-only change cannot move a boundary

    ReselectPolicy policy;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        policy = policy_;
    }
    if (!policy.enabled || s.reencodePending)
        return false;
    // Cheap gate first: don't even snapshot the profile until the
    // accumulated structural churn is worth a decision.
    const Index changed = s.profile.changedSinceRebase();
    const Index need = std::max(
        policy.minChanged,
        static_cast<Index>(policy.minChangedFraction *
                           static_cast<double>(
                               std::max<Index>(1, s.profile.nnz()))));
    if (changed < need)
        return false;
    const eng::Format target = eng::chooseFormatSticky(
        s.profile.stats(), s.chosen, policy.margin);
    if (target == s.chosen) {
        // Inside the hysteresis band: stay put, and restart the
        // drift accumulation so the next check needs fresh churn.
        s.profile.rebase();
        return false;
    }
    s.reencodePending = true;
    s.pendingTarget = target;
    out.reencodeScheduled = true;
    out.target = target;
    return true;
}

shard::DriftPolicy
MatrixRegistry::shardPolicy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    shard::DriftPolicy policy;
    policy.enabled = policy_.enabled;
    policy.minChangedFraction = policy_.minChangedFraction;
    policy.minChanged = policy_.minChanged;
    policy.margin = policy_.margin;
    return policy;
}

bool
MatrixRegistry::finishShardedMutation(
    Slot& s, const shard::ShardMutationOutcome& so,
    UpdateOutcome& out)
{
    out.stats = so.stats;
    out.reencodeScheduled = so.reencodeScheduled;
    out.target = so.reencodeScheduled ? so.target : s.chosen;
    if (so.stats.inserted + so.stats.removed + so.stats.updated >
        0) {
        // The shards already invalidated their own encodings; drop
        // the slot's whole-matrix materializations too.
        ++s.epoch;
        s.encodings.clear();
    }
    return so.reencodeScheduled;
}

void
MatrixRegistry::fireReencode(const std::string& name,
                             eng::Format target)
{
    {
        // Invoke the scheduler under the hook lock: a session
        // tearing down blocks in clearReencodeHook() until this
        // call returns, so the hook can never post onto a pool
        // whose teardown has already been allowed to proceed. The
        // hook body is cheap (it posts one task), so the critical
        // section is short.
        std::lock_guard<std::mutex> lock(hook_mutex_);
        if (hook_) {
            hook_(name, target);
            return;
        }
    }
    // No scheduler attached: re-encode synchronously on the
    // mutating thread (standalone registry use).
    runReencode(name);
}

UpdateOutcome
MatrixRegistry::applyUpdates(const std::string& name,
                             fmt::CooMatrix deltas)
{
    if (!deltas.isCanonical())
        deltas.canonicalize();
    Slot& s = slot(name);
    UpdateOutcome out;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.sharded) {
            fire = finishShardedMutation(
                s, s.sharded->applyUpdates(deltas, shardPolicy()),
                out);
        } else {
            eng::StructureTracker& tracker = s.profile;
            out.stats = eng::applyUpdates(
                s.master, deltas,
                [&tracker](Index r, Index c, bool inserted) {
                    tracker.onStructureChange(r, c, inserted);
                });
            fire =
                finishMutation(s, out.stats.structural() > 0, out);
        }
    }
    if (fire)
        fireReencode(name, out.target);
    return out;
}

UpdateOutcome
MatrixRegistry::replaceRows(const std::string& name,
                            const std::vector<Index>& rows,
                            fmt::CooMatrix replacement)
{
    if (!replacement.isCanonical())
        replacement.canonicalize();
    Slot& s = slot(name);
    UpdateOutcome out;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.sharded) {
            fire = finishShardedMutation(
                s,
                s.sharded->replaceRows(rows, replacement,
                                       shardPolicy()),
                out);
        } else {
            eng::StructureTracker& tracker = s.profile;
            out.stats = eng::replaceRows(
                s.master, rows, replacement,
                [&tracker](Index r, Index c, bool inserted) {
                    tracker.onStructureChange(r, c, inserted);
                });
            fire =
                finishMutation(s, out.stats.structural() > 0, out);
        }
    }
    if (fire)
        fireReencode(name, out.target);
    return out;
}

UpdateOutcome
MatrixRegistry::scaleValues(const std::string& name, Value factor)
{
    Slot& s = slot(name);
    UpdateOutcome out;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.sharded) {
            finishShardedMutation(s, s.sharded->scaleValues(factor),
                                  out);
        } else {
            out.stats = eng::scaleValues(s.master, factor);
            finishMutation(s, false, out);
        }
    }
    return out;
}

eng::StructureStats
MatrixRegistry::profile(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    // Sharded entries profile per band; shard 0 stands in for the
    // whole-matrix view (use sharded()->profile(k) for the rest).
    return s.sharded ? s.sharded->profile(0) : s.profile.stats();
}

void
MatrixRegistry::runReencode(const std::string& name)
{
    Slot& s = slot(name);
    {
        // Sharded entries re-encode per shard: only the bands whose
        // drift crossed a boundary rebuild, each under its own
        // epoch check.
        std::shared_ptr<shard::ShardedMatrix> sharded;
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            sharded = s.sharded;
        }
        if (sharded) {
            const int swapped = sharded->runPendingReencodes();
            if (swapped > 0) {
                std::lock_guard<std::mutex> lock(s.mutex);
                s.chosen = sharded->primaryFormat();
            }
            return;
        }
    }
    // A mutation may land while the new encoding builds (the build
    // runs with no lock held, so serving and updates continue). The
    // epoch check detects that; a few retries chase a busy matrix,
    // after which the pending flag clears so a later mutation can
    // re-trigger the reselection.
    for (int attempt = 0; attempt < 4; ++attempt) {
        fmt::CsrMatrix snapshot;
        eng::Format target;
        eng::SparseMatrixAny::BuildOptions build;
        std::uint64_t epoch;
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            if (!s.reencodePending)
                return;
            snapshot = s.master;
            target = s.pendingTarget;
            build = s.build;
            epoch = s.epoch;
        }
        auto built = std::make_shared<const eng::SparseMatrixAny>(
            eng::SparseMatrixAny::fromCsr(snapshot, target, build));
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            if (s.epoch != epoch)
                continue; // master moved underneath: rebuild
            // Atomic swap: the new epoch becomes the primary; any
            // reader still holding the old shared_ptr finishes on
            // the old encoding.
            s.chosen = target;
            s.encodings.clear();
            s.encodings.emplace(target, std::move(built));
            ++s.conversions;
            ++s.reselects;
            s.reencodePending = false;
            s.profile.rebase();
            static obs::Counter& swaps =
                obs::MetricsRegistry::global().counter(
                    "smash_registry_epoch_swaps_total");
            swaps.inc();
            SMASH_TRACE_EVENT(obs::EventKind::kEpochSwap,
                              static_cast<std::uint32_t>(target));
            return;
        }
    }
    std::lock_guard<std::mutex> lock(s.mutex);
    s.reencodePending = false;
}

void
MatrixRegistry::setReencodeHook(ReencodeHook hook, const void* owner)
{
    std::lock_guard<std::mutex> lock(hook_mutex_);
    hook_ = std::move(hook);
    hookOwner_ = hook_ ? owner : nullptr;
}

void
MatrixRegistry::clearReencodeHook(const void* owner)
{
    // Taking hook_mutex_ waits out any in-flight fireReencode()
    // invocation: when this returns, the owner's scheduler has
    // provably been called for the last time.
    std::lock_guard<std::mutex> lock(hook_mutex_);
    if (hookOwner_ != owner)
        return; // a newer owner installed its own hook: keep it
    hook_ = nullptr;
    hookOwner_ = nullptr;
}

void
MatrixRegistry::setReselectPolicy(const ReselectPolicy& policy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    policy_ = policy;
}

std::size_t
MatrixRegistry::conversions(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.sharded ? s.conversions + s.sharded->conversions()
                     : s.conversions;
}

std::size_t
MatrixRegistry::reselects(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.sharded ? s.reselects + s.sharded->reselects()
                     : s.reselects;
}

MatrixInfo
MatrixRegistry::info(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    MatrixInfo out;
    if (s.sharded) {
        out.chosen = s.sharded->primaryFormat();
        out.rows = s.sharded->rows();
        out.cols = s.sharded->cols();
        out.nnz = s.sharded->nnz();
        out.conversions = s.conversions + s.sharded->conversions();
        out.reselects = s.reselects + s.sharded->reselects();
        out.epoch = s.epoch;
        out.reencodePending = s.sharded->reencodePending();
        out.shards = s.sharded->shardCount();
        // The distinct formats currently live across the shards.
        std::vector<eng::Format> formats = s.sharded->shardFormats();
        std::sort(formats.begin(), formats.end());
        formats.erase(std::unique(formats.begin(), formats.end()),
                      formats.end());
        out.cached = std::move(formats);
        return out;
    }
    out.chosen = s.chosen;
    out.rows = s.master.rows();
    out.cols = s.master.cols();
    out.nnz = s.master.nnz();
    out.conversions = s.conversions;
    out.reselects = s.reselects;
    out.epoch = s.epoch;
    out.reencodePending = s.reencodePending;
    out.cached.reserve(s.encodings.size());
    for (const auto& [format, encoding] : s.encodings)
        out.cached.push_back(format);
    return out;
}

std::vector<std::string>
MatrixRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(slots_.size());
    for (const auto& [name, slot] : slots_)
        out.push_back(name);
    return out;
}

} // namespace smash::serve
