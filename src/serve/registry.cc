#include "serve/registry.hh"

#include <utility>

#include "common/logging.hh"
#include "engine/autoselect.hh"

namespace smash::serve
{

eng::Format
MatrixRegistry::put(const std::string& name, fmt::CooMatrix coo)
{
    if (!coo.isCanonical())
        coo.canonicalize();
    // §7.2.3-style structure analysis, run exactly once per matrix.
    const eng::Format chosen = eng::chooseFormat(coo);
    return put(name, std::move(coo), chosen);
}

eng::Format
MatrixRegistry::put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format)
{
    return put(name, std::move(coo), format,
               eng::SparseMatrixAny::BuildOptions());
}

eng::Format
MatrixRegistry::put(const std::string& name, fmt::CooMatrix coo,
                    eng::Format format,
                    const eng::SparseMatrixAny::BuildOptions& build)
{
    if (!coo.isCanonical())
        coo.canonicalize();
    auto slot = std::make_unique<Slot>();
    slot->coo = std::move(coo);
    slot->chosen = format;
    slot->build = build;
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted =
        slots_.emplace(name, std::move(slot)).second;
    SMASH_CHECK(inserted, "registry already holds a matrix named '",
                name, "'");
    return format;
}

bool
MatrixRegistry::contains(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.count(name) != 0;
}

MatrixRegistry::Slot&
MatrixRegistry::slot(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(name);
    SMASH_CHECK(it != slots_.end(), "registry has no matrix named '",
                name, "'");
    return *it->second;
}

Index
MatrixRegistry::rows(const std::string& name) const
{
    return slot(name).coo.rows();
}

Index
MatrixRegistry::cols(const std::string& name) const
{
    return slot(name).coo.cols();
}

eng::Format
MatrixRegistry::format(const std::string& name) const
{
    return slot(name).chosen;
}

const eng::SparseMatrixAny&
MatrixRegistry::encoded(const std::string& name)
{
    Slot& s = slot(name);
    return encodedAs(name, s.chosen);
}

const eng::SparseMatrixAny&
MatrixRegistry::encodedAs(const std::string& name, eng::Format format)
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.encodings.find(format);
    if (it == s.encodings.end()) {
        it = s.encodings
                 .emplace(format, eng::SparseMatrixAny::fromCoo(
                                      s.coo, format, s.build))
                 .first;
        ++s.conversions;
    }
    return it->second;
}

std::size_t
MatrixRegistry::conversions(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.conversions;
}

MatrixInfo
MatrixRegistry::info(const std::string& name) const
{
    Slot& s = slot(name);
    std::lock_guard<std::mutex> lock(s.mutex);
    MatrixInfo out;
    out.chosen = s.chosen;
    out.rows = s.coo.rows();
    out.cols = s.coo.cols();
    out.nnz = s.coo.nnz();
    out.conversions = s.conversions;
    out.cached.reserve(s.encodings.size());
    for (const auto& [format, encoding] : s.encodings)
        out.cached.push_back(format);
    return out;
}

std::vector<std::string>
MatrixRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(slots_.size());
    for (const auto& [name, slot] : slots_)
        out.push_back(name);
    return out;
}

} // namespace smash::serve
