/**
 * @file
 * Lock-free latency accounting for the serving pipeline: a power-
 * of-two histogram of request latencies (submit → delivery), one per
 * priority class. record() is a single relaxed atomic increment on
 * the delivery path; percentile() scans the 48 buckets, so p50/p99
 * cost nothing until someone asks.
 *
 * Resolution is the bucket width (powers of two in microseconds);
 * percentile() returns the geometric midpoint of the bucket holding
 * the requested rank — plenty for the throughput bench's p50/p99
 * report, and immune to reservoir-sampling bias under load.
 */

#ifndef SMASH_SERVE_LATENCY_HH
#define SMASH_SERVE_LATENCY_HH

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

namespace smash::serve
{

/** Power-of-two latency histogram (microsecond buckets). */
class LatencyHistogram
{
  public:
    /** Bucket i holds latencies in [2^(i-1), 2^i) microseconds
     *  (bucket 0: sub-microsecond); the top bucket is open-ended. */
    static constexpr int kBuckets = 48;

    void
    record(std::chrono::nanoseconds latency)
    {
        const auto us = static_cast<std::uint64_t>(
            latency.count() < 0 ? 0 : latency.count() / 1000);
        int bucket = std::bit_width(us); // 0 for us == 0
        if (bucket >= kBuckets)
            bucket = kBuckets - 1;
        counts_[static_cast<std::size_t>(bucket)].fetch_add(
            1, std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        std::uint64_t total = 0;
        for (const auto& c : counts_)
            total += c.load(std::memory_order_relaxed);
        return total;
    }

    /**
     * Latency (microseconds) at quantile @p q in [0, 1]: the
     * geometric midpoint of the bucket containing the rank-q
     * sample, 0 when nothing was recorded.
     */
    double
    percentileUs(double q) const
    {
        std::array<std::uint64_t, kBuckets> snap;
        std::uint64_t total = 0;
        for (int i = 0; i < kBuckets; ++i) {
            snap[static_cast<std::size_t>(i)] =
                counts_[static_cast<std::size_t>(i)].load(
                    std::memory_order_relaxed);
            total += snap[static_cast<std::size_t>(i)];
        }
        if (total == 0)
            return 0;
        const auto rank = static_cast<std::uint64_t>(
            q * static_cast<double>(total - 1));
        std::uint64_t seen = 0;
        for (int i = 0; i < kBuckets; ++i) {
            seen += snap[static_cast<std::size_t>(i)];
            if (seen > rank) {
                if (i == 0)
                    return 0.5;
                // Midpoint of [2^(i-1), 2^i), geometrically.
                return static_cast<double>(1ull << (i - 1)) * 1.5;
            }
        }
        return 0; // unreachable
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

} // namespace smash::serve

#endif // SMASH_SERVE_LATENCY_HH
