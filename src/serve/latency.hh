/**
 * @file
 * Lock-free latency accounting for the serving pipeline: a thin
 * microsecond-unit wrapper over obs::Histogram, one per priority
 * class (and one per pipeline stage — see pipeline.hh). record() is
 * two relaxed atomic adds on the delivery path; percentile() scans
 * the 48 buckets, so p50/p99 cost nothing until someone asks.
 *
 * Resolution is the bucket width (powers of two in microseconds).
 * percentileUs() follows obs::Histogram's exact semantics: 0 when
 * empty, geometric bucket midpoint in the middle, and the bucket's
 * lower bound for the open-ended top bucket — plenty for the
 * throughput bench's p50/p99 report, and immune to
 * reservoir-sampling bias under load.
 */

#ifndef SMASH_SERVE_LATENCY_HH
#define SMASH_SERVE_LATENCY_HH

#include <chrono>
#include <cstdint>

#include "obs/metrics.hh"

namespace smash::serve
{

/** Power-of-two latency histogram (microsecond buckets). */
class LatencyHistogram
{
  public:
    /** Bucket i holds latencies in [2^(i-1), 2^i) microseconds
     *  (bucket 0: sub-microsecond); the top bucket is open-ended. */
    static constexpr int kBuckets = obs::Histogram::kBuckets;

    void
    record(std::chrono::nanoseconds latency)
    {
        hist_.record(static_cast<std::uint64_t>(
            latency.count() < 0 ? 0 : latency.count() / 1000));
    }

    std::uint64_t count() const { return hist_.count(); }

    /** Total recorded microseconds (mean = sumUs()/count()). */
    std::uint64_t sumUs() const { return hist_.sum(); }

    /**
     * Latency (microseconds) at quantile @p q in [0, 1]:
     *  - nothing recorded      → 0
     *  - rank in bucket 0      → 0.5 (sub-microsecond)
     *  - middle buckets        → geometric midpoint 1.5 * 2^(i-1)
     *  - top (overflow) bucket → its lower bound 2^(i-1)
     */
    double percentileUs(double q) const { return hist_.percentile(q); }

    /** The wrapped histogram (exposition plumbing). */
    const obs::Histogram& histogram() const { return hist_; }

  private:
    obs::Histogram hist_;
};

} // namespace smash::serve

#endif // SMASH_SERVE_LATENCY_HH
