#include "core/bitmap_hierarchy.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace smash::core
{

BitmapHierarchy::BitmapHierarchy(const HierarchyConfig& cfg, Bitmap level0)
    : cfg_(cfg)
{
    levels_.reserve(static_cast<std::size_t>(cfg.levels()));
    levels_.push_back(std::move(level0));
    for (int lvl = 1; lvl < cfg.levels(); ++lvl) {
        const Bitmap& below = levels_.back();
        Index ratio = cfg.ratio(lvl);
        Bitmap up(static_cast<Index>(
            ceilDiv(static_cast<std::uint64_t>(below.numBits()),
                    static_cast<std::uint64_t>(ratio))));
        Index bit = below.findNextSet(0);
        while (bit >= 0) {
            up.set(bit / ratio);
            // Skip to the next group: every further set bit in this
            // group would map to the same parent bit.
            bit = below.findNextSet((bit / ratio + 1) * ratio);
        }
        levels_.push_back(std::move(up));
    }
}

const Bitmap&
BitmapHierarchy::level(int lvl) const
{
    SMASH_CHECK(lvl >= 0 && lvl < static_cast<int>(levels_.size()),
                "bad level ", lvl);
    return levels_[static_cast<std::size_t>(lvl)];
}

bool
BitmapHierarchy::checkInvariants() const
{
    for (int lvl = 1; lvl < levels(); ++lvl) {
        const Bitmap& up = level(lvl);
        const Bitmap& below = level(lvl - 1);
        Index ratio = cfg_.ratio(lvl);
        for (Index b = 0; b < up.numBits(); ++b) {
            bool any = false;
            for (Index k = b * ratio;
                 k < (b + 1) * ratio && k < below.numBits(); ++k) {
                if (below.test(k)) {
                    any = true;
                    break;
                }
            }
            if (any != up.test(b))
                return false;
        }
    }
    return true;
}

std::size_t
BitmapHierarchy::denseStorageBytes() const
{
    std::size_t bytes = 0;
    for (const Bitmap& level : levels_)
        bytes += level.storageBytes();
    return bytes;
}

std::size_t
BitmapHierarchy::compactStorageBytes() const
{
    // Top level: stored whole.
    std::uint64_t bits = static_cast<std::uint64_t>(
        levels_.back().numBits());
    // Lower levels: one ratio(i+1)-bit group per set parent bit.
    for (int lvl = levels() - 1; lvl >= 1; --lvl) {
        std::uint64_t groups = static_cast<std::uint64_t>(
            level(lvl).countSet());
        bits += groups * static_cast<std::uint64_t>(cfg_.ratio(lvl));
    }
    return static_cast<std::size_t>(ceilDiv(bits, 8));
}

} // namespace smash::core
