/**
 * @file
 * Software-only SMASH indexing (paper §4.4): a cursor that walks the
 * bitmap hierarchy depth-first, finding Bitmap-0 set bits with
 * word-load + CLZ + AND-mask operations — exactly the instruction
 * pattern the paper charges to Software-only SMASH. The cursor
 * counts those operations so the simulation can bill them.
 *
 * Word loads are split into *fresh* (a word not examined by the
 * previous step at that level) and repeats. Under the paper's
 * Fig. 4b compact storage the fresh words form each level's compact
 * stream, consumed sequentially — the kernels bill fresh loads at
 * consecutive synthetic addresses and repeats as re-touches of the
 * same line (see kern::ScanBiller).
 */

#ifndef SMASH_CORE_BLOCK_CURSOR_HH
#define SMASH_CORE_BLOCK_CURSOR_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "core/smash_matrix.hh"

namespace smash::core
{

/** Operation counts of a software bitmap scan. */
struct ScanStats
{
    Counter wordLoads = 0;  //!< 64-bit bitmap words fetched
    Counter freshWords = 0; //!< loads of a not-just-examined word
    Counter bitOps = 0;     //!< CLZ / AND-mask register operations
};

/** One bitmap word examined by the scan (for cost billing). */
struct WordTouch
{
    int level;  //!< hierarchy level of the word
    Index word; //!< word index within that level's bitmap
};

/**
 * Depth-first traversal of the bitmap hierarchy that yields every
 * non-zero block in ascending Bitmap-0 order. Regions whose parent
 * bit is clear are skipped without touching lower-level words —
 * the software benefit of the hierarchy.
 *
 * beginRange() restricts the traversal to a Bitmap-0 bit range (one
 * matrix row, say) for the SpMM/graph per-row scans; in that mode
 * the emitted nzaBlock ordinals restart from zero and callers keep
 * their own block rank (see kern::rowBlockRanks()).
 */
class BlockCursor
{
  public:
    /** @param matrix must outlive the cursor. */
    explicit BlockCursor(const SmashMatrix& matrix);

    /**
     * Advance to the next non-zero block.
     * @param pos filled with the block's matrix position on success
     * @retval true a block was produced
     * @retval false the traversal is exhausted
     */
    bool next(BlockPosition& pos);

    /** Restart a whole-matrix traversal from the beginning. */
    void reset();

    /**
     * Restrict the traversal to Bitmap-0 bits [fromBit, toBit) and
     * restart it there. Scan statistics keep accumulating.
     */
    void beginRange(Index from_bit, Index to_bit);

    /** Scan-cost counters accumulated since construction. */
    const ScanStats& stats() const { return stats_; }

    /** Words examined since the last drainTouches() call. */
    const std::vector<WordTouch>& touches() const { return touches_; }

    /** Forget the recorded touches (after billing them). */
    void drainTouches() { touches_.clear(); }

    /**
     * Enable/disable touch recording. Native (non-simulated) runs
     * disable it so the scan runs at full speed; the ScanStats
     * counters are kept either way.
     */
    void setRecordTouches(bool record) { recordTouches_ = record; }

  private:
    /**
     * Find the next set bit of @p level within [from, end), charging
     * word loads and bit operations to stats_.
     * @return bit index, or -1 when the range holds no set bit
     */
    Index scanLevel(int level, Index from, Index end);

    /** Set per-level traversal windows for level-0 range [from, to). */
    void setRange(Index from_bit, Index to_bit);

    const SmashMatrix& matrix_;
    ScanStats stats_;
    std::vector<WordTouch> touches_;
    bool recordTouches_ = true;

    /** Per-level traversal window (cur inclusive, end exclusive). */
    std::array<Index, HierarchyConfig::kMaxLevels> cur_{};
    std::array<Index, HierarchyConfig::kMaxLevels> end_{};
    /** Range restriction per level (whole bitmap by default). */
    std::array<Index, HierarchyConfig::kMaxLevels> from_{};
    std::array<Index, HierarchyConfig::kMaxLevels> to_{};
    /** Last word examined per level (fresh-load tracking). */
    std::array<Index, HierarchyConfig::kMaxLevels> lastWord_{};
    int levelPos_ = 0;        //!< level the traversal is currently at
    Index blocksEmitted_ = 0; //!< running NZA block ordinal
    bool done_ = false;
};

} // namespace smash::core

#endif // SMASH_CORE_BLOCK_CURSOR_HH
