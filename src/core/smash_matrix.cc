#include "core/smash_matrix.hh"

#include <cassert>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "formats/convert.hh"

namespace smash::core
{

SmashMatrix
SmashMatrix::fromCoo(const fmt::CooMatrix& coo, const HierarchyConfig& cfg)
{
    SMASH_CHECK(coo.isCanonical(),
                "SMASH encoding requires a canonical COO matrix");

    SmashMatrix m;
    m.rows_ = coo.rows();
    m.cols_ = coo.cols();
    m.nnz_ = coo.nnz();
    const Index bs = cfg.blockSize();
    m.paddedCols_ = static_cast<Index>(
        roundUp(static_cast<std::uint64_t>(coo.cols()),
                static_cast<std::uint64_t>(bs)));

    const Index total_blocks = m.rows_ * (m.paddedCols_ / bs);

    // Pass 1: mark occupied blocks in Bitmap-0.
    Bitmap level0(total_blocks);
    auto block_of = [&](const fmt::CooEntry& e) {
        return (e.row * m.paddedCols_ + e.col) / bs;
    };
    for (const fmt::CooEntry& e : coo.entries())
        level0.set(block_of(e));

    // Pass 2: scatter values into the NZA. COO order is row-major,
    // matching the Bitmap-0 bit order, so block ordinals are just a
    // running rank over set bits.
    const Index n_blocks = level0.countSet();
    m.nza_.assign(static_cast<std::size_t>(n_blocks * bs), Value(0));
    Index cur_bit = -1;
    Index cur_block = -1;
    for (const fmt::CooEntry& e : coo.entries()) {
        Index bit = block_of(e);
        if (bit != cur_bit) {
            assert(bit > cur_bit); // canonical order ascends
            cur_bit = bit;
            ++cur_block;
        }
        Index offset = (e.row * m.paddedCols_ + e.col) % bs;
        m.nza_[static_cast<std::size_t>(cur_block * bs + offset)] = e.value;
    }
    assert(cur_block + 1 == n_blocks);

    m.hierarchy_ = BitmapHierarchy(cfg, std::move(level0));
    return m;
}

SmashMatrix
SmashMatrix::fromCsr(const fmt::CsrMatrix& csr, const HierarchyConfig& cfg)
{
    // The paper's §4.1.3 conversion, without materializing COO:
    // pass 1 marks occupied blocks in Bitmap-0, pass 2 scatters the
    // values into the NZA, then the upper levels are built bottom-up.
    SmashMatrix m;
    m.rows_ = csr.rows();
    m.cols_ = csr.cols();
    m.nnz_ = csr.nnz();
    const Index bs = cfg.blockSize();
    m.paddedCols_ = static_cast<Index>(
        roundUp(static_cast<std::uint64_t>(csr.cols()),
                static_cast<std::uint64_t>(bs)));
    const Index blocks_per_row = m.paddedCols_ / bs;

    Bitmap level0(m.rows_ * blocks_per_row);
    const auto& row_ptr = csr.rowPtr();
    const auto& col_ind = csr.colInd();
    const auto& values = csr.values();
    for (Index r = 0; r < m.rows_; ++r) {
        for (fmt::CsrIndex j = row_ptr[static_cast<std::size_t>(r)];
             j < row_ptr[static_cast<std::size_t>(r) + 1]; ++j) {
            Index col = col_ind[static_cast<std::size_t>(j)];
            level0.set(r * blocks_per_row + col / bs);
        }
    }

    const Index n_blocks = level0.countSet();
    m.nza_.assign(static_cast<std::size_t>(n_blocks * bs), Value(0));
    Index cur_bit = -1;
    Index cur_block = -1;
    for (Index r = 0; r < m.rows_; ++r) {
        for (fmt::CsrIndex j = row_ptr[static_cast<std::size_t>(r)];
             j < row_ptr[static_cast<std::size_t>(r) + 1]; ++j) {
            Index col = col_ind[static_cast<std::size_t>(j)];
            Index bit = r * blocks_per_row + col / bs;
            if (bit != cur_bit) {
                assert(bit > cur_bit); // CSR iterates in order
                cur_bit = bit;
                ++cur_block;
            }
            m.nza_[static_cast<std::size_t>(cur_block * bs + col % bs)] =
                values[static_cast<std::size_t>(j)];
        }
    }
    assert(cur_block + 1 == n_blocks);

    m.hierarchy_ = BitmapHierarchy(cfg, std::move(level0));
    return m;
}

SmashMatrix
SmashMatrix::fromDense(const fmt::DenseMatrix& dense,
                       const HierarchyConfig& cfg)
{
    return fromCoo(fmt::denseToCoo(dense), cfg);
}

SmashMatrix
SmashMatrix::fromBlocks(Index rows, Index cols, const HierarchyConfig& cfg,
                        Bitmap level0, std::vector<Value> nza)
{
    const Index bs = cfg.blockSize();
    SmashMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.paddedCols_ = static_cast<Index>(
        roundUp(static_cast<std::uint64_t>(cols),
                static_cast<std::uint64_t>(bs)));
    SMASH_CHECK(level0.numBits() == rows * (m.paddedCols_ / bs),
                "Bitmap-0 size does not match the padded matrix grid");
    SMASH_CHECK(static_cast<Index>(nza.size()) == level0.countSet() * bs,
                "NZA size does not match Bitmap-0 population");
    Index nnz = 0;
    for (Value v : nza) {
        if (v != Value(0))
            ++nnz;
    }
    m.nnz_ = nnz;
    m.nza_ = std::move(nza);
    m.hierarchy_ = BitmapHierarchy(cfg, std::move(level0));
    return m;
}

const Value*
SmashMatrix::blockData(Index k) const
{
    assert(k >= 0 && k < numBlocks());
    return nza_.data() + static_cast<std::size_t>(k * blockSize());
}

BlockPosition
SmashMatrix::positionOfBit(Index bit) const
{
    assert(bit >= 0 && bit < hierarchy_.level(0).numBits());
    const Index bs = blockSize();
    Index linear = bit * bs;
    BlockPosition pos;
    pos.row = linear / paddedCols_;
    pos.colStart = linear % paddedCols_;
    pos.nzaBlock = hierarchy_.level(0).rankBefore(bit);
    return pos;
}

fmt::DenseMatrix
SmashMatrix::toDense() const
{
    fmt::DenseMatrix dense(rows_, cols_);
    const Bitmap& level0 = hierarchy_.level(0);
    const Index bs = blockSize();
    Index block = 0;
    for (Index bit = level0.findNextSet(0); bit >= 0;
         bit = level0.findNextSet(bit + 1), ++block) {
        Index linear = bit * bs;
        Index row = linear / paddedCols_;
        Index col0 = linear % paddedCols_;
        const Value* data = blockData(block);
        for (Index e = 0; e < bs; ++e) {
            Index col = col0 + e;
            if (col < cols_ && data[e] != Value(0))
                dense.at(row, col) = data[e];
        }
    }
    return dense;
}

fmt::CooMatrix
SmashMatrix::toCoo() const
{
    fmt::CooMatrix coo(rows_, cols_);
    const Bitmap& level0 = hierarchy_.level(0);
    const Index bs = blockSize();
    Index block = 0;
    for (Index bit = level0.findNextSet(0); bit >= 0;
         bit = level0.findNextSet(bit + 1), ++block) {
        Index linear = bit * bs;
        Index row = linear / paddedCols_;
        Index col0 = linear % paddedCols_;
        const Value* data = blockData(block);
        for (Index e = 0; e < bs; ++e) {
            if (col0 + e < cols_ && data[e] != Value(0))
                coo.add(row, col0 + e, data[e]);
        }
    }
    assert(coo.isCanonical());
    return coo;
}

fmt::CsrMatrix
SmashMatrix::toCsr() const
{
    return fmt::CsrMatrix::fromCoo(toCoo());
}

std::size_t
SmashMatrix::storageBytesCompact() const
{
    return hierarchy_.compactStorageBytes() + nza_.size() * sizeof(Value);
}

std::size_t
SmashMatrix::storageBytesDense() const
{
    return hierarchy_.denseStorageBytes() + nza_.size() * sizeof(Value);
}

double
SmashMatrix::localityOfSparsity() const
{
    if (nza_.empty())
        return 1.0;
    return static_cast<double>(nnz_) / static_cast<double>(nza_.size());
}

bool
SmashMatrix::checkInvariants() const
{
    const Bitmap& level0 = hierarchy_.level(0);
    if (level0.countSet() != numBlocks())
        return false;
    if (static_cast<Index>(nza_.size()) != numBlocks() * blockSize())
        return false;
    if (paddedCols_ % blockSize() != 0)
        return false;
    if (!hierarchy_.checkInvariants())
        return false;
    // Every stored block must contain at least one non-zero; zero
    // blocks would waste NZA space and break nnz accounting.
    for (Index k = 0; k < numBlocks(); ++k) {
        const Value* data = blockData(k);
        bool any = false;
        for (Index e = 0; e < blockSize(); ++e) {
            if (data[e] != Value(0)) {
                any = true;
                break;
            }
        }
        if (!any)
            return false;
    }
    return true;
}

} // namespace smash::core
