/**
 * @file
 * Fixed-length bit array backing one level of the SMASH hierarchy.
 *
 * Word-granular access is exposed because both the software-only
 * indexer (which loads 64-byte bitmap chunks and CLZ-scans them,
 * paper §4.4) and the BMU model (which fills 256-byte SRAM buffers,
 * §4.2) operate on raw words rather than on single bits.
 */

#ifndef SMASH_CORE_BITMAP_HH
#define SMASH_CORE_BITMAP_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace smash::core
{

/** Dense bit array with word-level access and set-bit scanning. */
class Bitmap
{
  public:
    Bitmap() = default;

    /** Create @p nbits cleared bits. */
    explicit Bitmap(Index nbits);

    Index numBits() const { return nbits_; }
    Index numWords() const { return static_cast<Index>(words_.size()); }

    void set(Index bit);
    void clear(Index bit);
    bool test(Index bit) const;

    /** Number of set bits in the whole bitmap. */
    Index countSet() const;

    /** Number of set bits in [0, bit). Used to locate NZA blocks. */
    Index rankBefore(Index bit) const;

    /**
     * Index of the first set bit at or after @p from, or -1 when no
     * further bit is set.
     */
    Index findNextSet(Index from) const;

    /** Raw word (bits [w*64, w*64+63]); tail bits are zero. */
    BitWord word(Index w) const { return words_[static_cast<std::size_t>(w)]; }

    /** Backing words, e.g. for buffer fills in the BMU model. */
    const std::vector<BitWord>& words() const { return words_; }

    /** Bytes needed to store the bitmap densely. */
    std::size_t storageBytes() const;

    bool operator==(const Bitmap& other) const = default;

  private:
    Index nbits_ = 0;
    std::vector<BitWord> words_;
};

} // namespace smash::core

#endif // SMASH_CORE_BITMAP_HH
