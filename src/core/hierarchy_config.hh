/**
 * @file
 * Configuration of the SMASH bitmap hierarchy (paper §3.2/§4.1).
 *
 * Level 0 is the finest bitmap: each Bitmap-0 bit covers
 * `ratio(0)` consecutive matrix elements — one NZA block. Each bit
 * of Bitmap-i (i > 0) covers `ratio(i)` bits of Bitmap-(i-1).
 *
 * The paper denotes a configuration for matrix Mi as
 * `Mi.b2.b1.b0` — compression ratios from the top of the hierarchy
 * down to Bitmap-0; fromPaperNotation() accepts that order.
 */

#ifndef SMASH_CORE_HIERARCHY_CONFIG_HH
#define SMASH_CORE_HIERARCHY_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace smash::core
{

/** Per-level compression ratios of a bitmap hierarchy. */
class HierarchyConfig
{
  public:
    /**
     * @param ratios_finest_first ratios[0] = elements per Bitmap-0
     *        bit (the NZA block size); ratios[i] = Bitmap-(i-1) bits
     *        per Bitmap-i bit. Every ratio must be >= 2 and the
     *        hierarchy must have 1..kMaxLevels levels.
     */
    explicit HierarchyConfig(std::vector<Index> ratios_finest_first);

    /**
     * Build from the paper's `b2.b1.b0` top-down notation, e.g.
     * fromPaperNotation({16, 4, 2}) is the Mi.16.4.2 configuration:
     * Bitmap-2 ratio 16, Bitmap-1 ratio 4, Bitmap-0 ratio 2.
     */
    static HierarchyConfig fromPaperNotation(std::vector<Index> top_down);

    /** Number of bitmap levels (1..kMaxLevels). */
    int levels() const { return static_cast<int>(ratios_.size()); }

    /** Compression ratio of Bitmap-@p level (level 0 = finest). */
    Index ratio(int level) const;

    /** Elements covered by one NZA block (= ratio(0)). */
    Index blockSize() const { return ratios_.front(); }

    /** Matrix elements covered by one bit of Bitmap-@p level. */
    Index elementsPerBit(int level) const;

    /** Human-readable "b2.b1.b0" string (paper notation). */
    std::string toString() const;

    bool operator==(const HierarchyConfig& other) const = default;

    /** Maximum supported hierarchy depth (matches the 3-buffer BMU
     *  group plus headroom for experimentation). */
    static constexpr int kMaxLevels = 4;

  private:
    std::vector<Index> ratios_; // [0] = finest
};

} // namespace smash::core

#endif // SMASH_CORE_HIERARCHY_CONFIG_HH
