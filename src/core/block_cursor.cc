#include "core/block_cursor.hh"

#include <algorithm>
#include <cassert>

#include "common/bitops.hh"

namespace smash::core
{

BlockCursor::BlockCursor(const SmashMatrix& matrix)
    : matrix_(matrix)
{
    lastWord_.fill(-1);
    reset();
}

void
BlockCursor::setRange(Index from_bit, Index to_bit)
{
    const BitmapHierarchy& h = matrix_.hierarchy();
    const int top = h.levels() - 1;
    Index from = from_bit;
    Index to = to_bit;
    for (int l = 0; l <= top; ++l) {
        auto sl = static_cast<std::size_t>(l);
        if (l > 0) {
            Index r = h.config().ratio(l);
            from = from / r;
            to = (to + r - 1) / r;
        }
        from_[sl] = from;
        to_[sl] = std::min(to, h.level(l).numBits());
        cur_[sl] = from_[sl];
        end_[sl] = l == top ? to_[sl] : from_[sl]; // empty below top
    }
    levelPos_ = top;
    blocksEmitted_ = 0;
    done_ = false;
}

void
BlockCursor::reset()
{
    setRange(0, matrix_.hierarchy().level(0).numBits());
}

void
BlockCursor::beginRange(Index from_bit, Index to_bit)
{
    setRange(from_bit, to_bit);
}

Index
BlockCursor::scanLevel(int level, Index from, Index end)
{
    const Bitmap& bm = matrix_.hierarchy().level(level);
    end = std::min(end, bm.numBits());
    if (from >= end)
        return -1;

    auto touch = [&](Index w) {
        ++stats_.wordLoads;
        if (recordTouches_)
            touches_.push_back({level, w});
        auto sl = static_cast<std::size_t>(level);
        if (w != lastWord_[sl]) {
            ++stats_.freshWords;
            lastWord_[sl] = w;
        }
    };

    Index w = from / kBitsPerWord;
    const Index w_end = (end + kBitsPerWord - 1) / kBitsPerWord;
    touch(w);
    BitWord word = bm.word(w);
    // Mask off bits below `from` (the AND step of §4.4).
    word &= ~BitWord(0) << (from % kBitsPerWord);
    ++stats_.bitOps;
    while (true) {
        if (word != 0) {
            ++stats_.bitOps; // the CLZ-style scan
            Index bit = w * kBitsPerWord + findFirstSet(word);
            return bit < end ? bit : -1;
        }
        if (++w >= w_end)
            return -1;
        touch(w);
        word = bm.word(w);
    }
}

bool
BlockCursor::next(BlockPosition& pos)
{
    if (done_)
        return false;

    const BitmapHierarchy& h = matrix_.hierarchy();
    const int top = h.levels() - 1;
    int lvl = levelPos_;
    while (true) {
        auto sl = static_cast<std::size_t>(lvl);
        Index bit = scanLevel(lvl, cur_[sl], end_[sl]);
        if (bit < 0) {
            if (lvl == top) {
                done_ = true;
                return false;
            }
            ++lvl; // pop back to the parent level
            continue;
        }
        cur_[sl] = bit + 1;
        if (lvl == 0) {
            // Row/column from register arithmetic; the NZA ordinal is
            // a running count (relative to the start of the current
            // range) — positionOfBit()'s rank scan would be O(bitmap)
            // per block and is not needed on a sequential traversal.
            const Index linear = bit * matrix_.blockSize();
            pos.row = linear / matrix_.paddedCols();
            pos.colStart = linear % matrix_.paddedCols();
            pos.nzaBlock = blocksEmitted_++;
            levelPos_ = 0;
            return true;
        }
        // Descend into the covered range of the level below, clipped
        // to the active range restriction.
        Index ratio = h.config().ratio(lvl);
        auto below = static_cast<std::size_t>(lvl - 1);
        cur_[below] = std::max(bit * ratio, from_[below]);
        end_[below] = std::min((bit + 1) * ratio, to_[below]);
        --lvl;
    }
}

} // namespace smash::core
