#include "core/bitmap.hh"

#include <cassert>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace smash::core
{

Bitmap::Bitmap(Index nbits)
    : nbits_(nbits),
      words_(static_cast<std::size_t>(
          ceilDiv(static_cast<std::uint64_t>(nbits), kBitsPerWord)), 0)
{
    SMASH_CHECK(nbits >= 0, "negative bitmap size ", nbits);
}

void
Bitmap::set(Index bit)
{
    assert(bit >= 0 && bit < nbits_);
    words_[static_cast<std::size_t>(bit / kBitsPerWord)] |=
        BitWord(1) << (bit % kBitsPerWord);
}

void
Bitmap::clear(Index bit)
{
    assert(bit >= 0 && bit < nbits_);
    words_[static_cast<std::size_t>(bit / kBitsPerWord)] &=
        ~(BitWord(1) << (bit % kBitsPerWord));
}

bool
Bitmap::test(Index bit) const
{
    assert(bit >= 0 && bit < nbits_);
    return (words_[static_cast<std::size_t>(bit / kBitsPerWord)] >>
            (bit % kBitsPerWord)) & 1;
}

Index
Bitmap::countSet() const
{
    Index count = 0;
    for (BitWord w : words_)
        count += popcount(w);
    return count;
}

Index
Bitmap::rankBefore(Index bit) const
{
    assert(bit >= 0 && bit <= nbits_);
    Index count = 0;
    Index full_words = bit / kBitsPerWord;
    for (Index w = 0; w < full_words; ++w)
        count += popcount(words_[static_cast<std::size_t>(w)]);
    int rem = static_cast<int>(bit % kBitsPerWord);
    if (rem > 0) {
        BitWord mask = (BitWord(1) << rem) - 1;
        count += popcount(words_[static_cast<std::size_t>(full_words)] & mask);
    }
    return count;
}

Index
Bitmap::findNextSet(Index from) const
{
    if (from < 0)
        from = 0;
    if (from >= nbits_)
        return -1;
    Index w = from / kBitsPerWord;
    int bit_in_word = static_cast<int>(from % kBitsPerWord);
    BitWord cur = words_[static_cast<std::size_t>(w)] &
        (~BitWord(0) << bit_in_word);
    while (true) {
        if (cur != 0) {
            Index found = w * kBitsPerWord + findFirstSet(cur);
            return found < nbits_ ? found : -1;
        }
        if (++w >= numWords())
            return -1;
        cur = words_[static_cast<std::size_t>(w)];
    }
}

std::size_t
Bitmap::storageBytes() const
{
    return static_cast<std::size_t>(
        ceilDiv(static_cast<std::uint64_t>(nbits_), 8));
}

} // namespace smash::core
