/**
 * @file
 * A sparse matrix in the SMASH encoding (paper §3.2/§4.1): a bitmap
 * hierarchy describing which fixed-size element blocks are non-zero,
 * plus the Non-Zero Values Array (NZA) holding those blocks
 * contiguously.
 *
 * Linearization: rows are padded to a multiple of the block size
 * (paddedCols) so an NZA block never straddles a row boundary. The
 * k-th set bit of Bitmap-0 corresponds to the k-th block of the NZA
 * and covers padded-linear element indices
 * [bit * blockSize, (bit+1) * blockSize).
 */

#ifndef SMASH_CORE_SMASH_MATRIX_HH
#define SMASH_CORE_SMASH_MATRIX_HH

#include <cstddef>
#include <vector>

#include "core/bitmap_hierarchy.hh"
#include "core/hierarchy_config.hh"
#include "formats/coo_matrix.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"

namespace smash::core
{

/** Position of one non-zero block inside the original matrix. */
struct BlockPosition
{
    Index row;      //!< matrix row of every element in the block
    Index colStart; //!< matrix column of the first element
    Index nzaBlock; //!< ordinal of the block inside the NZA
};

/** Sparse matrix held as bitmap hierarchy + NZA. */
class SmashMatrix
{
  public:
    SmashMatrix() = default;

    /** Encode a canonical COO matrix. */
    static SmashMatrix fromCoo(const fmt::CooMatrix& coo,
                               const HierarchyConfig& cfg);

    /** Encode a CSR matrix (the paper's §4.1.3 conversion path). */
    static SmashMatrix fromCsr(const fmt::CsrMatrix& csr,
                               const HierarchyConfig& cfg);

    /** Encode a dense matrix. */
    static SmashMatrix fromDense(const fmt::DenseMatrix& dense,
                                 const HierarchyConfig& cfg);

    /**
     * Assemble directly from a Bitmap-0 occupancy pattern and a
     * matching NZA (used by kernels that produce SMASH output, e.g.
     * bitmap-OR sparse addition). The caller guarantees that the
     * k-th set bit corresponds to NZA block k and that no stored
     * block is entirely zero.
     */
    static SmashMatrix fromBlocks(Index rows, Index cols,
                                  const HierarchyConfig& cfg,
                                  Bitmap level0, std::vector<Value> nza);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** Columns padded up to a multiple of the block size. */
    Index paddedCols() const { return paddedCols_; }

    /** True non-zero count of the encoded matrix. */
    Index nnz() const { return nnz_; }

    const HierarchyConfig& config() const { return hierarchy_.config(); }
    const BitmapHierarchy& hierarchy() const { return hierarchy_; }

    /** Elements per NZA block. */
    Index blockSize() const { return config().blockSize(); }

    /** Number of blocks stored in the NZA. */
    Index numBlocks() const
    {
        return static_cast<Index>(nza_.size()) / blockSize();
    }

    /** The Non-Zero Values Array (block-contiguous). */
    const std::vector<Value>& nza() const { return nza_; }

    /** Pointer to the first value of NZA block @p k. */
    const Value* blockData(Index k) const;

    /** Matrix position of the block encoded by Bitmap-0 bit @p bit. */
    BlockPosition positionOfBit(Index bit) const;

    /** Decode back to dense (test oracle). */
    fmt::DenseMatrix toDense() const;

    /** Decode back to canonical COO (SMASHtoCSR path of Fig. 20). */
    fmt::CooMatrix toCoo() const;

    /** Decode to CSR. */
    fmt::CsrMatrix toCsr() const;

    /**
     * Total bytes with compact bitmap storage (Fig. 4b): compacted
     * hierarchy + NZA. This is the Fig. 19 numerator for SMASH.
     */
    std::size_t storageBytesCompact() const;

    /** Total bytes with every bitmap level stored densely. */
    std::size_t storageBytesDense() const;

    /**
     * Locality of sparsity (paper §7.2.3): average non-zeros per NZA
     * block over the block size, as a fraction in (0, 1].
     */
    double localityOfSparsity() const;

    /** Cross-structure invariants (bitmap popcount vs NZA size...). */
    bool checkInvariants() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    Index paddedCols_ = 0;
    Index nnz_ = 0;
    BitmapHierarchy hierarchy_;
    std::vector<Value> nza_;
};

} // namespace smash::core

#endif // SMASH_CORE_SMASH_MATRIX_HH
