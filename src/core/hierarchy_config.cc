#include "core/hierarchy_config.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace smash::core
{

HierarchyConfig::HierarchyConfig(std::vector<Index> ratios_finest_first)
    : ratios_(std::move(ratios_finest_first))
{
    SMASH_CHECK(!ratios_.empty() &&
                ratios_.size() <= static_cast<std::size_t>(kMaxLevels),
                "hierarchy must have 1..", kMaxLevels, " levels, got ",
                ratios_.size());
    for (Index r : ratios_) {
        SMASH_CHECK(r >= 2, "compression ratio must be >= 2, got ", r);
    }
}

HierarchyConfig
HierarchyConfig::fromPaperNotation(std::vector<Index> top_down)
{
    std::reverse(top_down.begin(), top_down.end());
    return HierarchyConfig(std::move(top_down));
}

Index
HierarchyConfig::ratio(int level) const
{
    SMASH_CHECK(level >= 0 && level < levels(), "bad level ", level);
    return ratios_[static_cast<std::size_t>(level)];
}

Index
HierarchyConfig::elementsPerBit(int level) const
{
    SMASH_CHECK(level >= 0 && level < levels(), "bad level ", level);
    Index elems = 1;
    for (int i = 0; i <= level; ++i)
        elems *= ratios_[static_cast<std::size_t>(i)];
    return elems;
}

std::string
HierarchyConfig::toString() const
{
    std::ostringstream os;
    for (int i = levels() - 1; i >= 0; --i) {
        os << ratios_[static_cast<std::size_t>(i)];
        if (i > 0)
            os << ".";
    }
    return os.str();
}

} // namespace smash::core
