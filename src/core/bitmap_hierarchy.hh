/**
 * @file
 * The hierarchy of bitmaps (paper §4.1): Bitmap-0 marks which NZA
 * blocks exist; each higher level summarizes `ratio(i)` bits of the
 * level below with one bit. Built bottom-up from a Bitmap-0
 * occupancy pattern.
 */

#ifndef SMASH_CORE_BITMAP_HIERARCHY_HH
#define SMASH_CORE_BITMAP_HIERARCHY_HH

#include <cstddef>
#include <vector>

#include "core/bitmap.hh"
#include "core/hierarchy_config.hh"

namespace smash::core
{

/** Multi-level bitmap with per-level compression ratios. */
class BitmapHierarchy
{
  public:
    BitmapHierarchy() = default;

    /**
     * Build all levels from the finest one.
     * @param cfg per-level ratios
     * @param level0 occupancy of NZA blocks (one bit per block)
     */
    BitmapHierarchy(const HierarchyConfig& cfg, Bitmap level0);

    const HierarchyConfig& config() const { return cfg_; }
    int levels() const { return cfg_.levels(); }

    /** Bitmap at @p level (0 = finest). */
    const Bitmap& level(int lvl) const;

    /**
     * Verify the summarization invariant: a level-i bit is set iff
     * at least one covered level-(i-1) bit is set.
     */
    bool checkInvariants() const;

    /**
     * Bytes to store every level densely (the working in-memory
     * representation).
     */
    std::size_t denseStorageBytes() const;

    /**
     * Bytes to store the hierarchy with the Fig. 4b compaction: the
     * top level is kept whole; for each lower level i only the bit
     * groups whose parent (level i+1) bit is set are materialized.
     */
    std::size_t compactStorageBytes() const;

  private:
    HierarchyConfig cfg_{std::vector<Index>{2}};
    std::vector<Bitmap> levels_; // [0] = finest
};

} // namespace smash::core

#endif // SMASH_CORE_BITMAP_HIERARCHY_HH
