#include "common/cpu_features.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"

namespace smash::simd
{
namespace
{

CpuFeatures
probe()
{
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    __builtin_cpu_init();
    f.popcnt = __builtin_cpu_supports("popcnt");
    f.avx2 = __builtin_cpu_supports("avx2");
    f.bmi2 = __builtin_cpu_supports("bmi2");
    f.avx512f = __builtin_cpu_supports("avx512f");
#endif
    return f;
}

/** detectedIsaLevel() clamped by what the binary's variants need. */
IsaLevel
bestLevel(const CpuFeatures& f)
{
    if (f.avx512f && f.avx2 && f.bmi2 && f.popcnt)
        return IsaLevel::kAvx512;
    if (f.avx2 && f.bmi2 && f.popcnt)
        return IsaLevel::kAvx2;
    return IsaLevel::kScalar;
}

/** Initial active level: detection, lowered by SMASH_FORCE_ISA. */
IsaLevel
initialLevel()
{
    IsaLevel level = bestLevel(cpuFeatures());
    const char* force = std::getenv("SMASH_FORCE_ISA");
    if (force == nullptr || *force == '\0')
        return level;
    IsaLevel wanted;
    if (!parseIsaLevel(force, wanted)) {
        warn(detail::formatMessage(
            "SMASH_FORCE_ISA=", force,
            " is not scalar|avx2|avx512; keeping ", toString(level)));
        return level;
    }
    if (wanted > level) {
        warn(detail::formatMessage(
            "SMASH_FORCE_ISA=", force,
            " exceeds what this host supports; keeping ",
            toString(level)));
        return level;
    }
    return wanted;
}

std::atomic<IsaLevel>&
activeLevelSlot()
{
    static std::atomic<IsaLevel> level{initialLevel()};
    return level;
}

} // namespace

const CpuFeatures&
cpuFeatures()
{
    static const CpuFeatures features = probe();
    return features;
}

IsaLevel
detectedIsaLevel()
{
    return bestLevel(cpuFeatures());
}

IsaLevel
activeIsaLevel()
{
    return activeLevelSlot().load(std::memory_order_relaxed);
}

bool
setIsaLevel(IsaLevel level)
{
    if (level > detectedIsaLevel())
        return false;
    activeLevelSlot().store(level, std::memory_order_relaxed);
    return true;
}

const char*
toString(IsaLevel level)
{
    switch (level) {
      case IsaLevel::kScalar:
        return "scalar";
      case IsaLevel::kAvx2:
        return "avx2";
      case IsaLevel::kAvx512:
        return "avx512";
    }
    return "unknown";
}

bool
parseIsaLevel(std::string_view text, IsaLevel& out)
{
    if (text == "scalar") {
        out = IsaLevel::kScalar;
        return true;
    }
    if (text == "avx2") {
        out = IsaLevel::kAvx2;
        return true;
    }
    if (text == "avx512") {
        out = IsaLevel::kAvx512;
        return true;
    }
    return false;
}

} // namespace smash::simd
