/**
 * @file
 * Fundamental fixed-width type aliases shared by every SMASH module.
 *
 * The simulator-facing code follows the gem5 convention of short,
 * explicit integer aliases so that sizes of architectural quantities
 * (addresses, cycle counts, instruction counts) are obvious at a
 * glance.
 */

#ifndef SMASH_COMMON_TYPES_HH
#define SMASH_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace smash
{

/** Byte-addressable memory address in the simulated address space. */
using Addr = std::uint64_t;

/** Simulated clock cycles. */
using Cycles = std::uint64_t;

/** Dynamic instruction counts. */
using Counter = std::uint64_t;

/** Matrix row/column index. Signed to make reverse loops safe. */
using Index = std::int64_t;

/** Matrix element value type used throughout the library. */
using Value = double;

/** One machine word of bitmap storage. */
using BitWord = std::uint64_t;

/** Number of bits held by a single BitWord. */
inline constexpr int kBitsPerWord = 64;

/** Cache line size assumed by the memory model (bytes). */
inline constexpr int kCacheLineBytes = 64;

} // namespace smash

#endif // SMASH_COMMON_TYPES_HH
