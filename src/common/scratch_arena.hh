/**
 * @file
 * Per-thread scratch storage for the steady-state compute path.
 *
 * The engine's dispatch drivers need short-lived buffers on every
 * call: the zero-extended x operand, per-chunk y accumulators for
 * the scatter formats, and small pointer tables naming those
 * accumulators for the merge. Allocating them per call is exactly
 * the setup cost the fig20 analysis warns about for short-running
 * kernels, so a ScratchArena keeps them alive between calls:
 * buffers only ever grow, and a warmed arena hands out storage with
 * zero heap allocations.
 *
 * Ownership/threading contract: an arena belongs to exactly one
 * thread. ThreadPool owns one arena per worker and binds it to the
 * worker thread for its lifetime; every other thread lazily creates
 * its own thread-local arena on first use. local() therefore never
 * returns an arena shared with another thread. Buffer *contents*
 * may be written by other threads while a dispatch call is in
 * flight (the scatter drivers hand per-chunk accumulators to pool
 * workers); the parallelFor completion barrier orders those writes
 * before the owner reads them back. Slot assignments are owned by
 * the dispatch layer (engine/dispatch.hh) — kernels never touch
 * arenas, and drivers must not nest two arena-using drivers on one
 * thread.
 */

#ifndef SMASH_COMMON_SCRATCH_ARENA_HH
#define SMASH_COMMON_SCRATCH_ARENA_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace smash::exec
{

/** Grow-only per-thread scratch buffers (see file comment). */
class ScratchArena
{
  public:
    // Slot assignments of the dispatch layer. Scatter accumulators
    // occupy kScatterBase + chunk for chunk in [0, pool threads).
    static constexpr std::size_t kPaddedX = 0;
    static constexpr std::size_t kBatchXr = 1;
    static constexpr std::size_t kBatchYr = 2;
    static constexpr std::size_t kScatterBase = 8;

    ScratchArena() = default;
    ScratchArena(const ScratchArena&) = delete;
    ScratchArena& operator=(const ScratchArena&) = delete;

    /**
     * The value buffer of @p slot, grown to hold at least @p n
     * elements. Contents beyond what the caller last wrote are
     * unspecified; callers needing zeros fill the prefix they use.
     * The reference (and the buffer's address) stays valid across
     * later calls for *other* slots — buffers never move once
     * handed out.
     */
    std::vector<Value>&
    values(std::size_t slot, std::size_t n)
    {
        if (buffers_.size() <= slot)
            buffers_.resize(slot + 1);
        if (!buffers_[slot])
            buffers_[slot] = std::make_unique<std::vector<Value>>();
        std::vector<Value>& buf = *buffers_[slot];
        if (buf.size() < n)
            buf.resize(n);
        return buf;
    }

    /** Reusable pointer table of at least @p n entries (the scatter
     *  drivers' per-chunk accumulator list). */
    std::vector<std::vector<Value>*>&
    pointers(std::size_t n)
    {
        if (pointers_.size() < n)
            pointers_.resize(n);
        return pointers_;
    }

    /**
     * The calling thread's arena: the ThreadPool-owned one inside a
     * worker, a lazily created thread-local one anywhere else.
     */
    static ScratchArena& local();

    /** Bind @p arena to the calling thread (ThreadPool worker
     *  setup; pass nullptr to unbind). */
    static void bind(ScratchArena* arena);

  private:
    // unique_ptr indirection keeps buffer addresses stable while
    // the slot table itself grows.
    std::vector<std::unique_ptr<std::vector<Value>>> buffers_;
    std::vector<std::vector<Value>*> pointers_;
};

} // namespace smash::exec

#endif // SMASH_COMMON_SCRATCH_ARENA_HH
