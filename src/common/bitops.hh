/**
 * @file
 * Bit-manipulation helpers used by the bitmap hierarchy and the BMU.
 *
 * The software-only SMASH indexer (paper §4.4) is specified in terms
 * of Count-Leading-Zeros and AND-mask operations; these wrappers give
 * them well-defined behaviour for zero inputs and centralize the use
 * of compiler intrinsics.
 */

#ifndef SMASH_COMMON_BITOPS_HH
#define SMASH_COMMON_BITOPS_HH

#include <bit>
#include <cassert>

#include "common/types.hh"

namespace smash
{

/** Number of set bits in @p w. */
inline int
popcount(BitWord w)
{
    return std::popcount(w);
}

/**
 * Index (0 = least significant) of the lowest set bit of @p w.
 * @pre w != 0
 */
inline int
findFirstSet(BitWord w)
{
    assert(w != 0);
    return std::countr_zero(w);
}

/**
 * Index of the highest set bit of @p w (the CLZ-style scan the paper
 * describes for software-only SMASH).
 * @pre w != 0
 */
inline int
findLastSet(BitWord w)
{
    assert(w != 0);
    return kBitsPerWord - 1 - std::countl_zero(w);
}

/** Clear the lowest set bit of @p w. */
inline BitWord
clearLowestSet(BitWord w)
{
    return w & (w - 1);
}

/** True when @p v is a power of two (zero is not). */
inline bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Smallest multiple of @p align that is >= @p v. @pre align > 0 */
inline std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    assert(align > 0);
    return ((v + align - 1) / align) * align;
}

/** ceil(a / b) for unsigned quantities. @pre b > 0 */
inline std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    assert(b > 0);
    return (a + b - 1) / b;
}

} // namespace smash

#endif // SMASH_COMMON_BITOPS_HH
