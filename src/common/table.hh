/**
 * @file
 * Minimal fixed-width text-table writer used by the benchmark
 * harnesses to print paper-style rows/series.
 */

#ifndef SMASH_COMMON_TABLE_HH
#define SMASH_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace smash
{

/**
 * Collects rows of string cells and prints them with per-column
 * alignment. Numeric cells should be pre-formatted by the caller
 * (the harness controls significant digits per figure).
 */
class TextTable
{
  public:
    /** @param title Heading printed above the table. */
    explicit TextTable(std::string title);

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render the table to @p os. */
    void print(std::ostream& os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p v with @p digits digits after the decimal point. */
std::string formatFixed(double v, int digits);

} // namespace smash

#endif // SMASH_COMMON_TABLE_HH
