#include "common/numa_topology.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace smash::sys
{

namespace
{

/** Parse a sysfs cpulist ("0-3,8,10-11") into sorted CPU ids. */
std::vector<int>
parseCpuList(const std::string& text)
{
    std::vector<int> cpus;
    std::stringstream ss(text);
    std::string range;
    while (std::getline(ss, range, ',')) {
        if (range.empty() || !std::isdigit(static_cast<unsigned char>(range[0])))
            continue;
        const std::size_t dash = range.find('-');
        char* end = nullptr;
        const long lo = std::strtol(range.c_str(), &end, 10);
        long hi = lo;
        if (dash != std::string::npos)
            hi = std::strtol(range.c_str() + dash + 1, &end, 10);
        for (long c = lo; c <= hi && c - lo < 4096; ++c)
            cpus.push_back(static_cast<int>(c));
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

int
hardwareCpus()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

NumaNode
fallbackNode()
{
    NumaNode n;
    n.id = 0;
    const int ncpu = hardwareCpus();
    n.cpus.reserve(static_cast<std::size_t>(ncpu));
    for (int c = 0; c < ncpu; ++c)
        n.cpus.push_back(c);
    return n;
}

}  // namespace

int
NumaTopology::cpuCount() const
{
    std::size_t n = 0;
    for (const NumaNode& node : nodes_)
        n += node.cpus.size();
    return n == 0 ? 1 : static_cast<int>(n);
}

std::vector<int>
NumaTopology::nodeMajorCpuOrder() const
{
    std::vector<int> order;
    for (const NumaNode& node : nodes_)
        order.insert(order.end(), node.cpus.begin(), node.cpus.end());
    if (order.empty())
        order.push_back(0);
    return order;
}

std::vector<int>
NumaTopology::shardCpus(int shard, int shards) const
{
    if (shards < 1)
        shards = 1;
    if (shard < 0)
        shard = 0;
    if (nodeCount() > 1) {
        const NumaNode& n = node(shard % nodeCount());
        if (!n.cpus.empty())
            return n.cpus;
    }
    // 1-node host (or an empty node entry): round-robin the flat
    // CPU list into `shards` interleaved subsets.
    const std::vector<int> order = nodeMajorCpuOrder();
    std::vector<int> cpus;
    for (std::size_t i = 0; i < order.size(); ++i)
        if (static_cast<int>(i) % shards == shard % shards)
            cpus.push_back(order[i]);
    if (cpus.empty())
        cpus.push_back(order[static_cast<std::size_t>(shard) % order.size()]);
    return cpus;
}

int
NumaTopology::shardNode(int shard) const
{
    if (shard < 0)
        shard = 0;
    return node(shard % nodeCount()).id;
}

NumaTopology
NumaTopology::probeUncached()
{
    NumaTopology topo;
#if defined(__linux__)
    for (int id = 0; id < 1024; ++id) {
        std::ifstream in("/sys/devices/system/node/node" +
                         std::to_string(id) + "/cpulist");
        if (!in.is_open()) {
            if (id == 0)
                break;  // no sysfs node tree at all
            // Node ids are contiguous on Linux; stop at the first gap.
            break;
        }
        std::string line;
        std::getline(in, line);
        NumaNode node;
        node.id = id;
        node.cpus = parseCpuList(line);
        if (!node.cpus.empty())
            topo.nodes_.push_back(std::move(node));
    }
#endif
    if (topo.nodes_.empty())
        topo.nodes_.push_back(fallbackNode());
    return topo;
}

const NumaTopology&
NumaTopology::probe()
{
    static const NumaTopology topo = probeUncached();
    return topo;
}

}  // namespace smash::sys
