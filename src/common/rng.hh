/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * generators and property tests.
 *
 * A small PCG32 implementation is used instead of std::mt19937 so
 * that every platform and standard library produces bit-identical
 * workloads for a given seed, which keeps benchmark tables and test
 * expectations reproducible.
 */

#ifndef SMASH_COMMON_RNG_HH
#define SMASH_COMMON_RNG_HH

#include <cassert>
#include <cstdint>

namespace smash
{

/**
 * PCG32 (O'Neill, pcg-random.org): 64-bit state, 32-bit output,
 * XSH-RR output function. Small, fast, and statistically strong
 * enough for synthetic workload generation.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL)
        : state_(0), inc_((stream << 1) | 1)
    {
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    nextU32()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    nextU64()
    {
        return (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound > 0);
        // Lemire-style rejection-free-enough multiply-shift; the tiny
        // modulo bias of the fallback is irrelevant for workloads.
        return nextU64() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (nextU64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace smash

#endif // SMASH_COMMON_RNG_HH
