#include "common/scratch_arena.hh"

namespace smash::exec
{

namespace
{

thread_local ScratchArena* tls_bound = nullptr;

} // namespace

ScratchArena&
ScratchArena::local()
{
    if (tls_bound != nullptr)
        return *tls_bound;
    // Fallback for threads outside any pool (bench main threads,
    // test drivers): one arena per thread, created on first use and
    // destroyed with the thread.
    thread_local ScratchArena fallback;
    return fallback;
}

void
ScratchArena::bind(ScratchArena* arena)
{
    tls_bound = arena;
}

} // namespace smash::exec
