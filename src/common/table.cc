#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace smash
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    SMASH_CHECK(header_.empty() || row.size() == header_.size(),
                "row width ", row.size(), " != header width ",
                header_.size(), " in table '", title_, "'");
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header_.size(), 0);
    auto grow = [&](const std::vector<std::string>& row) {
        if (width.size() < row.size())
            width.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    grow(header_);
    for (const auto& row : rows_)
        grow(row);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_)
        emit(row);
    os.flush();
}

std::string
formatFixed(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

} // namespace smash
