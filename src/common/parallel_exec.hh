/**
 * @file
 * Multi-threaded execution model. ParallelExec is a third policy
 * besides NativeExec and SimExec: like NativeExec its cost hooks
 * are empty (the kernels run at native speed), but it additionally
 * carries a work-sharing thread pool, so the engine's dispatch
 * layer routes SpMV through the parallel row-range drivers instead
 * of the serial kernels. SimExec stays strictly serial: the cost
 * model charges a single-core machine, and interleaving accesses
 * from several threads would destroy its accuracy.
 */

#ifndef SMASH_COMMON_PARALLEL_EXEC_HH
#define SMASH_COMMON_PARALLEL_EXEC_HH

#include <cstddef>
#include <memory>

#include "common/thread_pool.hh"
#include "common/types.hh"
#include "sim/machine.hh"

namespace smash::exec
{

/**
 * Execution model that runs kernels natively across a thread pool.
 * Satisfies the same hook vocabulary as sim::NativeExec (all
 * no-ops), plus parallelFor() for the engine's parallel drivers.
 */
class ParallelExec
{
  public:
    static constexpr bool kSimulated = false;

    /** Create with an internally owned pool of @p threads workers. */
    explicit ParallelExec(int threads)
        : owned_(std::make_shared<ThreadPool>(threads)), pool_(owned_.get())
    {}

    /** Create with an internally owned pool built from @p options
     *  (thread count, worker CPU pinning). */
    explicit ParallelExec(const ThreadPool::Options& options)
        : owned_(std::make_shared<ThreadPool>(options)),
          pool_(owned_.get())
    {}

    /** Share an existing pool (e.g. one pool for a whole server). */
    explicit ParallelExec(ThreadPool& pool)
        : pool_(&pool)
    {}

    int threads() const { return pool_->size(); }
    ThreadPool& pool() { return *pool_; }

    /** Partition [begin, end) over the pool; blocks until done. */
    template <typename F>
    void
    parallelFor(Index begin, Index end, Index min_grain, const F& body)
    {
        pool_->parallelFor(begin, end, min_grain, body);
    }

    // --- Execution-model hooks (zero cost, same as NativeExec). ---
    void op(int /*n*/ = 1) {}
    void load(const void* /*p*/, std::size_t /*bytes*/,
              sim::Dep /*dep*/ = sim::Dep::kIndependent) {}
    void store(const void* /*p*/, std::size_t /*bytes*/) {}
    void deviceFetch(const void* /*p*/, std::size_t /*bytes*/) {}
    void loadAddr(Addr /*a*/, std::size_t /*bytes*/,
                  sim::Dep /*dep*/ = sim::Dep::kIndependent) {}
    void deviceFetchAddr(Addr /*a*/, std::size_t /*bytes*/) {}

  private:
    std::shared_ptr<ThreadPool> owned_; //!< null when the pool is shared
    ThreadPool* pool_;
};

} // namespace smash::exec

#endif // SMASH_COMMON_PARALLEL_EXEC_HH
