#include "common/logging.hh"

#include <iostream>

namespace smash
{

namespace detail
{

namespace
{

std::string
located(const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << msg << " (" << file << ":" << line << ")";
    return os.str();
}

} // namespace

void
throwFatal(const char* file, int line, const std::string& msg)
{
    throw FatalError(located(file, line, "fatal: " + msg));
}

void
throwPanic(const char* file, int line, const std::string& msg)
{
    throw PanicError(located(file, line, "panic: " + msg));
}

} // namespace detail

void
warn(const std::string& msg)
{
    std::cerr << "warn: " << msg << "\n";
}

} // namespace smash
