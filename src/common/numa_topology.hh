/**
 * @file numa_topology.hh
 * NUMA topology probe: which CPUs belong to which memory node.
 *
 * Linux exposes the node layout under /sys/devices/system/node/;
 * probe() parses node<N>/cpulist once per process and caches the
 * result. On hosts without that sysfs tree (single-node machines,
 * containers, non-Linux platforms) the probe degrades to one node
 * holding every CPU, so callers never need a special case: a
 * 1-node topology simply makes every placement decision collapse
 * to "anywhere".
 *
 * Consumers:
 *  - exec::ThreadPool::pinWorkers() pins worker t to the t-th CPU
 *    in *node-major* order (all of node 0's CPUs, then node 1's,
 *    ...) so a pool smaller than the machine stays on few nodes.
 *  - shard::ShardedMatrix derives each shard's CPU subset from the
 *    node list (shard k -> node k mod nodes) and first-touches the
 *    shard's arrays there.
 */

#ifndef SMASH_COMMON_NUMA_TOPOLOGY_HH_
#define SMASH_COMMON_NUMA_TOPOLOGY_HH_

#include <vector>

namespace smash::sys
{

/** One memory node and the CPUs local to it. */
struct NumaNode
{
    int id = 0;
    std::vector<int> cpus;
};

class NumaTopology
{
  public:
    /** Number of memory nodes (>= 1, even on the fallback path). */
    int nodeCount() const { return static_cast<int>(nodes_.size()); }

    /** Total CPUs across all nodes (>= 1). */
    int cpuCount() const;

    const std::vector<NumaNode>& nodes() const { return nodes_; }

    const NumaNode& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }

    /**
     * All CPU ids, node-major: node 0's CPUs in ascending order,
     * then node 1's, and so on. On a 1-node host this is the
     * identity order 0..cpuCount()-1, which keeps ThreadPool
     * pinning byte-compatible with the pre-topology behaviour
     * (worker t -> CPU t mod cpuCount).
     */
    std::vector<int> nodeMajorCpuOrder() const;

    /**
     * CPU subset for shard @p shard of @p shards total. With more
     * than one node, shard k gets all of node (k mod nodes) — NUMA
     * placement proper. On a 1-node host it degrades to
     * round-robin: shard k gets CPUs {c : c mod shards == k} (or a
     * single wrapped CPU when shards > cpuCount()). Never empty.
     */
    std::vector<int> shardCpus(int shard, int shards) const;

    /** Node id shard @p shard maps to (k mod nodeCount). */
    int shardNode(int shard) const;

    /** The cached per-process topology (probed once, thread-safe). */
    static const NumaTopology& probe();

    /** Uncached sysfs read; exposed for tests. */
    static NumaTopology probeUncached();

  private:
    std::vector<NumaNode> nodes_;
};

}  // namespace smash::sys

#endif  // SMASH_COMMON_NUMA_TOPOLOGY_HH_
