/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  — the condition is the caller's fault (bad configuration,
 *            malformed input); throws FatalError so library users and
 *            tests can recover.
 * panic()  — an internal invariant was violated (a library bug);
 *            also throws, carrying a "panic:" prefix, so tests can
 *            assert on misuse handling without killing the process.
 */

#ifndef SMASH_COMMON_LOGGING_HH
#define SMASH_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace smash
{

/** Exception thrown for user-caused unrecoverable conditions. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** Exception thrown for internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what)
        : std::logic_error(what)
    {}
};

namespace detail
{

[[noreturn]] void throwFatal(const char* file, int line,
                             const std::string& msg);
[[noreturn]] void throwPanic(const char* file, int line,
                             const std::string& msg);

/** Fold a mixed argument pack into one message string. */
template <typename... Args>
std::string
formatMessage(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Print a one-line warning to stderr (never stops execution). */
void warn(const std::string& msg);

} // namespace smash

/** Abort the operation: user error (configuration/input). */
#define SMASH_FATAL(...)                                                    \
    ::smash::detail::throwFatal(__FILE__, __LINE__,                         \
        ::smash::detail::formatMessage(__VA_ARGS__))

/** Abort the operation: internal bug. */
#define SMASH_PANIC(...)                                                    \
    ::smash::detail::throwPanic(__FILE__, __LINE__,                         \
        ::smash::detail::formatMessage(__VA_ARGS__))

/** Check a user-facing precondition; fatal() on failure. */
#define SMASH_CHECK(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SMASH_FATAL("check failed: " #cond ": ", __VA_ARGS__);          \
        }                                                                   \
    } while (0)

#endif // SMASH_COMMON_LOGGING_HH
