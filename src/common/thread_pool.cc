#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iostream>

#include "common/logging.hh"

namespace smash::exec
{

namespace
{

/** Completion state shared by the chunks of one parallelFor batch. */
struct Batch
{
    std::atomic<Index> remaining{0};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;

    void
    finishOne()
    {
        // The decrement happens inside the critical section: the
        // waiting thread may observe remaining == 0 through the
        // lock-free fast path and destroy this Batch, so it must
        // first be able to acquire the mutex — which it cannot
        // until this (the last) finisher has fully left. Moving
        // the fetch_sub outside the lock would reopen that window
        // between the decrement and the lock acquisition.
        std::lock_guard<std::mutex> lock(mutex);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            done.notify_all();
    }

    void
    fail(std::exception_ptr e)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error)
            error = std::move(e);
    }
};

} // namespace

ThreadPool::ThreadPool(int threads)
{
    SMASH_CHECK(threads >= 1, "thread pool needs at least one worker");
    queues_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers_.emplace_back(
            [this, t] { workerLoop(static_cast<std::size_t>(t)); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_ = true;
    }
    sleep_cv_.notify_all();
    // Workers drain every published task before exiting (see
    // workerLoop); joining here therefore realizes the "safely
    // drain" half of the contract, and the stop_ flag set above
    // realizes the "reject" half for later submissions.
    std::call_once(join_once_, [this] {
        for (std::thread& w : workers_)
            w.join();
    });
}

void
ThreadPool::beginSubmit(const char* what)
{
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    SMASH_CHECK(!stop_, what, " on a shut-down thread pool");
    ++submitting_;
}

void
ThreadPool::endSubmit(Index published)
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        pending_ += published;
        --submitting_;
    }
    sleep_cv_.notify_all();
}

bool
ThreadPool::tryBeginSubmit()
{
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    if (stop_)
        return false;
    ++submitting_;
    return true;
}

void
ThreadPool::enqueueTask(std::function<void()> fn)
{
    Task task{[fn = std::move(fn)] {
        try {
            fn();
        } catch (const std::exception& ex) {
            std::cerr << "smash::ThreadPool: posted task threw: "
                      << ex.what() << "\n";
        } catch (...) {
            std::cerr << "smash::ThreadPool: posted task threw\n";
        }
    }};
    WorkerQueue& q = *queues_[next_queue_++ % queues_.size()];
    {
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    endSubmit(1);
}

void
ThreadPool::post(std::function<void()> fn)
{
    beginSubmit("post()");
    enqueueTask(std::move(fn));
}

bool
ThreadPool::tryPost(std::function<void()> fn)
{
    if (!tryBeginSubmit())
        return false;
    enqueueTask(std::move(fn));
    return true;
}

bool
ThreadPool::tryRunOne(std::size_t self)
{
    // Own deque first (front: most recently pushed chunk, still hot).
    {
        WorkerQueue& q = *queues_[self];
        std::unique_lock<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            Task task = std::move(q.tasks.front());
            q.tasks.pop_front();
            lock.unlock();
            {
                std::lock_guard<std::mutex> sleep(sleep_mutex_);
                --pending_;
            }
            task.fn();
            return true;
        }
    }
    // Steal from the back of the other workers' deques.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        WorkerQueue& q = *queues_[(self + i) % queues_.size()];
        std::unique_lock<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            Task task = std::move(q.tasks.back());
            q.tasks.pop_back();
            lock.unlock();
            {
                std::lock_guard<std::mutex> sleep(sleep_mutex_);
                --pending_;
            }
            task.fn();
            return true;
        }
    }
    return false;
}

bool
ThreadPool::tryRunOneExternal()
{
    // A non-worker (or a worker blocked in a nested parallelFor)
    // has no deque of its own: steal from the back like a thief.
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        WorkerQueue& q = *queues_[i];
        std::unique_lock<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            Task task = std::move(q.tasks.back());
            q.tasks.pop_back();
            lock.unlock();
            {
                std::lock_guard<std::mutex> sleep(sleep_mutex_);
                --pending_;
            }
            task.fn();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        if (tryRunOne(self))
            continue;
        // The pending counter and the wait share sleep_mutex_, so a
        // task published after the failed scan above cannot slip by
        // unnoticed: either pending_ is already non-zero here, or
        // the publisher's notify arrives while we hold the lock.
        // Teardown waits for every published task to run AND for
        // any submission past the gate to publish, so work accepted
        // before shutdown() began is never stranded in a queue.
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        sleep_cv_.wait(lock, [this] {
            return pending_ > 0 || (stop_ && submitting_ == 0);
        });
        if (pending_ > 0)
            continue;
        return;
    }
}

void
ThreadPool::parallelFor(Index begin, Index end, Index min_grain,
                        const std::function<void(Index, Index)>& body)
{
    if (begin >= end)
        return;
    SMASH_CHECK(min_grain >= 1, "grain must be positive");
    beginSubmit("parallelFor()");

    const Index span = end - begin;
    const Index target_chunks =
        std::min<Index>(span, static_cast<Index>(size()) * 4);
    const Index grain =
        std::max(min_grain, (span + target_chunks - 1) / target_chunks);
    const Index chunks = (span + grain - 1) / grain;

    Batch batch;
    batch.remaining.store(chunks, std::memory_order_relaxed);

    for (Index c = 0; c < chunks; ++c) {
        const Index b = begin + c * grain;
        const Index e = std::min(end, b + grain);
        Task task{[&body, &batch, b, e] {
            try {
                body(b, e);
            } catch (...) {
                batch.fail(std::current_exception());
            }
            batch.finishOne();
        }};
        WorkerQueue& q = *queues_[next_queue_++ % queues_.size()];
        {
            std::lock_guard<std::mutex> lock(q.mutex);
            q.tasks.push_back(std::move(task));
        }
    }
    endSubmit(chunks);

    // Help instead of blocking: run queued tasks (this batch's
    // chunks or anything else) until the batch completes. A nested
    // caller — a worker task invoking parallelFor — thereby drains
    // its own chunks, so progress holds on any pool size. Sleep
    // only when every queue is empty, i.e. the outstanding chunks
    // are running on other threads; their finishOne() notifies.
    for (;;) {
        if (batch.remaining.load(std::memory_order_acquire) == 0)
            break;
        if (tryRunOneExternal())
            continue;
        std::unique_lock<std::mutex> lock(batch.mutex);
        batch.done.wait(lock, [&batch] {
            return batch.remaining.load(std::memory_order_acquire) == 0;
        });
    }
    {
        // Rendezvous with the last finishOne(): its decrement and
        // notify run under batch.mutex, so acquiring it here
        // guarantees that critical section has exited before the
        // Batch (and its error slot, read below) is torn down.
        std::lock_guard<std::mutex> lock(batch.mutex);
    }
    if (batch.error)
        std::rethrow_exception(batch.error);
}

} // namespace smash::exec
