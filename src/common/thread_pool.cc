#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iostream>

#include "common/logging.hh"
#include "common/numa_topology.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace smash::exec
{

namespace
{

/** Sticky claiming uses one claim-bit per chunk in a single word;
 *  wider batches fall back to a sequential cursor. */
constexpr Index kMaxStickyChunks = 64;

} // namespace

/**
 * Shared state of one parallelFor call. Lives on the owner's stack:
 * linked into the pool's batch list while chunks remain, unlinked
 * (under sleep_mutex_) before runBatch returns. Chunk claiming
 * happens under sleep_mutex_; completion accounting under the
 * batch's own mutex, exactly the rendezvous discipline the old
 * per-chunk-task design used.
 */
struct ThreadPool::ForBatch
{
    RawBody body = nullptr;
    void* ctx = nullptr;
    Index begin = 0;
    Index end = 0;
    Index grain = 1;
    Index chunks = 0;
    /** Chunks not yet handed to a runner; under sleep_mutex_. */
    Index unclaimed = 0;
    /** Per-chunk claim bits (sticky path); under sleep_mutex_. */
    std::uint64_t claimed = 0;
    /** Sequential claim cursor (chunks > 64); under sleep_mutex_. */
    Index next = 0;
    std::atomic<Index> remaining{0};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
    ForBatch* prev = nullptr;
    ForBatch* next_batch = nullptr;

    void
    finishOne()
    {
        // The decrement happens inside the critical section: the
        // waiting owner may observe remaining == 0 through the
        // lock-free fast path and destroy this ForBatch, so it must
        // first be able to acquire the mutex — which it cannot
        // until this (the last) finisher has fully left.
        std::lock_guard<std::mutex> lock(mutex);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            done.notify_all();
    }

    void
    fail(std::exception_ptr e)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error)
            error = std::move(e);
    }
};

ThreadPool::ThreadPool(int threads)
    : ThreadPool(Options{threads, false})
{}

ThreadPool::ThreadPool(const Options& options)
{
    const int threads = options.threads;
    SMASH_CHECK(threads >= 1, "thread pool needs at least one worker");
    queues_.reserve(static_cast<std::size_t>(threads));
    arenas_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        queues_.push_back(std::make_unique<WorkerQueue>());
        arenas_.push_back(std::make_unique<ScratchArena>());
    }
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers_.emplace_back(
            [this, t] { workerLoop(static_cast<std::size_t>(t)); });
    if (options.pinWorkers) {
        pinned_ = true;
        pinWorkers();
    }
}

void
ThreadPool::pinWorkers()
{
#if defined(__linux__)
    // Node-major CPU order from the NUMA probe: a pool smaller than
    // the machine fills node 0 before spilling onto node 1, so its
    // workers (and the arrays they first-touch) stay on few nodes.
    // On a 1-node host the order is the identity, i.e. the classic
    // "worker t -> CPU t mod ncpu" layout.
    const std::vector<int> order =
        sys::NumaTopology::probe().nodeMajorCpuOrder();
    for (std::size_t t = 0; t < workers_.size(); ++t) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(order[t % order.size()], &set);
        // Best-effort: a restricted cpuset (containers) may reject
        // the mask; the worker then keeps the inherited affinity.
        pthread_setaffinity_np(workers_[t].native_handle(),
                               sizeof(set), &set);
    }
#endif
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_ = true;
    }
    sleep_cv_.notify_all();
    // Workers drain every published task and every claimable chunk
    // before exiting (see workerLoop); joining here therefore
    // realizes the "safely drain" half of the contract, and the
    // stop_ flag set above realizes the "reject" half for later
    // submissions.
    std::call_once(join_once_, [this] {
        for (std::thread& w : workers_)
            w.join();
    });
}

void
ThreadPool::beginSubmit(const char* what)
{
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    SMASH_CHECK(!stop_, what, " on a shut-down thread pool");
    ++submitting_;
}

void
ThreadPool::endSubmit(Index published)
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        pending_ += published;
        --submitting_;
    }
    // notify_all, deliberately: notify_one would be correct (every
    // publication sends its own wakeup and workers re-check the
    // predicate), but A/B runs of the serving bench measured it
    // slightly *slower* on an oversubscribed single-core host —
    // the first-scheduled of several woken workers picks the task
    // up sooner than one designated waiter.
    sleep_cv_.notify_all();
}

bool
ThreadPool::tryBeginSubmit()
{
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    if (stop_)
        return false;
    ++submitting_;
    return true;
}

void
ThreadPool::enqueueTask(std::function<void()> fn)
{
    static obs::Counter& tasks_total =
        obs::MetricsRegistry::global().counter(
            "smash_pool_tasks_total");
    tasks_total.inc();
    Task task{[fn = std::move(fn)] {
        const std::uint64_t t0 =
            obs::traceEnabled() ? obs::traceNowNs() : 0;
        try {
            fn();
        } catch (const std::exception& ex) {
            std::cerr << "smash::ThreadPool: posted task threw: "
                      << ex.what() << "\n";
        } catch (...) {
            std::cerr << "smash::ThreadPool: posted task threw\n";
        }
        SMASH_TRACE_SPAN(obs::EventKind::kPoolTask, t0);
    }};
    WorkerQueue& q = *queues_[next_queue_++ % queues_.size()];
    {
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    endSubmit(1);
}

void
ThreadPool::post(std::function<void()> fn)
{
    beginSubmit("post()");
    enqueueTask(std::move(fn));
}

bool
ThreadPool::tryPost(std::function<void()> fn)
{
    if (!tryBeginSubmit())
        return false;
    enqueueTask(std::move(fn));
    return true;
}

Index
ThreadPool::claimChunkLocked(ForBatch& b, std::size_t worker,
                             bool& stolen)
{
    stolen = false;
    if (b.unclaimed == 0)
        return -1;
    if (b.chunks > kMaxStickyChunks) {
        const Index c = b.next++;
        --b.unclaimed;
        return c;
    }
    const auto nworkers = static_cast<Index>(workers_.size());
    if (worker != kNoWorker) {
        // Sticky preference: worker w owns chunks w, w + W, w + 2W,
        // ... — stable across calls, so a cached partition plan's
        // chunk c lands on the same (possibly pinned) worker every
        // request.
        for (Index c = static_cast<Index>(worker); c < b.chunks;
             c += nworkers) {
            if ((b.claimed >> c & 1) == 0) {
                b.claimed |= std::uint64_t(1) << c;
                --b.unclaimed;
                return c;
            }
        }
    }
    // Steal the lowest unclaimed chunk (skew rebalancing, and the
    // owner's help path).
    for (Index c = 0; c < b.chunks; ++c) {
        if ((b.claimed >> c & 1) == 0) {
            b.claimed |= std::uint64_t(1) << c;
            --b.unclaimed;
            stolen = worker != kNoWorker;
            return c;
        }
    }
    return -1;
}

bool
ThreadPool::claimableLocked() const
{
    for (const ForBatch* b = batches_; b != nullptr;
         b = b->next_batch)
        if (b->unclaimed > 0)
            return true;
    return false;
}

bool
ThreadPool::runOneChunk(std::size_t worker, ForBatch* only)
{
    ForBatch* target = nullptr;
    Index chunk = -1;
    bool stolen = false;
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        for (ForBatch* b = only != nullptr ? only : batches_;
             b != nullptr;
             b = only != nullptr ? nullptr : b->next_batch) {
            const Index c = claimChunkLocked(*b, worker, stolen);
            if (c >= 0) {
                target = b;
                chunk = c;
                break;
            }
        }
    }
    if (target == nullptr)
        return false;
    {
        static obs::Counter& sticky =
            obs::MetricsRegistry::global().counter(
                "smash_pool_chunks_total{kind=\"sticky\"}");
        static obs::Counter& steals =
            obs::MetricsRegistry::global().counter(
                "smash_pool_chunks_total{kind=\"stolen\"}");
        (stolen ? steals : sticky).inc();
    }
    const Index cb = target->begin + chunk * target->grain;
    const Index ce = std::min(target->end, cb + target->grain);
    const std::uint64_t t0 =
        obs::traceEnabled() ? obs::traceNowNs() : 0;
    try {
        target->body(target->ctx, cb, ce);
    } catch (...) {
        target->fail(std::current_exception());
    }
    SMASH_TRACE_SPAN(obs::EventKind::kPoolChunk, t0,
                     static_cast<std::uint32_t>(chunk),
                     stolen ? 1 : 0);
    target->finishOne();
    return true;
}

bool
ThreadPool::tryRunOne(std::size_t self)
{
    // Own deque first (front: most recently pushed task, still hot).
    {
        WorkerQueue& q = *queues_[self];
        std::unique_lock<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            Task task = std::move(q.tasks.front());
            q.tasks.pop_front();
            lock.unlock();
            {
                std::lock_guard<std::mutex> sleep(sleep_mutex_);
                --pending_;
            }
            task.fn();
            return true;
        }
    }
    // Steal from the back of the other workers' deques.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        WorkerQueue& q = *queues_[(self + i) % queues_.size()];
        std::unique_lock<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            Task task = std::move(q.tasks.back());
            q.tasks.pop_back();
            lock.unlock();
            {
                std::lock_guard<std::mutex> sleep(sleep_mutex_);
                --pending_;
            }
            task.fn();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    ScratchArena::bind(arenas_[self].get());
    for (;;) {
        // parallelFor chunks first — their owners are blocked on
        // them — then posted tasks. The atomic gate keeps the
        // pure-posted-task steady state (the serving pipeline) off
        // the global claim lock.
        if (active_batches_.load(std::memory_order_acquire) > 0 &&
            runOneChunk(self, nullptr))
            continue;
        if (tryRunOne(self))
            continue;
        // The pending counter, the batch list, and the wait share
        // sleep_mutex_, so work published after the failed scans
        // above cannot slip by unnoticed: either the predicate is
        // already true here, or the publisher's notify arrives while
        // we hold the lock. Teardown waits for every published task
        // and claimable chunk to run AND for any submission past
        // the gate to publish, so work accepted before shutdown()
        // began is never stranded.
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        sleep_cv_.wait(lock, [this] {
            return pending_ > 0 || claimableLocked() ||
                   (stop_ && submitting_ == 0);
        });
        if (pending_ > 0 || claimableLocked())
            continue;
        return;
    }
}

void
ThreadPool::runBatch(Index begin, Index end, Index min_grain,
                     RawBody body, void* ctx)
{
    if (begin >= end)
        return;
    SMASH_CHECK(min_grain >= 1, "grain must be positive");

    const Index span = end - begin;
    const Index target_chunks =
        std::min<Index>(span, static_cast<Index>(size()) * 4);
    const Index grain =
        std::max(min_grain, (span + target_chunks - 1) / target_chunks);
    const Index chunks = (span + grain - 1) / grain;

    static obs::Counter& batches_total =
        obs::MetricsRegistry::global().counter(
            "smash_pool_parallel_for_total");
    batches_total.inc();
    const std::uint64_t t0 =
        obs::traceEnabled() ? obs::traceNowNs() : 0;

    ForBatch batch;
    batch.body = body;
    batch.ctx = ctx;
    batch.begin = begin;
    batch.end = end;
    batch.grain = grain;
    batch.chunks = chunks;
    batch.unclaimed = chunks;
    batch.remaining.store(chunks, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        SMASH_CHECK(!stop_, "parallelFor() on a shut-down thread pool");
        batch.next_batch = batches_;
        if (batches_ != nullptr)
            batches_->prev = &batch;
        batches_ = &batch;
        active_batches_.fetch_add(1, std::memory_order_release);
    }
    sleep_cv_.notify_all();

    // Help with this batch's own chunks — and only those: running
    // unrelated posted tasks here could re-enter an arena-using
    // dispatch driver on this thread mid-call. A nested caller (a
    // worker task invoking parallelFor) thereby drains its own
    // chunks, so progress holds on any pool size.
    while (runOneChunk(kNoWorker, &batch)) {
    }
    if (batch.remaining.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(batch.mutex);
        batch.done.wait(lock, [&batch] {
            return batch.remaining.load(std::memory_order_acquire) ==
                   0;
        });
    }
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        if (batch.prev != nullptr)
            batch.prev->next_batch = batch.next_batch;
        else
            batches_ = batch.next_batch;
        if (batch.next_batch != nullptr)
            batch.next_batch->prev = batch.prev;
        active_batches_.fetch_sub(1, std::memory_order_release);
    }
    {
        // Rendezvous with the last finishOne(): its decrement and
        // notify run under batch.mutex, so acquiring it here
        // guarantees that critical section has exited before the
        // ForBatch (and its error slot, read below) is torn down.
        std::lock_guard<std::mutex> lock(batch.mutex);
    }
    SMASH_TRACE_SPAN(obs::EventKind::kPoolBatch, t0,
                     static_cast<std::uint32_t>(chunks),
                     static_cast<std::uint32_t>(span));
    if (batch.error)
        std::rethrow_exception(batch.error);
}

} // namespace smash::exec
