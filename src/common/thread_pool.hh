/**
 * @file
 * Work-sharing thread pool backing the parallel execution model.
 *
 * Two kinds of work flow through the pool:
 *
 *  - parallelFor() batches: an index range split into chunks that
 *    workers claim straight off the batch descriptor (an atomic-ish
 *    cursor under the pool lock, no per-chunk queue entries), so
 *    the steady-state compute path enqueues nothing on the heap.
 *    When the chunk count fits the sticky window, each worker
 *    prefers the chunks whose index maps to it — repeated calls
 *    over a cached partition plan therefore hand the same row
 *    ranges to the same workers ("sticky" partitions), which keeps
 *    per-worker cache state hot and, with pinned workers, resident
 *    on the same core. Unclaimed chunks are still stolen by whoever
 *    runs dry, so skew cannot strand work.
 *
 *  - post()ed tasks (the serving pipeline's stage submissions):
 *    per-worker deques with the classic owner-LIFO / thief-FIFO
 *    discipline.
 *
 * Workers may opt into CPU affinity pinning (Options::pinWorkers,
 * Linux pthread_setaffinity_np; a no-op elsewhere): worker t is
 * pinned to the t-th CPU in the NUMA probe's node-major order
 * (common/numa_topology.hh) — node 0's CPUs first, then node 1's —
 * which on a 1-node host reduces to the classic
 * "CPU t mod hardware_concurrency" layout. Combined with sticky
 * chunk claiming this realizes the software half of the ROADMAP's
 * NUMA item — a matrix's partitions stay on the same cores across
 * requests. Each worker also owns a ScratchArena, bound to its
 * thread for its lifetime (see common/scratch_arena.hh).
 */

#ifndef SMASH_COMMON_THREAD_POOL_HH
#define SMASH_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/scratch_arena.hh"
#include "common/types.hh"

namespace smash::exec
{

/** Work-sharing pool of a fixed number of worker threads. */
class ThreadPool
{
  public:
    /** Construction-time knobs. */
    struct Options
    {
        /** Number of workers (>= 1). The calling thread is not a
         *  worker; it helps run its own parallelFor chunks. */
        int threads = 1;
        /** Pin worker t to CPU t mod hardware_concurrency
         *  (best-effort, Linux only). */
        bool pinWorkers = false;
    };

    explicit ThreadPool(int threads);
    explicit ThreadPool(const Options& options);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /** Whether worker pinning was requested and attempted. */
    bool pinned() const { return pinned_; }

    /**
     * Run body(chunk_begin, chunk_end) over a partition of
     * [begin, end) and return when every chunk has finished. The
     * range is split into ~4 chunks per worker (at least
     * @p min_grain indices each); idle workers claim chunks they
     * don't own, so uneven chunk costs rebalance. @p body must be
     * safe to invoke concurrently from different workers on
     * disjoint chunks.
     *
     * The calling thread claims and runs its own batch's remaining
     * chunks while it waits (and only those — it never picks up
     * unrelated work mid-call), so parallelFor() may be nested: a
     * worker task that calls it drains its own chunks instead of
     * deadlocking, even on a single-worker pool. Performs no heap
     * allocation beyond what @p body does. Fails after shutdown().
     */
    template <typename F>
    void
    parallelFor(Index begin, Index end, Index min_grain, const F& body)
    {
        runBatch(
            begin, end, min_grain,
            [](void* ctx, Index cb, Index ce) {
                (*static_cast<const F*>(ctx))(cb, ce);
            },
            const_cast<void*>(static_cast<const void*>(&body)));
    }

    /**
     * Enqueue one fire-and-forget task (the serving pipeline's
     * stage submission). Tasks accepted before shutdown() begins
     * are guaranteed to run; posting afterwards fails with
     * FatalError instead of racing the worker teardown. A task
     * that throws is caught and logged — fire-and-forget tasks
     * have no caller to rethrow into.
     */
    void post(std::function<void()> fn);

    /**
     * post() for callers that can tolerate rejection: returns false
     * (queuing nothing) once shutdown() has begun, instead of
     * throwing. The serving layer's background maintenance — e.g. a
     * drift-triggered re-encode racing a session teardown — uses
     * this to degrade to inline execution rather than crash.
     */
    [[nodiscard]] bool tryPost(std::function<void()> fn);

    /**
     * Stop accepting work, run every task already enqueued to
     * completion, and join the workers. Idempotent (the destructor
     * calls it); concurrent callers block until the teardown
     * finishes. Submissions that raced the beginning of shutdown
     * still run; submissions arriving after it begins are
     * rejected.
     */
    void shutdown();

  private:
    /** Chunk body as a plain function pointer + context — the
     *  template wrapper above erases the callable without touching
     *  the heap. */
    using RawBody = void (*)(void* ctx, Index begin, Index end);

    /** One in-flight parallelFor call; lives on the owner's stack
     *  and is linked into batches_ while chunks remain. */
    struct ForBatch;

    struct Task
    {
        std::function<void()> fn;
    };

    /** One worker's task deque (owner pops front, thieves pop back). */
    struct WorkerQueue
    {
        std::deque<Task> tasks;
        std::mutex mutex;
    };

    /** Non-worker claimants (parallelFor owners) have no sticky
     *  chunk preference. */
    static constexpr std::size_t kNoWorker =
        static_cast<std::size_t>(-1);

    void runBatch(Index begin, Index end, Index min_grain,
                  RawBody body, void* ctx);
    /** Claim one chunk (from @p only, or any linked batch) and run
     *  it; @p worker picks the sticky preference. */
    bool runOneChunk(std::size_t worker, ForBatch* only);
    /** Claim one chunk of @p b under sleep_mutex_; -1 when none.
     *  @p stolen reports a claim outside the worker's sticky set
     *  (skew rebalancing) — observability only. */
    Index claimChunkLocked(ForBatch& b, std::size_t worker,
                           bool& stolen);
    /** Any batch with unclaimed chunks? (sleep_mutex_ held.) */
    bool claimableLocked() const;
    void workerLoop(std::size_t self);
    bool tryRunOne(std::size_t self);
    /** Gate one submission: fails once shutdown has begun. */
    void beginSubmit(const char* what);
    /** beginSubmit() that reports the closed gate instead of
     *  throwing (the tryPost() path). */
    bool tryBeginSubmit();
    /** Queue one already-wrapped task (post/tryPost tail). */
    void enqueueTask(std::function<void()> fn);
    /** Publish @p published tasks and release the submission gate. */
    void endSubmit(Index published);
    /** Best-effort worker CPU pinning (Options::pinWorkers). */
    void pinWorkers();

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::unique_ptr<ScratchArena>> arenas_;
    std::vector<std::thread> workers_;
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<std::size_t> next_queue_{0};
    std::once_flag join_once_;
    /** In-flight parallelFor calls with chunks left to claim or
     *  finish; guarded by sleep_mutex_. */
    ForBatch* batches_ = nullptr;
    /** Lock-free mirror of "batches_ is non-empty": lets workers on
     *  the posted-task path (the serving pipeline) skip the global
     *  claim lock entirely when no parallelFor is in flight. */
    std::atomic<int> active_batches_{0};
    /** Enqueued-but-not-started tasks; guarded by sleep_mutex_ so
     *  the empty-check and the sleep are atomic (no lost wakeup). */
    Index pending_ = 0;
    /** Submissions past the gate but not yet published; workers
     *  must not tear down while one is in flight. */
    Index submitting_ = 0;
    bool stop_ = false;
    bool pinned_ = false;
};

} // namespace smash::exec

#endif // SMASH_COMMON_THREAD_POOL_HH
