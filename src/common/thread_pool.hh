/**
 * @file
 * Work-stealing thread pool backing the parallel execution model.
 *
 * Each worker owns a deque of tasks: it pops from the front of its
 * own deque and, when empty, steals from the back of a victim's —
 * the classic owner-LIFO / thief-FIFO discipline that keeps hot
 * tasks cache-local while idle workers drain the longest-waiting
 * work. parallelFor() is the only interface the kernels need: it
 * splits an index range into more chunks than workers so stealing
 * can rebalance skewed per-row costs (power-law rows, empty rows).
 */

#ifndef SMASH_COMMON_THREAD_POOL_HH
#define SMASH_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace smash::exec
{

/** Work-stealing pool of a fixed number of worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads number of workers (>= 1). The calling thread
     *        is not a worker; it blocks in parallelFor() until the
     *        batch completes.
     */
    explicit ThreadPool(int threads);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Run body(chunk_begin, chunk_end) over a partition of
     * [begin, end) and return when every chunk has finished. The
     * range is split into ~4 chunks per worker (at least
     * @p min_grain indices each) so work stealing can rebalance
     * uneven chunk costs. @p body must be safe to invoke
     * concurrently from different workers on disjoint chunks.
     *
     * While waiting, the calling thread steals and runs queued
     * tasks itself, so parallelFor() may be nested — a worker task
     * that calls it keeps draining queues instead of deadlocking,
     * even on a single-worker pool. Fails after shutdown().
     */
    void parallelFor(Index begin, Index end, Index min_grain,
                     const std::function<void(Index, Index)>& body);

    /**
     * Enqueue one fire-and-forget task (the serving pipeline's
     * stage submission). Tasks accepted before shutdown() begins
     * are guaranteed to run; posting afterwards fails with
     * FatalError instead of racing the worker teardown. A task
     * that throws is caught and logged — fire-and-forget tasks
     * have no caller to rethrow into.
     */
    void post(std::function<void()> fn);

    /**
     * post() for callers that can tolerate rejection: returns false
     * (queuing nothing) once shutdown() has begun, instead of
     * throwing. The serving layer's background maintenance — e.g. a
     * drift-triggered re-encode racing a session teardown — uses
     * this to degrade to inline execution rather than crash.
     */
    [[nodiscard]] bool tryPost(std::function<void()> fn);

    /**
     * Stop accepting work, run every task already enqueued to
     * completion, and join the workers. Idempotent (the destructor
     * calls it); concurrent callers block until the teardown
     * finishes. Submissions that raced the beginning of shutdown
     * still run; submissions arriving after it begins are
     * rejected.
     */
    void shutdown();

  private:
    struct Task
    {
        std::function<void()> fn;
    };

    /** One worker's task deque (owner pops front, thieves pop back). */
    struct WorkerQueue
    {
        std::deque<Task> tasks;
        std::mutex mutex;
    };

    void workerLoop(std::size_t self);
    bool tryRunOne(std::size_t self);
    /** Steal one queued task (any queue) and run it; for the
     *  help-while-waiting loop of parallelFor(). */
    bool tryRunOneExternal();
    /** Gate one submission: fails once shutdown has begun. */
    void beginSubmit(const char* what);
    /** beginSubmit() that reports the closed gate instead of
     *  throwing (the tryPost() path). */
    bool tryBeginSubmit();
    /** Queue one already-wrapped task (post/tryPost tail). */
    void enqueueTask(std::function<void()> fn);
    /** Publish @p published tasks and release the submission gate. */
    void endSubmit(Index published);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<std::size_t> next_queue_{0};
    std::once_flag join_once_;
    /** Enqueued-but-not-started tasks; guarded by sleep_mutex_ so
     *  the empty-check and the sleep are atomic (no lost wakeup). */
    Index pending_ = 0;
    /** Submissions past the gate but not yet published; workers
     *  must not tear down while one is in flight. */
    Index submitting_ = 0;
    bool stop_ = false;
};

} // namespace smash::exec

#endif // SMASH_COMMON_THREAD_POOL_HH
