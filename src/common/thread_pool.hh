/**
 * @file
 * Work-stealing thread pool backing the parallel execution model.
 *
 * Each worker owns a deque of tasks: it pops from the front of its
 * own deque and, when empty, steals from the back of a victim's —
 * the classic owner-LIFO / thief-FIFO discipline that keeps hot
 * tasks cache-local while idle workers drain the longest-waiting
 * work. parallelFor() is the only interface the kernels need: it
 * splits an index range into more chunks than workers so stealing
 * can rebalance skewed per-row costs (power-law rows, empty rows).
 */

#ifndef SMASH_COMMON_THREAD_POOL_HH
#define SMASH_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace smash::exec
{

/** Work-stealing pool of a fixed number of worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads number of workers (>= 1). The calling thread
     *        is not a worker; it blocks in parallelFor() until the
     *        batch completes.
     */
    explicit ThreadPool(int threads);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Run body(chunk_begin, chunk_end) over a partition of
     * [begin, end) and return when every chunk has finished. The
     * range is split into ~4 chunks per worker (at least
     * @p min_grain indices each) so work stealing can rebalance
     * uneven chunk costs. @p body must be safe to invoke
     * concurrently from different workers on disjoint chunks.
     */
    void parallelFor(Index begin, Index end, Index min_grain,
                     const std::function<void(Index, Index)>& body);

  private:
    struct Task
    {
        std::function<void()> fn;
    };

    /** One worker's task deque (owner pops front, thieves pop back). */
    struct WorkerQueue
    {
        std::deque<Task> tasks;
        std::mutex mutex;
    };

    void workerLoop(std::size_t self);
    bool tryRunOne(std::size_t self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<std::size_t> next_queue_{0};
    /** Enqueued-but-not-started tasks; guarded by sleep_mutex_ so
     *  the empty-check and the sleep are atomic (no lost wakeup). */
    Index pending_ = 0;
    bool stop_ = false;
};

} // namespace smash::exec

#endif // SMASH_COMMON_THREAD_POOL_HH
