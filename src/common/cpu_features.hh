/**
 * @file
 * Runtime CPU-feature detection and ISA-level selection for the
 * SIMD kernel layer (src/kernels/simd/).
 *
 * The engine ships scalar, AVX2+BMI2, and AVX-512F variants of its
 * hot kernels in one binary; which variant runs is decided once at
 * startup from a CPUID probe, never at compile time. The active
 * level can be overridden — downward only, a host cannot execute
 * instructions it lacks — via the SMASH_FORCE_ISA environment
 * variable (scalar|avx2|avx512), the perf benches' --isa flag, or
 * setIsaLevel() from tests. All kernel variants of one entry point
 * produce bit-identical results (see kernels/simd/simd_kernels.hh),
 * so switching levels is always safe.
 *
 * Ownership/threading contract: the probe runs once (thread-safe);
 * the active level is a single atomic — setIsaLevel() may race with
 * concurrent dispatches, which simply pick up the old or new table
 * (both correct, both bit-identical).
 */

#ifndef SMASH_COMMON_CPU_FEATURES_HH
#define SMASH_COMMON_CPU_FEATURES_HH

#include <string_view>

namespace smash::simd
{

/** Kernel variant families, ordered: higher levels strictly require
 *  more ISA extensions. */
enum class IsaLevel : int
{
    kScalar = 0, //!< portable C++, no extensions assumed
    kAvx2 = 1,   //!< AVX2 + BMI2 + POPCNT (the software-BMU analogue)
    kAvx512 = 2, //!< AVX-512F (wider gathers and lanes)
};

/** One-time CPUID probe results. All false on non-x86 builds. */
struct CpuFeatures
{
    bool popcnt = false;
    bool avx2 = false;
    bool bmi2 = false;
    bool avx512f = false;
};

/** The host's features (probed once, cached). */
const CpuFeatures& cpuFeatures();

/** Best IsaLevel this host can execute: kAvx512 needs AVX-512F,
 *  kAvx2 needs AVX2 + BMI2 + POPCNT, anything runs kScalar. */
IsaLevel detectedIsaLevel();

/**
 * The level dispatch currently uses. Initialized to
 * detectedIsaLevel(), lowered by SMASH_FORCE_ISA when the variable
 * names a level the host supports (an unsupported or unparsable
 * value logs a warning and is ignored), changed by setIsaLevel().
 */
IsaLevel activeIsaLevel();

/**
 * Select @p level for subsequent dispatches. Returns false (and
 * changes nothing) when the host cannot execute it.
 */
bool setIsaLevel(IsaLevel level);

/** "scalar" / "avx2" / "avx512". */
const char* toString(IsaLevel level);

/**
 * Parse "scalar" / "avx2" / "avx512" (the SMASH_FORCE_ISA and
 * --isa vocabulary). Returns true and writes @p out on success.
 */
bool parseIsaLevel(std::string_view text, IsaLevel& out);

} // namespace smash::simd

#endif // SMASH_COMMON_CPU_FEATURES_HH
