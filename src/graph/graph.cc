#include "graph/graph.hh"

#include <algorithm>
#include <cassert>

#include "common/logging.hh"

namespace smash::graph
{

Graph
Graph::fromEdges(Vertex num_vertices,
                 std::vector<std::pair<Vertex, Vertex>> edges)
{
    SMASH_CHECK(num_vertices >= 0, "negative vertex count");
    for (const auto& [u, v] : edges) {
        SMASH_CHECK(u >= 0 && u < num_vertices && v >= 0 &&
                    v < num_vertices,
                    "edge (", u, ",", v, ") outside vertex range");
    }
    std::erase_if(edges, [](const auto& e) { return e.first == e.second; });
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    Graph g;
    g.numVertices_ = num_vertices;
    g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
    g.adjacency_.reserve(edges.size());
    for (const auto& [u, v] : edges)
        ++g.offsets_[static_cast<std::size_t>(u) + 1];
    for (std::size_t i = 1; i < g.offsets_.size(); ++i)
        g.offsets_[i] += g.offsets_[i - 1];
    for (const auto& [u, v] : edges)
        g.adjacency_.push_back(v);
    return g;
}

Index
Graph::outDegree(Vertex v) const
{
    assert(v >= 0 && v < numVertices_);
    return offsets_[static_cast<std::size_t>(v) + 1] -
        offsets_[static_cast<std::size_t>(v)];
}

const Vertex*
Graph::neighbors(Vertex v) const
{
    assert(v >= 0 && v < numVertices_);
    return adjacency_.data() + offsets_[static_cast<std::size_t>(v)];
}

fmt::CsrMatrix
Graph::toAdjacencyMatrix() const
{
    fmt::CooMatrix coo(numVertices_, numVertices_);
    for (Vertex u = 0; u < numVertices_; ++u) {
        const Vertex* nbr = neighbors(u);
        for (Index k = 0; k < outDegree(u); ++k)
            coo.add(u, nbr[k], Value(1));
    }
    // Built in sorted order: already canonical.
    return fmt::CsrMatrix::fromCoo(coo);
}

fmt::CooMatrix
Graph::toPageRankMatrix() const
{
    fmt::CooMatrix coo(numVertices_, numVertices_);
    for (Vertex u = 0; u < numVertices_; ++u) {
        Index deg = outDegree(u);
        if (deg == 0)
            continue;
        const Vertex* nbr = neighbors(u);
        Value w = Value(1) / static_cast<Value>(deg);
        for (Index k = 0; k < deg; ++k)
            coo.add(nbr[k], u, w);
    }
    coo.canonicalize();
    return coo;
}

} // namespace smash::graph
