/**
 * @file
 * Betweenness Centrality (Brandes) with frontier-based breadth-first
 * traversal — the paper's second graph workload (§6), which
 * "iteratively uses SpMV to perform breadth-first searches". The
 * forward/backward passes are shared; encodings differ only in how
 * a vertex's adjacency row is scanned:
 *
 *  - CsrRowScanner:   stream col_ind, then chase into per-vertex
 *                     state (the CSR indexing cost)
 *  - SmashRowScanner: PBMAP/RDIND over the row's Bitmap-0 range; a
 *                     block yields up to blockSize neighbors whose
 *                     ids come from register arithmetic
 */

#ifndef SMASH_GRAPH_BC_HH
#define SMASH_GRAPH_BC_HH

#include <vector>

#include "common/logging.hh"
#include "core/smash_matrix.hh"
#include "formats/csr_matrix.hh"
#include "graph/graph.hh"
#include "isa/bmu.hh"
#include "kernels/costs.hh"
#include "kernels/util.hh"
#include "sim/core_model.hh"

namespace smash::graph
{

/** BC evaluation parameters. */
struct BcParams
{
    /** Number of BFS sources (Brandes samples). */
    int numSources = 4;
};

/** Adjacency-row scanner over CSR (charged like Code Listing 1). */
template <typename E>
class CsrRowScanner
{
  public:
    explicit CsrRowScanner(const fmt::CsrMatrix& adj)
        : adj_(adj)
    {}

    Index numVertices() const { return adj_.rows(); }

    /** Invoke fn(v, Dep) for every neighbor v of @p u; Dep tells the
     *  caller how its per-neighbor state load should be tagged. */
    template <typename Fn>
    void
    forEachNeighbor(Vertex u, E& e, Fn&& fn)
    {
        auto su = static_cast<std::size_t>(u);
        const auto& ptr = adj_.rowPtr();
        const auto& ind = adj_.colInd();
        e.load(&ptr[su + 1], sizeof(fmt::CsrIndex));
        for (fmt::CsrIndex j = ptr[su]; j < ptr[su + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&ind[sj], sizeof(fmt::CsrIndex));
            e.op(kern::cost::kLoop);
            // The neighbor id was just loaded: downstream state
            // accesses are pointer chases.
            fn(static_cast<Vertex>(ind[sj]), sim::Dep::kDependent);
        }
    }

  private:
    const fmt::CsrMatrix& adj_;
};

/** Adjacency-row scanner over SMASH with BMU range scans. */
template <typename E>
class SmashRowScanner
{
  public:
    SmashRowScanner(const core::SmashMatrix& adj, isa::Bmu& bmu, E& e,
                    int grp = 0)
        : adj_(adj), bmu_(bmu), grp_(grp),
          rank_(kern::rowBlockRanks(adj)),
          bitsPerRow_(adj.paddedCols() / adj.blockSize())
    {
        const core::HierarchyConfig& cfg = adj.config();
        bmu_.clearGroup(grp_);
        bmu_.matinfo(adj.rows(), adj.paddedCols(), grp_, e);
        for (int lvl = 0; lvl < cfg.levels(); ++lvl)
            bmu_.bmapinfo(cfg.ratio(lvl), lvl, grp_, e);
        for (int lvl = 0; lvl < cfg.levels(); ++lvl)
            bmu_.rdbmap(&adj.hierarchy().level(lvl), lvl, grp_, e);
    }

    Index numVertices() const { return adj_.rows(); }

    template <typename Fn>
    void
    forEachNeighbor(Vertex u, E& e, Fn&& fn)
    {
        auto su = static_cast<std::size_t>(u);
        if (rank_[su] == rank_[su + 1])
            return;
        const Index bs = adj_.blockSize();
        bmu_.beginScan(u * bitsPerRow_, (u + 1) * bitsPerRow_, grp_, e);
        Index block = rank_[su];
        Index row = 0, col0 = 0;
        while (bmu_.pbmap(grp_, e)) {
            bmu_.rdind(row, col0, grp_, e);
            const Value* data = adj_.blockData(block);
            e.load(data, static_cast<std::size_t>(bs) * sizeof(Value));
            e.op(kern::cost::vectorOps(bs)); // nonzero-lane test
            for (Index k = 0; k < bs; ++k) {
                if (data[k] != Value(0)) {
                    // Neighbor id from BMU registers + lane offset:
                    // no pointer chase feeds the state access.
                    fn(static_cast<Vertex>(col0 + k),
                       sim::Dep::kIndependent);
                }
            }
            ++block;
        }
    }

  private:
    const core::SmashMatrix& adj_;
    isa::Bmu& bmu_;
    int grp_;
    std::vector<Index> rank_;
    Index bitsPerRow_;
};

namespace detail
{

/** Brandes' algorithm over an abstract row scanner. */
template <typename E, typename Scanner>
std::vector<Value>
brandes(Scanner& scanner, const BcParams& params, E& e)
{
    const Index n = scanner.numVertices();
    SMASH_CHECK(n > 0, "empty graph");
    std::vector<Value> bc(static_cast<std::size_t>(n), Value(0));
    std::vector<Index> dist(static_cast<std::size_t>(n));
    std::vector<Value> sigma(static_cast<std::size_t>(n));
    std::vector<Value> delta(static_cast<std::size_t>(n));
    std::vector<Vertex> order;
    order.reserve(static_cast<std::size_t>(n));

    const int sources = static_cast<int>(
        std::min<Index>(params.numSources, n));
    for (int s = 0; s < sources; ++s) {
        Vertex src = static_cast<Vertex>(
            (static_cast<Index>(s) * n) / sources);
        std::fill(dist.begin(), dist.end(), Index(-1));
        std::fill(sigma.begin(), sigma.end(), Value(0));
        std::fill(delta.begin(), delta.end(), Value(0));
        order.clear();

        // Forward BFS, frontier at a time (the SpMV-style sweep).
        std::vector<Vertex> frontier{src};
        dist[static_cast<std::size_t>(src)] = 0;
        sigma[static_cast<std::size_t>(src)] = 1;
        while (!frontier.empty()) {
            std::vector<Vertex> next;
            for (Vertex u : frontier) {
                order.push_back(u);
                e.op(kern::cost::kOuterLoop);
                scanner.forEachNeighbor(u, e, [&](Vertex v, sim::Dep dep) {
                    auto sv = static_cast<std::size_t>(v);
                    auto su = static_cast<std::size_t>(u);
                    e.load(&dist[sv], sizeof(Index), dep);
                    e.op(kern::cost::kCompareBranch);
                    if (dist[sv] < 0) {
                        dist[sv] = dist[su] + 1;
                        e.store(&dist[sv], sizeof(Index));
                        next.push_back(v);
                        e.store(&next, sizeof(Vertex));
                    }
                    if (dist[sv] == dist[su] + 1) {
                        sigma[sv] += sigma[su];
                        e.load(&sigma[sv], sizeof(Value), dep);
                        e.store(&sigma[sv], sizeof(Value));
                        e.op(1);
                    }
                });
            }
            frontier = std::move(next);
        }

        // Backward dependency accumulation in reverse BFS order.
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            Vertex u = *it;
            auto su = static_cast<std::size_t>(u);
            e.op(kern::cost::kOuterLoop);
            scanner.forEachNeighbor(u, e, [&](Vertex v, sim::Dep dep) {
                auto sv = static_cast<std::size_t>(v);
                e.load(&dist[sv], sizeof(Index), dep);
                e.op(kern::cost::kCompareBranch);
                if (dist[sv] == dist[su] + 1 &&
                    sigma[sv] != Value(0)) {
                    delta[su] += sigma[su] / sigma[sv] *
                        (Value(1) + delta[sv]);
                    e.load(&delta[sv], sizeof(Value), dep);
                    e.op(kern::cost::kFma + 2);
                    e.store(&delta[su], sizeof(Value));
                }
            });
            if (u != src) {
                bc[su] += delta[su];
                e.op(1);
            }
        }
    }
    return bc;
}

} // namespace detail

/** Betweenness centrality over the CSR adjacency encoding. */
template <typename E>
std::vector<Value>
bcCsr(const fmt::CsrMatrix& adj, const BcParams& params, E& e)
{
    SMASH_CHECK(adj.rows() == adj.cols(), "adjacency must be square");
    CsrRowScanner<E> scanner(adj);
    return detail::brandes(scanner, params, e);
}

/** Betweenness centrality over the SMASH adjacency encoding. */
template <typename E>
std::vector<Value>
bcSmashHw(const core::SmashMatrix& adj, isa::Bmu& bmu,
          const BcParams& params, E& e)
{
    SMASH_CHECK(adj.rows() == adj.cols(), "adjacency must be square");
    SmashRowScanner<E> scanner(adj, bmu, e);
    return detail::brandes(scanner, params, e);
}

} // namespace smash::graph

#endif // SMASH_GRAPH_BC_HH
