#include "graph/traversal.hh"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>

#include "common/logging.hh"

namespace smash::graph
{

std::vector<Index>
bfsReference(const Graph& g, Vertex source)
{
    SMASH_CHECK(source >= 0 && source < g.numVertices(),
                "source out of range");
    std::vector<Index> level(static_cast<std::size_t>(g.numVertices()),
                             kUnreached);
    std::deque<Vertex> queue{source};
    level[static_cast<std::size_t>(source)] = 0;
    while (!queue.empty()) {
        Vertex u = queue.front();
        queue.pop_front();
        const Vertex* nbr = g.neighbors(u);
        for (Index k = 0; k < g.outDegree(u); ++k) {
            Vertex v = nbr[k];
            if (level[static_cast<std::size_t>(v)] == kUnreached) {
                level[static_cast<std::size_t>(v)] =
                    level[static_cast<std::size_t>(u)] + 1;
                queue.push_back(v);
            }
        }
    }
    return level;
}

std::vector<Value>
ssspReference(const fmt::CsrMatrix& weights, Vertex source)
{
    SMASH_CHECK(weights.rows() == weights.cols(),
                "weight matrix must be square");
    SMASH_CHECK(source >= 0 && source < weights.rows(),
                "source out of range");
    const Index n = weights.rows();
    std::vector<Value> dist(static_cast<std::size_t>(n),
                            std::numeric_limits<Value>::infinity());
    dist[static_cast<std::size_t>(source)] = 0.0;
    const auto& row_ptr = weights.rowPtr();
    const auto& col_ind = weights.colInd();
    const auto& values = weights.values();

    for (Index round = 0; round + 1 < n; ++round) {
        bool changed = false;
        for (Index u = 0; u < n; ++u) {
            auto su = static_cast<std::size_t>(u);
            if (dist[su] == std::numeric_limits<Value>::infinity())
                continue;
            for (fmt::CsrIndex j = row_ptr[su]; j < row_ptr[su + 1]; ++j) {
                auto sj = static_cast<std::size_t>(j);
                SMASH_CHECK(values[sj] > Value(0),
                            "SSSP requires positive edge weights");
                auto sv = static_cast<std::size_t>(col_ind[sj]);
                Value cand = dist[su] + values[sj];
                if (cand < dist[sv]) {
                    dist[sv] = cand;
                    changed = true;
                }
            }
        }
        if (!changed)
            break;
    }
    return dist;
}

namespace
{

/** Path-compressing union-find. */
class UnionFind
{
  public:
    explicit UnionFind(Index n)
        : parent_(static_cast<std::size_t>(n))
    {
        std::iota(parent_.begin(), parent_.end(), Index(0));
    }

    Index
    find(Index v)
    {
        while (parent_[static_cast<std::size_t>(v)] != v) {
            parent_[static_cast<std::size_t>(v)] =
                parent_[static_cast<std::size_t>(
                    parent_[static_cast<std::size_t>(v)])];
            v = parent_[static_cast<std::size_t>(v)];
        }
        return v;
    }

    void
    unite(Index a, Index b)
    {
        Index ra = find(a), rb = find(b);
        if (ra == rb)
            return;
        // Smaller id wins so roots equal the minimum member.
        if (ra < rb)
            parent_[static_cast<std::size_t>(rb)] = ra;
        else
            parent_[static_cast<std::size_t>(ra)] = rb;
    }

  private:
    std::vector<Index> parent_;
};

} // namespace

std::vector<Index>
componentsReference(const Graph& g)
{
    UnionFind uf(g.numVertices());
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        const Vertex* nbr = g.neighbors(u);
        for (Index k = 0; k < g.outDegree(u); ++k)
            uf.unite(u, nbr[k]);
    }
    std::vector<Index> comp(static_cast<std::size_t>(g.numVertices()));
    for (Vertex v = 0; v < g.numVertices(); ++v)
        comp[static_cast<std::size_t>(v)] = uf.find(v);
    return comp;
}

std::uint64_t
trianglesReference(const Graph& g)
{
    // Brute-force over vertex triples via adjacency tests. Only for
    // small oracles — O(V * E) with the sorted-neighbour lookup.
    auto connected = [&g](Vertex a, Vertex b) {
        const Vertex* nbr = g.neighbors(a);
        return std::binary_search(nbr, nbr + g.outDegree(a), b);
    };
    std::uint64_t count = 0;
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        const Vertex* nbr = g.neighbors(u);
        for (Index i = 0; i < g.outDegree(u); ++i) {
            Vertex v = nbr[i];
            if (v <= u)
                continue;
            for (Index j = i + 1; j < g.outDegree(u); ++j) {
                Vertex w = nbr[j];
                if (w > v && connected(v, w))
                    ++count;
            }
        }
    }
    return count;
}

std::uint64_t
trianglesMerge(const Graph& g)
{
    std::uint64_t count = 0;
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        const Vertex* u_nbr = g.neighbors(u);
        const Index u_deg = g.outDegree(u);
        for (Index i = 0; i < u_deg; ++i) {
            Vertex v = u_nbr[i];
            if (v <= u)
                continue;
            // Merge-intersect N(u) and N(v) above v.
            const Vertex* v_nbr = g.neighbors(v);
            const Index v_deg = g.outDegree(v);
            Index a = 0, b = 0;
            while (a < u_deg && b < v_deg) {
                if (u_nbr[a] < v_nbr[b]) {
                    ++a;
                } else if (u_nbr[a] > v_nbr[b]) {
                    ++b;
                } else {
                    if (u_nbr[a] > v)
                        ++count;
                    ++a;
                    ++b;
                }
            }
        }
    }
    return count;
}

} // namespace smash::graph
