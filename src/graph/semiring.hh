/**
 * @file
 * GraphBLAS-style semiring abstraction over the SpMV kernels. The
 * paper argues SMASH accelerates *any* sparse computation because
 * the BMU only discovers non-zero positions (§5.2.1); replacing
 * (+, x) with an arbitrary (add, mul) pair makes that concrete:
 * BFS is SpMV over the boolean semiring, SSSP over min-plus, and
 * connected components over min-select2nd — all running on the same CSR
 * or SMASH traversal code.
 */

#ifndef SMASH_GRAPH_SEMIRING_HH
#define SMASH_GRAPH_SEMIRING_HH

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "core/block_cursor.hh"
#include "core/smash_matrix.hh"
#include "formats/csr_matrix.hh"
#include "kernels/costs.hh"
#include "kernels/util.hh"
#include "sim/core_model.hh"

namespace smash::graph
{

/** Conventional (+, x) arithmetic: plain SpMV. */
struct ArithmeticSemiring
{
    static constexpr Value kZero = 0; //!< additive identity
    static Value add(Value a, Value b) { return a + b; }
    static Value mul(Value a, Value b) { return a * b; }
};

/** Boolean (OR, AND): reachability / BFS frontier expansion. */
struct BooleanSemiring
{
    static constexpr Value kZero = 0;
    static Value add(Value a, Value b)
    {
        return (a != 0 || b != 0) ? Value(1) : Value(0);
    }
    static Value mul(Value a, Value b)
    {
        return (a != 0 && b != 0) ? Value(1) : Value(0);
    }
};

/** Tropical (min, +): single-source shortest paths relaxation. */
struct MinPlusSemiring
{
    static constexpr Value kZero = std::numeric_limits<Value>::infinity();
    static Value add(Value a, Value b) { return std::min(a, b); }
    static Value mul(Value a, Value b) { return a + b; }
};

/**
 * (min, select2nd): label propagation for connected components.
 * mul ignores the edge weight and passes the neighbour's label
 * through, so add picks the smallest label among neighbours.
 */
struct MinSelect2ndSemiring
{
    static constexpr Value kZero = std::numeric_limits<Value>::infinity();
    static Value add(Value a, Value b) { return std::min(a, b); }
    static Value mul(Value /*a*/, Value b) { return b; }
};

/**
 * Semiring SpMV over CSR: y[i] = add_j mul(a_ij, x[j]), starting
 * from the semiring zero. Identical memory behaviour to spmvCsr —
 * stream row_ptr/col_ind, chase into x — so the paper's indexing
 * bottleneck carries over unchanged to graph semirings.
 */
template <typename S, typename E>
void
spmvSemiringCsr(const fmt::CsrMatrix& a, const std::vector<Value>& x,
                std::vector<Value>& y, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.cols(), "x too short");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const auto& row_ptr = a.rowPtr();
    const auto& col_ind = a.colInd();
    const auto& values = a.values();

    for (Index i = 0; i < a.rows(); ++i) {
        auto si = static_cast<std::size_t>(i);
        e.load(&row_ptr[si + 1], sizeof(fmt::CsrIndex));
        Value acc = S::kZero;
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            e.load(&col_ind[sj], sizeof(fmt::CsrIndex));
            fmt::CsrIndex col = col_ind[sj];
            e.load(&x[static_cast<std::size_t>(col)], sizeof(Value),
                   sim::Dep::kDependent);
            e.load(&values[sj], sizeof(Value));
            acc = S::add(acc, S::mul(values[sj],
                                     x[static_cast<std::size_t>(col)]));
            e.op(kern::cost::kFma + kern::cost::kLoop);
        }
        y[si] = acc;
        e.store(&y[si], sizeof(Value));
        e.op(kern::cost::kOuterLoop);
    }
}

/**
 * Semiring SpMV over the SMASH encoding, scanned in software
 * (§4.4). Semantics match spmvSemiringCsr: y is (re)computed from
 * the semiring zero. In-block stored zeros must not contribute, so
 * they are skipped by an explicit test (mul would not annihilate
 * them in non-arithmetic semirings).
 *
 * @param x must be padded to matrix.paddedCols()
 */
template <typename S, typename E>
void
spmvSemiringSmashSw(const core::SmashMatrix& a, const std::vector<Value>& x,
                    std::vector<Value>& y, E& e)
{
    SMASH_CHECK(static_cast<Index>(x.size()) >= a.paddedCols(),
                "x must be padded to paddedCols");
    SMASH_CHECK(static_cast<Index>(y.size()) >= a.rows(), "y too short");
    const Index bs = a.blockSize();

    for (Index i = 0; i < a.rows(); ++i)
        y[static_cast<std::size_t>(i)] = S::kZero;
    e.store(y.data(), y.size() * sizeof(Value));

    core::BlockCursor cursor(a);
    cursor.setRecordTouches(E::kSimulated);
    core::BlockPosition pos;
    kern::ScanBiller biller(kern::ScanBiller::kSoftwareStreamBase);
    while (cursor.next(pos)) {
        // Bill the bitmap words and CLZ/AND work of this scan step.
        biller.charge(cursor, e);
        e.op(2 + kern::cost::kAddrCalc);
        const Value* block = a.blockData(pos.nzaBlock);
        e.load(block, static_cast<std::size_t>(bs) * sizeof(Value));
        e.load(&x[static_cast<std::size_t>(pos.colStart)],
               static_cast<std::size_t>(bs) * sizeof(Value));
        auto sr = static_cast<std::size_t>(pos.row);
        Value acc = y[sr];
        for (Index k = 0; k < bs; ++k) {
            e.op(kern::cost::kCompareBranch);
            if (block[k] == Value(0))
                continue; // stored zero: not a matrix entry
            acc = S::add(acc, S::mul(block[k],
                x[static_cast<std::size_t>(pos.colStart + k)]));
            e.op(kern::cost::kFma);
        }
        y[sr] = acc;
        e.store(&y[sr], sizeof(Value));
        e.op(kern::cost::kLoop);
    }
}

} // namespace smash::graph

#endif // SMASH_GRAPH_SEMIRING_HH
