/**
 * @file
 * Synthetic graph generators standing in for the paper's SNAP
 * inputs (Table 4): an RMAT/Kronecker generator for the power-law
 * social/co-purchase graphs (com-Youtube, com-DBLP, amazon0601) and
 * a 2-D grid generator with local shortcuts for the road network
 * (roadNet-CA). DESIGN.md documents the substitution.
 */

#ifndef SMASH_GRAPH_GENERATORS_HH
#define SMASH_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/graph.hh"

namespace smash::graph
{

/**
 * RMAT (Chakrabarti et al.) generator with the standard skewed
 * partition probabilities; produces a power-law degree
 * distribution. Edges are emitted in both directions to mimic the
 * symmetrized SNAP community graphs.
 *
 * @param num_vertices rounded up to a power of two internally; the
 *        returned graph still reports @p num_vertices vertices
 * @param num_edges undirected edge target (directed count is ~2x)
 */
Graph rmatGraph(Vertex num_vertices, Index num_edges, std::uint64_t seed,
                double a = 0.57, double b = 0.19, double c = 0.19);

/**
 * 2-D grid (nx * ny vertices) with 4-neighbor connectivity plus a
 * sprinkling of short local shortcuts — the road-network stand-in:
 * near-constant degree and high locality.
 *
 * @param shortcut_fraction extra edges as a fraction of grid edges
 */
Graph gridGraph(Index nx, Index ny, std::uint64_t seed,
                double shortcut_fraction = 0.05);

/** Erdos-Renyi-style uniform random digraph (tests). */
Graph uniformRandomGraph(Vertex num_vertices, Index num_edges,
                         std::uint64_t seed);

} // namespace smash::graph

#endif // SMASH_GRAPH_GENERATORS_HH
