/**
 * @file
 * Directed graph stored as a CSR adjacency structure — the
 * substrate for the paper's two graph workloads (PageRank and
 * Betweenness Centrality, §6), which are expressed as sparse-matrix
 * traversals over the adjacency matrix.
 */

#ifndef SMASH_GRAPH_GRAPH_HH
#define SMASH_GRAPH_GRAPH_HH

#include <utility>
#include <vector>

#include "common/types.hh"
#include "formats/coo_matrix.hh"
#include "formats/csr_matrix.hh"

namespace smash::graph
{

/** Vertex identifier. */
using Vertex = Index;

/** Directed graph with CSR out-adjacency. */
class Graph
{
  public:
    Graph() = default;

    /**
     * Build from an edge list; parallel edges and self-loops are
     * removed.
     */
    static Graph fromEdges(Vertex num_vertices,
                           std::vector<std::pair<Vertex, Vertex>> edges);

    Vertex numVertices() const { return numVertices_; }
    Index numEdges() const { return static_cast<Index>(adjacency_.size()); }

    Index outDegree(Vertex v) const;

    /** Neighbors of @p v: pointer + count into the adjacency array. */
    const Vertex* neighbors(Vertex v) const;

    const std::vector<Index>& offsets() const { return offsets_; }
    const std::vector<Vertex>& adjacency() const { return adjacency_; }

    /**
     * Adjacency matrix A (A[u][v] = 1 for each edge u->v) as CSR.
     */
    fmt::CsrMatrix toAdjacencyMatrix() const;

    /**
     * Column-stochastic PageRank matrix M = A^T D^-1 (M[v][u] =
     * 1/outdeg(u) for each edge u->v) as canonical COO, ready for
     * CSR or SMASH encoding.
     */
    fmt::CooMatrix toPageRankMatrix() const;

  private:
    Vertex numVertices_ = 0;
    std::vector<Index> offsets_;    //!< size numVertices + 1
    std::vector<Vertex> adjacency_; //!< sorted within each vertex
};

} // namespace smash::graph

#endif // SMASH_GRAPH_GRAPH_HH
