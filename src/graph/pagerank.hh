/**
 * @file
 * PageRank expressed as iterated SpMV (paper §6): per iteration,
 * rank' = (1-d)/N + d * M rank, with M the column-stochastic
 * adjacency operator. The iteration is format-blind: the operator
 * goes through the engine's dispatch layer, so any encoding —
 * CSR, SMASH software-scanned, SMASH with the BMU — plugs in via
 * options, which is exactly the comparison Fig. 18 makes.
 */

#ifndef SMASH_GRAPH_PAGERANK_HH
#define SMASH_GRAPH_PAGERANK_HH

#include <vector>

#include "common/logging.hh"
#include "engine/dispatch.hh"

namespace smash::graph
{

/** Iteration/damping parameters for PageRank. */
struct PageRankParams
{
    int iterations = 5;
    Value damping = 0.85;
};

namespace detail
{

/**
 * The shared power-iteration driver; @p spmv(x, y) computes
 * y += M x for the encoding under test.
 */
template <typename E, typename SpmvFn>
std::vector<Value>
pagerankLoop(Index n, Index padded_len, const PageRankParams& params,
             SpmvFn&& spmv, E& e)
{
    SMASH_CHECK(n > 0, "empty graph");
    std::vector<Value> rank(static_cast<std::size_t>(padded_len),
                            Value(0));
    std::vector<Value> next(static_cast<std::size_t>(n), Value(0));
    const Value init = Value(1) / static_cast<Value>(n);
    for (Index v = 0; v < n; ++v)
        rank[static_cast<std::size_t>(v)] = init;

    const Value base = (Value(1) - params.damping) /
        static_cast<Value>(n);
    for (int it = 0; it < params.iterations; ++it) {
        std::fill(next.begin(), next.end(), Value(0));
        spmv(rank, next);
        // rank = base + d * next — streaming vector update.
        for (Index v = 0; v < n; ++v) {
            auto sv = static_cast<std::size_t>(v);
            rank[sv] = base + params.damping * next[sv];
        }
        e.load(next.data(),
               static_cast<std::size_t>(n) * sizeof(Value));
        e.store(rank.data(),
                static_cast<std::size_t>(n) * sizeof(Value));
        e.op(2 * kern::cost::vectorOps(n));
    }
    rank.resize(static_cast<std::size_t>(n));
    return rank;
}

} // namespace detail

/** PageRank over any engine matrix, through the dispatch layer. */
template <typename E>
std::vector<Value>
pagerank(eng::MatrixRef m, const PageRankParams& params, E& e,
         const eng::SpmvOptions& opts = {})
{
    SMASH_CHECK(m.rows() == m.cols(), "PageRank matrix must be square");
    return detail::pagerankLoop(
        m.rows(), m.xLength(), params,
        [&](const std::vector<Value>& x, std::vector<Value>& y) {
            eng::spmv(m, x, y, e, opts);
        },
        e);
}

/** PageRank over a CSR-encoded PageRank matrix. */
template <typename E>
std::vector<Value>
pagerankCsr(const fmt::CsrMatrix& m, const PageRankParams& params, E& e)
{
    return pagerank(m, params, e);
}

/** PageRank over a SMASH-encoded matrix, software-only indexing. */
template <typename E>
std::vector<Value>
pagerankSmashSw(const core::SmashMatrix& m, const PageRankParams& params,
                E& e)
{
    return pagerank(m, params, e);
}

/** PageRank over a SMASH-encoded matrix with BMU indexing. */
template <typename E>
std::vector<Value>
pagerankSmashHw(const core::SmashMatrix& m, isa::Bmu& bmu,
                const PageRankParams& params, E& e)
{
    return pagerank(m, params, e,
                    eng::SpmvOptions{eng::SpmvAlgo::kHw, &bmu});
}

} // namespace smash::graph

#endif // SMASH_GRAPH_PAGERANK_HH
