#include "graph/generators.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace smash::graph
{

Graph
rmatGraph(Vertex num_vertices, Index num_edges, std::uint64_t seed,
          double a, double b, double c)
{
    SMASH_CHECK(num_vertices > 1, "need at least two vertices");
    SMASH_CHECK(a > 0 && b > 0 && c > 0 && a + b + c < 1.0,
                "invalid RMAT partition probabilities");
    int levels = 0;
    while ((Vertex(1) << levels) < num_vertices)
        ++levels;

    Rng rng(seed);
    std::vector<std::pair<Vertex, Vertex>> edges;
    edges.reserve(static_cast<std::size_t>(num_edges) * 2);
    Index made = 0;
    Index attempts = 0;
    const Index max_attempts = num_edges * 8;
    while (made < num_edges && attempts < max_attempts) {
        ++attempts;
        Vertex u = 0, v = 0;
        for (int l = 0; l < levels; ++l) {
            double p = rng.uniform();
            u <<= 1;
            v <<= 1;
            if (p < a) {
                // top-left quadrant
            } else if (p < a + b) {
                v |= 1;
            } else if (p < a + b + c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if (u >= num_vertices || v >= num_vertices || u == v)
            continue;
        edges.emplace_back(u, v);
        edges.emplace_back(v, u); // symmetrized, like the SNAP inputs
        ++made;
    }
    return Graph::fromEdges(num_vertices, std::move(edges));
}

Graph
gridGraph(Index nx, Index ny, std::uint64_t seed, double shortcut_fraction)
{
    SMASH_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
    const Vertex n = nx * ny;
    Rng rng(seed);
    std::vector<std::pair<Vertex, Vertex>> edges;
    edges.reserve(static_cast<std::size_t>(n) * 4);
    auto id = [&](Index x, Index y) { return y * nx + x; };
    for (Index y = 0; y < ny; ++y) {
        for (Index x = 0; x < nx; ++x) {
            Vertex u = id(x, y);
            if (x + 1 < nx) {
                edges.emplace_back(u, id(x + 1, y));
                edges.emplace_back(id(x + 1, y), u);
            }
            if (y + 1 < ny) {
                edges.emplace_back(u, id(x, y + 1));
                edges.emplace_back(id(x, y + 1), u);
            }
        }
    }
    // Local shortcuts: connect to a vertex a short hop away, the way
    // road networks have occasional diagonal/arterial links.
    Index shortcuts = static_cast<Index>(
        static_cast<double>(edges.size() / 2) * shortcut_fraction);
    for (Index s = 0; s < shortcuts; ++s) {
        Index x = rng.between(0, nx - 1);
        Index y = rng.between(0, ny - 1);
        Index dx = rng.between(-3, 3);
        Index dy = rng.between(-3, 3);
        Index x2 = std::clamp<Index>(x + dx, 0, nx - 1);
        Index y2 = std::clamp<Index>(y + dy, 0, ny - 1);
        if (id(x, y) != id(x2, y2)) {
            edges.emplace_back(id(x, y), id(x2, y2));
            edges.emplace_back(id(x2, y2), id(x, y));
        }
    }
    return Graph::fromEdges(n, std::move(edges));
}

Graph
uniformRandomGraph(Vertex num_vertices, Index num_edges, std::uint64_t seed)
{
    SMASH_CHECK(num_vertices > 1, "need at least two vertices");
    Rng rng(seed);
    std::vector<std::pair<Vertex, Vertex>> edges;
    edges.reserve(static_cast<std::size_t>(num_edges));
    for (Index i = 0; i < num_edges; ++i) {
        Vertex u = static_cast<Vertex>(
            rng.below(static_cast<std::uint64_t>(num_vertices)));
        Vertex v = static_cast<Vertex>(
            rng.below(static_cast<std::uint64_t>(num_vertices)));
        if (u != v)
            edges.emplace_back(u, v);
    }
    return Graph::fromEdges(num_vertices, std::move(edges));
}

} // namespace smash::graph
