/**
 * @file
 * Graph traversal algorithms built on the semiring SpMV layer:
 * breadth-first search (boolean semiring), single-source shortest
 * paths (min-plus / Bellman-Ford), connected components (min-select2nd
 * label propagation), and triangle counting (masked A^2). Each has
 * a classical direct implementation as a correctness oracle and a
 * matrix-based implementation that runs over CSR or SMASH.
 */

#ifndef SMASH_GRAPH_TRAVERSAL_HH
#define SMASH_GRAPH_TRAVERSAL_HH

#include <vector>

#include "graph/graph.hh"
#include "graph/semiring.hh"

namespace smash::graph
{

/** Level marker for vertices a BFS never reaches. */
inline constexpr Index kUnreached = -1;

/** Queue-based BFS (oracle): level of every vertex from @p source. */
std::vector<Index> bfsReference(const Graph& g, Vertex source);

/** Dijkstra-free oracle for SSSP: Bellman-Ford over the edge list.
 *  @param weights CSR adjacency with positive edge weights
 *  @return distance per vertex (infinity when unreachable) */
std::vector<Value> ssspReference(const fmt::CsrMatrix& weights,
                                 Vertex source);

/** Union-find oracle: component id (smallest member vertex) per
 *  vertex of the undirected view of @p g. */
std::vector<Index> componentsReference(const Graph& g);

/** Edge-iterator oracle: triangles in the undirected simple graph
 *  (each triangle counted once). */
std::uint64_t trianglesReference(const Graph& g);

/**
 * BFS as iterated boolean-semiring SpMV over A^T (pull direction):
 * next[v] = OR_u A[u][v] AND frontier[u]. The SpMV backend is any
 * functor spmv(x, y) computing the boolean product.
 *
 * @param n          vertex count
 * @param spmv       functor over the boolean semiring
 * @param max_rounds optional cap on SpMV rounds (default: run to
 *        fixpoint). A capped run returns the partial level map —
 *        useful for bounded benchmarking on high-diameter graphs.
 * @return level per vertex (kUnreached if never visited)
 */
template <typename SpmvFn>
std::vector<Index>
bfsSemiring(Index n, Vertex source, SpmvFn&& spmv, Index max_rounds = -1)
{
    SMASH_CHECK(source >= 0 && source < n, "source out of range");
    std::vector<Index> level(static_cast<std::size_t>(n), kUnreached);
    std::vector<Value> frontier(static_cast<std::size_t>(n), 0.0);
    std::vector<Value> next(static_cast<std::size_t>(n), 0.0);
    level[static_cast<std::size_t>(source)] = 0;
    frontier[static_cast<std::size_t>(source)] = 1.0;

    const Index rounds = max_rounds < 0 ? n : std::min(max_rounds, n);
    for (Index depth = 1; depth <= rounds; ++depth) {
        spmv(frontier, next);
        bool advanced = false;
        for (std::size_t v = 0; v < next.size(); ++v) {
            if (next[v] != 0.0 && level[v] == kUnreached) {
                level[v] = depth;
                advanced = true;
            }
            // Mask: only newly reached vertices stay in the frontier.
            frontier[v] = (next[v] != 0.0 && level[v] == depth)
                ? Value(1) : Value(0);
        }
        if (!advanced)
            break;
    }
    return level;
}

/**
 * Bellman-Ford SSSP as iterated min-plus SpMV over W^T:
 * dist'[v] = min(dist[v], min_u (dist[u] + w(u,v))). Converges in
 * at most |V|-1 rounds for non-negative weights.
 *
 * @param spmv       functor over the min-plus semiring on W^T
 * @param max_rounds optional cap on relaxation rounds (default:
 *        run to fixpoint); capped runs return partial distances
 */
template <typename SpmvFn>
std::vector<Value>
ssspSemiring(Index n, Vertex source, SpmvFn&& spmv, Index max_rounds = -1)
{
    SMASH_CHECK(source >= 0 && source < n, "source out of range");
    std::vector<Value> dist(static_cast<std::size_t>(n),
                            MinPlusSemiring::kZero);
    std::vector<Value> relaxed(static_cast<std::size_t>(n),
                               MinPlusSemiring::kZero);
    dist[static_cast<std::size_t>(source)] = 0.0;

    const Index rounds = max_rounds < 0 ? n : std::min(max_rounds, n);
    for (Index round = 0; round < rounds; ++round) {
        spmv(dist, relaxed);
        bool changed = false;
        for (std::size_t v = 0; v < dist.size(); ++v) {
            Value best = std::min(dist[v], relaxed[v]);
            if (best != dist[v]) {
                dist[v] = best;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return dist;
}

/**
 * Connected components by min-label propagation over the symmetric
 * adjacency: label'[v] = min(label[v], min over neighbours). The
 * result labels each component by its smallest vertex id.
 *
 * @param spmv functor over the min-select2nd semiring on the symmetrized
 *        adjacency matrix
 */
template <typename SpmvFn>
std::vector<Index>
componentsSemiring(Index n, SpmvFn&& spmv)
{
    std::vector<Value> label(static_cast<std::size_t>(n));
    std::vector<Value> next(static_cast<std::size_t>(n));
    for (Index v = 0; v < n; ++v)
        label[static_cast<std::size_t>(v)] = static_cast<Value>(v);

    for (Index round = 0; round < n; ++round) {
        spmv(label, next);
        bool changed = false;
        for (std::size_t v = 0; v < label.size(); ++v) {
            Value best = std::min(label[v], next[v]);
            if (best != label[v]) {
                label[v] = best;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    std::vector<Index> out(static_cast<std::size_t>(n));
    for (std::size_t v = 0; v < out.size(); ++v)
        out[v] = static_cast<Index>(label[v]);
    return out;
}

/**
 * Triangle counting through the adjacency structure: for every
 * edge (u, v) with u < v, intersect the sorted neighbour lists and
 * count common w > v (forward counting — each triangle found once).
 * This is the merge-based kernel an SpGEMM-based counter lowers to.
 */
std::uint64_t trianglesMerge(const Graph& g);

} // namespace smash::graph

#endif // SMASH_GRAPH_TRAVERSAL_HH
