#include "solvers/ilu.hh"

#include <cmath>

#include "common/logging.hh"

namespace smash::solve
{

Ilu0Factors
ilu0(const fmt::CsrMatrix& a)
{
    SMASH_CHECK(a.rows() == a.cols(), "ILU(0) requires a square matrix");
    const Index n = a.rows();
    const auto& row_ptr = a.rowPtr();
    const auto& col_ind = a.colInd();

    // Working copy of the values; the pattern never changes.
    std::vector<Value> val = a.values();

    // Position of each row's diagonal entry in the CSR arrays.
    std::vector<fmt::CsrIndex> diag_pos(static_cast<std::size_t>(n), -1);
    for (Index i = 0; i < n; ++i) {
        auto si = static_cast<std::size_t>(i);
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            if (col_ind[static_cast<std::size_t>(j)] ==
                static_cast<fmt::CsrIndex>(i)) {
                diag_pos[si] = j;
                break;
            }
        }
        SMASH_CHECK(diag_pos[si] >= 0,
                    "ILU(0): row ", i, " has no stored diagonal entry");
    }

    // col -> position map for the current row (IKJ update).
    std::vector<fmt::CsrIndex> pos_of_col(static_cast<std::size_t>(n), -1);

    for (Index i = 0; i < n; ++i) {
        auto si = static_cast<std::size_t>(i);
        const fmt::CsrIndex begin = row_ptr[si];
        const fmt::CsrIndex end = row_ptr[si + 1];
        for (fmt::CsrIndex j = begin; j < end; ++j)
            pos_of_col[static_cast<std::size_t>(
                col_ind[static_cast<std::size_t>(j)])] = j;

        // Eliminate with every pivot row k < i present in row i.
        for (fmt::CsrIndex j = begin; j < end; ++j) {
            const Index k = static_cast<Index>(
                col_ind[static_cast<std::size_t>(j)]);
            if (k >= i)
                break; // columns are sorted: done with L part
            auto sk = static_cast<std::size_t>(k);
            const Value pivot = val[static_cast<std::size_t>(diag_pos[sk])];
            SMASH_CHECK(pivot != Value(0),
                        "ILU(0) breakdown: zero pivot at row ", k);
            const Value lik = val[static_cast<std::size_t>(j)] / pivot;
            val[static_cast<std::size_t>(j)] = lik;
            // Subtract lik * U(k, :) restricted to row i's pattern.
            for (fmt::CsrIndex p = diag_pos[sk] + 1; p < row_ptr[sk + 1];
                 ++p) {
                const fmt::CsrIndex c =
                    col_ind[static_cast<std::size_t>(p)];
                const fmt::CsrIndex target =
                    pos_of_col[static_cast<std::size_t>(c)];
                if (target >= begin && target < end) {
                    val[static_cast<std::size_t>(target)] -=
                        lik * val[static_cast<std::size_t>(p)];
                }
            }
        }

        for (fmt::CsrIndex j = begin; j < end; ++j)
            pos_of_col[static_cast<std::size_t>(
                col_ind[static_cast<std::size_t>(j)])] = -1;

        SMASH_CHECK(val[static_cast<std::size_t>(diag_pos[si])] != Value(0),
                    "ILU(0) breakdown: zero pivot produced at row ", i);
    }

    // Split into L (strictly lower, unit diagonal implicit) and U.
    std::vector<fmt::CsrIndex> l_ptr{0}, u_ptr{0};
    std::vector<fmt::CsrIndex> l_ind, u_ind;
    std::vector<Value> l_val, u_val;
    for (Index i = 0; i < n; ++i) {
        auto si = static_cast<std::size_t>(i);
        for (fmt::CsrIndex j = row_ptr[si]; j < row_ptr[si + 1]; ++j) {
            auto sj = static_cast<std::size_t>(j);
            if (static_cast<Index>(col_ind[sj]) < i) {
                l_ind.push_back(col_ind[sj]);
                l_val.push_back(val[sj]);
            } else {
                u_ind.push_back(col_ind[sj]);
                u_val.push_back(val[sj]);
            }
        }
        l_ptr.push_back(static_cast<fmt::CsrIndex>(l_ind.size()));
        u_ptr.push_back(static_cast<fmt::CsrIndex>(u_ind.size()));
    }

    Ilu0Factors factors;
    factors.lower = fmt::CsrMatrix::fromRaw(n, n, std::move(l_ptr),
                                            std::move(l_ind),
                                            std::move(l_val));
    factors.upper = fmt::CsrMatrix::fromRaw(n, n, std::move(u_ptr),
                                            std::move(u_ind),
                                            std::move(u_val));
    return factors;
}

JacobiPreconditioner::JacobiPreconditioner(std::vector<Value> diag)
    : inv_diag_(std::move(diag))
{
    for (Value& d : inv_diag_) {
        SMASH_CHECK(d != Value(0), "Jacobi preconditioner: zero diagonal");
        d = Value(1) / d;
    }
}

} // namespace smash::solve
