/**
 * @file
 * Sparse iterative solvers on top of the SpMV kernels — the paper's
 * §5.2.1 generality claim ("Sparse Iterative Solvers" among the
 * operations SMASH accelerates). The solvers are templated on an
 * *operator functor* `apply(x, y)` computing y := A x, so the same
 * algorithm runs over CSR, SMASH-software or SMASH-BMU SpMV, native
 * or simulated.
 *
 * Provided: Conjugate Gradient (SPD systems), Jacobi iteration
 * (diagonally dominant systems), and the power method (dominant
 * eigenpair — the §5.2.1 "Sparse Eigenvalue Calculation" use case).
 */

#ifndef SMASH_SOLVERS_ITERATIVE_HH
#define SMASH_SOLVERS_ITERATIVE_HH

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "kernels/costs.hh"

namespace smash::solve
{

/** Outcome of an iterative solve. */
struct SolveReport
{
    int iterations = 0;
    double residualNorm = 0.0;
    bool converged = false;
};

/** Human-readable one-liner for logs and examples. */
std::string toString(const SolveReport& report);

namespace detail
{

/** dot(u, v) with vector-unit instruction charges. */
template <typename E>
Value
dot(const std::vector<Value>& u, const std::vector<Value>& v, E& e)
{
    Value acc = 0;
    for (std::size_t i = 0; i < u.size(); ++i)
        acc += u[i] * v[i];
    e.load(u.data(), u.size() * sizeof(Value));
    e.load(v.data(), v.size() * sizeof(Value));
    e.op(2 * kern::cost::vectorOps(static_cast<Index>(u.size())));
    return acc;
}

/** y := y + a * x with vector-unit charges. */
template <typename E>
void
axpy(Value a, const std::vector<Value>& x, std::vector<Value>& y, E& e)
{
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += a * x[i];
    e.load(x.data(), x.size() * sizeof(Value));
    e.store(y.data(), y.size() * sizeof(Value));
    e.op(kern::cost::vectorOps(static_cast<Index>(x.size())));
}

} // namespace detail

/**
 * Conjugate Gradient for symmetric positive-definite A.
 *
 * @param apply functor: apply(x, y) sets y := A x (y pre-zeroed)
 * @param b     right-hand side
 * @param x     in: initial guess; out: solution
 * @param tol   convergence threshold on ||r||2 / ||b||2
 */
template <typename E, typename ApplyFn>
SolveReport
conjugateGradient(ApplyFn&& apply, const std::vector<Value>& b,
                  std::vector<Value>& x, double tol, int max_iters, E& e)
{
    SMASH_CHECK(b.size() == x.size(), "dimension mismatch");
    const std::size_t n = b.size();
    std::vector<Value> r(n), p(n), ap(n);

    // r = b - A x
    std::fill(ap.begin(), ap.end(), Value(0));
    apply(x, ap);
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - ap[i];
    e.op(kern::cost::vectorOps(static_cast<Index>(n)));
    p = r;

    const double b_norm = std::sqrt(detail::dot(b, b, e));
    if (b_norm == 0.0) {
        std::fill(x.begin(), x.end(), Value(0));
        return {0, 0.0, true};
    }

    Value rr = detail::dot(r, r, e);
    SolveReport report;
    for (int it = 0; it < max_iters; ++it) {
        report.iterations = it + 1;
        std::fill(ap.begin(), ap.end(), Value(0));
        apply(p, ap);
        Value p_ap = detail::dot(p, ap, e);
        SMASH_CHECK(p_ap != Value(0),
                    "CG breakdown: operator is not positive definite");
        Value alpha = rr / p_ap;
        detail::axpy(alpha, p, x, e);
        detail::axpy(-alpha, ap, r, e);
        Value rr_next = detail::dot(r, r, e);
        report.residualNorm =
            std::sqrt(static_cast<double>(rr_next)) / b_norm;
        if (report.residualNorm <= tol) {
            report.converged = true;
            return report;
        }
        Value beta = rr_next / rr;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = r[i] + beta * p[i];
        e.op(kern::cost::vectorOps(static_cast<Index>(n)));
        rr = rr_next;
    }
    return report;
}

/**
 * Jacobi iteration x' = x + D^-1 (b - A x) for diagonally dominant
 * systems.
 *
 * @param diag the diagonal of A (all entries non-zero)
 */
template <typename E, typename ApplyFn>
SolveReport
jacobi(ApplyFn&& apply, const std::vector<Value>& diag,
       const std::vector<Value>& b, std::vector<Value>& x, double tol,
       int max_iters, E& e)
{
    SMASH_CHECK(b.size() == x.size() && diag.size() == x.size(),
                "dimension mismatch");
    for (Value d : diag)
        SMASH_CHECK(d != Value(0), "zero diagonal entry");
    const std::size_t n = b.size();
    std::vector<Value> ax(n);

    const double b_norm = std::sqrt(detail::dot(b, b, e));
    SolveReport report;
    for (int it = 0; it < max_iters; ++it) {
        report.iterations = it + 1;
        std::fill(ax.begin(), ax.end(), Value(0));
        apply(x, ax);
        double res2 = 0;
        for (std::size_t i = 0; i < n; ++i) {
            Value r = b[i] - ax[i];
            res2 += static_cast<double>(r) * static_cast<double>(r);
            x[i] += r / diag[i];
        }
        e.op(3 * kern::cost::vectorOps(static_cast<Index>(n)));
        e.store(x.data(), n * sizeof(Value));
        report.residualNorm =
            b_norm > 0 ? std::sqrt(res2) / b_norm : std::sqrt(res2);
        if (report.residualNorm <= tol) {
            report.converged = true;
            return report;
        }
    }
    return report;
}

/**
 * Power method: dominant eigenvalue/eigenvector of A.
 *
 * @param x in: non-zero start vector; out: dominant eigenvector
 * @return the Rayleigh-quotient eigenvalue estimate; report tracks
 *         the eigenvalue's relative change per iteration
 */
template <typename E, typename ApplyFn>
Value
powerMethod(ApplyFn&& apply, std::vector<Value>& x, double tol,
            int max_iters, E& e, SolveReport* report_out = nullptr)
{
    const std::size_t n = x.size();
    SMASH_CHECK(n > 0, "empty vector");
    std::vector<Value> ax(n);
    Value lambda = 0;
    SolveReport report;
    for (int it = 0; it < max_iters; ++it) {
        report.iterations = it + 1;
        std::fill(ax.begin(), ax.end(), Value(0));
        apply(x, ax);
        Value norm = std::sqrt(detail::dot(ax, ax, e));
        SMASH_CHECK(norm != Value(0),
                    "power method collapsed to the zero vector");
        Value lambda_next = detail::dot(x, ax, e);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = ax[i] / norm;
        e.op(kern::cost::vectorOps(static_cast<Index>(n)));
        e.store(x.data(), n * sizeof(Value));
        double change = std::abs(
            static_cast<double>(lambda_next - lambda)) /
            std::max(1.0, std::abs(static_cast<double>(lambda_next)));
        report.residualNorm = change;
        lambda = lambda_next;
        if (it > 0 && change <= tol) {
            report.converged = true;
            break;
        }
    }
    if (report_out)
        *report_out = report;
    return lambda;
}

} // namespace smash::solve

#endif // SMASH_SOLVERS_ITERATIVE_HH
