#include "solvers/krylov.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace smash::solve
{

std::vector<double>
symTridiagEigenvalues(std::vector<double> alpha, std::vector<double> beta)
{
    // Implicit-shift QL with Wilkinson shifts (EISPACK tql1 lineage,
    // Numerical Recipes formulation), eigenvalues only.
    const int n = static_cast<int>(alpha.size());
    SMASH_CHECK(beta.size() + 1 == alpha.size() || (n == 0 && beta.empty()),
                "off-diagonal length must be n-1");
    if (n == 0)
        return {};
    std::vector<double>& d = alpha;
    std::vector<double> e(beta.begin(), beta.end());
    e.push_back(0.0);

    for (int l = 0; l < n; ++l) {
        int iter = 0;
        int m;
        do {
            // Find a negligible off-diagonal element.
            for (m = l; m < n - 1; ++m) {
                double dd = std::abs(d[m]) + std::abs(d[m + 1]);
                if (std::abs(e[m]) <= 1e-15 * dd)
                    break;
            }
            if (m != l) {
                SMASH_CHECK(++iter <= 50,
                            "QL iteration failed to converge");
                double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
                double r = std::hypot(g, 1.0);
                g = d[m] - d[l] +
                    e[l] / (g + std::copysign(r, g));
                double s = 1.0, c = 1.0, p = 0.0;
                for (int i = m - 1; i >= l; --i) {
                    double f = s * e[i];
                    double b = c * e[i];
                    r = std::hypot(f, g);
                    e[i + 1] = r;
                    if (r == 0.0) {
                        d[i + 1] -= p;
                        e[m] = 0.0;
                        break;
                    }
                    s = f / r;
                    c = g / r;
                    g = d[i + 1] - p;
                    r = (d[i] - g) * s + 2.0 * c * b;
                    p = s * r;
                    d[i + 1] = g + p;
                    g = c * r - b;
                }
                if (r == 0.0 && m - 1 >= l)
                    continue;
                d[l] -= p;
                e[l] = g;
                e[m] = 0.0;
            }
        } while (m != l);
    }
    std::sort(d.begin(), d.end());
    return d;
}

} // namespace smash::solve
