/**
 * @file
 * Krylov-subspace methods beyond plain CG, rounding out the paper's
 * §5.2.1 generality use cases:
 *
 *  - preconditionedCg   CG with a preconditioner functor (pairs with
 *                       Ilu0Preconditioner / JacobiPreconditioner)
 *  - bicgstab           general non-symmetric systems
 *  - lanczos            k-step Lanczos tridiagonalization; with
 *                       symTridiagEigenvalues it yields extreme
 *                       eigenvalue estimates ("Sparse Eigenvalue
 *                       Calculation")
 *
 * Like the solvers in iterative.hh, everything is templated on an
 * operator functor apply(x, y) (y := A x, y pre-zeroed) and on the
 * execution model, so any SpMV backend — CSR, SMASH-software,
 * SMASH-BMU — native or simulated, slots in unchanged.
 */

#ifndef SMASH_SOLVERS_KRYLOV_HH
#define SMASH_SOLVERS_KRYLOV_HH

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "solvers/iterative.hh"

namespace smash::solve
{

/**
 * Eigenvalues of a symmetric tridiagonal matrix (ascending), via
 * the implicit QL algorithm. @p alpha holds the n diagonal entries
 * and @p beta the n-1 off-diagonal entries.
 */
std::vector<double> symTridiagEigenvalues(std::vector<double> alpha,
                                          std::vector<double> beta);

/** Result of a Lanczos run. */
struct LanczosResult
{
    std::vector<double> alpha; //!< tridiagonal diagonal
    std::vector<double> beta;  //!< tridiagonal off-diagonal
    int steps = 0;             //!< completed iterations
    bool brokeDown = false;    //!< invariant subspace found early

    /** Ritz values (eigenvalue estimates), ascending. */
    std::vector<double>
    ritzValues() const
    {
        return symTridiagEigenvalues(alpha, beta);
    }
};

/**
 * Preconditioned Conjugate Gradient for SPD A with SPD M^-1.
 *
 * @param apply   functor: apply(x, y) sets y := A x (y pre-zeroed)
 * @param precond functor: precond(r, z, e) sets z := M^-1 r
 */
template <typename E, typename ApplyFn, typename PrecondFn>
SolveReport
preconditionedCg(ApplyFn&& apply, PrecondFn&& precond,
                 const std::vector<Value>& b, std::vector<Value>& x,
                 double tol, int max_iters, E& e)
{
    SMASH_CHECK(b.size() == x.size(), "dimension mismatch");
    const std::size_t n = b.size();
    std::vector<Value> r(n), z(n), p(n), ap(n);

    std::fill(ap.begin(), ap.end(), Value(0));
    apply(x, ap);
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - ap[i];
    e.op(kern::cost::vectorOps(static_cast<Index>(n)));

    const double b_norm = std::sqrt(detail::dot(b, b, e));
    if (b_norm == 0.0) {
        std::fill(x.begin(), x.end(), Value(0));
        return {0, 0.0, true};
    }

    precond(r, z, e);
    p = z;
    Value rz = detail::dot(r, z, e);

    SolveReport report;
    for (int it = 0; it < max_iters; ++it) {
        report.iterations = it + 1;
        std::fill(ap.begin(), ap.end(), Value(0));
        apply(p, ap);
        Value p_ap = detail::dot(p, ap, e);
        SMASH_CHECK(p_ap != Value(0),
                    "PCG breakdown: operator is not positive definite");
        Value alpha = rz / p_ap;
        detail::axpy(alpha, p, x, e);
        detail::axpy(-alpha, ap, r, e);
        report.residualNorm =
            std::sqrt(static_cast<double>(detail::dot(r, r, e))) / b_norm;
        if (report.residualNorm <= tol) {
            report.converged = true;
            return report;
        }
        precond(r, z, e);
        Value rz_next = detail::dot(r, z, e);
        Value beta = rz_next / rz;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = z[i] + beta * p[i];
        e.op(kern::cost::vectorOps(static_cast<Index>(n)));
        rz = rz_next;
    }
    return report;
}

/**
 * BiCGSTAB (van der Vorst) for general non-symmetric A.
 */
template <typename E, typename ApplyFn>
SolveReport
bicgstab(ApplyFn&& apply, const std::vector<Value>& b,
         std::vector<Value>& x, double tol, int max_iters, E& e)
{
    SMASH_CHECK(b.size() == x.size(), "dimension mismatch");
    const std::size_t n = b.size();
    std::vector<Value> r(n), r0(n), p(n), v(n), s(n), t(n);

    std::fill(v.begin(), v.end(), Value(0));
    apply(x, v);
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - v[i];
    e.op(kern::cost::vectorOps(static_cast<Index>(n)));
    r0 = r;
    p = r;

    const double b_norm = std::sqrt(detail::dot(b, b, e));
    if (b_norm == 0.0) {
        std::fill(x.begin(), x.end(), Value(0));
        return {0, 0.0, true};
    }

    Value rho = detail::dot(r0, r, e);
    SolveReport report;
    for (int it = 0; it < max_iters; ++it) {
        report.iterations = it + 1;
        if (rho == Value(0))
            return report; // serious breakdown: restart would be needed
        std::fill(v.begin(), v.end(), Value(0));
        apply(p, v);
        Value r0_v = detail::dot(r0, v, e);
        if (r0_v == Value(0))
            return report;
        Value alpha = rho / r0_v;
        for (std::size_t i = 0; i < n; ++i)
            s[i] = r[i] - alpha * v[i];
        e.op(kern::cost::vectorOps(static_cast<Index>(n)));

        double s_norm = std::sqrt(static_cast<double>(detail::dot(s, s, e)));
        if (s_norm / b_norm <= tol) {
            detail::axpy(alpha, p, x, e);
            report.residualNorm = s_norm / b_norm;
            report.converged = true;
            return report;
        }

        std::fill(t.begin(), t.end(), Value(0));
        apply(s, t);
        Value t_t = detail::dot(t, t, e);
        if (t_t == Value(0))
            return report;
        Value omega = detail::dot(t, s, e) / t_t;
        detail::axpy(alpha, p, x, e);
        detail::axpy(omega, s, x, e);
        for (std::size_t i = 0; i < n; ++i)
            r[i] = s[i] - omega * t[i];
        e.op(kern::cost::vectorOps(static_cast<Index>(n)));

        report.residualNorm =
            std::sqrt(static_cast<double>(detail::dot(r, r, e))) / b_norm;
        if (report.residualNorm <= tol) {
            report.converged = true;
            return report;
        }
        Value rho_next = detail::dot(r0, r, e);
        Value beta = (rho_next / rho) * (alpha / omega);
        for (std::size_t i = 0; i < n; ++i)
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        e.op(2 * kern::cost::vectorOps(static_cast<Index>(n)));
        rho = rho_next;
    }
    return report;
}

/**
 * k-step Lanczos tridiagonalization of a symmetric operator, with
 * full reorthogonalization (the matrices here are small enough that
 * robustness beats the O(nk) extra work).
 *
 * @param start non-zero start vector (normalized internally)
 */
template <typename E, typename ApplyFn>
LanczosResult
lanczos(ApplyFn&& apply, std::vector<Value> start, int steps, E& e)
{
    const std::size_t n = start.size();
    SMASH_CHECK(n > 0, "empty start vector");
    SMASH_CHECK(steps >= 1, "need at least one step");

    LanczosResult result;
    std::vector<std::vector<Value>> basis;
    std::vector<Value> w(n);

    double norm = std::sqrt(detail::dot(start, start, e));
    SMASH_CHECK(norm != 0.0, "zero start vector");
    for (auto& v : start)
        v = static_cast<Value>(v / norm);
    basis.push_back(start);

    for (int k = 0; k < steps; ++k) {
        const std::vector<Value>& q = basis.back();
        std::fill(w.begin(), w.end(), Value(0));
        apply(q, w);
        double alpha = detail::dot(q, w, e);
        result.alpha.push_back(alpha);
        // w -= alpha q (+ beta q_prev), then reorthogonalize.
        detail::axpy(static_cast<Value>(-alpha), q, w, e);
        if (basis.size() >= 2) {
            detail::axpy(static_cast<Value>(-result.beta.back()),
                         basis[basis.size() - 2], w, e);
        }
        for (const auto& v : basis) {
            double proj = detail::dot(v, w, e);
            detail::axpy(static_cast<Value>(-proj), v, w, e);
        }
        result.steps = k + 1;
        if (k + 1 == steps)
            break;
        double beta = std::sqrt(detail::dot(w, w, e));
        if (beta < 1e-13) {
            result.brokeDown = true; // exact invariant subspace
            break;
        }
        result.beta.push_back(beta);
        std::vector<Value> next(n);
        for (std::size_t i = 0; i < n; ++i)
            next[i] = static_cast<Value>(w[i] / beta);
        e.op(kern::cost::vectorOps(static_cast<Index>(n)));
        basis.push_back(std::move(next));
    }
    return result;
}

} // namespace smash::solve

#endif // SMASH_SOLVERS_KRYLOV_HH
