/**
 * @file
 * Incomplete LU factorization with zero fill-in, ILU(0) — the
 * paper's §5.2.1 "Sparse LU Decomposition" use case. The factors
 * keep exactly the sparsity pattern of A: L (unit lower) and U
 * (upper, with diagonal) are returned as separate CSR matrices so
 * the SpTRSV kernels can apply them, and an Ilu0Preconditioner
 * functor plugs the factorization into the Krylov solvers.
 */

#ifndef SMASH_SOLVERS_ILU_HH
#define SMASH_SOLVERS_ILU_HH

#include <vector>

#include "formats/csr_matrix.hh"
#include "kernels/sptrsv.hh"

namespace smash::solve
{

/** The two triangular factors of an ILU(0) factorization. */
struct Ilu0Factors
{
    fmt::CsrMatrix lower; //!< unit lower triangular (diag not stored)
    fmt::CsrMatrix upper; //!< upper triangular including the diagonal
};

/**
 * Factor @p a in place of its own sparsity pattern (IKJ ordering,
 * Saad Alg. 10.4). Requires a structurally non-singular diagonal:
 * every row must store its diagonal entry and pivots must stay
 * non-zero.
 */
Ilu0Factors ilu0(const fmt::CsrMatrix& a);

/**
 * Preconditioner functor: z := U^-1 L^-1 r. Templated call so it
 * charges whichever execution model the enclosing solver uses.
 */
class Ilu0Preconditioner
{
  public:
    explicit Ilu0Preconditioner(Ilu0Factors factors)
        : factors_(std::move(factors)),
          scratch_(static_cast<std::size_t>(factors_.lower.rows()))
    {}

    template <typename E>
    void
    operator()(const std::vector<Value>& r, std::vector<Value>& z, E& e)
    {
        kern::sptrsvLowerCsr(factors_.lower, r, scratch_, e,
                             /*unit_diagonal=*/true);
        kern::sptrsvUpperCsr(factors_.upper, scratch_, z, e);
    }

    const Ilu0Factors& factors() const { return factors_; }

  private:
    Ilu0Factors factors_;
    std::vector<Value> scratch_;
};

/** Identity preconditioner: z := r. */
struct IdentityPreconditioner
{
    template <typename E>
    void
    operator()(const std::vector<Value>& r, std::vector<Value>& z, E& e)
    {
        z = r;
        e.load(r.data(), r.size() * sizeof(Value));
        e.store(z.data(), z.size() * sizeof(Value));
    }
};

/** Jacobi (diagonal) preconditioner: z := D^-1 r. */
class JacobiPreconditioner
{
  public:
    /** @param diag diagonal of A; every entry must be non-zero. */
    explicit JacobiPreconditioner(std::vector<Value> diag);

    template <typename E>
    void
    operator()(const std::vector<Value>& r, std::vector<Value>& z, E& e)
    {
        for (std::size_t i = 0; i < r.size(); ++i)
            z[i] = r[i] * inv_diag_[i];
        e.load(r.data(), r.size() * sizeof(Value));
        e.store(z.data(), z.size() * sizeof(Value));
        e.op(kern::cost::vectorOps(static_cast<Index>(r.size())));
    }

  private:
    std::vector<Value> inv_diag_;
};

} // namespace smash::solve

#endif // SMASH_SOLVERS_ILU_HH
