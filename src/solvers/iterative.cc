#include "solvers/iterative.hh"

#include <sstream>

namespace smash::solve
{

std::string
toString(const SolveReport& report)
{
    std::ostringstream os;
    os << (report.converged ? "converged" : "did NOT converge")
       << " after " << report.iterations
       << " iterations, relative residual " << report.residualNorm;
    return os.str();
}

} // namespace smash::solve
