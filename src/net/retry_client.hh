/**
 * @file
 * net::RetryingClient — the resilient wrapper every production
 * caller should hold instead of a raw net::Client.
 *
 * What it adds over Client:
 *
 *   reconnect   — a broken connection (EOF from a server restart or
 *       the idle reaper, a truncated frame, a poisoned stream) is
 *       transparently re-dialed, the tenant handshake replayed, and
 *       the call retried. The raw Client closes its fd on every
 *       transport failure, so "reconnect" and "retry" are one path.
 *   backoff     — kOverloaded (admission gate or shed ladder) and
 *       kQuotaExceeded (tenant governor) answers retry after
 *       capped exponential backoff with full jitter, so a fleet of
 *       clients spreads out instead of retrying in lockstep.
 *   timeouts    — RetryPolicy::callTimeout bounds one *call* (all
 *       attempts + backoffs). The remaining budget is propagated:
 *       each attempt arms SO_RCVTIMEO with what is left, and the
 *       server sees it as the request deadline, so work that cannot
 *       answer in time dies server-side as kDeadlineExceeded
 *       instead of computing into a void.
 *   retry budget — retries spend from a token budget refilled by
 *       successes (RetryPolicy::retryBudgetPerSuccess, capped at
 *       retryBudgetCap). When the budget is dry, failures surface
 *       immediately: a hard-down server gets back its capacity
 *       instead of a retry storm.
 *
 * Non-retryable statuses (kNotFound, kInvalidOperand,
 * kShuttingDown, kDeadlineExceeded, real kInternal from a compute
 * stage) pass through on the first answer — retrying cannot fix
 * them.
 *
 * Like Client, an instance is a single connection and NOT
 * thread-safe.
 */

#ifndef SMASH_NET_RETRY_CLIENT_HH
#define SMASH_NET_RETRY_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/client.hh"

namespace smash::net
{

/** Where to (re)connect: a Unix path when non-empty, else TCP. */
struct Endpoint
{
    std::string unixPath;
    std::string host = "localhost";
    int tcpPort = -1;
};

/** Retry/backoff/timeout tuning of one RetryingClient. */
struct RetryPolicy
{
    /** Attempts per call, the first included. */
    int maxAttempts = 4;
    std::chrono::milliseconds initialBackoff{2};
    std::chrono::milliseconds maxBackoff{200};
    double multiplier = 2.0;
    std::uint64_t jitterSeed = 1;
    /** Banked retry tokens (each retry spends 1; 0 disables the
     *  budget mechanism entirely). The bank starts full. */
    double retryBudgetCap = 50;
    /** Tokens earned back per successful call. */
    double retryBudgetPerSuccess = 0.1;
    /** Wall-clock bound on one call including backoffs; 0 = none. */
    std::chrono::milliseconds callTimeout{0};
};

/** Reconnecting, backing-off, budget-capped client. */
class RetryingClient
{
  public:
    /** @p tenant is replayed as the kHello handshake after every
     *  (re)connect; "" skips the handshake (anonymous tenant). */
    RetryingClient(const Endpoint& endpoint,
                   const RetryPolicy& policy = {},
                   std::string tenant = "");

    RetryingClient(const RetryingClient&) = delete;
    RetryingClient& operator=(const RetryingClient&) = delete;

    serve::Status ping();
    serve::Result<std::vector<Value>> spmv(serve::SpmvRequest req);
    serve::Result<fmt::DenseMatrix> spmm(serve::SpmmRequest req);
    serve::Result<fmt::CooMatrix> spadd(serve::SpaddRequest req);
    serve::Result<std::string> metrics();

    /** What the resilience machinery did so far. */
    struct Stats
    {
        std::uint64_t calls = 0;
        std::uint64_t retries = 0;    //!< extra attempts made
        std::uint64_t reconnects = 0; //!< re-dials (initial excluded)
        std::uint64_t budgetDenied = 0; //!< retries skipped, dry bank
        std::uint64_t exhausted = 0; //!< calls failed out of attempts
    };

    const Stats& stats() const { return stats_; }

    /** The underlying connection (tests poke it to force EOFs). */
    Client& raw() { return client_; }

  private:
    bool connectOnce(std::string& error);
    /** Dial + handshake if the connection is down; false when the
     *  endpoint cannot be reached right now. */
    bool ensureConnected(std::string& error);
    static bool retryable(const serve::Status& status);
    /** Full-jitter backoff for retry number @p retry (1-based). */
    std::chrono::milliseconds backoff(int retry);
    double uniform(); //!< in [0, 1)

    template <typename T, typename Attempt>
    serve::Result<T> withRetry(Attempt&& attempt);

    const Endpoint endpoint_;
    const RetryPolicy policy_;
    const std::string tenant_;
    Client client_;
    bool ever_connected_ = false;
    double budget_;
    std::uint64_t rng_;
    Stats stats_;
};

} // namespace smash::net

#endif // SMASH_NET_RETRY_CLIENT_HH
