/**
 * @file
 * Thin POSIX socket layer under the wire protocol: an RAII fd,
 * listeners and connectors for the two supported transports
 * (Unix-domain and TCP over loopback/interfaces), and exact-length
 * read/write helpers with the failure taxonomy the framing layer
 * needs — a clean EOF on a frame boundary is distinguished from a
 * peer vanishing mid-frame.
 *
 * SIGPIPE never fires from this layer: every write goes through
 * send(MSG_NOSIGNAL), so writing to a connection the peer already
 * closed fails with EPIPE like any other I/O error instead of
 * killing the process. (smash_serverd additionally ignores SIGPIPE
 * process-wide, belt and braces.)
 *
 * All helpers retry EINTR. Errors are reported as errno strings via
 * out-parameters — nothing in this layer throws.
 */

#ifndef SMASH_NET_SOCKET_HH
#define SMASH_NET_SOCKET_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace smash::net
{

/** Owning file descriptor (move-only; closes on destruction). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

    Fd&
    operator=(Fd&& other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = std::exchange(other.fd_, -1);
        }
        return *this;
    }

    bool valid() const { return fd_ >= 0; }
    int get() const { return fd_; }

    /** Close now (idempotent). */
    void reset();

    /** ::shutdown(SHUT_RDWR) without closing: wakes a thread blocked
     *  in accept/read on this fd from another thread, while keeping
     *  the descriptor valid until the owner drops it. */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** Bind + listen on a Unix-domain socket at @p path (any stale
 *  socket file there is unlinked first). Invalid Fd + @p error on
 *  failure. */
Fd listenUnix(const std::string& path, std::string& error);

/** Bind + listen on TCP @p port (0 = ephemeral); @p bound_port
 *  reports the actual port. */
Fd listenTcp(std::uint16_t port, std::uint16_t& bound_port,
             std::string& error);

/** Accept one connection; invalid Fd when the listener was shut
 *  down or failed. */
Fd acceptConn(int listen_fd);

Fd connectUnix(const std::string& path, std::string& error);
Fd connectTcp(const std::string& host, std::uint16_t port,
              std::string& error);

/** Outcome of an exact-length read. */
enum class IoResult
{
    kOk,       //!< all @p n bytes arrived
    kEof,      //!< peer closed before the first byte (clean close)
    kTruncated, //!< peer closed after some bytes (mid-message)
    kError,    //!< read(2) failed
    kTimeout,  //!< SO_RCVTIMEO expired (see setRecvTimeout)
};

/** Read exactly @p n bytes (EINTR-safe). */
IoResult readFull(int fd, void* buf, std::size_t n);

/** Arm (or with @p timeout == 0 disarm) SO_RCVTIMEO on @p fd:
 *  a read blocked longer than @p timeout fails with kTimeout.
 *  The stream position is then undefined (a frame may be half
 *  read), so callers treat a timeout like any transport failure —
 *  drop the connection and (if retrying) reconnect. */
bool setRecvTimeout(int fd, std::chrono::microseconds timeout);

/** Write exactly @p n bytes via send(MSG_NOSIGNAL); false on any
 *  failure (including EPIPE from a vanished peer). */
bool writeFull(int fd, const void* buf, std::size_t n);

} // namespace smash::net

#endif // SMASH_NET_SOCKET_HH
