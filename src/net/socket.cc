#include "net/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace smash::net
{

namespace
{

std::string
errnoString(const char* what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Loopback-or-dotted-quad resolver (no getaddrinfo: the server and
 *  its clients speak IPv4 addresses, not names). */
bool
parseHost(const std::string& host, in_addr& out)
{
    if (host.empty() || host == "localhost")
        return ::inet_pton(AF_INET, "127.0.0.1", &out) == 1;
    return ::inet_pton(AF_INET, host.c_str(), &out) == 1;
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Fd::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Fd
listenUnix(const std::string& path, std::string& error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "unix socket path too long: " + path;
        return Fd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return Fd();
    }
    ::unlink(path.c_str()); // stale socket from a previous run
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        error = errnoString(("bind " + path).c_str());
        return Fd();
    }
    if (::listen(fd.get(), 128) != 0) {
        error = errnoString("listen");
        return Fd();
    }
    return fd;
}

Fd
listenTcp(std::uint16_t port, std::uint16_t& bound_port,
          std::string& error)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return Fd();
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        error = errnoString("bind");
        return Fd();
    }
    if (::listen(fd.get(), 128) != 0) {
        error = errnoString("listen");
        return Fd();
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0) {
        error = errnoString("getsockname");
        return Fd();
    }
    bound_port = ntohs(addr.sin_port);
    return fd;
}

Fd
acceptConn(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return Fd(fd);
        if (errno == EINTR)
            continue;
        return Fd();
    }
}

Fd
connectUnix(const std::string& path, std::string& error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "unix socket path too long: " + path;
        return Fd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return Fd();
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        error = errnoString(("connect " + path).c_str());
        return Fd();
    }
    return fd;
}

Fd
connectTcp(const std::string& host, std::uint16_t port,
           std::string& error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!parseHost(host, addr.sin_addr)) {
        error = "cannot parse host address: " + host;
        return Fd();
    }
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return Fd();
    }
    // Request/response frames are latency-bound and written whole;
    // Nagle only adds delay on the small ones.
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        error = errnoString("connect");
        return Fd();
    }
    return fd;
}

bool
setRecvTimeout(int fd, std::chrono::microseconds timeout)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1'000'000);
    tv.tv_usec =
        static_cast<suseconds_t>(timeout.count() % 1'000'000);
    return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                        sizeof(tv)) == 0;
}

IoResult
readFull(int fd, void* buf, std::size_t n)
{
    auto* p = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0)
            return got == 0 ? IoResult::kEof : IoResult::kTruncated;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoResult::kTimeout; // armed via setRecvTimeout
        return IoResult::kError;
    }
    return IoResult::kOk;
}

bool
writeFull(int fd, const void* buf, std::size_t n)
{
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t r =
            ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (r > 0) {
            sent += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace smash::net
