/**
 * @file
 * The demo registry shared by smash_serverd, the load generator,
 * and the end-to-end tests. Server and client construct these
 * matrices *independently* (no matrix bytes cross the wire), so a
 * client can compute the exact expected result locally and compare
 * the server's answer bit for bit.
 *
 * Every value is dyadic (a multiple of 2^-4), so sums are exact in
 * IEEE-754 doubles in ANY summation order — the server batching
 * several requests into one traversal, or SIMD-reducing in a
 * different association, still produces the bit pattern a local
 * eng::spmv does. That turns "remote == local" from a tolerance
 * check into an equality check.
 *
 * Registry contents:
 *   "ranker"  256 x 192, 8 nnz/row, regular stride pattern
 *   "graph"   192 x 192, ~6 nnz/row, same generator reseeded —
 *             a second square matrix so SpAdd has two compatible
 *             operands ("graph" + "graph2").
 *   "graph2"  192 x 192 companion of "graph".
 */

#ifndef SMASH_NET_DEMO_MATRICES_HH
#define SMASH_NET_DEMO_MATRICES_HH

#include "common/types.hh"
#include "formats/coo_matrix.hh"
#include "serve/registry.hh"

namespace smash::net
{

/** Deterministic dyadic-valued sparse matrix (exact under any
 *  summation order; @p seed varies the pattern). */
inline fmt::CooMatrix
demoMatrix(Index rows, Index cols, Index per_row, Index seed)
{
    fmt::CooMatrix coo(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index k = 0; k < per_row; ++k)
            coo.add(r, (r * 5 + k * 7 + seed) % cols,
                    Value(1) +
                        Value((r * 3 + k + seed) % 9) * Value(0.0625));
    coo.canonicalize();
    return coo;
}

inline constexpr Index kDemoRankerRows = 256;
inline constexpr Index kDemoRankerCols = 192;
inline constexpr Index kDemoGraphDim = 192;

/** The "ranker" matrix (what the load generator multiplies). */
inline fmt::CooMatrix
demoRanker()
{
    return demoMatrix(kDemoRankerRows, kDemoRankerCols, 8, 0);
}

/** Dyadic x vector for "ranker" (@p seed varies the values). */
inline std::vector<Value>
demoVector(Index seed)
{
    std::vector<Value> x(kDemoRankerCols);
    for (Index j = 0; j < kDemoRankerCols; ++j)
        x[static_cast<std::size_t>(j)] = Value(1) +
            Value((j * 7 + seed) % 16) * Value(0.0625);
    return x;
}

/** Populate @p registry with the demo set (see file comment).
 *  With @p shards > 1 the entries register as sharded matrices
 *  (row-partitioned, per-shard formats) — answers stay bit-identical
 *  to the unsharded registry, so clients need not know. */
inline void
populateDemoRegistry(serve::MatrixRegistry& registry, Index shards = 1)
{
    const auto add = [&](const std::string& name, fmt::CooMatrix coo) {
        if (shards > 1)
            registry.registerSharded(name, std::move(coo), shards);
        else
            registry.put(name, std::move(coo));
    };
    add("ranker", demoRanker());
    add("graph", demoMatrix(kDemoGraphDim, kDemoGraphDim, 6, 3));
    add("graph2", demoMatrix(kDemoGraphDim, kDemoGraphDim, 6, 11));
}

} // namespace smash::net

#endif // SMASH_NET_DEMO_MATRICES_HH
