#include "net/retry_client.hh"

#include <algorithm>
#include <thread>
#include <utility>
#include <variant>

namespace smash::net
{

namespace
{

using Clock = std::chrono::steady_clock;

} // namespace

RetryingClient::RetryingClient(const Endpoint& endpoint,
                               const RetryPolicy& policy,
                               std::string tenant)
    : endpoint_(endpoint), policy_(policy), tenant_(std::move(tenant)),
      budget_(policy.retryBudgetCap),
      rng_(policy.jitterSeed ? policy.jitterSeed : 1)
{
}

bool
RetryingClient::connectOnce(std::string& error)
{
    const bool ok = endpoint_.unixPath.empty()
        ? client_.connectTcpSocket(
              endpoint_.host,
              static_cast<std::uint16_t>(endpoint_.tcpPort), error)
        : client_.connectUnixSocket(endpoint_.unixPath, error);
    if (!ok)
        return false;
    if (!tenant_.empty()) {
        // Replay the tenant handshake on every dial: quotas follow
        // the tenant, not the connection, so a reconnect must not
        // demote us to the anonymous tenant.
        const serve::Status hello = client_.hello(tenant_);
        if (!hello.ok()) {
            client_.close();
            error = "hello: " + hello.toString();
            return false;
        }
    }
    return true;
}

bool
RetryingClient::ensureConnected(std::string& error)
{
    if (client_.connected())
        return true;
    if (ever_connected_)
        stats_.reconnects++;
    if (!connectOnce(error))
        return false;
    ever_connected_ = true;
    return true;
}

bool
RetryingClient::retryable(const serve::Status& status)
{
    switch (status.code()) {
      case serve::StatusCode::kOverloaded:
      case serve::StatusCode::kQuotaExceeded:
          return true;
      case serve::StatusCode::kInternal:
          // Only the transport wrapper's own failures (client.hh's
          // "net: ..." class); a compute-stage kInternal is a real
          // answer and retrying it just repeats the failure.
          return status.message().rfind("net: ", 0) == 0;
      default:
          return false;
    }
}

double
RetryingClient::uniform()
{
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return static_cast<double>(rng_ >> 11) * 0x1p-53;
}

std::chrono::milliseconds
RetryingClient::backoff(int retry)
{
    // Full jitter: uniform in [0, min(max, initial * mult^(n-1))].
    double ceiling =
        static_cast<double>(policy_.initialBackoff.count());
    for (int i = 1; i < retry; ++i)
        ceiling *= policy_.multiplier;
    ceiling = std::min(
        ceiling, static_cast<double>(policy_.maxBackoff.count()));
    return std::chrono::milliseconds(
        static_cast<std::int64_t>(ceiling * uniform()));
}

template <typename T, typename Attempt>
serve::Result<T>
RetryingClient::withRetry(Attempt&& attempt)
{
    stats_.calls++;
    const bool bounded = policy_.callTimeout.count() > 0;
    const Clock::time_point deadline =
        Clock::now() + policy_.callTimeout;

    serve::Result<T> last = serve::Status(
        serve::StatusCode::kInternal, "net: no attempt made");
    for (int n = 1; n <= std::max(policy_.maxAttempts, 1); ++n) {
        std::chrono::microseconds remaining{0};
        if (bounded) {
            remaining =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline - Clock::now());
            if (remaining.count() <= 0) {
                stats_.exhausted++;
                return serve::Status(
                    serve::StatusCode::kDeadlineExceeded,
                    "call timeout after " + std::to_string(n - 1) +
                        " attempt(s): " + last.status().toString());
            }
        }

        std::string error;
        if (!ensureConnected(error)) {
            last = serve::Status(serve::StatusCode::kInternal,
                                 "net: connect: " + error);
        } else {
            if (bounded)
                // Deadline propagation: the attempt may not outlive
                // the call budget. The attempt's request deadline
                // (set by the caller below) covers server-side
                // queueing; SO_RCVTIMEO is the client-side backstop
                // when the server cannot answer at all.
                client_.setReceiveTimeout(remaining);
            last = attempt(remaining);
            if (last.ok())
                break;
        }
        if (!retryable(last.status()))
            break;
        if (n >= policy_.maxAttempts) {
            stats_.exhausted++;
            break;
        }
        if (policy_.retryBudgetCap > 0) {
            if (budget_ < 1.0) {
                // Dry bank: surface the failure instead of joining
                // a retry storm against a struggling server.
                stats_.budgetDenied++;
                break;
            }
            budget_ -= 1.0;
        }
        stats_.retries++;
        const auto pause = backoff(n);
        if (pause.count() > 0)
            std::this_thread::sleep_for(pause);
    }
    if (last.ok() && policy_.retryBudgetCap > 0)
        budget_ = std::min(budget_ + policy_.retryBudgetPerSuccess,
                           policy_.retryBudgetCap);
    return last;
}

serve::Status
RetryingClient::ping()
{
    auto r = withRetry<std::monostate>(
        [this](std::chrono::microseconds) -> serve::Result<std::monostate> {
            const serve::Status s = client_.ping();
            if (!s.ok())
                return s;
            return std::monostate{};
        });
    return r.ok() ? serve::Status() : r.status();
}

serve::Result<std::vector<Value>>
RetryingClient::spmv(serve::SpmvRequest req)
{
    return withRetry<std::vector<Value>>(
        [this, &req](std::chrono::microseconds remaining) {
            serve::SpmvRequest attempt = req;
            if (remaining.count() > 0 &&
                (attempt.options.deadline.count() == 0 ||
                 attempt.options.deadline > remaining))
                attempt.options.deadline = remaining;
            return client_.spmv(std::move(attempt));
        });
}

serve::Result<fmt::DenseMatrix>
RetryingClient::spmm(serve::SpmmRequest req)
{
    return withRetry<fmt::DenseMatrix>(
        [this, &req](std::chrono::microseconds remaining) {
            serve::SpmmRequest attempt = req;
            if (remaining.count() > 0 &&
                (attempt.options.deadline.count() == 0 ||
                 attempt.options.deadline > remaining))
                attempt.options.deadline = remaining;
            return client_.spmm(std::move(attempt));
        });
}

serve::Result<fmt::CooMatrix>
RetryingClient::spadd(serve::SpaddRequest req)
{
    return withRetry<fmt::CooMatrix>(
        [this, &req](std::chrono::microseconds remaining) {
            serve::SpaddRequest attempt = req;
            if (remaining.count() > 0 &&
                (attempt.options.deadline.count() == 0 ||
                 attempt.options.deadline > remaining))
                attempt.options.deadline = remaining;
            return client_.spadd(std::move(attempt));
        });
}

serve::Result<std::string>
RetryingClient::metrics()
{
    return withRetry<std::string>(
        [this](std::chrono::microseconds) {
            return client_.metrics();
        });
}

} // namespace smash::net
