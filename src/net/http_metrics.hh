/**
 * @file
 * net::HttpMetricsListener — a deliberately tiny HTTP/1.0 shim so
 * stock Prometheus (or plain curl) can scrape the registry without
 * speaking the SMASH frame protocol.
 *
 * One accept thread, connections handled serially: a scrape is a
 * few-millisecond read-respond-close exchange, and the endpoint is
 * for one or two pollers, not traffic. Only `GET /metrics` exists;
 * everything else is 404, anything malformed or slower than the
 * per-connection receive timeout is dropped. The response carries
 * the text exposition format (version 0.0.4), Content-Length, and
 * `Connection: close` — no keep-alive, no chunking, no TLS.
 *
 * This listener is bolted on next to the frame protocol's own
 * kMetrics op (which stays the canonical in-band path); it shares
 * nothing with the Server but the process-global registry.
 */

#ifndef SMASH_NET_HTTP_METRICS_HH
#define SMASH_NET_HTTP_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/socket.hh"

namespace smash::net
{

/** Serial single-purpose HTTP listener for GET /metrics. */
class HttpMetricsListener
{
  public:
    HttpMetricsListener() = default;
    ~HttpMetricsListener() { stop(); }

    HttpMetricsListener(const HttpMetricsListener&) = delete;
    HttpMetricsListener& operator=(const HttpMetricsListener&) = delete;

    /** Bind TCP @p port (0 = ephemeral, read back via port()) and
     *  start serving. False + @p error on bind failure. */
    bool start(std::uint16_t port, std::string& error);

    /** Stop accepting and join (idempotent). */
    void stop();

    std::uint16_t port() const { return port_; }

    /** Scrapes answered 200 so far. */
    std::uint64_t scrapes() const
    {
        return scrapes_.load(std::memory_order_relaxed);
    }

  private:
    void serveLoop();
    void handleConn(Fd fd);

    Fd listener_;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> scrapes_{0};
};

} // namespace smash::net

#endif // SMASH_NET_HTTP_METRICS_HH
