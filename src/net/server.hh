/**
 * @file
 * net::Server — the process front door: listeners on a Unix-domain
 * path and/or a TCP port, one serve::Session doing the actual work,
 * and a Conn per accepted peer.
 *
 * Accept model: one blocking accept thread per listener handing each
 * connection its own read thread (thread-per-connection). The
 * structure is deliberately listener-agnostic — acceptLoop() only
 * produces connected fds, and Conn::handleFrame() is already a
 * per-frame state machine — so replacing the blocking threads with
 * one epoll loop is a contained change (a ROADMAP follow-up).
 *
 * Shutdown is two-phase so tests and the daemon can observe a
 * deterministic drain:
 *
 *   beginShutdown()  stop accepting (listeners shut down) and
 *                    close() the session — every submit from a
 *                    still-connected client now resolves to
 *                    kShuttingDown and is written back as a typed
 *                    response; in-flight requests drain. Returns
 *                    once the session is idle, so no completion
 *                    callback is still running (Session::close()'s
 *                    teardown contract).
 *   shutdown()       beginShutdown(), then wake + join every
 *                    connection thread and the accept threads.
 *                    After this the object is inert; the destructor
 *                    calls it.
 */

#ifndef SMASH_NET_SERVER_HH
#define SMASH_NET_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/conn.hh"
#include "net/http_metrics.hh"
#include "net/socket.hh"
#include "serve/registry.hh"
#include "serve/session.hh"
#include "serve/tenant.hh"

namespace smash::net
{

/** Configuration of one Server. */
struct ServerOptions
{
    /** Unix-domain listener path; empty disables the listener. */
    std::string unixPath;
    /** TCP listener port: -1 disables, 0 binds an ephemeral port
     *  (read back via tcpPort()). */
    int tcpPort = -1;
    /** The owned session's tuning (threads, batching, admission). */
    serve::SessionOptions session{};
    /** Outstanding requests per connection before the connection
     *  itself answers kOverloaded (0 = unbounded; the session's
     *  global admission gate still applies). */
    Index maxInflightPerConn = 0;
    /** Per-frame payload ceiling (kOversized beyond it). */
    std::uint64_t maxFrameBytes = kDefaultMaxFrameBytes;
    /** Default per-tenant quota (applies to every tenant that has no
     *  setQuota() override, including the anonymous tenant "");
     *  all-zero disables quota enforcement. */
    serve::TenantQuota tenantQuota{};
    /** Connections idle (no frames, nothing in flight) this long are
     *  reaped — their sockets shut down and threads joined. 0
     *  disables the reaper. Guards against half-open peers pinning
     *  threads forever. */
    std::chrono::milliseconds idleTimeout{0};
    /** HTTP GET /metrics listener port: -1 disables, 0 binds an
     *  ephemeral port (read back via httpMetricsPort()). */
    int httpMetricsPort = -1;
};

/** Socket front door over a borrowed MatrixRegistry (which must
 *  outlive the server, like it must outlive a Session). */
class Server
{
  public:
    Server(serve::MatrixRegistry& registry,
           const ServerOptions& options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Bind the configured listeners and start accepting. False +
     *  @p error when any listener fails to bind (no partial start:
     *  a bound listener is torn down again). */
    bool start(std::string& error);

    /** Phase one: stop accepting, drain the session (see file
     *  comment). Idempotent and callable from a signal-driven
     *  control thread while connections are live. */
    void beginShutdown();

    /** Phase two: full teardown (implies beginShutdown()). */
    void shutdown();

    /** Actual TCP port (after start(); meaningful with tcpPort=0). */
    std::uint16_t tcpPort() const { return tcp_port_; }
    const std::string& unixPath() const { return options_.unixPath; }

    /** The owned session (tests poke stats/overload counters). */
    serve::Session& session() { return session_; }

    /** The tenant governor (tests probe slot/token balances). */
    serve::TenantGovernor& governor() { return governor_; }

    /** Actual HTTP metrics port (after start(); meaningful with
     *  httpMetricsPort=0). 0 when the listener is disabled. */
    std::uint16_t httpMetricsPort() const
    {
        return http_metrics_.port();
    }

    /** Connections accepted over the server's lifetime. */
    std::uint64_t connectionsAccepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

    /** Idle/half-open connections reaped over the lifetime. */
    std::uint64_t connectionsReaped() const
    {
        return reaped_.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop(int listen_fd, Transport transport);
    void reaperLoop();

    serve::MatrixRegistry& registry_;
    const ServerOptions options_;
    // Declared before session_: completion callbacks hold governor
    // tickets, and the session's destructor (drain) must run while
    // the governor is still alive.
    serve::TenantGovernor governor_;
    serve::Session session_;
    Fd unix_listener_;
    Fd tcp_listener_;
    std::uint16_t tcp_port_ = 0;
    HttpMetricsListener http_metrics_;
    std::vector<std::thread> accept_threads_;
    std::thread reaper_thread_;
    std::mutex reaper_mutex_;
    std::condition_variable reaper_cv_;
    std::mutex conns_mutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> reaped_{0};
};

} // namespace smash::net

#endif // SMASH_NET_SERVER_HH
