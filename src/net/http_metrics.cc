#include "net/http_metrics.hh"

#include <chrono>
#include <sstream>
#include <sys/socket.h>
#include <utility>

#include "obs/metrics.hh"

namespace smash::net
{

namespace
{

/** A client gets this long to deliver its request line + headers;
 *  a slow or half-open scraper must not wedge the serial loop. */
constexpr std::chrono::milliseconds kRequestTimeout{500};
/** Request size cap — a scrape request is a few hundred bytes. */
constexpr std::size_t kMaxRequestBytes = 8 * 1024;

void
respond(int fd, const std::string& status_line, const std::string& body)
{
    std::ostringstream out;
    out << "HTTP/1.0 " << status_line << "\r\n"
        << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << body;
    const std::string text = out.str();
    writeFull(fd, text.data(), text.size());
}

} // namespace

bool
HttpMetricsListener::start(std::uint16_t port, std::string& error)
{
    listener_ = listenTcp(port, port_, error);
    if (!listener_.valid())
        return false;
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
HttpMetricsListener::stop()
{
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;
    listener_.shutdownBoth();
    if (thread_.joinable())
        thread_.join();
    listener_.reset();
}

void
HttpMetricsListener::serveLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        Fd fd = acceptConn(listener_.get());
        if (!fd.valid())
            break; // listener shut down
        if (stopping_.load(std::memory_order_acquire))
            break;
        handleConn(std::move(fd));
    }
}

void
HttpMetricsListener::handleConn(Fd fd)
{
    setRecvTimeout(fd.get(),
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       kRequestTimeout));
    // Read until the header terminator; a scrape request fits in one
    // or two segments, so byte-at-a-time parsing is not worth more
    // code than this chunked scan.
    std::string request;
    char chunk[1024];
    while (request.find("\r\n\r\n") == std::string::npos) {
        if (request.size() >= kMaxRequestBytes)
            return; // oversized: drop without answering
        const ssize_t r = ::recv(fd.get(), chunk, sizeof(chunk), 0);
        if (r <= 0)
            return; // timeout, EOF, or error: drop
        request.append(chunk, static_cast<std::size_t>(r));
    }

    const std::size_t line_end = request.find("\r\n");
    const std::string line = request.substr(0, line_end);
    // Accept "GET /metrics" and "GET /metrics?..." with any HTTP
    // version tail; everything else 404s.
    const bool is_metrics = line.rfind("GET /metrics", 0) == 0 &&
        (line.size() == 12 || line[12] == ' ' || line[12] == '?');
    if (!is_metrics) {
        respond(fd.get(), "404 Not Found", "not found\n");
        return;
    }
    std::ostringstream body;
    obs::MetricsRegistry::global().exportText(body);
    respond(fd.get(), "200 OK", body.str());
    scrapes_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace smash::net
