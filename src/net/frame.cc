#include "net/frame.hh"

namespace smash::net
{

namespace
{

void
putU16(std::uint8_t* p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU32(std::uint8_t* p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t* p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
getU16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>(p[0] |
                                      (std::uint16_t(p[1]) << 8));
}

std::uint32_t
getU32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

bool
isKnownOp(std::uint16_t op)
{
    switch (static_cast<Op>(op)) {
      case Op::kPing:
      case Op::kSpmv:
      case Op::kSpmm:
      case Op::kSpadd:
      case Op::kMetrics:
      case Op::kHello:
      case Op::kPong:
      case Op::kSpmvResult:
      case Op::kSpmmResult:
      case Op::kSpaddResult:
      case Op::kMetricsResult:
      case Op::kHelloResult:
      case Op::kError:
        return true;
    }
    return false;
}

} // namespace

const char*
toString(Op op)
{
    switch (op) {
      case Op::kPing: return "ping";
      case Op::kSpmv: return "spmv";
      case Op::kSpmm: return "spmm";
      case Op::kSpadd: return "spadd";
      case Op::kMetrics: return "metrics";
      case Op::kHello: return "hello";
      case Op::kPong: return "pong";
      case Op::kSpmvResult: return "spmv_result";
      case Op::kSpmmResult: return "spmm_result";
      case Op::kSpaddResult: return "spadd_result";
      case Op::kMetricsResult: return "metrics_result";
      case Op::kHelloResult: return "hello_result";
      case Op::kError: return "error";
    }
    return "unknown";
}

bool
isRequestOp(Op op)
{
    switch (op) {
      case Op::kPing:
      case Op::kSpmv:
      case Op::kSpmm:
      case Op::kSpadd:
      case Op::kMetrics:
      case Op::kHello:
        return true;
      default:
        return false;
    }
}

Op
responseOf(Op request)
{
    switch (request) {
      case Op::kPing: return Op::kPong;
      case Op::kSpmv: return Op::kSpmvResult;
      case Op::kSpmm: return Op::kSpmmResult;
      case Op::kSpadd: return Op::kSpaddResult;
      case Op::kMetrics: return Op::kMetricsResult;
      case Op::kHello: return Op::kHelloResult;
      default: return Op::kError;
    }
}

const char*
toString(WireError error)
{
    switch (error) {
      case WireError::kBadMagic: return "bad_magic";
      case WireError::kBadVersion: return "bad_version";
      case WireError::kUnknownOp: return "unknown_op";
      case WireError::kOversized: return "oversized";
      case WireError::kMalformedPayload: return "malformed_payload";
      case WireError::kTruncated: return "truncated";
    }
    return "unknown";
}

bool
isRecoverable(WireError error)
{
    return error == WireError::kUnknownOp ||
        error == WireError::kMalformedPayload;
}

void
encodeHeader(const FrameHeader& header, std::uint8_t* out)
{
    putU32(out, kWireMagic);
    putU16(out + 4, header.version);
    putU16(out + 6, static_cast<std::uint16_t>(header.op));
    putU64(out + 8, header.id);
    putU64(out + 16, header.payloadBytes);
}

std::optional<WireError>
decodeHeader(const std::uint8_t* bytes, std::uint64_t max_payload,
             FrameHeader& out)
{
    if (getU32(bytes) != kWireMagic)
        return WireError::kBadMagic;
    out.version = getU16(bytes + 4);
    if (out.version != kWireVersion)
        return WireError::kBadVersion;
    const std::uint16_t op = getU16(bytes + 6);
    out.id = getU64(bytes + 8);
    out.payloadBytes = getU64(bytes + 16);
    // Length before op: an unknown op with a sane length is
    // recoverable (skip the payload, answer kError), but an insane
    // length poisons the stream regardless of the op.
    if (out.payloadBytes > max_payload)
        return WireError::kOversized;
    if (!isKnownOp(op))
        return WireError::kUnknownOp;
    out.op = static_cast<Op>(op);
    return std::nullopt;
}

} // namespace smash::net
