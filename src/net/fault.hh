/**
 * @file
 * net::FaultInjector — deliberate wire-level failures for the chaos
 * battery (and for operators reproducing field incidents).
 *
 * The injector hooks the server's frame paths: every outbound frame
 * rolls one die and may be dropped, delayed, truncated mid-frame,
 * header-bit-flipped, or dribbled out in short writes; inbound
 * frames may be delayed before processing. Configured by API
 * (configure()) or environment (SMASH_NET_FAULTS, a spec string —
 * see parseFaultSpec). Disabled it costs one relaxed atomic load
 * per frame.
 *
 * Fault matrix (what the client must survive; docs/resilience.md):
 *
 *   drop        response never written, connection shut down →
 *               client sees EOF, reconnects, retries
 *   delay       response written late → exercises client timeouts
 *               without killing the stream
 *   truncate    half a frame then shutdown → client sees a
 *               mid-frame EOF (kTruncated), reconnects
 *   bitflip     one random bit of the 24-byte header corrupted →
 *               client detects bad magic/version/op, an id that
 *               echoes nothing, or a length mismatch, and resets
 *   short-write frame dribbled out a few bytes per send → must be
 *               invisible (readFull reassembles); exercises partial
 *               read/write handling
 *
 * Bit flips target ONLY the header, never the payload: the wire has
 * no checksum, so a payload flip would silently corrupt a result —
 * exactly the failure the chaos battery's bit-identical assertion
 * exists to rule out. Every header corruption is detectable (magic,
 * version, op, id echo, and length are all validated by the client;
 * a length flip at worst desyncs the stream, which the client's
 * receive timeout catches), so injected faults can fail requests
 * but never falsify them.
 *
 * The RNG is a seeded xorshift64 (deterministic sequence; under
 * concurrency the interleaving varies but the fault mix converges
 * to the configured rates). Fired faults count into
 * `smash_net_faults_total{kind=...}`.
 *
 * Process-global (FaultInjector::global()) because the hook sits in
 * Conn's write path where plumbing a per-server pointer through
 * every call adds nothing: a chaos run owns its process.
 */

#ifndef SMASH_NET_FAULT_HH
#define SMASH_NET_FAULT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace smash::net
{

/** Per-frame fault probabilities (all default 0 = never). */
struct FaultConfig
{
    double dropRate = 0;
    double delayRate = 0;
    std::chrono::milliseconds delay{1}; //!< applied per delay fault
    double truncateRate = 0;
    double bitflipRate = 0; //!< header bits only (see file comment)
    double shortWriteRate = 0;
    std::uint64_t seed = 1;

    bool
    any() const
    {
        return dropRate > 0 || delayRate > 0 || truncateRate > 0 ||
            bitflipRate > 0 || shortWriteRate > 0;
    }
};

/**
 * Parse a fault spec string:
 *   "drop=0.05,delay=0.02:2,truncate=0.05,bitflip=0.05,short=0.1,seed=7"
 * (delay's optional ":N" is milliseconds). False + @p error on any
 * unknown key or out-of-range value. The same format feeds
 * SMASH_NET_FAULTS and smash_serverd --faults.
 */
bool parseFaultSpec(const std::string& spec, FaultConfig& out,
                    std::string& error);

/** The process-wide injector (disabled until configured). */
class FaultInjector
{
  public:
    /** What to do to one outbound frame. */
    enum class TxFault
    {
        kNone,
        kDrop,
        kDelay,
        kTruncate,
        kBitFlip,
        kShortWrite,
    };

    static FaultInjector& global();

    /** Replace the configuration ({} or !any() disables). */
    void configure(const FaultConfig& config);
    void disable() { configure(FaultConfig{}); }

    /** Configure from $SMASH_NET_FAULTS if set; false + @p error on
     *  a malformed spec (unset leaves the injector untouched). */
    bool configureFromEnv(std::string& error);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_acquire);
    }

    FaultConfig config() const;

    /** Roll the dice for one outbound frame (counts fired kinds). */
    TxFault nextTxFault();
    /** Delay (possibly zero) to apply before processing one inbound
     *  frame. */
    std::chrono::milliseconds nextRxDelay();
    /** Which bit of the kHeaderBytes-byte header a kBitFlip flips. */
    std::uint32_t nextHeaderBit();

    /** Total faults fired since the last configure(). */
    std::uint64_t
    injected() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

  private:
    FaultInjector() = default;

    std::uint64_t nextRand();
    double uniform(); //!< in [0, 1)

    mutable std::mutex mutex_;
    FaultConfig config_; //!< guarded by mutex_
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> rng_{1};
    std::atomic<std::uint64_t> injected_{0};
};

} // namespace smash::net

#endif // SMASH_NET_FAULT_HH
