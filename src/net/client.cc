#include "net/client.hh"

#include <utility>

namespace smash::net
{

namespace
{

/** Transport/protocol failures surface as kInternal "net: ...". */
serve::Status
netError(const std::string& what)
{
    return serve::Status(serve::StatusCode::kInternal,
                         "net: " + what);
}

} // namespace

bool
Client::connectUnixSocket(const std::string& path, std::string& error)
{
    fd_ = connectUnix(path, error);
    return fd_.valid();
}

bool
Client::connectTcpSocket(const std::string& host, std::uint16_t port,
                         std::string& error)
{
    fd_ = connectTcp(host, port, error);
    return fd_.valid();
}

bool
Client::setReceiveTimeout(std::chrono::microseconds timeout)
{
    return fd_.valid() && setRecvTimeout(fd_.get(), timeout);
}

std::uint64_t
Client::sendFrame(Op op, const Buffer& payload)
{
    if (!fd_.valid())
        return 0;
    const std::uint64_t id = next_id_++;
    const Buffer frame = frameMessage(op, id, payload);
    if (!writeFull(fd_.get(), frame.data(), frame.size())) {
        fd_.reset();
        return 0;
    }
    return id;
}

bool
Client::readFrame(std::uint64_t id, Op want, Buffer& payload,
                  std::string& error)
{
    std::uint8_t header_bytes[kHeaderBytes];
    const IoResult hr = readFull(fd_.get(), header_bytes, kHeaderBytes);
    if (hr != IoResult::kOk) {
        error = hr == IoResult::kEof ? "connection closed by server"
            : hr == IoResult::kTimeout ? "receive timeout"
                                       : "read failed";
        fd_.reset();
        return false;
    }
    FrameHeader header;
    const std::optional<WireError> bad =
        decodeHeader(header_bytes, kDefaultMaxFrameBytes, header);
    if (bad) {
        error = std::string("bad response header: ") + toString(*bad);
        fd_.reset();
        return false;
    }
    payload.resize(header.payloadBytes);
    if (!payload.empty() &&
        readFull(fd_.get(), payload.data(), payload.size()) !=
            IoResult::kOk) {
        error = "response truncated";
        fd_.reset();
        return false;
    }
    if (header.op == Op::kError) {
        const std::optional<WireErrorMessage> wire =
            decodeError(payload.data(), payload.size());
        error = wire ? std::string("server protocol error: ") +
                toString(wire->error) +
                (wire->detail.empty() ? "" : ": " + wire->detail)
                     : std::string("undecodable server error frame");
        // A recoverable protocol error leaves the stream intact; the
        // request it answers is dead either way, so surface it and
        // keep the connection only when the server kept it.
        if (!wire || !isRecoverable(wire->error))
            fd_.reset();
        return false;
    }
    if (header.op != want) {
        error = std::string("unexpected response op: ") +
            toString(header.op);
        fd_.reset();
        return false;
    }
    if (header.id != id) {
        error = "response id does not echo the request";
        fd_.reset();
        return false;
    }
    return true;
}

serve::Status
Client::ping()
{
    const std::uint64_t id = sendFrame(Op::kPing, Buffer());
    if (id == 0)
        return netError("send failed");
    Buffer payload;
    std::string error;
    if (!readFrame(id, Op::kPong, payload, error))
        return netError(error);
    if (!payload.empty())
        return netError("pong with a payload");
    return serve::Status();
}

serve::Status
Client::hello(const std::string& tenant)
{
    Buffer payload;
    encodeHelloRequest(tenant, payload);
    const std::uint64_t id = sendFrame(Op::kHello, payload);
    if (id == 0)
        return netError("send failed");
    std::string error;
    if (!readFrame(id, Op::kHelloResult, payload, error))
        return netError(error);
    auto status = decodeHelloResult(payload.data(), payload.size());
    if (!status) {
        fd_.reset();
        return netError("undecodable hello result");
    }
    return *status;
}

serve::Result<std::vector<Value>>
Client::spmv(serve::SpmvRequest req)
{
    Buffer payload;
    encodeSpmvRequest(req, payload);
    const std::uint64_t id = sendFrame(Op::kSpmv, payload);
    if (id == 0)
        return netError("send failed");
    std::string error;
    if (!readFrame(id, Op::kSpmvResult, payload, error))
        return netError(error);
    auto result = decodeSpmvResult(payload.data(), payload.size());
    if (!result) {
        fd_.reset();
        return netError("undecodable spmv result");
    }
    return std::move(*result);
}

serve::Result<fmt::DenseMatrix>
Client::spmm(serve::SpmmRequest req)
{
    Buffer payload;
    encodeSpmmRequest(req, payload);
    const std::uint64_t id = sendFrame(Op::kSpmm, payload);
    if (id == 0)
        return netError("send failed");
    std::string error;
    if (!readFrame(id, Op::kSpmmResult, payload, error))
        return netError(error);
    auto result = decodeSpmmResult(payload.data(), payload.size());
    if (!result) {
        fd_.reset();
        return netError("undecodable spmm result");
    }
    return std::move(*result);
}

serve::Result<fmt::CooMatrix>
Client::spadd(serve::SpaddRequest req)
{
    Buffer payload;
    encodeSpaddRequest(req, payload);
    const std::uint64_t id = sendFrame(Op::kSpadd, payload);
    if (id == 0)
        return netError("send failed");
    std::string error;
    if (!readFrame(id, Op::kSpaddResult, payload, error))
        return netError(error);
    auto result = decodeSpaddResult(payload.data(), payload.size());
    if (!result) {
        fd_.reset();
        return netError("undecodable spadd result");
    }
    return std::move(*result);
}

serve::Result<std::string>
Client::metrics()
{
    const std::uint64_t id = sendFrame(Op::kMetrics, Buffer());
    if (id == 0)
        return netError("send failed");
    Buffer payload;
    std::string error;
    if (!readFrame(id, Op::kMetricsResult, payload, error))
        return netError(error);
    auto result = decodeMetricsResult(payload.data(), payload.size());
    if (!result) {
        fd_.reset();
        return netError("undecodable metrics result");
    }
    return std::move(*result);
}

std::uint64_t
Client::sendSpmv(const serve::SpmvRequest& req)
{
    Buffer payload;
    encodeSpmvRequest(req, payload);
    return sendFrame(Op::kSpmv, payload);
}

std::optional<Client::SpmvResponse>
Client::readSpmvResponse()
{
    if (!fd_.valid())
        return std::nullopt;
    std::uint8_t header_bytes[kHeaderBytes];
    if (readFull(fd_.get(), header_bytes, kHeaderBytes) !=
        IoResult::kOk) {
        fd_.reset();
        return std::nullopt;
    }
    FrameHeader header;
    if (decodeHeader(header_bytes, kDefaultMaxFrameBytes, header)) {
        fd_.reset();
        return std::nullopt;
    }
    Buffer payload(header.payloadBytes);
    if (!payload.empty() &&
        readFull(fd_.get(), payload.data(), payload.size()) !=
            IoResult::kOk) {
        fd_.reset();
        return std::nullopt;
    }
    if (header.op != Op::kSpmvResult) {
        fd_.reset();
        return std::nullopt;
    }
    auto result = decodeSpmvResult(payload.data(), payload.size());
    if (!result) {
        fd_.reset();
        return std::nullopt;
    }
    return SpmvResponse{header.id, std::move(*result)};
}

} // namespace smash::net
