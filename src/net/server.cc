#include "net/server.hh"

#include <algorithm>
#include <utility>

#include "obs/metrics.hh"

namespace smash::net
{

namespace
{

obs::Gauge&
openConnsGauge()
{
    static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
        "smash_net_connections_open");
    return g;
}

obs::Counter&
acceptedCounter(Transport transport)
{
    if (transport == Transport::kUnix) {
        static obs::Counter& c = obs::MetricsRegistry::global().counter(
            "smash_net_connections_total{transport=\"unix\"}");
        return c;
    }
    static obs::Counter& c = obs::MetricsRegistry::global().counter(
        "smash_net_connections_total{transport=\"tcp\"}");
    return c;
}

obs::Counter&
reapedCounter()
{
    static obs::Counter& c = obs::MetricsRegistry::global().counter(
        "smash_net_conns_reaped_total");
    return c;
}

} // namespace

Server::Server(serve::MatrixRegistry& registry,
               const ServerOptions& options)
    : registry_(registry), options_(options),
      governor_(options.tenantQuota),
      session_(registry, options.session)
{
}

Server::~Server()
{
    shutdown();
}

bool
Server::start(std::string& error)
{
    if (options_.unixPath.empty() && options_.tcpPort < 0) {
        error = "no listener configured (need a unix path or a "
                "tcp port)";
        return false;
    }
    if (!options_.unixPath.empty()) {
        unix_listener_ = listenUnix(options_.unixPath, error);
        if (!unix_listener_.valid())
            return false;
    }
    if (options_.tcpPort >= 0) {
        tcp_listener_ = listenTcp(
            static_cast<std::uint16_t>(options_.tcpPort), tcp_port_,
            error);
        if (!tcp_listener_.valid()) {
            unix_listener_.reset();
            return false;
        }
    }
    if (options_.httpMetricsPort >= 0 &&
        !http_metrics_.start(
            static_cast<std::uint16_t>(options_.httpMetricsPort),
            error)) {
        unix_listener_.reset();
        tcp_listener_.reset();
        return false;
    }
    if (unix_listener_.valid())
        accept_threads_.emplace_back([this] {
            acceptLoop(unix_listener_.get(), Transport::kUnix);
        });
    if (tcp_listener_.valid())
        accept_threads_.emplace_back([this] {
            acceptLoop(tcp_listener_.get(), Transport::kTcp);
        });
    if (options_.idleTimeout.count() > 0)
        reaper_thread_ = std::thread([this] { reaperLoop(); });
    return true;
}

void
Server::reaperLoop()
{
    // Scan at half the timeout (floor 10ms): a connection is reaped
    // at most 1.5x idleTimeout after its last activity.
    const auto scan = std::max(options_.idleTimeout / 2,
                               std::chrono::milliseconds(10));
    const auto timeout =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            options_.idleTimeout);
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(reaper_mutex_);
            reaper_cv_.wait_for(lock, scan, [this] {
                return draining_.load(std::memory_order_acquire);
            });
        }
        if (draining_.load(std::memory_order_acquire))
            return;
        const std::int64_t now = monotonicNs();
        std::lock_guard<std::mutex> lock(conns_mutex_);
        std::erase_if(conns_, [&](const std::shared_ptr<Conn>& c) {
            if (c->finished()) {
                // Already gone on its own (peer closed, or a wake()
                // from the previous scan landed): join and drop —
                // without the reaper these threads stay pinned until
                // the next accept or shutdown.
                c->join();
                openConnsGauge().add(-1);
                return true;
            }
            if (c->idleLongerThan(now, timeout)) {
                // Idle or half-open: shut the socket down. The read
                // loop unblocks, marks itself finished, and the next
                // scan joins it. An honest-but-quiet client sees a
                // clean EOF and reconnects on its next request.
                c->wake();
                reaped_.fetch_add(1, std::memory_order_relaxed);
                reapedCounter().inc();
            }
            return false;
        });
    }
}

void
Server::acceptLoop(int listen_fd, Transport transport)
{
    const ConnLimits limits{options_.maxFrameBytes,
                            options_.maxInflightPerConn};
    while (!draining_.load(std::memory_order_acquire)) {
        Fd fd = acceptConn(listen_fd);
        if (!fd.valid())
            break; // listener shut down (or hard failure)
        if (draining_.load(std::memory_order_acquire))
            break; // raced with beginShutdown(); drop the fd
        accepted_.fetch_add(1, std::memory_order_relaxed);
        acceptedCounter(transport).inc();
        openConnsGauge().add(1);
        auto conn = std::make_shared<Conn>(session_, std::move(fd),
                                           transport, limits,
                                           &governor_);
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            // Reap connections whose read loop already exited, so a
            // long-lived server's table tracks live peers rather
            // than its whole history.
            std::erase_if(conns_,
                          [](const std::shared_ptr<Conn>& c) {
                              if (!c->finished())
                                  return false;
                              c->join();
                              openConnsGauge().add(-1);
                              return true;
                          });
            conns_.push_back(conn);
        }
        conn->start();
    }
}

void
Server::beginShutdown()
{
    if (draining_.exchange(true, std::memory_order_acq_rel))
        return;
    reaper_cv_.notify_all();
    // Stop the accept loops first so no connection appears while the
    // session drains...
    unix_listener_.shutdownBoth();
    tcp_listener_.shutdownBoth();
    // ...then close the session. Connected clients keep getting
    // typed responses: anything already admitted drains to its real
    // result, everything submitted from here on resolves to
    // kShuttingDown and is written back before the sockets die.
    // close() returns only once the admission gate is empty, i.e.
    // no completion callback (socket writer) is still running.
    session_.close();
}

void
Server::shutdown()
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;
    beginShutdown();
    if (reaper_thread_.joinable())
        reaper_thread_.join();
    for (std::thread& t : accept_threads_)
        t.join();
    accept_threads_.clear();
    unix_listener_.reset();
    tcp_listener_.reset();
    http_metrics_.stop();

    std::vector<std::shared_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns.swap(conns_);
    }
    // Safe to join: beginShutdown()'s session close already
    // guaranteed no callback still holds a connection's write path.
    for (const std::shared_ptr<Conn>& c : conns) {
        c->wake();
        c->join();
        openConnsGauge().add(-1);
    }
}

} // namespace smash::net
