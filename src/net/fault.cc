#include "net/fault.hh"

#include <cstdlib>

#include "net/frame.hh"
#include "obs/metrics.hh"

namespace smash::net
{

namespace
{

obs::Counter&
faultCounter(FaultInjector::TxFault kind)
{
    switch (kind) {
      case FaultInjector::TxFault::kDrop: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_faults_total{kind=\"drop\"}");
          return c;
      }
      case FaultInjector::TxFault::kDelay: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_faults_total{kind=\"delay\"}");
          return c;
      }
      case FaultInjector::TxFault::kTruncate: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_faults_total{kind=\"truncate\"}");
          return c;
      }
      case FaultInjector::TxFault::kBitFlip: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_faults_total{kind=\"bitflip\"}");
          return c;
      }
      default: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_faults_total{kind=\"short_write\"}");
          return c;
      }
    }
}

/** "key=value" splitter for parseFaultSpec. */
bool
parseRate(const std::string& value, double& out)
{
    char* end = nullptr;
    out = std::strtod(value.c_str(), &end);
    return end != value.c_str() && *end == '\0' && out >= 0 &&
        out <= 1.0;
}

} // namespace

bool
parseFaultSpec(const std::string& spec, FaultConfig& out,
               std::string& error)
{
    FaultConfig config;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "fault spec item without '=': " + item;
            return false;
        }
        const std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        if (key == "seed") {
            char* end = nullptr;
            config.seed = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                error = "bad fault seed: " + value;
                return false;
            }
            continue;
        }
        if (key == "delay") {
            // Optional ":N" suffix: delay duration in milliseconds.
            const std::size_t colon = value.find(':');
            if (colon != std::string::npos) {
                char* end = nullptr;
                const long ms =
                    std::strtol(value.c_str() + colon + 1, &end, 10);
                if (end == value.c_str() + colon + 1 || *end != '\0' ||
                    ms < 0) {
                    error = "bad delay duration: " + value;
                    return false;
                }
                config.delay = std::chrono::milliseconds(ms);
                value = value.substr(0, colon);
            }
            if (!parseRate(value, config.delayRate)) {
                error = "bad delay rate: " + value;
                return false;
            }
            continue;
        }
        double rate = 0;
        if (!parseRate(value, rate)) {
            error = "bad fault rate for '" + key + "': " + value;
            return false;
        }
        if (key == "drop")
            config.dropRate = rate;
        else if (key == "truncate")
            config.truncateRate = rate;
        else if (key == "bitflip")
            config.bitflipRate = rate;
        else if (key == "short")
            config.shortWriteRate = rate;
        else {
            error = "unknown fault kind: " + key;
            return false;
        }
    }
    out = config;
    return true;
}

FaultInjector&
FaultInjector::global()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const FaultConfig& config)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        config_ = config;
        rng_.store(config.seed ? config.seed : 1,
                   std::memory_order_relaxed);
        injected_.store(0, std::memory_order_relaxed);
    }
    enabled_.store(config.any(), std::memory_order_release);
}

bool
FaultInjector::configureFromEnv(std::string& error)
{
    const char* spec = std::getenv("SMASH_NET_FAULTS");
    if (spec == nullptr || *spec == '\0')
        return true; // unset: leave as-is
    FaultConfig config;
    if (!parseFaultSpec(spec, config, error))
        return false;
    configure(config);
    return true;
}

FaultConfig
FaultInjector::config() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return config_;
}

std::uint64_t
FaultInjector::nextRand()
{
    // xorshift64 over one atomic word: deterministic sequence from
    // the seed, lock-free under concurrent rollers.
    std::uint64_t x = rng_.load(std::memory_order_relaxed);
    for (;;) {
        std::uint64_t y = x;
        y ^= y << 13;
        y ^= y >> 7;
        y ^= y << 17;
        if (rng_.compare_exchange_weak(x, y,
                                       std::memory_order_relaxed))
            return y;
    }
}

double
FaultInjector::uniform()
{
    return static_cast<double>(nextRand() >> 11) * 0x1p-53;
}

FaultInjector::TxFault
FaultInjector::nextTxFault()
{
    FaultConfig config;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        config = config_;
    }
    const double roll = uniform();
    double edge = config.dropRate;
    TxFault fault = TxFault::kNone;
    if (roll < edge)
        fault = TxFault::kDrop;
    else if (roll < (edge += config.truncateRate))
        fault = TxFault::kTruncate;
    else if (roll < (edge += config.bitflipRate))
        fault = TxFault::kBitFlip;
    else if (roll < (edge += config.shortWriteRate))
        fault = TxFault::kShortWrite;
    else if (roll < (edge += config.delayRate))
        fault = TxFault::kDelay;
    if (fault != TxFault::kNone) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        faultCounter(fault).inc();
    }
    return fault;
}

std::chrono::milliseconds
FaultInjector::nextRxDelay()
{
    FaultConfig config;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        config = config_;
    }
    if (config.delayRate <= 0 || uniform() >= config.delayRate)
        return std::chrono::milliseconds(0);
    injected_.fetch_add(1, std::memory_order_relaxed);
    faultCounter(TxFault::kDelay).inc();
    return config.delay;
}

std::uint32_t
FaultInjector::nextHeaderBit()
{
    return static_cast<std::uint32_t>(nextRand() %
                                      (kHeaderBytes * 8));
}

} // namespace smash::net
