#include "net/conn.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "net/fault.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace smash::net
{

namespace
{

obs::Counter&
opCounter(Op op)
{
    // One counter per request op, resolved once (toString(Op) is a
    // static string, so the label set is closed).
    switch (op) {
      case Op::kPing: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_requests_total{op=\"ping\"}");
          return c;
      }
      case Op::kSpmv: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_requests_total{op=\"spmv\"}");
          return c;
      }
      case Op::kSpmm: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_requests_total{op=\"spmm\"}");
          return c;
      }
      case Op::kMetrics: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_requests_total{op=\"metrics\"}");
          return c;
      }
      case Op::kHello: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_requests_total{op=\"hello\"}");
          return c;
      }
      default: {
          static obs::Counter& c = obs::MetricsRegistry::global().counter(
              "smash_net_requests_total{op=\"spadd\"}");
          return c;
      }
    }
}

obs::Counter&
wireErrorCounter()
{
    static obs::Counter& c = obs::MetricsRegistry::global().counter(
        "smash_net_wire_errors_total");
    return c;
}

obs::Histogram&
rxBytesHistogram()
{
    static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
        "smash_net_frame_bytes{dir=\"rx\"}");
    return h;
}

obs::Histogram&
txBytesHistogram()
{
    static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
        "smash_net_frame_bytes{dir=\"tx\"}");
    return h;
}

} // namespace

const char*
toString(Transport transport)
{
    return transport == Transport::kUnix ? "unix" : "tcp";
}

std::int64_t
monotonicNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Conn::Conn(serve::Session& session, Fd fd, Transport transport,
           const ConnLimits& limits, serve::TenantGovernor* governor)
    : session_(session), fd_(std::move(fd)), transport_(transport),
      limits_(limits), governor_(governor)
{
    // A fresh connection starts its idle clock at accept time, not
    // at epoch — otherwise the reaper would kill it before its
    // first frame.
    last_activity_ns_.store(monotonicNs(), std::memory_order_relaxed);
}

Conn::~Conn()
{
    // Normally the Server wakes + joins; this is the safety net for
    // a connection dropped without an explicit shutdown.
    if (thread_.joinable()) {
        wake();
        thread_.join();
    }
}

void
Conn::start()
{
    auto self = shared_from_this();
    thread_ = std::thread([self] { self->serveLoop(); });
}

void
Conn::wake()
{
    fd_.shutdownBoth();
}

void
Conn::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Conn::serveLoop()
{
    SMASH_TRACE_EVENT(obs::EventKind::kNetConn, 1,
                      static_cast<std::uint32_t>(transport_));
    std::uint8_t header_bytes[kHeaderBytes];
    Buffer payload;
    for (;;) {
        const IoResult hr =
            readFull(fd_.get(), header_bytes, kHeaderBytes);
        if (hr == IoResult::kEof)
            break; // clean close on a frame boundary
        if (hr != IoResult::kOk) {
            // Mid-header disconnect (or a read error, e.g. our own
            // shutdown during teardown): nothing to answer.
            wireErrorCounter().inc();
            break;
        }

        FrameHeader header;
        const std::optional<WireError> bad =
            decodeHeader(header_bytes, limits_.maxFrameBytes, header);
        if (bad && !isRecoverable(*bad)) {
            // The stream is poisoned (bad magic/version, or a length
            // prefix that cannot be skipped). Best-effort error
            // frame, then close.
            wireErrorCounter().inc();
            sendError(header.id, *bad, toString(*bad));
            break;
        }

        // The header is intact, so the payload length is trustworthy
        // — read it even when the op is unknown, to stay on a frame
        // boundary.
        payload.resize(header.payloadBytes);
        const IoResult pr = payload.empty()
            ? IoResult::kOk
            : readFull(fd_.get(), payload.data(), payload.size());
        if (pr != IoResult::kOk) {
            wireErrorCounter().inc();
            break; // mid-frame disconnect
        }
        SMASH_TRACE_EVENT(obs::EventKind::kNetFrameRx,
                          static_cast<std::uint32_t>(header.op),
                          static_cast<std::uint32_t>(
                              header.payloadBytes));
        rxBytesHistogram().record(kHeaderBytes + payload.size());
        touch();

        auto& injector = FaultInjector::global();
        if (injector.enabled()) {
            const auto rx_delay = injector.nextRxDelay();
            if (rx_delay.count() > 0)
                std::this_thread::sleep_for(rx_delay);
        }

        if (bad) { // recoverable: kUnknownOp from the header decode
            wireErrorCounter().inc();
            sendError(header.id, *bad, toString(*bad));
            continue;
        }
        if (!handleFrame(header, payload))
            break;
    }
    // The protocol is over (clean close, poisoned stream, or our own
    // teardown): half-close via shutdown rather than close() — any
    // in-flight completion callback still holds this fd, so the
    // descriptor must stay reserved until the Conn dies, but the
    // peer needs its EOF now (queued frames, e.g. the final kError,
    // still flush before the FIN).
    fd_.shutdownBoth();
    SMASH_TRACE_EVENT(obs::EventKind::kNetConn, 0,
                      static_cast<std::uint32_t>(transport_));
    done_.store(true, std::memory_order_release);
}

bool
Conn::handleFrame(const FrameHeader& header, const Buffer& payload)
{
    if (!isRequestOp(header.op)) {
        // A known op, but one only servers send (kPong, results):
        // answer like an unknown op and keep the connection — the
        // frame boundary is intact.
        wireErrorCounter().inc();
        sendError(header.id, WireError::kUnknownOp,
                  "response op sent to server");
        return true;
    }
    opCounter(header.op).inc();

    switch (header.op) {
      case Op::kPing:
          sendFrame(Op::kPong, header.id, Buffer());
          return true;
      case Op::kHello: {
          // Tenant handshake: every later request on this connection
          // is charged to the named tenant's shared quota. tenant_
          // is only touched here, on the read-loop thread, before
          // any request naming it can be submitted.
          auto tenant =
              decodeHelloRequest(payload.data(), payload.size());
          if (!tenant) {
              wireErrorCounter().inc();
              sendError(header.id, WireError::kMalformedPayload,
                        "hello request");
              return true;
          }
          tenant_ = std::move(*tenant);
          Buffer out;
          encodeHelloResult(serve::Status(), out);
          sendFrame(Op::kHelloResult, header.id, out);
          return true;
      }
      case Op::kMetrics: {
          // Answered inline, like kPing: the exposition is a
          // registry snapshot, not pipeline work, and an observer
          // must get through even when the session is saturated.
          std::ostringstream text;
          obs::MetricsRegistry::global().exportText(text);
          Buffer payload;
          encodeMetricsResult(
              serve::Result<std::string>(text.str()), payload);
          sendFrame(Op::kMetricsResult, header.id, payload);
          return true;
      }
      case Op::kSpmv: {
          auto req = decodeSpmvRequest(payload.data(), payload.size());
          if (!req) {
              wireErrorCounter().inc();
              sendError(header.id, WireError::kMalformedPayload,
                        "spmv request");
              return true;
          }
          submitSpmv(header.id, std::move(*req));
          return true;
      }
      case Op::kSpmm: {
          auto req = decodeSpmmRequest(payload.data(), payload.size());
          if (!req) {
              wireErrorCounter().inc();
              sendError(header.id, WireError::kMalformedPayload,
                        "spmm request");
              return true;
          }
          submitSpmm(header.id, std::move(*req));
          return true;
      }
      default: {
          auto req = decodeSpaddRequest(payload.data(), payload.size());
          if (!req) {
              wireErrorCounter().inc();
              sendError(header.id, WireError::kMalformedPayload,
                        "spadd request");
              return true;
          }
          submitSpadd(header.id, std::move(*req));
          return true;
      }
    }
}

bool
Conn::connOverloaded() const
{
    return limits_.maxInflight > 0 &&
        inflight_.load(std::memory_order_relaxed) >=
        limits_.maxInflight;
}

serve::TenantGovernor::Admitted
Conn::admitTenant()
{
    if (governor_ == nullptr)
        return {nullptr, serve::Status()};
    return governor_->admit(tenant_);
}

void
Conn::touch()
{
    last_activity_ns_.store(monotonicNs(), std::memory_order_relaxed);
}

void
Conn::submitSpmv(std::uint64_t id, serve::SpmvRequest req)
{
    if (connOverloaded()) {
        Buffer payload;
        encodeSpmvResult(
            serve::Status(serve::StatusCode::kOverloaded,
                          "per-connection in-flight limit"),
            payload);
        sendFrame(Op::kSpmvResult, id, payload);
        return;
    }
    auto admitted = admitTenant();
    if (!admitted.status.ok()) {
        Buffer payload;
        encodeSpmvResult(admitted.status, payload);
        sendFrame(Op::kSpmvResult, id, payload);
        return;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    auto self = shared_from_this();
    // The tenant ticket rides in the completion: the in-flight slot
    // returns only once the response is resolved, like the session's
    // own admission ticket.
    session_.submit(
        std::move(req),
        [self, id, ticket = std::move(admitted.ticket)](
            serve::Result<std::vector<Value>> r) {
            Buffer payload;
            encodeSpmvResult(r, payload);
            self->sendFrame(Op::kSpmvResult, id, payload);
            self->inflight_.fetch_sub(1, std::memory_order_relaxed);
        });
}

void
Conn::submitSpmm(std::uint64_t id, serve::SpmmRequest req)
{
    if (connOverloaded()) {
        Buffer payload;
        encodeSpmmResult(
            serve::Status(serve::StatusCode::kOverloaded,
                          "per-connection in-flight limit"),
            payload);
        sendFrame(Op::kSpmmResult, id, payload);
        return;
    }
    auto admitted = admitTenant();
    if (!admitted.status.ok()) {
        Buffer payload;
        encodeSpmmResult(admitted.status, payload);
        sendFrame(Op::kSpmmResult, id, payload);
        return;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    auto self = shared_from_this();
    session_.submit(std::move(req),
                    [self, id, ticket = std::move(admitted.ticket)](
                        serve::Result<fmt::DenseMatrix> r) {
                        Buffer payload;
                        encodeSpmmResult(r, payload);
                        self->sendFrame(Op::kSpmmResult, id, payload);
                        self->inflight_.fetch_sub(
                            1, std::memory_order_relaxed);
                    });
}

void
Conn::submitSpadd(std::uint64_t id, serve::SpaddRequest req)
{
    if (connOverloaded()) {
        Buffer payload;
        encodeSpaddResult(
            serve::Status(serve::StatusCode::kOverloaded,
                          "per-connection in-flight limit"),
            payload);
        sendFrame(Op::kSpaddResult, id, payload);
        return;
    }
    auto admitted = admitTenant();
    if (!admitted.status.ok()) {
        Buffer payload;
        encodeSpaddResult(admitted.status, payload);
        sendFrame(Op::kSpaddResult, id, payload);
        return;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    auto self = shared_from_this();
    session_.submit(std::move(req),
                    [self, id, ticket = std::move(admitted.ticket)](
                        serve::Result<fmt::CooMatrix> r) {
                        Buffer payload;
                        encodeSpaddResult(r, payload);
                        self->sendFrame(Op::kSpaddResult, id, payload);
                        self->inflight_.fetch_sub(
                            1, std::memory_order_relaxed);
                    });
}

void
Conn::sendFrame(Op op, std::uint64_t id, const Buffer& payload)
{
    Buffer frame = frameMessage(op, id, payload);

    auto fault = FaultInjector::TxFault::kNone;
    auto& injector = FaultInjector::global();
    if (injector.enabled()) {
        fault = injector.nextTxFault();
        if (fault == FaultInjector::TxFault::kDelay) {
            // Sleep before taking the write mutex so a delayed frame
            // stalls only its own response, not every writer on this
            // connection.
            std::this_thread::sleep_for(injector.config().delay);
            fault = FaultInjector::TxFault::kNone;
        } else if (fault == FaultInjector::TxFault::kBitFlip) {
            // Header bits only — payload corruption would be
            // undetectable on a checksum-less wire (see fault.hh).
            const std::uint32_t bit = injector.nextHeaderBit();
            frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
            fault = FaultInjector::TxFault::kNone;
        }
    }

    std::lock_guard<std::mutex> lock(write_mutex_);
    if (write_failed_)
        return; // peer already gone; drop late responses quietly
    if (fault == FaultInjector::TxFault::kDrop) {
        // Swallow the response and kill the stream: the client sees
        // an EOF with a request outstanding and must reconnect.
        write_failed_ = true;
        fd_.shutdownBoth();
        return;
    }
    if (fault == FaultInjector::TxFault::kTruncate) {
        // Half a frame, then FIN: the client's next read ends
        // mid-message (kTruncated).
        writeFull(fd_.get(), frame.data(), frame.size() / 2);
        write_failed_ = true;
        fd_.shutdownBoth();
        return;
    }
    bool ok = true;
    if (fault == FaultInjector::TxFault::kShortWrite) {
        // Dribble the frame out a few bytes per send: must be
        // invisible to a correct reader (readFull reassembles).
        constexpr std::size_t kChunk = 7;
        for (std::size_t off = 0; ok && off < frame.size();
             off += kChunk)
            ok = writeFull(fd_.get(), frame.data() + off,
                           std::min(kChunk, frame.size() - off));
    } else {
        ok = writeFull(fd_.get(), frame.data(), frame.size());
    }
    if (!ok) {
        write_failed_ = true;
        return;
    }
    touch();
    SMASH_TRACE_EVENT(obs::EventKind::kNetFrameTx,
                      static_cast<std::uint32_t>(op),
                      static_cast<std::uint32_t>(payload.size()));
    txBytesHistogram().record(frame.size());
}

void
Conn::sendError(std::uint64_t id, WireError error,
                const std::string& detail)
{
    Buffer payload;
    encodeError(error, detail, payload);
    sendFrame(Op::kError, id, payload);
}

} // namespace smash::net
