/**
 * @file
 * The wire format's outermost layer: a fixed 24-byte, little-endian,
 * length-prefixed frame header. Every message on a SMASH connection
 * — request, response, ping, or protocol error — is one frame:
 *
 *   offset  size  field
 *   0       4     magic    0x534D5348 ("SMSH")
 *   4       2     version  protocol version (kWireVersion)
 *   6       2     op       Op code (request or response)
 *   8       8     id       request id, chosen by the client and
 *                          echoed verbatim on the response
 *   16      8     len      payload bytes following the header
 *
 * Framing errors are typed (WireError) and split into two classes:
 * recoverable ones (unknown op, malformed payload) arrive on an
 * intact frame boundary, so the server answers with an Op::kError
 * frame and keeps the connection; unrecoverable ones (bad magic,
 * bad version, oversized length prefix, mid-frame disconnect) mean
 * the byte stream can no longer be trusted, so the server sends a
 * best-effort kError frame and closes.
 *
 * Integers are encoded little-endian by explicit byte shifts (no
 * struct punning), Values (doubles) as their IEEE-754 bit pattern —
 * decode(encode(x)) is bit-identical for every payload, including
 * NaNs. See docs/networking.md for the payload layouts.
 */

#ifndef SMASH_NET_FRAME_HH
#define SMASH_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <optional>

namespace smash::net
{

/** "SMSH" — rejects non-SMASH peers and desynced streams. */
inline constexpr std::uint32_t kWireMagic = 0x534D5348;

/** Bumped on any incompatible layout change. */
inline constexpr std::uint16_t kWireVersion = 1;

/** Encoded size of a FrameHeader. */
inline constexpr std::size_t kHeaderBytes = 24;

/** Default ceiling on one frame's payload (64 MiB); a length prefix
 *  beyond the configured ceiling is kOversized — the stream is not
 *  read further. */
inline constexpr std::uint64_t kDefaultMaxFrameBytes =
    std::uint64_t(64) << 20;

/** Message kinds. Requests are < 128; a response's op is its
 *  request's op | 0x80; kError answers any frame. */
enum class Op : std::uint16_t
{
    kPing = 0,
    kSpmv = 1,
    kSpmm = 2,
    kSpadd = 3,
    kMetrics = 4,
    kHello = 5, //!< tenant handshake (names this connection's tenant)
    kPong = 128,
    kSpmvResult = 129,
    kSpmmResult = 130,
    kSpaddResult = 131,
    kMetricsResult = 132,
    kHelloResult = 133,
    kError = 255,
};

/** Stable short name ("spmv", "error", ...). */
const char* toString(Op op);

/** True for ops a client may send. */
bool isRequestOp(Op op);

/** The response op answering @p request (kError for unknowns). */
Op responseOf(Op request);

/** Typed protocol failure (the payload of an Op::kError frame and
 *  the decoder's verdict on a bad header). Values are wire-stable. */
enum class WireError : std::uint16_t
{
    kBadMagic = 0,        //!< first four bytes are not "SMSH"
    kBadVersion = 1,      //!< version field != kWireVersion
    kUnknownOp = 2,       //!< op code is not a known request
    kOversized = 3,       //!< length prefix beyond the ceiling
    kMalformedPayload = 4, //!< payload failed to decode
    kTruncated = 5,       //!< peer vanished mid-frame
};

/** Stable short name ("bad_magic", ...). */
const char* toString(WireError error);

/** True when the connection can keep serving after @p error (the
 *  failure arrived on an intact frame boundary). */
bool isRecoverable(WireError error);

/** Decoded frame header (magic checked and stripped). */
struct FrameHeader
{
    std::uint16_t version = kWireVersion;
    Op op = Op::kPing;
    std::uint64_t id = 0;
    std::uint64_t payloadBytes = 0;
};

/** Encode @p header into @p out[kHeaderBytes]. */
void encodeHeader(const FrameHeader& header, std::uint8_t* out);

/**
 * Decode @p bytes[kHeaderBytes]. Returns the failure class —
 * kBadMagic / kBadVersion / kOversized (length prefix beyond
 * @p max_payload) / kUnknownOp (an op neither side defines) — or
 * nullopt on success with @p out filled. The op-class check accepts
 * both request and response ops; callers enforce direction.
 */
std::optional<WireError> decodeHeader(const std::uint8_t* bytes,
                                      std::uint64_t max_payload,
                                      FrameHeader& out);

} // namespace smash::net

#endif // SMASH_NET_FRAME_HH
