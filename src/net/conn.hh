/**
 * @file
 * One accepted connection: a read loop decoding frames into typed
 * serve::Session submits, and a write side fed by the session's
 * completion callbacks.
 *
 * Threading shape: the read loop owns the receive direction on its
 * own thread (thread-per-connection; the frame/session split keeps
 * the protocol state machine in handleFrame(), so an epoll loop can
 * later drive the same code from a readiness event). Responses are
 * written by whichever pipeline worker completes the request —
 * sendFrame() serializes writers on a per-connection mutex, so
 * frames never interleave on the stream and responses may legally
 * arrive out of submission order (the request id is the correlation
 * key).
 *
 * Teardown safety (the use-after-free this layer must not have):
 * completion callbacks capture shared_ptr<Conn>, so a connection
 * object outlives every in-flight request even when the client
 * vanishes mid-stream — the late write then fails with EPIPE and is
 * dropped. Admission slots are not leaked by a disconnect: tickets
 * release when the pipeline resolves each request, which happens
 * whether or not the response can still be written. The owning
 * Server joins the read thread only after Session::close() has
 * returned, by which point no callback can still be running (the
 * session's documented close() contract).
 *
 * Per-connection overload: maxInflight bounds this connection's
 * outstanding requests *before* the session's global admission gate
 * — one flooding client hits its own kOverloaded wall instead of
 * eating the whole gate.
 */

#ifndef SMASH_NET_CONN_HH
#define SMASH_NET_CONN_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "net/codec.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "serve/session.hh"
#include "serve/tenant.hh"

namespace smash::net
{

/** Which listener a connection arrived on. */
enum class Transport : std::uint32_t
{
    kUnix = 0,
    kTcp = 1,
};

const char* toString(Transport transport);

/** Monotonic nanoseconds — the shared clock behind Conn activity
 *  stamps and the server reaper's idle scan. */
std::int64_t monotonicNs();

/** Per-connection protocol limits (from ServerOptions). */
struct ConnLimits
{
    std::uint64_t maxFrameBytes = kDefaultMaxFrameBytes;
    Index maxInflight = 0; //!< outstanding requests; 0 = unbounded
};

/** One accepted connection (lifetime: shared between the server's
 *  connection table and in-flight completion callbacks). */
class Conn : public std::enable_shared_from_this<Conn>
{
  public:
    /** @p governor (nullable) charges this connection's requests to
     *  its kHello-named tenant ("" until the handshake). */
    Conn(serve::Session& session, Fd fd, Transport transport,
         const ConnLimits& limits,
         serve::TenantGovernor* governor = nullptr);
    ~Conn();

    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    /** Launch the read-loop thread (requires a live shared_ptr —
     *  callbacks bind shared_from_this()). */
    void start();

    /** Unblock a read loop parked in read(2) (both directions shut
     *  down; in-flight responses are dropped from here on). */
    void wake();

    /** Join the read-loop thread (call after wake(), and only once
     *  the session can no longer invoke this connection's
     *  callbacks). */
    void join();

    /** The read loop has exited (reaping hint; the object may still
     *  be pinned by in-flight callbacks). */
    bool finished() const
    {
        return done_.load(std::memory_order_acquire);
    }

    /** Requests currently between submit and response write. */
    Index inflight() const
    {
        return inflight_.load(std::memory_order_relaxed);
    }

    /** Idle (no frame activity, nothing in flight) for longer than
     *  @p timeout as of @p now_ns — the server reaper's predicate.
     *  A connection with in-flight work is never idle: a silent
     *  peer awaiting a slow compute keeps its socket. */
    bool idleLongerThan(std::int64_t now_ns,
                        std::chrono::nanoseconds timeout) const
    {
        return inflight() == 0 &&
            now_ns - last_activity_ns_.load(
                         std::memory_order_relaxed) >=
            timeout.count();
    }

  private:
    void serveLoop();
    /** Decode + dispatch one frame; false ends the connection. */
    bool handleFrame(const FrameHeader& header, const Buffer& payload);
    void submitSpmv(std::uint64_t id, serve::SpmvRequest req);
    void submitSpmm(std::uint64_t id, serve::SpmmRequest req);
    void submitSpadd(std::uint64_t id, serve::SpaddRequest req);
    /** True when this connection is at its inflight cap (the
     *  request is then answered kOverloaded without submitting). */
    bool connOverloaded() const;
    /** Serialize + write one frame (drops silently once the peer or
     *  the write side is gone). */
    void sendFrame(Op op, std::uint64_t id, const Buffer& payload);
    void sendError(std::uint64_t id, WireError error,
                   const std::string& detail);
    /** Tenant quota check (between the per-conn cap and the session
     *  gate); on denial answers the typed result itself and returns
     *  a denied Admitted. */
    serve::TenantGovernor::Admitted admitTenant();
    /** Stamp frame activity now (reaper idle clock). */
    void touch();

    serve::Session& session_;
    Fd fd_;
    const Transport transport_;
    const ConnLimits limits_;
    serve::TenantGovernor* const governor_;
    std::string tenant_; //!< kHello-named; read-loop thread only
    std::mutex write_mutex_;
    bool write_failed_ = false; //!< guarded by write_mutex_
    std::atomic<Index> inflight_{0};
    std::atomic<std::int64_t> last_activity_ns_{0};
    std::atomic<bool> done_{false};
    std::thread thread_;
};

} // namespace smash::net

#endif // SMASH_NET_CONN_HH
