#include "net/codec.hh"

#include <bit>
#include <cstring>
#include <limits>

namespace smash::net
{

namespace
{

/** Little-endian appender over a Buffer. */
struct Writer
{
    Buffer& out;

    void
    u8(std::uint8_t v)
    {
        out.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    void
    str(const std::string& s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        out.insert(out.end(), s.begin(), s.end());
    }
};

/**
 * Bounds-checked little-endian cursor. Every accessor returns a
 * default once a read ran past the end; callers check ok once at
 * the finish line (and that the payload was fully consumed).
 */
struct Reader
{
    const std::uint8_t* p;
    std::size_t n;
    std::size_t pos = 0;
    bool ok = true;

    bool
    need(std::size_t k)
    {
        if (!ok || n - pos < k) {
            ok = false;
            return false;
        }
        return true;
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return p[pos++];
    }

    std::uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        std::uint16_t v = static_cast<std::uint16_t>(
            p[pos] | (std::uint16_t(p[pos + 1]) << 8));
        pos += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(p[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(p[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!need(len))
            return {};
        std::string s(reinterpret_cast<const char*>(p + pos), len);
        pos += len;
        return s;
    }

    /** A count of @p elem_bytes-wide elements still to come; fails
     *  the read when the remaining payload cannot hold them (so a
     *  hostile count cannot trigger a huge allocation). */
    std::uint64_t
    count(std::size_t elem_bytes)
    {
        const std::uint64_t c = u64();
        if (!ok || c > (n - pos) / elem_bytes) {
            ok = false;
            return 0;
        }
        return c;
    }

    /** All payload bytes consumed, none missing. */
    bool
    finished() const
    {
        return ok && pos == n;
    }
};

void
encodeOptions(Writer& w, const serve::RequestOptions& options)
{
    w.u8(static_cast<std::uint8_t>(options.priority));
    w.u8(static_cast<std::uint8_t>(options.admission));
    w.u16(0);
    w.u64(static_cast<std::uint64_t>(options.deadline.count()));
}

bool
decodeOptions(Reader& r, serve::RequestOptions& options)
{
    const std::uint8_t priority = r.u8();
    const std::uint8_t admission = r.u8();
    const std::uint16_t pad = r.u16();
    const std::uint64_t deadline = r.u64();
    if (!r.ok || pad != 0 ||
        priority >= static_cast<std::uint8_t>(serve::kNumPriorities) ||
        admission > 1 ||
        deadline > static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max()))
        return false;
    options.priority = static_cast<serve::Priority>(priority);
    options.admission = static_cast<serve::Admission>(admission);
    options.deadline =
        std::chrono::microseconds(static_cast<std::int64_t>(deadline));
    return true;
}

void
encodeStatus(Writer& w, const serve::Status& status)
{
    w.u16(static_cast<std::uint16_t>(status.code()));
    w.str(status.message());
}

bool
decodeStatus(Reader& r, serve::Status& status)
{
    const std::uint16_t code = r.u16();
    std::string message = r.str();
    if (!r.ok ||
        code > static_cast<std::uint16_t>(
                   serve::StatusCode::kQuotaExceeded))
        return false;
    status = serve::Status(static_cast<serve::StatusCode>(code),
                           std::move(message));
    return true;
}

void
encodeDense(Writer& w, const fmt::DenseMatrix& m)
{
    w.u64(static_cast<std::uint64_t>(m.rows()));
    w.u64(static_cast<std::uint64_t>(m.cols()));
    for (const Value v : m.data())
        w.f64(v);
}

std::optional<fmt::DenseMatrix>
decodeDense(Reader& r)
{
    const std::int64_t rows = r.i64();
    const std::int64_t cols = r.i64();
    if (!r.ok || rows < 0 || cols < 0 ||
        (cols > 0 &&
         static_cast<std::uint64_t>(rows) > (r.n - r.pos) / 8 /
             static_cast<std::uint64_t>(cols)))
        return std::nullopt;
    fmt::DenseMatrix m(rows, cols);
    for (Value& v : m.data())
        v = r.f64();
    if (!r.ok)
        return std::nullopt;
    return m;
}

} // namespace

Buffer
frameMessage(Op op, std::uint64_t id, const Buffer& payload)
{
    Buffer frame(kHeaderBytes + payload.size());
    FrameHeader header;
    header.op = op;
    header.id = id;
    header.payloadBytes = payload.size();
    encodeHeader(header, frame.data());
    if (!payload.empty())
        std::memcpy(frame.data() + kHeaderBytes, payload.data(),
                    payload.size());
    return frame;
}

void
encodeHelloRequest(const std::string& tenant, Buffer& out)
{
    Writer w{out};
    w.str(tenant);
}

std::optional<std::string>
decodeHelloRequest(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    std::string tenant = r.str();
    if (!r.finished())
        return std::nullopt;
    return tenant;
}

void
encodeHelloResult(const serve::Status& status, Buffer& out)
{
    Writer w{out};
    encodeStatus(w, status);
}

std::optional<serve::Status>
decodeHelloResult(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::Status status;
    if (!decodeStatus(r, status) || !r.finished())
        return std::nullopt;
    return status;
}

void
encodeSpmvRequest(const serve::SpmvRequest& req, Buffer& out)
{
    Writer w{out};
    encodeOptions(w, req.options);
    w.str(req.matrix);
    w.u64(req.x.size());
    for (const Value v : req.x)
        w.f64(v);
}

std::optional<serve::SpmvRequest>
decodeSpmvRequest(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::SpmvRequest req;
    if (!decodeOptions(r, req.options))
        return std::nullopt;
    req.matrix = r.str();
    const std::uint64_t count = r.count(8);
    req.x.resize(count);
    for (Value& v : req.x)
        v = r.f64();
    if (!r.finished())
        return std::nullopt;
    return req;
}

void
encodeSpmmRequest(const serve::SpmmRequest& req, Buffer& out)
{
    Writer w{out};
    encodeOptions(w, req.options);
    w.str(req.matrix);
    encodeDense(w, req.b);
}

std::optional<serve::SpmmRequest>
decodeSpmmRequest(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::SpmmRequest req;
    if (!decodeOptions(r, req.options))
        return std::nullopt;
    req.matrix = r.str();
    std::optional<fmt::DenseMatrix> b = decodeDense(r);
    if (!b || !r.finished())
        return std::nullopt;
    req.b = std::move(*b);
    return req;
}

void
encodeSpaddRequest(const serve::SpaddRequest& req, Buffer& out)
{
    Writer w{out};
    encodeOptions(w, req.options);
    w.str(req.a);
    w.str(req.b);
}

std::optional<serve::SpaddRequest>
decodeSpaddRequest(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::SpaddRequest req;
    if (!decodeOptions(r, req.options))
        return std::nullopt;
    req.a = r.str();
    req.b = r.str();
    if (!r.finished())
        return std::nullopt;
    return req;
}

void
encodeSpmvResult(const serve::Result<std::vector<Value>>& r,
                 Buffer& out)
{
    Writer w{out};
    encodeStatus(w, r.status());
    if (!r.ok())
        return;
    const std::vector<Value>& y = r.value();
    w.u64(y.size());
    for (const Value v : y)
        w.f64(v);
}

std::optional<serve::Result<std::vector<Value>>>
decodeSpmvResult(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::Status status;
    if (!decodeStatus(r, status))
        return std::nullopt;
    if (!status.ok()) {
        if (!r.finished())
            return std::nullopt;
        return serve::Result<std::vector<Value>>(std::move(status));
    }
    const std::uint64_t count = r.count(8);
    std::vector<Value> y(count);
    for (Value& v : y)
        v = r.f64();
    if (!r.finished())
        return std::nullopt;
    return serve::Result<std::vector<Value>>(std::move(y));
}

void
encodeSpmmResult(const serve::Result<fmt::DenseMatrix>& r, Buffer& out)
{
    Writer w{out};
    encodeStatus(w, r.status());
    if (r.ok())
        encodeDense(w, r.value());
}

std::optional<serve::Result<fmt::DenseMatrix>>
decodeSpmmResult(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::Status status;
    if (!decodeStatus(r, status))
        return std::nullopt;
    if (!status.ok()) {
        if (!r.finished())
            return std::nullopt;
        return serve::Result<fmt::DenseMatrix>(std::move(status));
    }
    std::optional<fmt::DenseMatrix> m = decodeDense(r);
    if (!m || !r.finished())
        return std::nullopt;
    return serve::Result<fmt::DenseMatrix>(std::move(*m));
}

void
encodeSpaddResult(const serve::Result<fmt::CooMatrix>& r, Buffer& out)
{
    Writer w{out};
    encodeStatus(w, r.status());
    if (!r.ok())
        return;
    const fmt::CooMatrix& m = r.value();
    w.u64(static_cast<std::uint64_t>(m.rows()));
    w.u64(static_cast<std::uint64_t>(m.cols()));
    w.u64(static_cast<std::uint64_t>(m.nnz()));
    for (const fmt::CooEntry& e : m.entries()) {
        w.i64(e.row);
        w.i64(e.col);
        w.f64(e.value);
    }
}

std::optional<serve::Result<fmt::CooMatrix>>
decodeSpaddResult(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::Status status;
    if (!decodeStatus(r, status))
        return std::nullopt;
    if (!status.ok()) {
        if (!r.finished())
            return std::nullopt;
        return serve::Result<fmt::CooMatrix>(std::move(status));
    }
    const std::int64_t rows = r.i64();
    const std::int64_t cols = r.i64();
    if (!r.ok || rows < 0 || cols < 0)
        return std::nullopt;
    const std::uint64_t nnz = r.count(24);
    fmt::CooMatrix m(rows, cols);
    for (std::uint64_t i = 0; i < nnz; ++i) {
        const Index row = r.i64();
        const Index col = r.i64();
        const Value value = r.f64();
        if (!r.ok || row < 0 || row >= rows || col < 0 || col >= cols)
            return std::nullopt;
        // CooMatrix::add drops zero-valued entries — the same
        // invariant the encoder's source object upheld, so the
        // round-trip stays faithful for anything a server can emit.
        m.add(row, col, value);
    }
    if (!r.finished())
        return std::nullopt;
    return serve::Result<fmt::CooMatrix>(std::move(m));
}

void
encodeMetricsResult(const serve::Result<std::string>& r, Buffer& out)
{
    Writer w{out};
    encodeStatus(w, r.status());
    if (r.ok())
        w.str(r.value());
}

std::optional<serve::Result<std::string>>
decodeMetricsResult(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    serve::Status status;
    if (!decodeStatus(r, status))
        return std::nullopt;
    if (!status.ok()) {
        if (!r.finished())
            return std::nullopt;
        return serve::Result<std::string>(std::move(status));
    }
    std::string text = r.str();
    if (!r.finished())
        return std::nullopt;
    return serve::Result<std::string>(std::move(text));
}

void
encodeError(WireError error, const std::string& detail, Buffer& out)
{
    Writer w{out};
    w.u16(static_cast<std::uint16_t>(error));
    w.str(detail);
}

std::optional<WireErrorMessage>
decodeError(const std::uint8_t* p, std::size_t n)
{
    Reader r{p, n};
    WireErrorMessage msg;
    const std::uint16_t code = r.u16();
    msg.detail = r.str();
    if (!r.finished() ||
        code > static_cast<std::uint16_t>(WireError::kTruncated))
        return std::nullopt;
    msg.error = static_cast<WireError>(code);
    return msg;
}

} // namespace smash::net
