/**
 * @file
 * net::Client — the library side of the wire protocol: connect over
 * a Unix-domain path or TCP, then speak the same typed surface as
 * serve::Session, with every serve::Status (overload, deadline,
 * shutdown, ...) arriving intact off the wire.
 *
 * Two usage shapes:
 *
 *   Synchronous:  spmv()/spmm()/spadd()/ping() send one request and
 *     block for its response — the simple path for tools and tests.
 *
 *   Pipelined:    sendSpmv() queues a request without waiting;
 *     readSpmvResponse() consumes the next response in arrival
 *     order. The load generator uses this to keep a configurable
 *     window of requests outstanding per connection, which is what
 *     drives the server's admission gate into kOverloaded territory.
 *
 * Failure mapping: anything that breaks *transport or protocol* —
 * connect/read/write failure, a malformed response, an Op::kError
 * frame, a response id that doesn't echo the request — comes back
 * as StatusCode::kInternal with a "net: ..." message. Application
 * statuses pass through untouched; only the transport wrapper adds
 * its own failure class.
 *
 * A Client is a single connection and is NOT thread-safe — one
 * thread (or externally serialized threads) per client, which
 * matches the load generator's one-client-per-process design.
 */

#ifndef SMASH_NET_CLIENT_HH
#define SMASH_NET_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/codec.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "serve/request.hh"
#include "serve/result.hh"

namespace smash::net
{

/** One client connection to a smash_serverd endpoint. */
class Client
{
  public:
    Client() = default;

    /** Connect over a Unix-domain socket. */
    bool connectUnixSocket(const std::string& path,
                           std::string& error);
    /** Connect over TCP ("localhost" or a dotted quad). */
    bool connectTcpSocket(const std::string& host,
                          std::uint16_t port, std::string& error);

    bool connected() const { return fd_.valid(); }
    void close() { fd_.reset(); }

    /** Arm SO_RCVTIMEO on the connection (0 disarms): a response
     *  slower than @p timeout fails the call with a "net: receive
     *  timeout" kInternal and closes the connection (the stream
     *  position is undefined after a timeout — see socket.hh). */
    bool setReceiveTimeout(std::chrono::microseconds timeout);

    // --- Synchronous round-trips. ---

    /** Liveness probe: kPing → kPong. */
    serve::Status ping();

    /** Tenant handshake (kHello): every later request on this
     *  connection is charged to @p tenant's quota. */
    serve::Status hello(const std::string& tenant);
    serve::Result<std::vector<Value>> spmv(serve::SpmvRequest req);
    serve::Result<fmt::DenseMatrix> spmm(serve::SpmmRequest req);
    serve::Result<fmt::CooMatrix> spadd(serve::SpaddRequest req);
    /** The server's metrics exposition (kMetrics → kMetricsResult):
     *  obs::MetricsRegistry::exportText as one text blob. */
    serve::Result<std::string> metrics();

    // --- Pipelined SpMV (the load generator's inner loop). ---

    /** Queue one SpMV without waiting; the returned id correlates
     *  with readSpmvResponse(). 0 on a send failure. */
    std::uint64_t sendSpmv(const serve::SpmvRequest& req);

    /** One pipelined response (arrival order). */
    struct SpmvResponse
    {
        std::uint64_t id = 0;
        serve::Result<std::vector<Value>> result;
    };

    /** Block for the next SpMV response; nullopt when the transport
     *  or protocol failed (connection is closed then). */
    std::optional<SpmvResponse> readSpmvResponse();

  private:
    /** Send @p payload as (@p op, fresh id); 0 on failure. */
    std::uint64_t sendFrame(Op op, const Buffer& payload);
    /** Read one frame, expecting @p want (or kError) echoing @p id;
     *  false + @p error on any transport/protocol failure. */
    bool readFrame(std::uint64_t id, Op want, Buffer& payload,
                   std::string& error);

    Fd fd_;
    std::uint64_t next_id_ = 1;
};

} // namespace smash::net

#endif // SMASH_NET_CLIENT_HH
