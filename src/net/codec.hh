/**
 * @file
 * Payload codecs: the typed serving surface (SpmvRequest /
 * SpmmRequest / SpaddRequest and their serve::Result responses)
 * serialized into frame payloads, so overload / deadline / shutdown
 * semantics survive the wire intact.
 *
 * Layouts (all little-endian; str = u32 length + bytes; values are
 * IEEE-754 bit patterns, indices two's-complement u64):
 *
 *   options   = u8 priority, u8 admission, u16 pad(0), u64 deadline_us
 *   HelloRequest = str tenant
 *   HelloResult  = status
 *   SpmvRequest  = options, str matrix, u64 n, n * f64
 *   SpmmRequest  = options, str matrix, u64 rows, u64 cols,
 *                  rows*cols * f64 (row-major)
 *   SpaddRequest = options, str a, str b
 *   status    = u16 code, str message
 *   SpmvResult   = status [, u64 n, n * f64           when kOk]
 *   SpmmResult   = status [, u64 rows, u64 cols, f64… when kOk]
 *   SpaddResult  = status [, u64 rows, u64 cols, u64 nnz,
 *                  nnz * (i64 row, i64 col, f64 value) when kOk]
 *   MetricsResult = status [, str text when kOk]
 *   error     = u16 WireError, str detail   (Op::kError payload)
 *
 * An Op::kMetrics request carries no payload — the response's text
 * is the registry's Prometheus exposition (obs::exportText).
 *
 * Every decoder is total: any byte string either decodes or returns
 * failure — truncated fields, trailing garbage, out-of-range enum
 * values, and length prefixes pointing past the payload end are all
 * rejected without reading out of bounds. Round-trips are
 * bit-identical: decode(encode(x)) == x for every representable
 * value, and re-encoding a decoded payload reproduces the bytes.
 */

#ifndef SMASH_NET_CODEC_HH
#define SMASH_NET_CODEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "serve/request.hh"
#include "serve/result.hh"

namespace smash::net
{

/** Payload under construction (appended behind a frame header by
 *  the connection writers). */
using Buffer = std::vector<std::uint8_t>;

/** Encode @p header + @p payload into one contiguous frame. */
Buffer frameMessage(Op op, std::uint64_t id, const Buffer& payload);

// --- Requests (client encodes, server decodes). ---

/** kHello payload: the tenant name this connection's requests are
 *  charged to (TenantGovernor quotas). */
void encodeHelloRequest(const std::string& tenant, Buffer& out);
std::optional<std::string> decodeHelloRequest(const std::uint8_t* p,
                                              std::size_t n);

void encodeSpmvRequest(const serve::SpmvRequest& req, Buffer& out);
void encodeSpmmRequest(const serve::SpmmRequest& req, Buffer& out);
void encodeSpaddRequest(const serve::SpaddRequest& req, Buffer& out);

std::optional<serve::SpmvRequest>
decodeSpmvRequest(const std::uint8_t* p, std::size_t n);
std::optional<serve::SpmmRequest>
decodeSpmmRequest(const std::uint8_t* p, std::size_t n);
std::optional<serve::SpaddRequest>
decodeSpaddRequest(const std::uint8_t* p, std::size_t n);

// --- Responses (server encodes, client decodes). ---

void encodeSpmvResult(const serve::Result<std::vector<Value>>& r,
                      Buffer& out);
void encodeSpmmResult(const serve::Result<fmt::DenseMatrix>& r,
                      Buffer& out);
void encodeSpaddResult(const serve::Result<fmt::CooMatrix>& r,
                       Buffer& out);

std::optional<serve::Result<std::vector<Value>>>
decodeSpmvResult(const std::uint8_t* p, std::size_t n);
std::optional<serve::Result<fmt::DenseMatrix>>
decodeSpmmResult(const std::uint8_t* p, std::size_t n);
std::optional<serve::Result<fmt::CooMatrix>>
decodeSpaddResult(const std::uint8_t* p, std::size_t n);

void encodeMetricsResult(const serve::Result<std::string>& r,
                         Buffer& out);
std::optional<serve::Result<std::string>>
decodeMetricsResult(const std::uint8_t* p, std::size_t n);

/** kHelloResult payload: just a status (kOk acknowledges the
 *  tenant; quota denials arrive per-request, not here). */
void encodeHelloResult(const serve::Status& status, Buffer& out);
std::optional<serve::Status> decodeHelloResult(const std::uint8_t* p,
                                               std::size_t n);

// --- Protocol errors (Op::kError payload). ---

/** One decoded kError frame. */
struct WireErrorMessage
{
    WireError error = WireError::kMalformedPayload;
    std::string detail;
};

void encodeError(WireError error, const std::string& detail,
                 Buffer& out);
std::optional<WireErrorMessage> decodeError(const std::uint8_t* p,
                                            std::size_t n);

} // namespace smash::net

#endif // SMASH_NET_CODEC_HH
