/**
 * @file
 * The Table-3 matrix suite: fifteen synthetic stand-ins matching
 * the published rows, non-zero counts and sparsities of the
 * SuiteSparse inputs, each assigned the structure class of its
 * original (banded, FEM-clustered, power-law, uniform). A scale
 * factor shrinks rows and nnz proportionally — sparsity% and
 * structure class are preserved — so simulated benches finish in
 * minutes (the knob every bench prints).
 */

#ifndef SMASH_WORKLOADS_MATRIX_SUITE_HH
#define SMASH_WORKLOADS_MATRIX_SUITE_HH

#include <string>
#include <vector>

#include "core/hierarchy_config.hh"
#include "formats/coo_matrix.hh"

namespace smash::wl
{

/** Structure class driving generator choice. */
enum class MatrixStructure
{
    kRunScatter,      //!< short runs at uniform positions
    kTrefethenBanded, //!< diagonal + power-of-two offsets
    kClustered,       //!< runs near a diagonal band (FEM)
    kPowerLaw,        //!< Zipf row degrees, striped columns
};

/** One Table-3 entry. */
struct MatrixSpec
{
    std::string name;          //!< paper id + SuiteSparse name
    Index rows = 0;
    Index cols = 0;            //!< suite matrices are square
    Index nnz = 0;
    double sparsityPct = 0.0;  //!< paper-reported % of non-zeros
    MatrixStructure structure = MatrixStructure::kRunScatter;
    /** Contiguous-run length used by the generator (locality knob). */
    Index clusterRun = 4;
    /** Paper Fig. 10 bitmap configuration, top-down (b2.b1.b0). */
    std::vector<Index> paperConfig{16, 4, 2};
    std::uint64_t seed = 0;
};

/** The fifteen Table-3 specs (M1..M15), unscaled. */
std::vector<MatrixSpec> table3Specs();

/** A spec with rows/cols/nnz scaled by @p scale (>0, <=1). */
MatrixSpec scaleSpec(const MatrixSpec& spec, double scale);

/** Instantiate the generator for @p spec. */
fmt::CooMatrix generateMatrix(const MatrixSpec& spec);

/** The paper's hierarchy configuration for @p spec. */
core::HierarchyConfig paperHierarchy(const MatrixSpec& spec);

/**
 * Benchmark scale factor from the SMASH_BENCH_SCALE environment
 * variable, defaulting to @p def. Clamped to (0, 1].
 */
double benchScale(double def = 0.25);

} // namespace smash::wl

#endif // SMASH_WORKLOADS_MATRIX_SUITE_HH
