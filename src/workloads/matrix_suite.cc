#include "workloads/matrix_suite.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "workloads/matrix_gen.hh"

namespace smash::wl
{

std::vector<MatrixSpec>
table3Specs()
{
    using MS = MatrixStructure;
    // name, rows, nnz, sparsity%, structure, run, paper config, seed.
    // Structure classes follow the SuiteSparse domains: power-grid /
    // economics descriptors scatter in short runs; Trefethen is
    // banded; FEM stiffness matrices (TSOPF, ns3Da, tsyl, pkustk,
    // ramage, nd3k, exdata) cluster near the diagonal; gene /
    // optimization matrices are power-law with dense column stripes.
    auto spec = [](std::string name, Index rows, Index nnz, double sp,
                   MS st, Index run, std::vector<Index> cfg,
                   std::uint64_t seed) {
        MatrixSpec s;
        s.name = std::move(name);
        s.rows = rows;
        s.cols = rows;
        s.nnz = nnz;
        s.sparsityPct = sp;
        s.structure = st;
        s.clusterRun = run;
        s.paperConfig = std::move(cfg);
        s.seed = seed;
        return s;
    };
    return {
        spec("M1:descriptor_xingo6u", 20738, 73916, 0.01,
             MS::kRunScatter, 2, {16, 4, 2}, 101),
        spec("M2:g7jac060sc", 17730, 183325, 0.06,
             MS::kClustered, 4, {16, 4, 2}, 102),
        spec("M3:Trefethen_20000", 20000, 554466, 0.14,
             MS::kTrefethenBanded, 1, {16, 4, 2}, 103),
        spec("M4:IG5-16", 18846, 588326, 0.17,
             MS::kRunScatter, 3, {16, 4, 2}, 104),
        spec("M5:TSOPF_RS_b162_c3", 15374, 610299, 0.26,
             MS::kClustered, 8, {16, 4, 2}, 105),
        spec("M6:ns3Da", 20414, 1679599, 0.40,
             MS::kClustered, 8, {16, 4, 2}, 106),
        spec("M7:tsyl201", 20685, 2454957, 0.57,
             MS::kClustered, 8, {16, 4, 2}, 107),
        spec("M8:pkustk07", 16860, 2418804, 0.85,
             MS::kClustered, 8, {16, 4, 2}, 108),
        spec("M9:ramage02", 16830, 2866352, 1.01,
             MS::kClustered, 8, {16, 4, 2}, 109),
        spec("M10:pattern1", 19242, 9323432, 2.52,
             MS::kRunScatter, 3, {16, 4, 2}, 110),
        spec("M11:gupta3", 16783, 9323427, 3.31,
             MS::kPowerLaw, 6, {2, 4, 2}, 111),
        spec("M12:nd3k", 9000, 3279690, 4.05,
             MS::kClustered, 8, {8, 4, 2}, 112),
        spec("M13:human_gene1", 22283, 24669643, 4.97,
             MS::kPowerLaw, 6, {8, 4, 2}, 113),
        spec("M14:exdata_1", 6001, 2269500, 6.30,
             MS::kClustered, 12, {2, 4, 2}, 114),
        spec("M15:human_gene2", 14340, 18068388, 8.79,
             MS::kPowerLaw, 6, {8, 4, 2}, 115),
    };
}

MatrixSpec
scaleSpec(const MatrixSpec& spec, double scale)
{
    SMASH_CHECK(scale > 0.0 && scale <= 1.0,
                "scale must be in (0, 1], got ", scale);
    if (scale == 1.0)
        return spec;
    MatrixSpec s = spec;
    // Shrink rows by `scale` and nnz by scale^1.5: a compromise
    // between preserving sparsity% (would need scale^2, but then
    // rows empty out and per-row loop effects dominate) and
    // preserving nnz/row (would need scale^1, but then density
    // inflates). Both distortions stay within sqrt(scale).
    s.rows = std::max<Index>(64, static_cast<Index>(
        static_cast<double>(spec.rows) * scale));
    s.cols = s.rows;
    double ratio = static_cast<double>(s.rows) /
        static_cast<double>(spec.rows);
    s.nnz = std::max<Index>(16, static_cast<Index>(
        static_cast<double>(spec.nnz) * ratio * std::sqrt(ratio)));
    s.nnz = std::min(s.nnz, s.rows * s.cols);
    return s;
}

fmt::CooMatrix
generateMatrix(const MatrixSpec& spec)
{
    switch (spec.structure) {
      case MatrixStructure::kRunScatter:
        return genRunScatter(spec.rows, spec.cols, spec.nnz,
                             spec.clusterRun, spec.seed);
      case MatrixStructure::kTrefethenBanded:
        return genTrefethen(spec.rows, spec.nnz);
      case MatrixStructure::kClustered:
        return genClustered(spec.rows, spec.cols, spec.nnz,
                            spec.clusterRun, spec.seed);
      case MatrixStructure::kPowerLaw:
        return genPowerLaw(spec.rows, spec.cols, spec.nnz,
                           /*alpha=*/0.7, spec.seed, spec.clusterRun);
    }
    SMASH_PANIC("unknown matrix structure");
}

core::HierarchyConfig
paperHierarchy(const MatrixSpec& spec)
{
    return core::HierarchyConfig::fromPaperNotation(spec.paperConfig);
}

double
benchScale(double def)
{
    const char* env = std::getenv("SMASH_BENCH_SCALE");
    if (!env)
        return def;
    double v = std::atof(env);
    if (v <= 0.0 || v > 1.0) {
        warn("ignoring SMASH_BENCH_SCALE outside (0,1]");
        return def;
    }
    return v;
}

} // namespace smash::wl
