/**
 * @file
 * The Table-4 graph suite: synthetic stand-ins for the four SNAP
 * inputs, matching |V| and |E| and the structure class (power-law
 * community graphs vs. a high-diameter road grid).
 */

#ifndef SMASH_WORKLOADS_GRAPH_SUITE_HH
#define SMASH_WORKLOADS_GRAPH_SUITE_HH

#include <string>
#include <vector>

#include "graph/graph.hh"

namespace smash::wl
{

/** Structure class of a graph input. */
enum class GraphStructure
{
    kPowerLaw, //!< RMAT (social / co-purchase networks)
    kRoadGrid, //!< 2-D grid with shortcuts (road networks)
};

/** One Table-4 entry. */
struct GraphSpec
{
    std::string name;
    graph::Vertex vertices = 0;
    Index edges = 0;
    GraphStructure structure = GraphStructure::kPowerLaw;
    std::uint64_t seed = 0;
};

/** The four Table-4 specs (G1..G4), unscaled. */
std::vector<GraphSpec> table4Specs();

/** A spec with vertices/edges scaled by @p scale. */
GraphSpec scaleSpec(const GraphSpec& spec, double scale);

/** Instantiate the generator for @p spec. */
graph::Graph generateGraph(const GraphSpec& spec);

} // namespace smash::wl

#endif // SMASH_WORKLOADS_GRAPH_SUITE_HH
