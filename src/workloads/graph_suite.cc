#include "workloads/graph_suite.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "graph/generators.hh"

namespace smash::wl
{

std::vector<GraphSpec>
table4Specs()
{
    return {
        {"G1:com-Youtube", 1100000, 2900000, GraphStructure::kPowerLaw,
         201},
        {"G2:com-DBLP", 317000, 1000000, GraphStructure::kPowerLaw, 202},
        {"G3:roadNet-CA", 1900000, 2700000, GraphStructure::kRoadGrid,
         203},
        {"G4:amazon0601", 403000, 3300000, GraphStructure::kPowerLaw,
         204},
    };
}

GraphSpec
scaleSpec(const GraphSpec& spec, double scale)
{
    SMASH_CHECK(scale > 0.0 && scale <= 1.0,
                "scale must be in (0, 1], got ", scale);
    if (scale == 1.0)
        return spec;
    GraphSpec s = spec;
    s.vertices = std::max<graph::Vertex>(64, static_cast<graph::Vertex>(
        static_cast<double>(spec.vertices) * scale));
    s.edges = std::max<Index>(128, static_cast<Index>(
        static_cast<double>(spec.edges) * scale));
    return s;
}

graph::Graph
generateGraph(const GraphSpec& spec)
{
    switch (spec.structure) {
      case GraphStructure::kPowerLaw:
        return graph::rmatGraph(spec.vertices, spec.edges, spec.seed);
      case GraphStructure::kRoadGrid: {
        Index side = static_cast<Index>(
            std::llround(std::sqrt(static_cast<double>(spec.vertices))));
        side = std::max<Index>(side, 8);
        return graph::gridGraph(side, side, spec.seed);
      }
    }
    SMASH_PANIC("unknown graph structure");
}

} // namespace smash::wl
