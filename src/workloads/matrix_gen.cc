#include "workloads/matrix_gen.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace smash::wl
{

namespace
{

/** Non-zero value in [0.5, 1.5); avoids accidental cancellation. */
Value
randomValue(Rng& rng)
{
    return Value(0.5) + static_cast<Value>(rng.uniform());
}

/** Key for coordinate dedup. */
std::uint64_t
key(Index r, Index c, Index cols)
{
    return static_cast<std::uint64_t>(r) *
        static_cast<std::uint64_t>(cols) + static_cast<std::uint64_t>(c);
}

} // namespace

fmt::CooMatrix
genUniform(Index rows, Index cols, Index nnz, std::uint64_t seed)
{
    SMASH_CHECK(nnz <= rows * cols, "nnz exceeds matrix capacity");
    Rng rng(seed);
    fmt::CooMatrix coo(rows, cols);
    std::unordered_set<std::uint64_t> used;
    used.reserve(static_cast<std::size_t>(nnz) * 2);
    while (static_cast<Index>(used.size()) < nnz) {
        Index r = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(rows)));
        Index c = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(cols)));
        if (used.insert(key(r, c, cols)).second)
            coo.add(r, c, randomValue(rng));
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genTrefethen(Index n, Index nnz)
{
    fmt::CooMatrix coo(n, n);
    Rng rng(0xdef7);
    Index added = 0;
    // Diagonal first, then bands at power-of-two offsets, as in the
    // real Trefethen_20000 matrix.
    for (Index i = 0; i < n && added < nnz; ++i, ++added)
        coo.add(i, i, randomValue(rng));
    for (Index offset = 1; offset < n && added < nnz; offset *= 2) {
        for (Index i = 0; i + offset < n && added + 2 <= nnz; ++i) {
            coo.add(i, i + offset, randomValue(rng));
            coo.add(i + offset, i, randomValue(rng));
            added += 2;
        }
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genClustered(Index rows, Index cols, Index nnz, Index run_len,
             std::uint64_t seed)
{
    SMASH_CHECK(run_len > 0, "run length must be positive");
    SMASH_CHECK(nnz <= rows * cols, "nnz exceeds matrix capacity");
    Rng rng(seed);
    fmt::CooMatrix coo(rows, cols);
    std::unordered_set<std::uint64_t> used;
    used.reserve(static_cast<std::size_t>(nnz) * 2);
    Index added = 0;
    // Band half-width: runs start near the diagonal, like the
    // block-diagonal population of FEM stiffness matrices.
    const Index band = std::max<Index>(run_len * 4,
                                       cols / 16 + run_len);
    while (added < nnz) {
        Index r = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(rows)));
        Index diag = std::min(cols - 1, r * cols / std::max<Index>(rows, 1));
        Index lo = std::max<Index>(0, diag - band);
        Index hi = std::min<Index>(cols - 1, diag + band);
        Index c0 = lo + static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
        for (Index k = 0; k < run_len && added < nnz; ++k) {
            Index c = c0 + k;
            if (c >= cols)
                break;
            if (used.insert(key(r, c, cols)).second) {
                coo.add(r, c, randomValue(rng));
                ++added;
            }
        }
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genRunScatter(Index rows, Index cols, Index nnz, Index run_len,
              std::uint64_t seed)
{
    SMASH_CHECK(run_len > 0, "run length must be positive");
    SMASH_CHECK(nnz <= rows * cols, "nnz exceeds matrix capacity");
    Rng rng(seed);
    fmt::CooMatrix coo(rows, cols);
    std::unordered_set<std::uint64_t> used;
    used.reserve(static_cast<std::size_t>(nnz) * 2);
    Index added = 0;
    while (added < nnz) {
        Index r = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(rows)));
        Index c0 = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(cols)));
        for (Index k = 0; k < run_len && added < nnz; ++k) {
            Index c = c0 + k;
            if (c >= cols)
                break;
            if (used.insert(key(r, c, cols)).second) {
                coo.add(r, c, randomValue(rng));
                ++added;
            }
        }
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genPowerLaw(Index rows, Index cols, Index nnz, double alpha,
            std::uint64_t seed, Index run_len)
{
    SMASH_CHECK(run_len > 0, "run length must be positive");
    SMASH_CHECK(alpha > 0, "alpha must be positive");
    SMASH_CHECK(nnz <= rows * cols, "nnz exceeds matrix capacity");
    Rng rng(seed);

    // Zipf row weights; row degree ~ weight * nnz.
    std::vector<double> weight(static_cast<std::size_t>(rows));
    double total = 0;
    for (Index r = 0; r < rows; ++r) {
        weight[static_cast<std::size_t>(r)] =
            1.0 / std::pow(static_cast<double>(r + 1), alpha);
        total += weight[static_cast<std::size_t>(r)];
    }
    // Shuffle so heavy rows are spread through the matrix.
    for (Index r = rows - 1; r > 0; --r) {
        Index o = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(r + 1)));
        std::swap(weight[static_cast<std::size_t>(r)],
                  weight[static_cast<std::size_t>(o)]);
    }

    fmt::CooMatrix coo(rows, cols);
    std::unordered_set<std::uint64_t> used;
    used.reserve(static_cast<std::size_t>(nnz) * 2);
    Index added = 0;
    for (Index r = 0; r < rows && added < nnz; ++r) {
        Index degree = static_cast<Index>(
            weight[static_cast<std::size_t>(r)] / total *
            static_cast<double>(nnz) + 0.5);
        degree = std::min(degree, cols);
        Index placed = 0;
        while (placed < degree && added < nnz) {
            Index c0 = static_cast<Index>(
                rng.below(static_cast<std::uint64_t>(cols)));
            for (Index k = 0; k < run_len && placed < degree &&
                 added < nnz; ++k) {
                Index c = c0 + k;
                if (c >= cols)
                    break;
                if (used.insert(key(r, c, cols)).second) {
                    coo.add(r, c, randomValue(rng));
                    ++added;
                    ++placed;
                } else {
                    ++placed; // avoid spinning on saturated rows
                }
            }
        }
    }
    // Rounding may leave a shortfall: top up uniformly.
    while (added < nnz) {
        Index r = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(rows)));
        Index c = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(cols)));
        if (used.insert(key(r, c, cols)).second) {
            coo.add(r, c, randomValue(rng));
            ++added;
        }
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genWithLocality(Index rows, Index cols, Index nnz, Index block,
                double locality, std::uint64_t seed)
{
    SMASH_CHECK(block > 0, "block size must be positive");
    SMASH_CHECK(locality > 0.0 && locality <= 1.0,
                "locality must be in (0, 1]");
    Rng rng(seed);
    const Index per_block = std::max<Index>(
        1, static_cast<Index>(
            std::llround(locality * static_cast<double>(block))));
    const Index blocks_per_row = cols / block;
    SMASH_CHECK(blocks_per_row > 0, "cols smaller than one block");
    const Index n_blocks =
        (nnz + per_block - 1) / per_block;
    SMASH_CHECK(n_blocks <= rows * blocks_per_row,
                "nnz/locality exceeds the block grid");

    // Choose distinct aligned blocks.
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(static_cast<std::size_t>(n_blocks) * 2);
    fmt::CooMatrix coo(rows, cols);
    Index added = 0;
    while (static_cast<Index>(chosen.size()) < n_blocks) {
        Index r = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(rows)));
        Index b = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(blocks_per_row)));
        if (!chosen.insert(key(r, b, blocks_per_row)).second)
            continue;
        // Fill exactly per_block distinct offsets inside the block
        // (fewer for the final block if the budget runs out).
        Index want = std::min(per_block, nnz - added);
        if (want <= 0)
            break;
        // Partial Fisher-Yates over the block offsets.
        std::vector<Index> offsets(static_cast<std::size_t>(block));
        for (Index k = 0; k < block; ++k)
            offsets[static_cast<std::size_t>(k)] = k;
        for (Index k = 0; k < want; ++k) {
            Index o = k + static_cast<Index>(
                rng.below(static_cast<std::uint64_t>(block - k)));
            std::swap(offsets[static_cast<std::size_t>(k)],
                      offsets[static_cast<std::size_t>(o)]);
            coo.add(r, b * block + offsets[static_cast<std::size_t>(k)],
                    randomValue(rng));
            ++added;
        }
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genPoisson2d(Index nx, Index ny)
{
    SMASH_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
    const Index n = nx * ny;
    fmt::CooMatrix coo(n, n);
    auto node = [nx](Index i, Index j) { return i * nx + j; };
    for (Index i = 0; i < ny; ++i) {
        for (Index j = 0; j < nx; ++j) {
            const Index r = node(i, j);
            coo.add(r, r, 4.0);
            if (j > 0)
                coo.add(r, node(i, j - 1), -1.0);
            if (j + 1 < nx)
                coo.add(r, node(i, j + 1), -1.0);
            if (i > 0)
                coo.add(r, node(i - 1, j), -1.0);
            if (i + 1 < ny)
                coo.add(r, node(i + 1, j), -1.0);
        }
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genTridiagonal(Index n)
{
    fmt::CooMatrix coo(n, n);
    for (Index i = 0; i < n; ++i) {
        coo.add(i, i, Value(4));
        if (i > 0)
            coo.add(i, i - 1, Value(-1));
        if (i + 1 < n)
            coo.add(i, i + 1, Value(-1));
    }
    coo.canonicalize();
    return coo;
}

fmt::CooMatrix
genScatterDeltas(Index rows, Index cols, Index count,
                 std::uint64_t seed)
{
    Rng rng(seed);
    fmt::CooMatrix d(rows, cols);
    for (Index i = 0; i < count; ++i) {
        const auto r = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(rows)));
        const auto c = static_cast<Index>(
            rng.below(static_cast<std::uint64_t>(cols)));
        d.add(r, c, Value(0.5));
    }
    d.canonicalize();
    return d;
}

fmt::CooMatrix
genDiagDominant(Index n, Index off_diag, double margin, std::uint64_t seed)
{
    SMASH_CHECK(n > 0, "matrix dimension must be positive");
    SMASH_CHECK(off_diag >= 0 && off_diag < n,
                "off-diagonal budget must be in [0, n)");
    SMASH_CHECK(margin > 0, "dominance margin must be positive");
    Rng rng(seed);
    fmt::CooMatrix coo(n, n);
    for (Index r = 0; r < n; ++r) {
        double row_abs = 0;
        // Sample distinct off-diagonal columns by rejection; the
        // budget is far below n so collisions are rare.
        std::set<Index> cols;
        while (static_cast<Index>(cols.size()) < off_diag) {
            Index c = static_cast<Index>(
                rng.below(static_cast<std::uint64_t>(n)));
            if (c != r)
                cols.insert(c);
        }
        for (Index c : cols) {
            double v = 2.0 * rng.uniform() - 1.0;
            if (v == 0.0)
                v = 0.5;
            coo.add(r, c, v);
            row_abs += std::abs(v);
        }
        coo.add(r, r, row_abs + margin);
    }
    coo.canonicalize();
    return coo;
}

} // namespace smash::wl
