/**
 * @file
 * Synthetic sparse-matrix generators. Each produces a canonical COO
 * matrix with a requested size and non-zero budget in one of the
 * structure classes found in the paper's Table 3 inputs: uniform
 * scatter, Trefethen-style banded, FEM-style clustered blocks, and
 * power-law rows. A locality-controlled generator reproduces the
 * §7.2.3 sweep, where the fraction of non-zeros per NZA block is
 * set exactly.
 */

#ifndef SMASH_WORKLOADS_MATRIX_GEN_HH
#define SMASH_WORKLOADS_MATRIX_GEN_HH

#include <cstdint>

#include "formats/coo_matrix.hh"

namespace smash::wl
{

/** Uniformly scattered non-zeros (IG5/pattern-style inputs). */
fmt::CooMatrix genUniform(Index rows, Index cols, Index nnz,
                          std::uint64_t seed);

/**
 * Trefethen-style matrix: primes-on-the-diagonal structure with
 * entries at |i-j| in {1, 2, 4, 8, ...} — the actual structure of
 * Trefethen_20000. @p nnz trims or caps the band population.
 */
fmt::CooMatrix genTrefethen(Index n, Index nnz);

/**
 * FEM-style clustered matrix: non-zeros arrive in contiguous runs
 * of ~@p run_len elements near a block-diagonal band, giving the
 * high locality of sparsity of stiffness matrices (pkustk, tsyl,
 * ramage, nd3k, exdata).
 */
fmt::CooMatrix genClustered(Index rows, Index cols, Index nnz,
                            Index run_len, std::uint64_t seed);

/**
 * Contiguous runs of ~@p run_len non-zeros at uniformly random
 * positions (no diagonal band) — scattered but locally clustered,
 * like constraint/pattern matrices.
 */
fmt::CooMatrix genRunScatter(Index rows, Index cols, Index nnz,
                             Index run_len, std::uint64_t seed);

/**
 * Power-law rows (gene networks, gupta): row populations follow a
 * Zipf-like distribution; columns arrive in contiguous runs of
 * ~@p run_len (gene-correlation matrices have dense stripes).
 */
fmt::CooMatrix genPowerLaw(Index rows, Index cols, Index nnz,
                           double alpha, std::uint64_t seed,
                           Index run_len = 1);

/**
 * Locality-of-sparsity-controlled generator (paper §7.2.3): picks
 * ceil(nnz / (locality * block)) aligned blocks and fills exactly
 * round(locality * block) elements in each, so the average
 * non-zeros per block of size @p block is locality * block.
 *
 * @param locality target fraction in (0, 1]
 */
fmt::CooMatrix genWithLocality(Index rows, Index cols, Index nnz,
                               Index block, double locality,
                               std::uint64_t seed);

/**
 * 5-point finite-difference Laplacian on an nx x ny grid: the
 * canonical symmetric positive-definite test system for the §5.2.1
 * solver use cases (diagonal 4, neighbours -1, natural row-major
 * node numbering).
 */
fmt::CooMatrix genPoisson2d(Index nx, Index ny);

/**
 * Tridiagonal (-1, 4, -1) system with dyadic values — the
 * DIA-friendly starting point of the drift studies. Every value is
 * a dyadic rational, so any summation order over it is exact in
 * doubles (the "bit-identical across a format swap" test property).
 */
fmt::CooMatrix genTridiagonal(Index n);

/**
 * @p count scattered dyadic deltas (value 0.5) at uniform random
 * coordinates: the drift-delta batches of the serving layer's
 * update path. Duplicate coordinates within one batch merge by
 * addition (still dyadic); collisions with existing entries become
 * value updates when applied.
 */
fmt::CooMatrix genScatterDeltas(Index rows, Index cols, Index count,
                                std::uint64_t seed);

/**
 * Random diagonally dominant non-symmetric matrix: ~@p off_diag
 * off-diagonal entries per row in (-1, 1), diagonal set to
 * (row sum of |off-diagonals|) + @p margin. Guaranteed solvable by
 * BiCGSTAB/Jacobi; used to exercise the non-symmetric solvers.
 */
fmt::CooMatrix genDiagDominant(Index n, Index off_diag, double margin,
                               std::uint64_t seed);

} // namespace smash::wl

#endif // SMASH_WORKLOADS_MATRIX_GEN_HH
