/**
 * @file
 * Tests for the execution engine: format-agnostic dispatch against
 * the dense oracle, the capability registry, format auto-selection,
 * the work-stealing thread pool, and parallel-vs-serial agreement
 * of the multi-threaded SpMV drivers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "common/parallel_exec.hh"
#include "common/rng.hh"
#include "engine/autoselect.hh"
#include "engine/dispatch.hh"
#include "engine/operator.hh"
#include "formats/convert.hh"
#include "kernels/reference.hh"
#include "sim/machine.hh"
#include "solvers/iterative.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

const eng::Format kAllFormats[] = {
    eng::Format::kCoo,  eng::Format::kCsr,   eng::Format::kCsc,
    eng::Format::kBcsr, eng::Format::kEll,   eng::Format::kDia,
    eng::Format::kDense, eng::Format::kSmash,
};

std::vector<Value>
rampVector(Index n)
{
    std::vector<Value> x(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value(i % 7) * Value(0.25);
    return x;
}

/** Oracle y = A x over the dense expansion of @p coo. */
std::vector<Value>
oracleSpmv(const fmt::CooMatrix& coo, const std::vector<Value>& x)
{
    std::vector<Value> y(static_cast<std::size_t>(coo.rows()), Value(0));
    kern::denseSpmv(coo.toDense(), x, y);
    return y;
}

/**
 * An asymmetric matrix: leading empty rows, one fully dense row,
 * a scattered tail — the shapes that break naive partitioning.
 */
fmt::CooMatrix
asymmetricMatrix(Index rows, Index cols)
{
    fmt::CooMatrix coo(rows, cols);
    for (Index c = 0; c < cols; ++c) // one dense row
        coo.add(rows / 3, c, Value(1) + Value(c % 5));
    Rng rng(99);
    for (Index k = 0; k < rows * 2; ++k) { // scattered tail
        Index r = rows / 2 + static_cast<Index>(
            rng.nextU64() % static_cast<std::uint64_t>(rows - rows / 2));
        Index c = static_cast<Index>(
            rng.nextU64() % static_cast<std::uint64_t>(cols));
        coo.add(r, c, Value(0.5) + Value((r + c) % 3));
    }
    coo.canonicalize();
    return coo;
}

TEST(EngineDispatch, EveryFormatMatchesDenseOracle)
{
    fmt::CooMatrix coo = wl::genClustered(61, 53, 600, 5, 7);
    std::vector<Value> x = rampVector(coo.cols());
    std::vector<Value> ref = oracleSpmv(coo, x);
    sim::NativeExec e;

    for (eng::Format f : kAllFormats) {
        eng::SparseMatrixAny m = eng::SparseMatrixAny::fromCoo(coo, f);
        EXPECT_EQ(m.format(), f);
        EXPECT_EQ(m.rows(), coo.rows());
        EXPECT_EQ(m.cols(), coo.cols());
        std::vector<Value> y(static_cast<std::size_t>(coo.rows()),
                             Value(0));
        eng::spmv(m, x, y, e);
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(y[i], ref[i], 1e-9)
                << "format " << eng::toString(f) << " row " << i;
    }
}

TEST(EngineDispatch, AlgoVariantsMatchOracle)
{
    fmt::CooMatrix coo = wl::genClustered(48, 48, 300, 4, 3);
    std::vector<Value> x = rampVector(coo.cols());
    std::vector<Value> ref = oracleSpmv(coo, x);
    sim::NativeExec e;

    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    for (eng::SpmvAlgo algo :
         {eng::SpmvAlgo::kPlain, eng::SpmvAlgo::kUnrolled,
          eng::SpmvAlgo::kIdeal}) {
        std::vector<Value> y(ref.size(), Value(0));
        eng::spmv(csr, x, y, e, {.algo = algo});
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(y[i], ref[i], 1e-9);
    }

    eng::SparseMatrixAny sm =
        eng::SparseMatrixAny::fromCoo(coo, eng::Format::kSmash);
    isa::Bmu bmu;
    std::vector<Value> y(ref.size(), Value(0));
    eng::spmv(sm, x, y, e, {.bmu = &bmu}); // kAuto resolves to the BMU
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-9);
}

TEST(EngineDispatch, SimulatedDispatchBillsTheMachine)
{
    fmt::CooMatrix coo = wl::genClustered(40, 40, 220, 4, 5);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> x = rampVector(coo.cols());
    std::vector<Value> ref = oracleSpmv(coo, x);

    sim::Machine machine;
    sim::SimExec e(machine);
    std::vector<Value> y(ref.size(), Value(0));
    eng::spmv(csr, x, y, e);
    EXPECT_GT(machine.core().instructions(), 0u);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-9);
}

TEST(EngineDispatch, SpmmMatchesDenseOracle)
{
    fmt::CooMatrix a_coo = wl::genClustered(40, 36, 260, 4, 11);
    fmt::CooMatrix b_coo = wl::genClustered(36, 24, 180, 4, 12);

    fmt::DenseMatrix ref(a_coo.rows(), b_coo.cols());
    kern::denseSpmm(a_coo.toDense(), b_coo.toDense(), ref);
    sim::NativeExec e;

    { // CSR x CSC
        fmt::DenseMatrix c(a_coo.rows(), b_coo.cols());
        eng::spmm(fmt::CsrMatrix::fromCoo(a_coo),
                  fmt::CscMatrix::fromCoo(b_coo), c, e);
        EXPECT_TRUE(c.approxEquals(ref, 1e-9));
    }
    { // dense x dense
        fmt::DenseMatrix c(a_coo.rows(), b_coo.cols());
        eng::spmm(a_coo.toDense(), b_coo.toDense(), c, e);
        EXPECT_TRUE(c.approxEquals(ref, 1e-9));
    }
    { // SMASH x SMASH(B^T), software scan and BMU
        fmt::CooMatrix bt_coo = fmt::transpose(
            fmt::CsrMatrix::fromCoo(b_coo)).toCoo();
        eng::SparseMatrixAny a =
            eng::SparseMatrixAny::fromCoo(a_coo, eng::Format::kSmash);
        eng::SparseMatrixAny bt =
            eng::SparseMatrixAny::fromCoo(bt_coo, eng::Format::kSmash);
        fmt::DenseMatrix c_sw(a_coo.rows(), b_coo.cols());
        eng::spmm(a, bt, c_sw, e);
        EXPECT_TRUE(c_sw.approxEquals(ref, 1e-9));

        isa::Bmu bmu;
        fmt::DenseMatrix c_hw(a_coo.rows(), b_coo.cols());
        eng::spmm(a, bt, c_hw, e, {.bmu = &bmu});
        EXPECT_TRUE(c_hw.approxEquals(ref, 1e-9));
    }
}

TEST(EngineDispatch, SpgemmMatchesDenseOracle)
{
    fmt::CooMatrix a_coo = wl::genClustered(40, 36, 260, 4, 13);
    fmt::CooMatrix b_coo = wl::genClustered(36, 24, 180, 4, 14);
    fmt::CsrMatrix b = fmt::CsrMatrix::fromCoo(b_coo);
    fmt::DenseMatrix ref(a_coo.rows(), b_coo.cols());
    kern::denseSpmm(a_coo.toDense(), b_coo.toDense(), ref);
    sim::NativeExec e;

    for (eng::Format f :
         {eng::Format::kCsr, eng::Format::kCsc, eng::Format::kSmash}) {
        eng::SparseMatrixAny a = eng::SparseMatrixAny::fromCoo(a_coo, f);
        fmt::CsrMatrix c = eng::spgemm(a, b, e);
        EXPECT_TRUE(c.toCoo().toDense().approxEquals(ref, 1e-9))
            << "format " << eng::toString(f);
    }
    isa::Bmu bmu;
    eng::SparseMatrixAny a =
        eng::SparseMatrixAny::fromCoo(a_coo, eng::Format::kSmash);
    fmt::CsrMatrix c = eng::spgemm(a, b, e, {.bmu = &bmu});
    EXPECT_TRUE(c.toCoo().toDense().approxEquals(ref, 1e-9));
    // COO has no SpGEMM route: the registry gates it.
    EXPECT_THROW(eng::spgemm(a_coo, b, e), FatalError);
}

TEST(EngineDispatch, SpaddMatchesDenseOracle)
{
    fmt::CooMatrix a_coo = wl::genClustered(32, 32, 150, 4, 21);
    fmt::CooMatrix b_coo = wl::genClustered(32, 32, 150, 4, 22);
    fmt::DenseMatrix ref(32, 32);
    kern::denseSpadd(a_coo.toDense(), b_coo.toDense(), ref);
    sim::NativeExec e;
    std::vector<Value> x = rampVector(32);
    std::vector<Value> y_ref(32, Value(0));
    kern::denseSpmv(ref, x, y_ref);

    for (eng::Format f :
         {eng::Format::kCsr, eng::Format::kSmash, eng::Format::kDense}) {
        eng::SparseMatrixAny a = eng::SparseMatrixAny::fromCoo(a_coo, f);
        eng::SparseMatrixAny b = eng::SparseMatrixAny::fromCoo(b_coo, f);
        eng::SparseMatrixAny c = eng::spadd(a, b, e);
        std::vector<Value> y(32, Value(0));
        eng::spmv(c, x, y, e);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], y_ref[i], 1e-9)
                << "format " << eng::toString(f);
    }
}

TEST(EngineRegistry, CapabilitiesGateDispatch)
{
    EXPECT_TRUE(eng::capabilities(eng::Format::kCsr).spmm);
    EXPECT_FALSE(eng::capabilities(eng::Format::kCoo).spmm);
    EXPECT_TRUE(eng::capabilities(eng::Format::kSmash).spadd);
    for (eng::Format f : kAllFormats) {
        EXPECT_TRUE(eng::capabilities(f).spmv);
        EXPECT_TRUE(eng::capabilities(f).parallelSpmv);
        EXPECT_STREQ(eng::capabilities(f).name, eng::toString(f));
    }

    fmt::CooMatrix coo = wl::genUniform(8, 8, 16, 1);
    sim::NativeExec e;
    fmt::DenseMatrix c(8, 8);
    EXPECT_THROW(eng::spmm(coo, coo, c, e), FatalError);
    EXPECT_THROW(eng::spadd(coo, coo, e), FatalError);
}

TEST(EngineRegistry, AlgoValidation)
{
    fmt::CooMatrix coo = wl::genUniform(8, 8, 16, 1);
    eng::SparseMatrixAny sm =
        eng::SparseMatrixAny::fromCoo(coo, eng::Format::kSmash);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> x(8, Value(1));
    std::vector<Value> y(8, Value(0));
    sim::NativeExec e;
    // Ideal is CSR-only; the BMU path needs a Bmu and SMASH.
    EXPECT_THROW(eng::spmv(sm, x, y, e, {.algo = eng::SpmvAlgo::kIdeal}),
                 FatalError);
    EXPECT_THROW(eng::spmv(csr, x, y, e, {.algo = eng::SpmvAlgo::kHw}),
                 FatalError);
    EXPECT_THROW(eng::spmv(sm, x, y, e, {.algo = eng::SpmvAlgo::kHw}),
                 FatalError); // no bmu supplied
}

TEST(EngineAutoselect, PicksTheStructurallyRightFormat)
{
    // Banded SPD system: few full diagonals -> DIA.
    EXPECT_EQ(eng::chooseFormat(wl::genPoisson2d(24, 24)),
              eng::Format::kDia);
    // High locality of sparsity -> SMASH (paper §7.2.3).
    EXPECT_EQ(eng::chooseFormat(
                  wl::genWithLocality(512, 512, 8000, 8, 0.9, 5)),
              eng::Format::kSmash);
    // Power-law rows, scattered columns -> CSR.
    EXPECT_EQ(eng::chooseFormat(
                  wl::genPowerLaw(512, 512, 6000, 1.2, 6)),
              eng::Format::kCsr);
    // Near-dense -> dense.
    EXPECT_EQ(eng::chooseFormat(wl::genUniform(24, 24, 320, 7)),
              eng::Format::kDense);
    // Constant row degree, scattered columns -> ELL.
    fmt::CooMatrix even(256, 256);
    Rng rng(8);
    for (Index r = 0; r < 256; ++r)
        for (Index k = 0; k < 6; ++k)
            even.add(r,
                     static_cast<Index>(rng.nextU64() % 256),
                     Value(1));
    even.canonicalize();
    EXPECT_EQ(eng::chooseFormat(even), eng::Format::kEll);
}

TEST(EngineAutoselect, EncodeAutoRunsThroughDispatch)
{
    fmt::CooMatrix coo = wl::genWithLocality(128, 128, 2000, 8, 0.85, 3);
    eng::SparseMatrixAny m = eng::encodeAuto(coo);
    EXPECT_EQ(m.format(), eng::Format::kSmash);
    std::vector<Value> x = rampVector(coo.cols());
    std::vector<Value> ref = oracleSpmv(coo, x);
    std::vector<Value> y(ref.size(), Value(0));
    sim::NativeExec e;
    eng::spmv(m, x, y, e);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-9);
}

TEST(ThreadPool, ParallelForCoversTheRangeOnce)
{
    exec::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, 1000, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, StealsSkewedWork)
{
    exec::ThreadPool pool(4);
    std::atomic<long> sum{0};
    // Chunk 0 is enormously more expensive: stealing must let the
    // other workers drain the rest meanwhile; completion proves no
    // deadlock and the sum proves full coverage.
    pool.parallelFor(0, 64, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) {
            long local = 0;
            const long spin = i == 0 ? 200000 : 10;
            for (long k = 0; k < spin; ++k)
                local += k % 7;
            sum.fetch_add(i + (local - local));
        }
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPool, PropagatesExceptions)
{
    exec::ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(0, 8, 1, [&](Index b, Index /*e*/) {
            if (b >= 0)
                SMASH_FATAL("boom");
        }),
        FatalError);
}

TEST(ParallelExec, MatchesSerialOnAsymmetricMatrices)
{
    const fmt::CooMatrix matrices[] = {
        asymmetricMatrix(97, 83),
        wl::genClustered(120, 120, 1500, 6, 31),
        wl::genPowerLaw(150, 150, 1800, 1.0, 32),
    };
    sim::NativeExec serial;

    for (const fmt::CooMatrix& coo : matrices) {
        std::vector<Value> x = rampVector(coo.cols());
        for (eng::Format f : kAllFormats) {
            eng::SparseMatrixAny m =
                eng::SparseMatrixAny::fromCoo(coo, f);
            std::vector<Value> y_serial(
                static_cast<std::size_t>(coo.rows()), Value(0));
            eng::spmv(m, x, y_serial, serial);
            for (int threads : {1, 2, 4, 8}) {
                exec::ParallelExec pe(threads);
                std::vector<Value> y_par(
                    static_cast<std::size_t>(coo.rows()), Value(0));
                eng::spmv(m, x, y_par, pe);
                for (std::size_t i = 0; i < y_serial.size(); ++i)
                    EXPECT_NEAR(y_par[i], y_serial[i], 1e-10)
                        << eng::toString(f) << " threads " << threads
                        << " row " << i;
            }
        }
    }
}

TEST(ParallelExec, AccumulatesLikeTheSerialKernel)
{
    // y := y + A x semantics: a pre-filled y must survive.
    fmt::CooMatrix coo = wl::genClustered(64, 64, 700, 4, 41);
    std::vector<Value> x = rampVector(64);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    sim::NativeExec serial;
    exec::ParallelExec pe(4);

    std::vector<Value> y1(64, Value(2.5));
    std::vector<Value> y2(64, Value(2.5));
    eng::spmv(csr, x, y1, serial);
    eng::spmv(csr, x, y2, pe);
    for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_NEAR(y2[i], y1[i], 1e-10);
}

TEST(ParallelExec, OperatorDrivesSolvers)
{
    // CG over the parallel engine operator converges to the same
    // solution as the serial one.
    fmt::CooMatrix coo = wl::genPoisson2d(16, 16);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> b(static_cast<std::size_t>(a.rows()), Value(1));

    sim::NativeExec se;
    std::vector<Value> x_serial(b.size(), Value(0));
    solve::SolveReport r1 = solve::conjugateGradient(
        eng::makeOperator(a, se), b, x_serial, 1e-10, 1000, se);

    exec::ParallelExec pe(4);
    std::vector<Value> x_par(b.size(), Value(0));
    solve::SolveReport r2 = solve::conjugateGradient(
        eng::makeOperator(a, pe), b, x_par, 1e-10, 1000, pe);

    EXPECT_TRUE(r1.converged);
    EXPECT_TRUE(r2.converged);
    for (std::size_t i = 0; i < x_serial.size(); ++i)
        EXPECT_NEAR(x_par[i], x_serial[i], 1e-8);
}

} // namespace
} // namespace smash
