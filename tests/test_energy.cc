/**
 * @file
 * Tests for the energy model: component accounting against known
 * activity counts, monotonicity in the config constants, and the
 * cross-scheme relations the model must preserve (more DRAM traffic
 * means more memory energy; the BMU term only appears when BMU
 * activity is supplied).
 */

#include <gtest/gtest.h>

#include "isa/bmu.hh"
#include "kernels/spmv.hh"
#include "kernels/util.hh"
#include "sim/energy.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash::sim
{
namespace
{

TEST(Energy, ZeroActivityMeansZeroEnergy)
{
    Machine machine;
    EnergyBreakdown b = energyOf(machine);
    EXPECT_EQ(b.totalPj(), 0.0);
}

TEST(Energy, CoreTermCountsInstructions)
{
    Machine machine;
    machine.op(100);
    EnergyConfig cfg;
    EnergyBreakdown b = energyOf(machine, cfg);
    EXPECT_DOUBLE_EQ(b.corePj, 100 * cfg.instructionPj);
    EXPECT_EQ(b.l1Pj + b.l2Pj + b.l3Pj + b.dramPj + b.bmuPj, 0.0);
}

TEST(Energy, ColdMissTouchesEveryLevelOnce)
{
    Machine machine;
    machine.load(0x10000, 8);
    EnergyConfig cfg;
    EnergyBreakdown b = energyOf(machine, cfg);
    EXPECT_DOUBLE_EQ(b.l1Pj, cfg.l1AccessPj);
    EXPECT_DOUBLE_EQ(b.l2Pj, cfg.l2AccessPj);
    EXPECT_DOUBLE_EQ(b.l3Pj, cfg.l3AccessPj);
    EXPECT_DOUBLE_EQ(b.dramPj, cfg.dramAccessPj);
}

TEST(Energy, RepeatHitStaysInL1)
{
    Machine machine;
    machine.load(0x10000, 8);
    machine.reset();
    machine.load(0x10000, 8);
    machine.load(0x10000, 8);
    EnergyBreakdown b = energyOf(machine);
    // Second run: first access misses everywhere again (reset wipes
    // the caches), second hits L1 — so L1 has 2 accesses, the rest 1.
    EnergyConfig cfg;
    EXPECT_DOUBLE_EQ(b.l1Pj, 2 * cfg.l1AccessPj);
    EXPECT_DOUBLE_EQ(b.dramPj, cfg.dramAccessPj);
}

TEST(Energy, BmuTermOnlyWithActivity)
{
    Machine machine;
    machine.op(10);
    EnergyConfig cfg;
    BmuActivity activity{.wordsScanned = 50, .bufferRefills = 4};
    EnergyBreakdown without = energyOf(machine, cfg);
    EnergyBreakdown with = energyOf(machine, cfg, &activity);
    EXPECT_EQ(without.bmuPj, 0.0);
    EXPECT_DOUBLE_EQ(with.bmuPj,
                     50 * cfg.bmuWordScanPj + 4 * cfg.bmuRefillPj);
    EXPECT_DOUBLE_EQ(with.totalPj() - without.totalPj(), with.bmuPj);
}

TEST(Energy, SmashHwSpendsLessCoreEnergyThanCsr)
{
    fmt::CooMatrix coo = wl::genClustered(256, 256, 4096, 8, 33);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    core::SmashMatrix smash = core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::vector<Value> x(static_cast<std::size_t>(coo.cols()), 1.0);
    std::vector<Value> y(static_cast<std::size_t>(coo.rows()), 0.0);

    Machine m_csr;
    SimExec e_csr(m_csr);
    kern::spmvCsr(csr, x, y, e_csr);

    Machine m_hw;
    SimExec e_hw(m_hw);
    isa::Bmu bmu;
    std::vector<Value> xp = kern::padVector(x, smash.paddedCols());
    std::fill(y.begin(), y.end(), 0.0);
    kern::spmvSmashHw(smash, bmu, xp, y, e_hw);

    BmuActivity activity{.wordsScanned = bmu.stats().wordsScanned,
                         .bufferRefills = bmu.stats().bufferRefills};
    EnergyBreakdown csr_e = energyOf(m_csr);
    EnergyBreakdown hw_e = energyOf(m_hw, EnergyConfig{}, &activity);

    // Fewer instructions -> less core energy; the BMU's own energy
    // must not erase the win on a clustered matrix.
    EXPECT_LT(hw_e.corePj, csr_e.corePj);
    EXPECT_LT(hw_e.totalPj(), csr_e.totalPj());
    EXPECT_GT(hw_e.bmuPj, 0.0);
}

TEST(Energy, ToStringMentionsEveryComponent)
{
    Machine machine;
    machine.op(1);
    std::string s = toString(energyOf(machine));
    for (const char* part : {"core", "L1", "L2", "L3", "DRAM", "BMU",
                             "total"})
        EXPECT_NE(s.find(part), std::string::npos) << part;
}

} // namespace
} // namespace smash::sim
